//! Property tests for the wire codec: arbitrary messages must round-trip
//! `encode → parse → decode → encode` byte-identically (the serializer is
//! canonical), and malformed input — truncations, bad escapes, depth
//! bombs, random bytes — must come back as typed errors, never panics.

use e9proto::json::{self, Json};
use e9proto::msg::{code, Command, Request, Response, RpcError};
use e9patch::Template;
use e9qcheck::prelude::*;

/// Build an arbitrary JSON tree from a drawn opcode stream. Floats are
/// deliberately excluded: integer/float canonicalisation has its own unit
/// tests, and e.g. `Float(2.0)` re-parses as `Int(2)` by design.
fn build_json(ops: &mut std::vec::IntoIter<u8>, depth: usize) -> Json {
    let op = ops.next().unwrap_or(0);
    let structural = depth < 3;
    match op % if structural { 6 } else { 4 } {
        0 => Json::Null,
        1 => Json::Bool(ops.next().unwrap_or(0) % 2 == 0),
        2 => {
            let mut v = 0i128;
            for _ in 0..8 {
                v = (v << 8) | ops.next().unwrap_or(0) as i128;
            }
            if ops.next().unwrap_or(0) % 2 == 0 {
                v = -v;
            }
            Json::Int(v)
        }
        3 => {
            let n = (ops.next().unwrap_or(0) % 12) as usize;
            let s: String = (0..n)
                .map(|_| {
                    // A mix of plain ASCII, escapables and non-ASCII.
                    match ops.next().unwrap_or(0) {
                        b @ 0x20..=0x7E => b as char,
                        0x00..=0x08 => '\n',
                        0x09..=0x10 => '"',
                        0x11..=0x18 => '\\',
                        _ => 'λ',
                    }
                })
                .collect();
            Json::Str(s)
        }
        4 => {
            let n = (ops.next().unwrap_or(0) % 4) as usize;
            Json::Arr((0..n).map(|_| build_json(ops, depth + 1)).collect())
        }
        _ => {
            let n = (ops.next().unwrap_or(0) % 4) as usize;
            Json::Obj(
                (0..n)
                    .map(|k| (format!("k{k}"), build_json(ops, depth + 1)))
                    .collect(),
            )
        }
    }
}

/// Build an arbitrary command from drawn primitives.
fn build_command(sel: u8, addr: u64, bytes: Vec<u8>, name: String, flag: bool) -> Command {
    match sel % 10 {
        0 => Command::Version { version: addr },
        1 => Command::Binary {
            digest: if flag {
                Some(e9cache::digest(&bytes))
            } else {
                None
            },
            bytes,
        },
        2 => Command::Option {
            name,
            value: format!("{addr}"),
        },
        3 => Command::Reserve {
            vaddr: addr,
            bytes,
            exec: flag,
            write: !flag,
        },
        4 => Command::Instruction { addr, bytes },
        5 => Command::Patch {
            addr,
            template: Template::Empty,
        },
        6 => Command::Patch {
            addr,
            template: Template::Counter { counter_addr: addr ^ 0xfff },
        },
        7 => Command::Patch {
            addr,
            template: Template::Replace {
                code: bytes,
                resume: if flag { Some(addr.wrapping_add(4)) } else { None },
            },
        },
        8 => Command::Emit,
        _ => Command::Shutdown,
    }
}

props! {
    #[test]
    fn json_serialize_parse_is_identity(ops in vec(any::<u8>(), 0..256)) {
        let v = build_json(&mut ops.into_iter(), 0);
        let text = v.serialize();
        let back = json::parse(text.as_bytes())
            .map_err(|e| TestCaseError::fail(format!("own output unparsable: {e:?} in {text}")))?;
        prop_assert_eq!(&back, &v);
        // Canonical: re-serialization is byte-identical.
        prop_assert_eq!(back.serialize(), text);
    }

    #[test]
    fn requests_round_trip_byte_identically(
        id in any::<u64>(),
        sel in any::<u8>(),
        addr in any::<u64>(),
        bytes in vec(any::<u8>(), 0..64),
        name in alpha(6),
        flag in any::<bool>(),
    ) {
        let req = Request {
            id,
            cmd: build_command(sel, addr, bytes, name, flag),
        };
        let line = req.encode();
        let back = Request::decode(&json::parse(line.as_bytes()).unwrap())
            .map_err(|e| TestCaseError::fail(format!("own request rejected: {e}")))?;
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back.encode(), line);
    }

    #[test]
    fn responses_round_trip_byte_identically(
        id in any::<u64>(),
        has_id in any::<bool>(),
        is_err in any::<bool>(),
        errcode in any::<i64>(),
        msg in alpha(8),
        ops in vec(any::<u8>(), 0..64),
    ) {
        let resp = Response {
            id: if has_id { Some(id) } else { None },
            body: if is_err {
                Err(RpcError::new(errcode, msg))
            } else {
                Ok(build_json(&mut ops.into_iter(), 0))
            },
        };
        let line = resp.encode();
        let back = Response::decode(&json::parse(line.as_bytes()).unwrap())
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(back.encode(), line);
    }

    #[test]
    fn truncated_requests_are_parse_errors(
        sel in any::<u8>(),
        addr in any::<u64>(),
        bytes in vec(any::<u8>(), 0..32),
        cut_pct in 0u32..100,
    ) {
        // Every strict prefix of a canonical request line is unbalanced
        // JSON: a typed error, never a panic, never a false accept.
        let req = Request {
            id: 1,
            cmd: build_command(sel, addr, bytes, "opt".into(), false),
        };
        let line = req.encode();
        let cut = (line.len() as u64 * cut_pct as u64 / 100) as usize;
        if cut < line.len() {
            prop_assert!(json::parse(&line.as_bytes()[..cut]).is_err());
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(bytes in vec(any::<u8>(), 0..200)) {
        // Random input: success or typed error are both fine, panicking
        // is not (the property harness converts panics into failures).
        let _ = json::parse(&bytes);
    }

    #[test]
    fn bad_escapes_are_errors(tail in any::<u8>()) {
        // `"\<x>"` for any x outside the escape alphabet must error; for
        // x inside it, the string must parse.
        let escapable = b"\"\\/bfnrt";
        let input = [b'"', b'\\', tail, b'"'];
        let parsed = json::parse(&input);
        if escapable.contains(&tail) {
            prop_assert!(parsed.is_ok(), "escape \\{} rejected", tail as char);
        } else if tail != b'u' {
            prop_assert!(parsed.is_err(), "escape \\{:#04x} accepted", tail);
        }
    }

    #[test]
    fn depth_bombs_are_errors_not_overflows(depth in 65usize..4096) {
        // `[[[[…` past MAX_DEPTH must be a TooDeep error — a recursive
        // parser without the bound would blow the stack instead.
        let mut bomb = Vec::with_capacity(depth * 2);
        bomb.resize(depth, b'[');
        bomb.extend(std::iter::repeat(b']').take(depth));
        prop_assert!(json::parse(&bomb).is_err());
        let mut objs = Vec::with_capacity(depth * 8);
        for _ in 0..depth {
            objs.extend_from_slice(b"{\"k\":");
        }
        objs.push(b'1');
        objs.extend(std::iter::repeat(b'}').take(depth));
        prop_assert!(json::parse(&objs).is_err());
    }
}

#[test]
fn hostile_request_lines_get_in_band_errors() {
    // The server's dispatch layer must answer garbage with typed errors
    // and keep the session alive.
    use e9proto::server::dispatch_line;
    use e9proto::Session;
    let mut s = Session::new();
    let r = dispatch_line(&mut s, b"}{not json");
    assert_eq!(r.body.unwrap_err().code, code::PARSE);
    let r = dispatch_line(&mut s, br#"{"id":true,"method":"emit"}"#);
    assert_eq!(r.body.unwrap_err().code, code::INVALID_REQUEST);
    // The session still works afterwards.
    let r = dispatch_line(
        &mut s,
        br#"{"jsonrpc":"2.0","id":1,"method":"version","params":{"version":1}}"#,
    );
    assert!(r.body.is_ok());
}
