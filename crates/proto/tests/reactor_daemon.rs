//! End-to-end tests of the reactor serving mode against the real
//! `e9patchd` binary: byte-identity with the legacy threaded path, the
//! TCP transport, request pipelining, graceful drain, and the BUSY
//! admission/backpressure contract.

#![cfg(target_os = "linux")]

use e9patch::{PatchRequest, RewriteConfig, Rewriter, Template};
use e9proto::msg::{code, Command, Request};
use e9proto::ProtoClient;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command as Proc, Stdio};
use std::time::{Duration, Instant};

fn daemon_path() -> &'static str {
    env!("CARGO_BIN_EXE_e9patchd")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("e9reactor-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_for_sock(sock: &Path) {
    for _ in 0..500 {
        if sock.exists() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never bound {}", sock.display());
}

/// Kills the daemon on drop so a panicking test can never orphan it. An
/// orphaned daemon inherits the test runner's stdout, and any pipeline
/// reading that stream blocks on the survivor instead of seeing EOF.
struct Reap(Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn wait_for_exit(daemon: &mut Reap) {
    for _ in 0..500 {
        if let Some(status) = daemon.0.try_wait().unwrap() {
            assert!(status.success(), "daemon exited with {status}");
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not exit");
}

/// A synthetic workload binary, its disassembly, and its A1 jump sites.
fn workload() -> (Vec<u8>, Vec<e9x86::insn::Insn>, Vec<u64>) {
    let sb = e9synth::generate(&e9synth::Profile::tiny("reactor-test", false));
    let sites: Vec<u64> = sb
        .disasm
        .iter()
        .filter(|i| i.kind.is_jump())
        .map(|i| i.addr)
        .collect();
    assert!(!sites.is_empty());
    (sb.binary, sb.disasm, sites)
}

/// The raw request transcript for a full patch job (shutdown excluded).
fn job_transcript(bin: &[u8], disasm: &[e9x86::insn::Insn], sites: &[u64]) -> (String, usize) {
    let mut input = String::new();
    let mut id = 0u64;
    let mut push = |cmd: Command, input: &mut String| {
        id += 1;
        input.push_str(&Request { id, cmd }.encode());
        input.push('\n');
    };
    push(Command::Version { version: 1 }, &mut input);
    push(
        Command::Binary {
            bytes: bin.to_vec(),
            digest: None,
        },
        &mut input,
    );
    for i in disasm {
        push(
            Command::Instruction {
                addr: i.addr,
                bytes: i.bytes().to_vec(),
            },
            &mut input,
        );
    }
    for &addr in sites {
        push(
            Command::Patch {
                addr,
                template: Template::Empty,
            },
            &mut input,
        );
    }
    push(Command::Emit, &mut input);
    let count = input.lines().count();
    (input, count)
}

fn read_lines<R: Read>(reader: &mut BufReader<R>, n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "early EOF");
        out.push(line);
    }
    out
}

fn reference(bin: &[u8], disasm: &[e9x86::insn::Insn], sites: &[u64]) -> Vec<u8> {
    let requests: Vec<PatchRequest> = sites
        .iter()
        .map(|&addr| PatchRequest {
            addr,
            template: Template::Empty,
        })
        .collect();
    Rewriter::new(RewriteConfig::default())
        .rewrite(bin, disasm, &requests, &[])
        .unwrap()
        .binary
}

/// The whole response transcript — every reply line for a pipelined full
/// patch job, emit included — must be byte-identical between the reactor
/// and the legacy thread-per-connection server.
#[test]
fn reactor_replies_are_byte_identical_to_threaded() {
    let dir = temp_dir("ident");
    let (bin, disasm, sites) = workload();
    let (transcript, n) = job_transcript(&bin, &disasm, &sites);

    let mut transcripts = Vec::new();
    for mode in ["reactor", "threaded"] {
        let sock = dir.join(format!("{mode}.sock"));
        let mut cmd = Proc::new(daemon_path());
        cmd.arg("--socket").arg(&sock).args(["--max-conns", "1"]);
        if mode == "threaded" {
            cmd.arg("--threaded");
        }
        let mut daemon = Reap(cmd.stderr(Stdio::null()).spawn().unwrap());
        wait_for_sock(&sock);
        let mut stream = UnixStream::connect(&sock).unwrap();
        // One write: the entire job is pipelined.
        stream.write_all(transcript.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let lines = read_lines(&mut reader, n);
        drop((stream, reader));
        wait_for_exit(&mut daemon);
        transcripts.push(lines);
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "reactor and threaded transcripts diverge"
    );
    // And the emitted binary matches the in-process rewriter.
    let last = transcripts[0].last().unwrap();
    let value = e9proto::json::parse(last.trim().as_bytes()).unwrap();
    let resp = e9proto::Response::decode(&value).unwrap();
    let reply = e9proto::EmitReply::from_json(&resp.body.unwrap()).unwrap();
    assert_eq!(reply.binary, reference(&bin, &disasm, &sites));
    std::fs::remove_dir_all(&dir).ok();
}

/// `--listen-tcp 127.0.0.1:0`: the daemon announces the resolved address
/// on stderr; a TCP client completes a full job byte-identical to the
/// in-process rewriter, and in-band shutdown still works.
#[test]
fn tcp_transport_serves_a_full_job() {
    let mut daemon = Reap(
        Proc::new(daemon_path())
            .args(["--listen-tcp", "127.0.0.1:0"])
            .stderr(Stdio::piped())
            .spawn()
            .unwrap(),
    );
    let stderr = daemon.0.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        assert!(lines.read_line(&mut line).unwrap() > 0, "daemon died");
        if let Some(rest) = line.strip_prefix("e9patchd: listening on tcp ") {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };

    let (bin, disasm, sites) = workload();
    let mut client = ProtoClient::connect_tcp_retry(&addr, 8).unwrap();
    client.negotiate().unwrap();
    client.binary(&bin).unwrap();
    for i in &disasm {
        client.instruction(i.addr, i.bytes()).unwrap();
    }
    for &addr in &sites {
        client.patch(addr, Template::Empty).unwrap();
    }
    let reply = client.emit().unwrap();
    assert_eq!(reply.binary, reference(&bin, &disasm, &sites));
    client.shutdown().unwrap();
    drop(client);
    wait_for_exit(&mut daemon);
}

/// Graceful drain: after one connection's `shutdown` is acknowledged, an
/// already-connected session still gets its in-flight emit served, with
/// a reply byte-identical to the in-process rewriter — and a late
/// connection is refused cleanly instead of hanging.
#[test]
fn drain_finishes_in_flight_emit_and_refuses_late_connections() {
    let dir = temp_dir("drain");
    let sock = dir.join("e9.sock");
    let mut daemon = Reap(
        Proc::new(daemon_path())
            .arg("--socket")
            .arg(&sock)
            .args(["--drain-ms", "10000"])
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    wait_for_sock(&sock);

    // Session A: everything but the emit.
    let (bin, disasm, sites) = workload();
    let mut a = ProtoClient::connect_unix_retry(&sock, 8).unwrap();
    a.negotiate().unwrap();
    a.binary(&bin).unwrap();
    for i in &disasm {
        a.instruction(i.addr, i.bytes()).unwrap();
    }
    for &addr in &sites {
        a.patch(addr, Template::Empty).unwrap();
    }

    // Session B requests shutdown; the reactor enters drain.
    let mut b = ProtoClient::connect_unix_retry(&sock, 8).unwrap();
    b.negotiate().unwrap();
    b.shutdown().unwrap();
    drop(b);

    // A's emit is in-flight work: it must complete, byte-identical.
    let reply = a.emit().unwrap();
    assert_eq!(reply.binary, reference(&bin, &disasm, &sites));

    // Late connections: refused (connect error), never a hang. Poll past
    // the instant between B's reply and the listener teardown.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(&sock) {
            Err(_) => break,
            Ok(_) if Instant::now() >= deadline => {
                panic!("late connection was still accepted during drain")
            }
            Ok(stream) => {
                drop(stream);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }

    drop(a);
    wait_for_exit(&mut daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// Admission control: past `--max-clients`, a new arrival gets exactly
/// one typed BUSY line and a close, while the established connection
/// stays fully serviceable.
#[test]
fn admission_cap_sheds_with_typed_busy() {
    let dir = temp_dir("busy");
    let sock = dir.join("e9.sock");
    let mut daemon = Reap(
        Proc::new(daemon_path())
            .arg("--socket")
            .arg(&sock)
            .args(["--max-clients", "1"])
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    wait_for_sock(&sock);

    let mut keep = ProtoClient::connect_unix_retry(&sock, 8).unwrap();
    keep.negotiate().unwrap();

    // Arrival #2: one BUSY line, then EOF.
    let over = UnixStream::connect(&sock).unwrap();
    let mut reader = BufReader::new(over);
    let mut line = String::new();
    assert!(reader.read_line(&mut line).unwrap() > 0);
    let value = e9proto::json::parse(line.trim().as_bytes()).unwrap();
    let resp = e9proto::Response::decode(&value).unwrap();
    assert_eq!(resp.id, None);
    assert_eq!(resp.body.unwrap_err().code, code::BUSY);
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "must close after BUSY");

    // A ProtoClient sees the shed as a typed RPC error, not a protocol
    // failure.
    let mut typed = ProtoClient::connect_unix(&sock).unwrap();
    match typed.negotiate().unwrap_err() {
        e9proto::ClientError::Rpc(e) => assert_eq!(e.code, code::BUSY),
        other => panic!("expected BUSY rpc error, got {other:?}"),
    }
    drop(typed);

    // The established session never noticed.
    keep.shutdown().unwrap();
    drop(keep);
    wait_for_exit(&mut daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// Backpressure: with a tiny `--max-pending-bytes`, a client that
/// pipelines thousands of requests without reading replies sees typed
/// BUSY errors once the daemon's reply queue passes the budget — never a
/// stall, never a dropped connection.
#[test]
fn pending_budget_answers_busy_in_band() {
    let dir = temp_dir("budget");
    let sock = dir.join("e9.sock");
    let mut daemon = Reap(
        Proc::new(daemon_path())
            .arg("--socket")
            .arg(&sock)
            .args(["--max-pending-bytes", "4096", "--max-conns", "1"])
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    wait_for_sock(&sock);

    let mut stream = UnixStream::connect(&sock).unwrap();
    // Pipeline far more reply volume than the kernel socket buffers plus
    // the 4 KiB budget can hold, without reading any of it: one version
    // negotiation, then thousands of cache-stats queries.
    let mut blob = String::new();
    blob.push_str(
        &Request {
            id: 1,
            cmd: Command::Version { version: 1 },
        }
        .encode(),
    );
    blob.push('\n');
    let n = 20_000usize;
    for id in 2..=n as u64 {
        blob.push_str(
            &Request {
                id,
                cmd: Command::Cache {
                    action: e9proto::CacheAction::Stats,
                },
            }
            .encode(),
        );
        blob.push('\n');
    }
    // The write side may itself hit backpressure while the daemon's
    // reply queue is parked; a write timeout keeps the test bounded.
    stream
        .set_write_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let mut written_all = true;
    let mut buf = blob.as_bytes();
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => {
                written_all = false;
                break;
            }
            Ok(k) => buf = &buf[k..],
            Err(_) => {
                written_all = false;
                break;
            }
        }
    }
    // Now drain every reply; at least one must be a typed BUSY, and the
    // stream must stay framed (one JSON object per line) throughout.
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut busy = 0usize;
    let mut ok = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let value = e9proto::json::parse(line.trim().as_bytes()).unwrap();
                let resp = e9proto::Response::decode(&value).unwrap();
                match resp.body {
                    Ok(_) => ok += 1,
                    Err(e) => {
                        assert_eq!(e.code, code::BUSY, "unexpected error: {e}");
                        busy += 1;
                    }
                }
            }
            Err(e) => panic!("reply stream stalled: {e}"),
        }
    }
    assert!(busy > 0, "no BUSY replies (ok={ok}, written_all={written_all})");
    assert!(ok > 0, "no successful replies at all");

    drop(reader);
    drop(stream);
    wait_for_exit(&mut daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// Pipelining: many requests in one write come back as exactly one reply
/// per request, in order, ids matching.
#[test]
fn pipelined_requests_reply_in_order() {
    let dir = temp_dir("pipe");
    let sock = dir.join("e9.sock");
    let mut daemon = Reap(
        Proc::new(daemon_path())
            .arg("--socket")
            .arg(&sock)
            .args(["--max-conns", "1"])
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    wait_for_sock(&sock);

    let mut stream = UnixStream::connect(&sock).unwrap();
    let mut blob = String::new();
    let n = 256u64;
    for id in 1..=n {
        let cmd = if id == 1 {
            Command::Version { version: 1 }
        } else {
            Command::Cache {
                action: e9proto::CacheAction::Stats,
            }
        };
        blob.push_str(&Request { id, cmd }.encode());
        blob.push('\n');
    }
    stream.write_all(blob.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for expect in 1..=n {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        let value = e9proto::json::parse(line.trim().as_bytes()).unwrap();
        let resp = e9proto::Response::decode(&value).unwrap();
        assert_eq!(resp.id, Some(expect), "replies out of order");
        assert!(resp.body.is_ok());
    }
    drop((stream, reader));
    wait_for_exit(&mut daemon);
    std::fs::remove_dir_all(&dir).ok();
}
