//! End-to-end rewrite-cache test against the real `e9patchd` binary: two
//! separate socket connections share one `--cache-dir`, so the second
//! run of the same job must be a cache hit with byte-identical output —
//! and the `cache` wire command must report and clear the store.

#![cfg(unix)]

use e9patch::Template;
use e9proto::{CacheDisposition, ProtoClient};

fn daemon_path() -> &'static str {
    env!("CARGO_BIN_EXE_e9patchd")
}

fn workload() -> (Vec<u8>, Vec<e9x86::insn::Insn>, Vec<u64>) {
    let sb = e9synth::generate(&e9synth::Profile::tiny("cache-daemon", false));
    let sites: Vec<u64> = sb
        .disasm
        .iter()
        .filter(|i| i.kind.is_jump())
        .map(|i| i.addr)
        .collect();
    assert!(!sites.is_empty());
    (sb.binary, sb.disasm, sites)
}

fn drive(
    client: &mut ProtoClient,
    bin: &[u8],
    disasm: &[e9x86::insn::Insn],
    sites: &[u64],
) -> e9proto::EmitReply {
    client.negotiate().unwrap();
    // Exercise the digest-once wire path: pre-hash the input and let the
    // server verify it at intake instead of re-hashing at emit.
    let digest = e9cache::tree::tree_digest(bin, 1);
    client.binary_with_digest(bin, &digest).unwrap();
    for i in disasm {
        client.instruction(i.addr, i.bytes()).unwrap();
    }
    for &addr in sites {
        client.patch(addr, Template::Empty).unwrap();
    }
    let reply = client.emit().unwrap();
    assert_eq!(reply.stats.failed, 0, "{:?}", reply.stats);
    reply
}

#[test]
fn wrong_digest_is_rejected_over_the_wire() {
    // A claimed digest that does not match the bytes must be refused at
    // intake with a typed error — the shared cache is only safe because
    // the server never trusts a client-supplied digest.
    let (bin, _, _) = workload();
    let mut client = ProtoClient::in_process().unwrap();
    client.negotiate().unwrap();
    let wrong = e9cache::digest(b"not the binary");
    let err = client.binary_with_digest(&bin, &wrong).unwrap_err();
    assert!(err.to_string().contains("digest mismatch"), "{err}");
}

#[test]
fn two_connections_share_the_cache_and_hit_byte_identically() {
    let dir = std::env::temp_dir().join(format!("e9patchd-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("e9.sock");
    let cache_dir = dir.join("cache");

    // Kills the daemon on drop so a panicking test can never orphan it —
    // an orphan inherits the runner's stdout and wedges any pipeline
    // reading that stream.
    struct Reap(std::process::Child);
    impl Drop for Reap {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }
    let mut daemon = Reap(
        std::process::Command::new(daemon_path())
            .arg("--socket")
            .arg(&sock)
            .arg("--cache-dir")
            .arg(&cache_dir)
            // The synth workload is tiny: disable the size bypass so the
            // cache mechanics under test actually engage.
            .args(["--cache-bypass-bytes", "0"])
            .args(["--max-conns", "2"])
            .spawn()
            .unwrap(),
    );

    let (bin, disasm, sites) = workload();

    // Connection 1: cold — the reply must say so and carry the job digest.
    let first = {
        let mut client = ProtoClient::connect_unix_retry(&sock, 8).unwrap();
        let reply = drive(&mut client, &bin, &disasm, &sites);
        assert_eq!(reply.cache, CacheDisposition::Miss, "first run must be cold");
        reply
    };
    let digest = first.digest.clone().expect("cold reply must carry the digest");
    assert_eq!(digest.len(), 64, "{digest}");

    // Connection 2: same job, fresh session — served from the shared
    // cache, byte-identical, same digest. Stats and clear work in-band.
    {
        let mut client = ProtoClient::connect_unix_retry(&sock, 8).unwrap();
        let reply = drive(&mut client, &bin, &disasm, &sites);
        assert_eq!(reply.cache, CacheDisposition::Hit, "second run must hit");
        assert_eq!(reply.digest.as_deref(), Some(digest.as_str()));
        assert_eq!(reply.binary, first.binary, "hit must be byte-identical");
        assert_eq!(reply.stats, first.stats);
        assert_eq!(reply.mappings, first.mappings);

        let stats = client.cache_stats().unwrap();
        assert!(stats.enabled && stats.disk, "{stats:?}");
        assert_eq!(stats.stats.hits, 1, "{:?}", stats.stats);
        assert_eq!(stats.stats.misses, 1, "{:?}", stats.stats);
        assert_eq!(stats.stats.stores, 1, "{:?}", stats.stats);

        assert!(client.cache_clear().unwrap());
        let stats = client.cache_stats().unwrap();
        assert_eq!(stats.stats.mem_entries, 0, "{:?}", stats.stats);
    }

    // --max-conns 2: the daemon retires on its own after connection 2.
    let mut exited = false;
    for _ in 0..500 {
        if let Some(status) = daemon.0.try_wait().unwrap() {
            assert!(status.success(), "daemon exited with {status}");
            exited = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(exited, "daemon did not exit after --max-conns connections");
    std::fs::remove_dir_all(&dir).ok();
}
