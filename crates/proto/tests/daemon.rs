//! End-to-end tests of the real `e9patchd` daemon process: one over its
//! stdio, one over a Unix socket. Both must produce output byte-identical
//! to the in-process `Rewriter` fed the same inputs.

use e9patch::{PatchRequest, RewriteConfig, Rewriter, Template};
use e9proto::ProtoClient;

fn daemon_path() -> &'static str {
    env!("CARGO_BIN_EXE_e9patchd")
}

/// Kills the daemon on drop so a panicking test can never orphan it. An
/// orphaned daemon inherits the test runner's stdout, and any pipeline
/// reading that stream blocks on the survivor instead of seeing EOF.
#[cfg(unix)]
struct Reap(std::process::Child);

#[cfg(unix)]
impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// A synthetic workload binary, its disassembly, and its A1 jump sites.
fn workload() -> (Vec<u8>, Vec<e9x86::insn::Insn>, Vec<u64>) {
    let sb = e9synth::generate(&e9synth::Profile::tiny("daemon-test", false));
    let sites: Vec<u64> = sb
        .disasm
        .iter()
        .filter(|i| i.kind.is_jump())
        .map(|i| i.addr)
        .collect();
    assert!(!sites.is_empty());
    (sb.binary, sb.disasm, sites)
}

fn drive(client: &mut ProtoClient, bin: &[u8], disasm: &[e9x86::insn::Insn], sites: &[u64]) -> Vec<u8> {
    client.negotiate().unwrap();
    client.binary(bin).unwrap();
    for i in disasm {
        client.instruction(i.addr, i.bytes()).unwrap();
    }
    for &addr in sites {
        client.patch(addr, Template::Empty).unwrap();
    }
    let reply = client.emit().unwrap();
    assert_eq!(reply.stats.failed, 0, "{:?}", reply.stats);
    reply.binary
}

fn reference(bin: &[u8], disasm: &[e9x86::insn::Insn], sites: &[u64]) -> Vec<u8> {
    let requests: Vec<PatchRequest> = sites
        .iter()
        .map(|&addr| PatchRequest {
            addr,
            template: Template::Empty,
        })
        .collect();
    Rewriter::new(RewriteConfig::default())
        .rewrite(bin, disasm, &requests, &[])
        .unwrap()
        .binary
}

#[test]
fn stdio_daemon_matches_in_process() {
    let (bin, disasm, sites) = workload();
    let mut client = ProtoClient::spawn(std::path::Path::new(daemon_path())).unwrap();
    let via = drive(&mut client, &bin, &disasm, &sites);
    assert_eq!(via, reference(&bin, &disasm, &sites));
}

#[cfg(unix)]
#[test]
fn unix_socket_daemon_matches_in_process_and_shuts_down() {
    let dir = std::env::temp_dir().join(format!("e9patchd-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("e9.sock");

    let mut daemon = Reap(
        std::process::Command::new(daemon_path())
            .arg("--socket")
            .arg(&sock)
            .spawn()
            .unwrap(),
    );
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let (bin, disasm, sites) = workload();
    let mut client = ProtoClient::connect_unix(&sock).unwrap();
    let via = drive(&mut client, &bin, &disasm, &sites);
    assert_eq!(via, reference(&bin, &disasm, &sites));

    // In-band shutdown must bring the whole daemon down cleanly.
    client.shutdown().unwrap();
    drop(client);
    let mut ok = false;
    for _ in 0..500 {
        if let Some(status) = daemon.0.try_wait().unwrap() {
            assert!(status.success(), "daemon exited with {status}");
            ok = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(ok, "daemon did not exit after shutdown");
    assert!(!sock.exists(), "socket file not cleaned up");
    std::fs::remove_dir_all(&dir).ok();
}

/// A client dying mid-`patch` batch (disconnect with half a request line
/// on the wire) must not take the daemon with it: a second client on the
/// same socket completes the same job and gets byte-identical output.
#[cfg(unix)]
#[test]
fn client_killed_mid_batch_does_not_poison_the_daemon() {
    use std::io::Write;

    let dir = std::env::temp_dir().join(format!("e9patchd-midbatch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("e9.sock");

    let mut daemon = Reap(
        std::process::Command::new(daemon_path())
            .arg("--socket")
            .arg(&sock)
            .arg("--timeout-ms")
            .arg("5000")
            .spawn()
            .unwrap(),
    );

    let (bin, disasm, sites) = workload();

    // First client: raw stream, so the cut can land mid-line. Send the
    // session preamble plus half of a patch request, then vanish.
    {
        let mut raw = ProtoClient::connect_unix_retry(&sock, 8).unwrap();
        raw.negotiate().unwrap();
        raw.binary(&bin).unwrap();
        for i in &disasm {
            raw.instruction(i.addr, i.bytes()).unwrap();
        }
        raw.patch(sites[0], Template::Empty).unwrap();
    }
    {
        // And once more at the byte level: half a request line, no newline,
        // then drop the stream (simulates SIGKILL between write and flush).
        let mut stream = std::os::unix::net::UnixStream::connect(&sock).unwrap();
        let line = "{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"version\",\"params\"";
        stream.write_all(line.as_bytes()).unwrap();
        stream.flush().unwrap();
        // Dropped here: mid-line disconnect.
    }

    // Second client: the daemon must still serve a full job correctly.
    let mut client = ProtoClient::connect_unix_retry(&sock, 8).unwrap();
    let via = drive(&mut client, &bin, &disasm, &sites);
    assert_eq!(via, reference(&bin, &disasm, &sites));

    client.shutdown().unwrap();
    drop(client);
    for _ in 0..500 {
        if daemon.0.try_wait().unwrap().is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        daemon.0.try_wait().unwrap().is_some(),
        "daemon did not exit after shutdown"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Oversized request lines get a typed LIMIT error from the real daemon
/// binary, and the session keeps working afterwards.
#[cfg(unix)]
#[test]
fn daemon_rejects_oversized_lines_in_band() {
    use std::io::{BufRead, BufReader, Write};

    let dir = std::env::temp_dir().join(format!("e9patchd-maxline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("e9.sock");

    let mut daemon = Reap(
        std::process::Command::new(daemon_path())
            .arg("--socket")
            .arg(&sock)
            .args(["--max-line-bytes", "4096", "--max-conns", "1"])
            .spawn()
            .unwrap(),
    );

    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut stream = std::os::unix::net::UnixStream::connect(&sock).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let big = format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"{}\"}}\n",
        "x".repeat(8192)
    );
    stream.write_all(big.as_bytes()).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("-5"), "expected LIMIT error: {line}");

    // Same connection still serves well-formed requests.
    stream
        .write_all(b"{\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"version\",\"params\":{\"version\":1}}\n")
        .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"id\":2"), "{line}");
    assert!(line.contains("result"), "{line}");

    drop(stream);
    drop(reader);
    let _ = daemon.0.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_mismatch_is_rejected() {
    use e9proto::msg::{code, Command};
    let mut client = ProtoClient::spawn(std::path::Path::new(daemon_path())).unwrap();
    let err = client.call(Command::Version { version: 999 }).unwrap_err();
    match err {
        e9proto::ClientError::Rpc(e) => assert_eq!(e.code, code::VERSION),
        other => panic!("expected version error, got {other:?}"),
    }
}
