//! End-to-end tests of the real `e9patchd` daemon process: one over its
//! stdio, one over a Unix socket. Both must produce output byte-identical
//! to the in-process `Rewriter` fed the same inputs.

use e9patch::{PatchRequest, RewriteConfig, Rewriter, Template};
use e9proto::ProtoClient;

fn daemon_path() -> &'static str {
    env!("CARGO_BIN_EXE_e9patchd")
}

/// A synthetic workload binary, its disassembly, and its A1 jump sites.
fn workload() -> (Vec<u8>, Vec<e9x86::insn::Insn>, Vec<u64>) {
    let sb = e9synth::generate(&e9synth::Profile::tiny("daemon-test", false));
    let sites: Vec<u64> = sb
        .disasm
        .iter()
        .filter(|i| i.kind.is_jump())
        .map(|i| i.addr)
        .collect();
    assert!(!sites.is_empty());
    (sb.binary, sb.disasm, sites)
}

fn drive(client: &mut ProtoClient, bin: &[u8], disasm: &[e9x86::insn::Insn], sites: &[u64]) -> Vec<u8> {
    client.negotiate().unwrap();
    client.binary(bin).unwrap();
    for i in disasm {
        client.instruction(i.addr, i.bytes()).unwrap();
    }
    for &addr in sites {
        client.patch(addr, Template::Empty).unwrap();
    }
    let reply = client.emit().unwrap();
    assert_eq!(reply.stats.failed, 0, "{:?}", reply.stats);
    reply.binary
}

fn reference(bin: &[u8], disasm: &[e9x86::insn::Insn], sites: &[u64]) -> Vec<u8> {
    let requests: Vec<PatchRequest> = sites
        .iter()
        .map(|&addr| PatchRequest {
            addr,
            template: Template::Empty,
        })
        .collect();
    Rewriter::new(RewriteConfig::default())
        .rewrite(bin, disasm, &requests, &[])
        .unwrap()
        .binary
}

#[test]
fn stdio_daemon_matches_in_process() {
    let (bin, disasm, sites) = workload();
    let mut client = ProtoClient::spawn(std::path::Path::new(daemon_path())).unwrap();
    let via = drive(&mut client, &bin, &disasm, &sites);
    assert_eq!(via, reference(&bin, &disasm, &sites));
}

#[cfg(unix)]
#[test]
fn unix_socket_daemon_matches_in_process_and_shuts_down() {
    let dir = std::env::temp_dir().join(format!("e9patchd-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("e9.sock");

    let mut daemon = std::process::Command::new(daemon_path())
        .arg("--socket")
        .arg(&sock)
        .spawn()
        .unwrap();
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let (bin, disasm, sites) = workload();
    let mut client = ProtoClient::connect_unix(&sock).unwrap();
    let via = drive(&mut client, &bin, &disasm, &sites);
    assert_eq!(via, reference(&bin, &disasm, &sites));

    // In-band shutdown must bring the whole daemon down cleanly.
    client.shutdown().unwrap();
    drop(client);
    let mut ok = false;
    for _ in 0..500 {
        if let Some(status) = daemon.try_wait().unwrap() {
            assert!(status.success(), "daemon exited with {status}");
            ok = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    if !ok {
        daemon.kill().ok();
        panic!("daemon did not exit after shutdown");
    }
    assert!(!sock.exists(), "socket file not cleaned up");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_mismatch_is_rejected() {
    use e9proto::msg::{code, Command};
    let mut client = ProtoClient::spawn(std::path::Path::new(daemon_path())).unwrap();
    let err = client.call(Command::Version { version: 999 }).unwrap_err();
    match err {
        e9proto::ClientError::Rpc(e) => assert_eq!(e.code, code::VERSION),
        other => panic!("expected version error, got {other:?}"),
    }
}
