//! Hand-rolled JSON value type, parser and canonical serializer.
//!
//! The protocol layer ([`crate::msg`]) needs exactly three things from a
//! JSON implementation, none of which require a registry dependency:
//!
//! 1. a **canonical serializer** — no whitespace, insertion-ordered object
//!    members, a fixed escape policy — so that `serialize ∘ parse` is the
//!    identity on canonical text and protocol messages can be compared
//!    byte-for-byte (the determinism gate relies on this);
//! 2. a **robust parser** — truncation, bad escapes, bad numbers, depth
//!    bombs and trailing garbage are all [`JsonError`]s, never panics;
//! 3. **u64-exact integers** — trampoline and site addresses use the full
//!    64-bit range, so numbers are kept as `i128` internally instead of
//!    being squeezed through `f64`.
//!
//! Floats are accepted by the parser (the grammar is full JSON) but the
//! protocol itself only ever emits integers, strings, booleans and nulls.

use std::fmt;

/// Maximum nesting depth the parser accepts before reporting
/// [`JsonError::TooDeep`] — bounds stack use against `[[[[…` bombs.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object members keep insertion order so that the
/// serializer is deterministic and `serialize(parse(s)) == s` for canonical
/// input `s`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer. `i128` covers the full `u64` and `i64` ranges losslessly.
    Int(i128),
    /// A non-integer number. Finite by construction (the parser rejects
    /// overflowing literals).
    Float(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup (first match) on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Canonical serialization: minimal whitespace-free text.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest-roundtrip Display; re-parsing yields
                    // the same f64.
                    let s = f.to_string();
                    out.push_str(&s);
                    // `1.0f64.to_string()` is "1": keep it a float literal
                    // so the value re-parses into the Float variant.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// The canonical escape policy: `"` `\` and ASCII control characters only;
/// everything else (including non-ASCII UTF-8) passes through verbatim.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Input ended inside a value.
    Truncated,
    /// An unexpected byte at `offset`.
    Unexpected(usize, u8),
    /// A malformed `\` escape at `offset`.
    BadEscape(usize),
    /// A malformed or non-finite number literal at `offset`.
    BadNumber(usize),
    /// A malformed `\uXXXX` (or unpaired surrogate) at `offset`.
    BadUnicode(usize),
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// Valid value followed by more non-whitespace input at `offset`.
    TrailingGarbage(usize),
    /// Input is not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Truncated => write!(f, "truncated JSON input"),
            JsonError::Unexpected(o, b) => {
                write!(f, "unexpected byte {b:#04x} at offset {o}")
            }
            JsonError::BadEscape(o) => write!(f, "bad escape at offset {o}"),
            JsonError::BadNumber(o) => write!(f, "bad number at offset {o}"),
            JsonError::BadUnicode(o) => write!(f, "bad \\u escape at offset {o}"),
            JsonError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH}"),
            JsonError::TrailingGarbage(o) => {
                write!(f, "trailing garbage at offset {o}")
            }
            JsonError::BadUtf8 => write!(f, "input is not valid UTF-8"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value from `input`; the whole slice must be
/// consumed (bar surrounding ASCII whitespace).
///
/// # Errors
///
/// Any malformation is a [`JsonError`]; the parser never panics, whatever
/// the input.
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    // Validate UTF-8 once up front so string slicing below is safe.
    let text = std::str::from_utf8(input).map_err(|_| JsonError::BadUtf8)?;
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::TrailingGarbage(p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            Some(got) => Err(JsonError::Unexpected(self.pos, got)),
            None => Err(JsonError::Truncated),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        let end = self.pos + word.len();
        if end > self.bytes.len() {
            return Err(JsonError::Truncated);
        }
        if &self.bytes[self.pos..end] != word.as_bytes() {
            return Err(JsonError::Unexpected(self.pos, self.bytes[self.pos]));
        }
        self.pos = end;
        Ok(v)
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            None => Err(JsonError::Truncated),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(JsonError::Unexpected(self.pos, b)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                Some(b) => return Err(JsonError::Unexpected(self.pos, b)),
                None => return Err(JsonError::Truncated),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                Some(b) => return Err(JsonError::Unexpected(self.pos, b)),
                None => return Err(JsonError::Truncated),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::Truncated),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        None => return Err(JsonError::Truncated),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape(start)?;
                            out.push(c);
                            continue; // pos already advanced
                        }
                        Some(_) => return Err(JsonError::BadEscape(start)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    // Raw control characters are invalid inside strings.
                    return Err(JsonError::Unexpected(self.pos, b));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input was validated).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or(JsonError::Truncated)?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (and a low surrogate pair if
    /// needed); `self.pos` is on the first hex digit.
    fn unicode_escape(&mut self, start: usize) -> Result<char, JsonError> {
        let hi = self.hex4(start)?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.peek() != Some(b'\\') {
                return Err(JsonError::BadUnicode(start));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(JsonError::BadUnicode(start));
            }
            self.pos += 1;
            let lo = self.hex4(start)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(JsonError::BadUnicode(start));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(c).ok_or(JsonError::BadUnicode(start))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(JsonError::BadUnicode(start)) // unpaired low surrogate
        } else {
            char::from_u32(hi).ok_or(JsonError::BadUnicode(start))
        }
    }

    fn hex4(&mut self, start: usize) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::Truncated);
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bytes[self.pos];
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(JsonError::BadUnicode(start)),
            };
            v = (v << 4) | d as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: JSON forbids leading zeros.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            Some(_) | None => return Err(JsonError::BadNumber(start)),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(JsonError::BadNumber(start)); // leading zero
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::BadNumber(start));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::BadNumber(start));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = unsafe { std::str::from_utf8_unchecked(&self.bytes[start..self.pos]) };
        if is_float {
            let f: f64 = text.parse().map_err(|_| JsonError::BadNumber(start))?;
            if !f.is_finite() {
                return Err(JsonError::BadNumber(start)); // 1e999 etc.
            }
            Ok(Json::Float(f))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| JsonError::BadNumber(start))
        }
    }
}

/// Convenience: build an object from `(key, value)` pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) {
        let v = parse(s.as_bytes()).unwrap();
        assert_eq!(v.serialize(), s, "canonical text must round-trip");
    }

    #[test]
    fn canonical_roundtrips() {
        roundtrip("null");
        roundtrip("true");
        roundtrip("[1,2,3]");
        roundtrip(r#"{"a":1,"b":[false,"x"],"c":{}}"#);
        roundtrip(r#""line\nbreak\t\"quoted\" \\""#);
        roundtrip("18446744073709551615"); // u64::MAX survives exactly
        roundtrip("-9223372036854775808");
        roundtrip("1.5");
    }

    #[test]
    fn whitespace_and_unicode_parse() {
        let v = parse(b" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.serialize(), r#"{"k":[1,2]}"#);
        let v = parse("\"héllo\"".as_bytes()).unwrap();
        assert_eq!(v, Json::Str("héllo".into()));
        // Surrogate pair: 😀 U+1F600.
        let v = parse(br#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("😀".into()));
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = parse(br#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.serialize(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn u64_addresses_survive() {
        let addr = u64::MAX - 7;
        let v = parse(addr.to_string().as_bytes()).unwrap();
        assert_eq!(v.as_u64(), Some(addr));
    }

    #[test]
    fn truncation_is_an_error() {
        let full = r#"{"method":"patch","params":{"addr":4198400}}"#;
        for cut in 0..full.len() {
            assert!(
                parse(full[..cut].as_bytes()).is_err(),
                "prefix of length {cut} unexpectedly parsed"
            );
        }
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            &b"{"[..],
            b"[1,",
            b"\"ab",
            b"\"\\x\"",
            b"\"\\u12\"",
            b"\"\\ud800\"",      // unpaired high surrogate
            b"\"\\ude00\"",      // unpaired low surrogate
            b"01",               // leading zero
            b"1.",               // missing fraction digits
            b"1e",               // missing exponent digits
            b"1e999",            // non-finite
            b"nul",
            b"[1] x",            // trailing garbage
            b"{\"a\" 1}",        // missing colon
            b"\xff\xfe",         // invalid UTF-8
            b"\"raw\x01ctl\"",   // raw control char in string
        ] {
            assert!(parse(bad).is_err(), "{bad:?} unexpectedly parsed");
        }
    }

    #[test]
    fn depth_bomb_is_bounded() {
        let bomb = "[".repeat(100_000);
        assert_eq!(parse(bomb.as_bytes()), Err(JsonError::TooDeep));
        let nested_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(nested_ok.as_bytes()).is_ok());
    }

    #[test]
    fn float_forms() {
        assert_eq!(parse(b"2.5e3").unwrap(), Json::Float(2500.0));
        assert_eq!(parse(b"-0.125").unwrap(), Json::Float(-0.125));
        // Floats that print integral keep a float marker.
        assert_eq!(Json::Float(1.0).serialize(), "1.0");
        assert_eq!(Json::Float(f64::NAN).serialize(), "null");
    }
}
