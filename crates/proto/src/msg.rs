//! Typed protocol messages: the paper's patch-command set as line-delimited
//! JSON-RPC requests and responses.
//!
//! The original E9Patch frontend/backend split (§2, §6) streams commands —
//! `binary`, `option`, `reserve`, `instruction`, `patch`, `emit` — from any
//! frontend to the rewriter backend. This module defines the wire grammar:
//!
//! ```text
//! request  := {"jsonrpc":"2.0","id":N,"method":M,"params":{...}} "\n"
//! response := {"jsonrpc":"2.0","id":N,"result":{...}} "\n"
//!           | {"jsonrpc":"2.0","id":N|null,"error":{"code":C,"message":S}} "\n"
//! ```
//!
//! Binary payloads (ELF images, instruction bytes, extra-segment contents,
//! replacement code) travel as lowercase hex strings. Addresses are JSON
//! integers (the codec is `u64`-exact; see [`crate::json`]).
//!
//! Every message type round-trips `encode → parse → decode` losslessly and
//! — because the serializer is canonical — byte-identically, which the
//! `codec_props` suite checks for arbitrary messages.

use crate::json::{obj, Json};
use e9patch::{PatchStats, SiteReport, SizeStats, TacticKind, Template};
use std::fmt;

/// The protocol version this crate speaks. Negotiated by the mandatory
/// leading `version` request; mismatches are rejected with
/// [`code::VERSION`].
pub const PROTOCOL_VERSION: u64 = 1;

/// JSON-RPC and application error codes.
pub mod code {
    /// Malformed JSON (unparsable request line).
    pub const PARSE: i64 = -32700;
    /// Structurally invalid request envelope.
    pub const INVALID_REQUEST: i64 = -32600;
    /// Unknown method name.
    pub const METHOD_NOT_FOUND: i64 = -32601;
    /// Parameters missing or of the wrong type.
    pub const INVALID_PARAMS: i64 = -32602;
    /// Command arrived in the wrong session state (e.g. `patch` before
    /// `binary`).
    pub const STATE: i64 = -1;
    /// The rewrite itself failed (duplicate patch, unknown instruction,
    /// malformed ELF, ...).
    pub const REWRITE: i64 = -2;
    /// Unsupported protocol version.
    pub const VERSION: i64 = -3;
    /// Instruction bytes did not decode (or decoded to a different length).
    pub const DECODE: i64 = -4;
    /// A per-session resource quota was exceeded (request line too long,
    /// too many patches/instructions, binary too big, ...). The offending
    /// command is rejected; the session itself stays serviceable.
    pub const LIMIT: i64 = -5;
    /// The server recovered from an internal fault while handling the
    /// command (panic isolation). The session survives; the command did
    /// not take effect.
    pub const INTERNAL: i64 = -6;
    /// The server is over its admission or pending-byte budget and shed
    /// this request (or this whole connection) instead of stalling. The
    /// command did not take effect; retry against a less loaded server.
    pub const BUSY: i64 = -7;
}

/// Lowercase hex encoding for binary payloads.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`hex_encode`]; accepts upper- and lowercase digits.
///
/// # Errors
///
/// Odd length or non-hex characters.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if s.len() % 2 != 0 {
        return Err(format!("odd hex length {}", s.len()));
    }
    let bytes = s.as_bytes();
    let nib = |b: u8| -> Result<u8, String> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(format!("bad hex byte {b:#04x}")),
        }
    };
    (0..s.len() / 2)
        .map(|i| Ok((nib(bytes[2 * i])? << 4) | nib(bytes[2 * i + 1])?))
        .collect()
}

/// One patch-protocol command (the `method` + `params` of a request).
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Protocol-version negotiation; must be the session's first command.
    Version {
        /// Version the client speaks.
        version: u64,
    },
    /// Deliver the input binary image.
    Binary {
        /// Raw ELF bytes.
        bytes: Vec<u8>,
        /// Optional client-computed tree digest of `bytes`
        /// (`e9cache::tree::tree_digest`). The server *verifies* it once
        /// at intake — never trusts it blindly (a forged digest would
        /// poison the shared cache for every other client) — and then
        /// reuses it for every emit in the session, so the binary is
        /// hashed exactly once end to end instead of once per request.
        digest: Option<e9cache::Digest>,
    },
    /// Set one rewriter option (`t1`/`t2`/`t3`/`b0`/`grouping` =
    /// `true|false`, `granularity` = integer ≥ 1, `alloc` = `low|high`).
    Option {
        /// Option name.
        name: String,
        /// Option value, as text.
        value: String,
    },
    /// Reserve an address range with contents (an instrumentation-runtime
    /// segment the frontend wants in the output).
    Reserve {
        /// Virtual load address.
        vaddr: u64,
        /// Segment contents.
        bytes: Vec<u8>,
        /// Executable?
        exec: bool,
        /// Writable?
        write: bool,
    },
    /// Declare one instruction of disassembly info (address + raw bytes;
    /// the backend re-decodes — locations and sizes are a tool *input*,
    /// paper §2.2).
    Instruction {
        /// Instruction address.
        addr: u64,
        /// The instruction's exact bytes.
        bytes: Vec<u8>,
    },
    /// Request a patch at `addr`. Buffered server-side until `emit` so the
    /// planner sees the whole batch and S1 reverse-order semantics hold.
    Patch {
        /// Patch-location address (must match a declared instruction).
        addr: u64,
        /// Trampoline payload.
        template: Template,
    },
    /// Plan a symbol-driven hook batch server-side (`e9hook`): resolve
    /// the spec against the session's binary and buffered disassembly,
    /// and buffer the resulting reserve/patch batch exactly as if the
    /// client had streamed it. Must arrive after `binary` and the
    /// `instruction` stream; a following `emit` runs the rewrite. Because
    /// planning is deterministic, the buffered batch — and therefore the
    /// emitted binary and its cache key — is byte-identical to a client
    /// planning the same spec locally.
    Hook {
        /// Function name patterns (exact or glob).
        funcs: Vec<String>,
        /// Explicit entry addresses (stripped-binary fallback).
        addrs: Vec<u64>,
        /// Build call-original thunks.
        call_original: bool,
        /// Payload body.
        payload: e9hook::PayloadKind,
    },
    /// Run the rewrite over everything buffered and return the patched
    /// binary plus statistics.
    Emit,
    /// Query or manage the server's rewrite cache (PR 5). Allowed in any
    /// session state — it touches no per-session rewrite state.
    Cache {
        /// What to do.
        action: CacheAction,
    },
    /// Report per-subsystem daemon health (serving mode, cache tiers and
    /// breaker, shed counters, fault injection). Allowed in any session
    /// state, including before `version` — an operator probing a wedged
    /// or mid-upgrade daemon must not need a handshake first.
    Health,
    /// Ask the server to stop accepting connections (daemon) or end the
    /// session (stdio).
    Shutdown,
}

/// Actions of the `cache` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Return counters and tier occupancy.
    Stats,
    /// Drop every entry from both tiers.
    Clear,
}

impl CacheAction {
    /// The wire name of the action.
    pub fn name(self) -> &'static str {
        match self {
            CacheAction::Stats => "stats",
            CacheAction::Clear => "clear",
        }
    }

    /// Inverse of [`name`](CacheAction::name).
    pub fn from_name(s: &str) -> Option<CacheAction> {
        Some(match s {
            "stats" => CacheAction::Stats,
            "clear" => CacheAction::Clear,
            _ => return None,
        })
    }
}

impl Command {
    /// The wire method name.
    pub fn method(&self) -> &'static str {
        match self {
            Command::Version { .. } => "version",
            Command::Binary { .. } => "binary",
            Command::Option { .. } => "option",
            Command::Reserve { .. } => "reserve",
            Command::Instruction { .. } => "instruction",
            Command::Patch { .. } => "patch",
            Command::Hook { .. } => "hook",
            Command::Emit => "emit",
            Command::Cache { .. } => "cache",
            Command::Health => "health",
            Command::Shutdown => "shutdown",
        }
    }

    /// The full canonical-JSON form, `{"method":M,"params":{...}}`.
    ///
    /// This is what the cache key derivation (`crate::cachekey`) hashes:
    /// reusing the wire codec means the in-process e9tool path and a
    /// daemon session derive byte-identical key material from the same
    /// logical batch.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("method", Json::Str(self.method().into())),
            ("params", self.params()),
        ])
    }

    fn params(&self) -> Json {
        match self {
            Command::Version { version } => obj(vec![("version", Json::Int(*version as i128))]),
            Command::Binary { bytes, digest } => {
                let mut fields = vec![("bytes", Json::Str(hex_encode(bytes)))];
                if let Some(d) = digest {
                    fields.push(("digest", Json::Str(e9cache::sha256::hex(d))));
                }
                obj(fields)
            }
            Command::Option { name, value } => obj(vec![
                ("name", Json::Str(name.clone())),
                ("value", Json::Str(value.clone())),
            ]),
            Command::Reserve {
                vaddr,
                bytes,
                exec,
                write,
            } => obj(vec![
                ("vaddr", Json::Int(*vaddr as i128)),
                ("bytes", Json::Str(hex_encode(bytes))),
                ("exec", Json::Bool(*exec)),
                ("write", Json::Bool(*write)),
            ]),
            Command::Instruction { addr, bytes } => obj(vec![
                ("addr", Json::Int(*addr as i128)),
                ("bytes", Json::Str(hex_encode(bytes))),
            ]),
            Command::Patch { addr, template } => obj(vec![
                ("addr", Json::Int(*addr as i128)),
                ("template", template_to_json(template)),
            ]),
            Command::Hook {
                funcs,
                addrs,
                call_original,
                payload,
            } => obj(vec![
                (
                    "funcs",
                    Json::Arr(funcs.iter().map(|f| Json::Str(f.clone())).collect()),
                ),
                (
                    "addrs",
                    Json::Arr(addrs.iter().map(|&a| Json::Int(a as i128)).collect()),
                ),
                ("call_original", Json::Bool(*call_original)),
                ("payload", payload_to_json(payload)),
            ]),
            Command::Cache { action } => obj(vec![("action", Json::Str(action.name().into()))]),
            Command::Emit | Command::Health | Command::Shutdown => Json::Obj(Vec::new()),
        }
    }
}

/// Hook payloads on the wire: `{"kind":K, ...}`.
fn payload_to_json(p: &e9hook::PayloadKind) -> Json {
    match p {
        e9hook::PayloadKind::Counter => obj(vec![("kind", Json::Str("counter".into()))]),
        e9hook::PayloadKind::Nop => obj(vec![("kind", Json::Str("nop".into()))]),
        e9hook::PayloadKind::Raw(code) => obj(vec![
            ("kind", Json::Str("raw".into())),
            ("code", Json::Str(hex_encode(code))),
        ]),
    }
}

fn payload_from_json(v: &Json) -> Result<e9hook::PayloadKind, RpcError> {
    let bad = |m: &str| RpcError::invalid_params(format!("payload: {m}"));
    match v.get("kind").and_then(Json::as_str) {
        Some("counter") => Ok(e9hook::PayloadKind::Counter),
        Some("nop") => Ok(e9hook::PayloadKind::Nop),
        Some("raw") => v
            .get("code")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing code"))
            .and_then(|s| hex_decode(s).map_err(|e| bad(&e)))
            .map(e9hook::PayloadKind::Raw),
        Some(other) => Err(bad(&format!("unknown kind {other:?}"))),
        None => Err(bad("missing kind")),
    }
}

/// Trampoline templates on the wire: `{"kind":K, ...}`.
fn template_to_json(t: &Template) -> Json {
    match t {
        Template::Empty => obj(vec![("kind", Json::Str("empty".into()))]),
        Template::Counter { counter_addr } => obj(vec![
            ("kind", Json::Str("counter".into())),
            ("counter_addr", Json::Int(*counter_addr as i128)),
        ]),
        Template::CheckCall { func_addr } => obj(vec![
            ("kind", Json::Str("checkcall".into())),
            ("func_addr", Json::Int(*func_addr as i128)),
        ]),
        Template::HookCall { func_addr } => obj(vec![
            ("kind", Json::Str("hookcall".into())),
            ("func_addr", Json::Int(*func_addr as i128)),
        ]),
        Template::HookSave { func_addr } => obj(vec![
            ("kind", Json::Str("hooksave".into())),
            ("func_addr", Json::Int(*func_addr as i128)),
        ]),
        Template::HookOriginal {
            func_addr,
            thunk_addr,
        } => obj(vec![
            ("kind", Json::Str("hookoriginal".into())),
            ("func_addr", Json::Int(*func_addr as i128)),
            ("thunk_addr", Json::Int(*thunk_addr as i128)),
        ]),
        Template::Replace { code, resume } => obj(vec![
            ("kind", Json::Str("replace".into())),
            ("code", Json::Str(hex_encode(code))),
            (
                "resume",
                match resume {
                    Some(a) => Json::Int(*a as i128),
                    None => Json::Null,
                },
            ),
        ]),
    }
}

fn template_from_json(v: &Json) -> Result<Template, RpcError> {
    let bad = |m: &str| RpcError::invalid_params(format!("template: {m}"));
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing kind"))?;
    let addr_field = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(&format!("missing {name}")))
    };
    match kind {
        "empty" => Ok(Template::Empty),
        "counter" => Ok(Template::Counter {
            counter_addr: addr_field("counter_addr")?,
        }),
        "checkcall" => Ok(Template::CheckCall {
            func_addr: addr_field("func_addr")?,
        }),
        "hookcall" => Ok(Template::HookCall {
            func_addr: addr_field("func_addr")?,
        }),
        "hooksave" => Ok(Template::HookSave {
            func_addr: addr_field("func_addr")?,
        }),
        "hookoriginal" => Ok(Template::HookOriginal {
            func_addr: addr_field("func_addr")?,
            thunk_addr: addr_field("thunk_addr")?,
        }),
        "replace" => {
            let code = v
                .get("code")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing code"))
                .and_then(|s| hex_decode(s).map_err(|e| bad(&e)))?;
            let resume = match v.get("resume") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.as_u64().ok_or_else(|| bad("bad resume"))?),
            };
            Ok(Template::Replace { code, resume })
        }
        other => Err(bad(&format!("unknown kind {other:?}"))),
    }
}

/// A request envelope: an id plus a [`Command`].
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The command.
    pub cmd: Command,
}

impl Request {
    /// Serialize to one canonical JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        obj(vec![
            ("jsonrpc", Json::Str("2.0".into())),
            ("id", Json::Int(self.id as i128)),
            ("method", Json::Str(self.cmd.method().into())),
            ("params", self.cmd.params()),
        ])
        .serialize()
    }

    /// Decode a parsed JSON value into a typed request.
    ///
    /// # Errors
    ///
    /// [`code::INVALID_REQUEST`] for a broken envelope,
    /// [`code::METHOD_NOT_FOUND`] for an unknown method and
    /// [`code::INVALID_PARAMS`] for missing or mistyped parameters.
    pub fn decode(v: &Json) -> Result<Request, RpcError> {
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| RpcError::new(code::INVALID_REQUEST, "missing integer id"))?;
        let method = v
            .get("method")
            .and_then(Json::as_str)
            .ok_or_else(|| RpcError::new(code::INVALID_REQUEST, "missing method"))?;
        let empty = Json::Obj(Vec::new());
        let p = v.get("params").unwrap_or(&empty);
        let missing = |name: &str| RpcError::invalid_params(format!("missing {name}"));
        let hex_field = |name: &str| -> Result<Vec<u8>, RpcError> {
            p.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| missing(name))
                .and_then(|s| hex_decode(s).map_err(RpcError::invalid_params))
        };
        let u64_field = |name: &str| p.get(name).and_then(Json::as_u64).ok_or_else(|| missing(name));
        let bool_field = |name: &str| p.get(name).and_then(Json::as_bool).ok_or_else(|| missing(name));
        let cmd = match method {
            "version" => Command::Version {
                version: u64_field("version")?,
            },
            "binary" => Command::Binary {
                bytes: hex_field("bytes")?,
                digest: match p.get("digest") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(s)) => Some(e9cache::sha256::from_hex(s).ok_or_else(
                        || RpcError::invalid_params("digest: expected 64 hex chars"),
                    )?),
                    Some(_) => {
                        return Err(RpcError::invalid_params("digest: expected a string"))
                    }
                },
            },
            "option" => Command::Option {
                name: p
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("name"))?
                    .to_string(),
                value: p
                    .get("value")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("value"))?
                    .to_string(),
            },
            "reserve" => Command::Reserve {
                vaddr: u64_field("vaddr")?,
                bytes: hex_field("bytes")?,
                exec: bool_field("exec")?,
                write: bool_field("write")?,
            },
            "instruction" => Command::Instruction {
                addr: u64_field("addr")?,
                bytes: hex_field("bytes")?,
            },
            "patch" => Command::Patch {
                addr: u64_field("addr")?,
                template: template_from_json(
                    p.get("template").ok_or_else(|| missing("template"))?,
                )?,
            },
            "hook" => {
                let str_arr = |name: &str| -> Result<Vec<String>, RpcError> {
                    p.get(name)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| missing(name))?
                        .iter()
                        .map(|j| {
                            j.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| RpcError::invalid_params(format!("{name}: expected strings")))
                        })
                        .collect()
                };
                let u64_arr = |name: &str| -> Result<Vec<u64>, RpcError> {
                    p.get(name)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| missing(name))?
                        .iter()
                        .map(|j| {
                            j.as_u64().ok_or_else(|| {
                                RpcError::invalid_params(format!("{name}: expected integers"))
                            })
                        })
                        .collect()
                };
                Command::Hook {
                    funcs: str_arr("funcs")?,
                    addrs: u64_arr("addrs")?,
                    call_original: bool_field("call_original")?,
                    payload: payload_from_json(
                        p.get("payload").ok_or_else(|| missing("payload"))?,
                    )?,
                }
            }
            "emit" => Command::Emit,
            "cache" => Command::Cache {
                action: p
                    .get("action")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("action"))
                    .and_then(|s| {
                        CacheAction::from_name(s).ok_or_else(|| {
                            RpcError::invalid_params(format!("unknown cache action {s:?}"))
                        })
                    })?,
            },
            "health" => Command::Health,
            "shutdown" => Command::Shutdown,
            other => {
                return Err(RpcError::new(
                    code::METHOD_NOT_FOUND,
                    format!("unknown method {other:?}"),
                ))
            }
        };
        Ok(Request { id, cmd })
    }
}

/// A protocol-level error (the `error` member of a response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcError {
    /// One of the [`code`] constants.
    pub code: i64,
    /// Human-readable description.
    pub message: String,
}

impl RpcError {
    /// An error with `code` and `message`.
    pub fn new<S: Into<String>>(code: i64, message: S) -> RpcError {
        RpcError {
            code,
            message: message.into(),
        }
    }

    /// An [`code::INVALID_PARAMS`] error.
    pub fn invalid_params<S: Into<String>>(message: S) -> RpcError {
        RpcError::new(code::INVALID_PARAMS, message)
    }

    /// An [`code::STATE`] error.
    pub fn state<S: Into<String>>(message: S) -> RpcError {
        RpcError::new(code::STATE, message)
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rpc error {}: {}", self.code, self.message)
    }
}

impl std::error::Error for RpcError {}

/// A response envelope: the echoed id plus result-or-error.
///
/// `id` is `None` when the request line could not be parsed at all
/// (JSON-RPC's `"id":null` convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id; `None` → `null` (parse errors).
    pub id: Option<u64>,
    /// Result payload or error.
    pub body: Result<Json, RpcError>,
}

impl Response {
    /// A success response.
    pub fn ok(id: u64, result: Json) -> Response {
        Response {
            id: Some(id),
            body: Ok(result),
        }
    }

    /// An error response.
    pub fn err(id: Option<u64>, e: RpcError) -> Response {
        Response { id, body: Err(e) }
    }

    /// Serialize to one canonical JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let id = match self.id {
            Some(n) => Json::Int(n as i128),
            None => Json::Null,
        };
        let mut members = vec![("jsonrpc", Json::Str("2.0".into())), ("id", id)];
        match &self.body {
            Ok(result) => members.push(("result", result.clone())),
            Err(e) => members.push((
                "error",
                obj(vec![
                    ("code", Json::Int(e.code as i128)),
                    ("message", Json::Str(e.message.clone())),
                ]),
            )),
        }
        obj(members).serialize()
    }

    /// Decode a parsed JSON value into a typed response.
    ///
    /// # Errors
    ///
    /// Returns a string description when the envelope is malformed.
    pub fn decode(v: &Json) -> Result<Response, String> {
        let id = match v.get("id") {
            Some(Json::Null) | None => None,
            Some(j) => Some(j.as_u64().ok_or("non-integer response id")?),
        };
        if let Some(e) = v.get("error") {
            let code = match e.get("code") {
                Some(Json::Int(c)) => *c as i64,
                _ => return Err("error without integer code".into()),
            };
            let message = e
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            return Ok(Response {
                id,
                body: Err(RpcError { code, message }),
            });
        }
        let result = v.get("result").ok_or("response with neither result nor error")?;
        Ok(Response {
            id,
            body: Ok(result.clone()),
        })
    }
}

// ---- typed emit reply ---------------------------------------------------

/// One loader mapping in an [`EmitReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMapping {
    /// Virtual destination address.
    pub vaddr: u64,
    /// File offset of the merged physical block.
    pub file_off: u64,
    /// Length in bytes.
    pub len: u64,
}

/// How the rewrite cache participated in an `emit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheDisposition {
    /// No cache configured.
    #[default]
    Off,
    /// Served from the cache — the reply bytes were NOT recomputed.
    Hit,
    /// Computed cold and stored for next time.
    Miss,
    /// A cache was configured but the input was below the bypass
    /// threshold: computed cold, nothing keyed, nothing stored.
    Bypass,
}

impl CacheDisposition {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            CacheDisposition::Off => "off",
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Bypass => "bypass",
        }
    }

    /// Inverse of [`name`](CacheDisposition::name).
    pub fn from_name(s: &str) -> Option<CacheDisposition> {
        Some(match s {
            "off" => CacheDisposition::Off,
            "hit" => CacheDisposition::Hit,
            "miss" => CacheDisposition::Miss,
            "bypass" => CacheDisposition::Bypass,
            _ => return None,
        })
    }
}

/// The fully-typed payload of a successful `emit` response: the patched
/// binary plus everything [`e9patch::RewriteOutput`] reports.
#[derive(Debug, Clone, PartialEq)]
pub struct EmitReply {
    /// The patched output binary.
    pub binary: Vec<u8>,
    /// Tactic outcome counters.
    pub stats: PatchStats,
    /// File-size / mapping statistics.
    pub size: SizeStats,
    /// Virtual address of the injected loader.
    pub loader_addr: u64,
    /// Number of B0 trap registrations.
    pub trap_count: u64,
    /// Per-site outcome reports, in processing order.
    pub reports: Vec<SiteReport>,
    /// The loader's mapping table.
    pub mappings: Vec<WireMapping>,
    /// Whether this reply came from the rewrite cache.
    ///
    /// *Not* part of the cached payload semantics: the server overrides
    /// it per-response, and the cache key covers only rewrite inputs.
    pub cache: CacheDisposition,
    /// Hex cache key of the request, when a cache was consulted.
    pub digest: Option<String>,
}

fn tactic_name(t: TacticKind) -> &'static str {
    match t {
        TacticKind::B0 => "B0",
        TacticKind::B1 => "B1",
        TacticKind::B2 => "B2",
        TacticKind::T1 => "T1",
        TacticKind::T2 => "T2",
        TacticKind::T3 => "T3",
    }
}

fn tactic_from_name(s: &str) -> Option<TacticKind> {
    Some(match s {
        "B0" => TacticKind::B0,
        "B1" => TacticKind::B1,
        "B2" => TacticKind::B2,
        "T1" => TacticKind::T1,
        "T2" => TacticKind::T2,
        "T3" => TacticKind::T3,
        _ => return None,
    })
}

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::Int(n as i128),
        None => Json::Null,
    }
}

impl EmitReply {
    /// Serialize to the `result` object of an `emit` response.
    pub fn to_json(&self) -> Json {
        let s = &self.stats;
        let z = &self.size;
        obj(vec![
            ("binary", Json::Str(hex_encode(&self.binary))),
            (
                "stats",
                obj(vec![
                    ("b1", Json::Int(s.b1 as i128)),
                    ("b2", Json::Int(s.b2 as i128)),
                    ("t1", Json::Int(s.t1 as i128)),
                    ("t2", Json::Int(s.t2 as i128)),
                    ("t3", Json::Int(s.t3 as i128)),
                    ("b0", Json::Int(s.b0 as i128)),
                    ("failed", Json::Int(s.failed as i128)),
                ]),
            ),
            (
                "size",
                obj(vec![
                    ("input_bytes", Json::Int(z.input_bytes as i128)),
                    ("output_bytes", Json::Int(z.output_bytes as i128)),
                    ("virtual_blocks", Json::Int(z.virtual_blocks as i128)),
                    ("physical_blocks", Json::Int(z.physical_blocks as i128)),
                    ("mappings", Json::Int(z.mappings as i128)),
                    ("granularity", Json::Int(z.granularity as i128)),
                ]),
            ),
            ("loader_addr", Json::Int(self.loader_addr as i128)),
            ("trap_count", Json::Int(self.trap_count as i128)),
            (
                "reports",
                Json::Arr(
                    self.reports
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("addr", Json::Int(r.addr as i128)),
                                ("insn_len", Json::Int(r.insn_len as i128)),
                                (
                                    "tactic",
                                    match r.tactic {
                                        Some(t) => Json::Str(tactic_name(t).into()),
                                        None => Json::Null,
                                    },
                                ),
                                ("trampoline", opt_u64(r.trampoline)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "mappings",
                Json::Arr(
                    self.mappings
                        .iter()
                        .map(|m| {
                            obj(vec![
                                ("vaddr", Json::Int(m.vaddr as i128)),
                                ("file_off", Json::Int(m.file_off as i128)),
                                ("len", Json::Int(m.len as i128)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cache", Json::Str(self.cache.name().into())),
            (
                "digest",
                match &self.digest {
                    Some(d) => Json::Str(d.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Decode the `result` object of an `emit` response.
    ///
    /// # Errors
    ///
    /// A string description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<EmitReply, String> {
        let u = |o: &Json, name: &str| -> Result<u64, String> {
            o.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("emit reply: missing {name}"))
        };
        let binary = v
            .get("binary")
            .and_then(Json::as_str)
            .ok_or("emit reply: missing binary")
            .map_err(String::from)
            .and_then(|s| hex_decode(s))?;
        let s = v.get("stats").ok_or("emit reply: missing stats")?;
        let stats = PatchStats {
            b1: u(s, "b1")? as usize,
            b2: u(s, "b2")? as usize,
            t1: u(s, "t1")? as usize,
            t2: u(s, "t2")? as usize,
            t3: u(s, "t3")? as usize,
            b0: u(s, "b0")? as usize,
            failed: u(s, "failed")? as usize,
        };
        let z = v.get("size").ok_or("emit reply: missing size")?;
        let size = SizeStats {
            input_bytes: u(z, "input_bytes")?,
            output_bytes: u(z, "output_bytes")?,
            virtual_blocks: u(z, "virtual_blocks")?,
            physical_blocks: u(z, "physical_blocks")?,
            mappings: u(z, "mappings")?,
            granularity: u(z, "granularity")?,
        };
        let mut reports = Vec::new();
        for r in v
            .get("reports")
            .and_then(Json::as_arr)
            .ok_or("emit reply: missing reports")?
        {
            let tactic = match r.get("tactic") {
                Some(Json::Str(name)) => Some(
                    tactic_from_name(name).ok_or_else(|| format!("bad tactic {name:?}"))?,
                ),
                Some(Json::Null) | None => None,
                Some(_) => return Err("bad tactic field".into()),
            };
            let trampoline = match r.get("trampoline") {
                Some(Json::Null) | None => None,
                Some(j) => Some(j.as_u64().ok_or("bad trampoline field")?),
            };
            reports.push(SiteReport {
                addr: u(r, "addr")?,
                insn_len: u(r, "insn_len")? as u8,
                tactic,
                trampoline,
            });
        }
        let mut mappings = Vec::new();
        for m in v
            .get("mappings")
            .and_then(Json::as_arr)
            .ok_or("emit reply: missing mappings")?
        {
            mappings.push(WireMapping {
                vaddr: u(m, "vaddr")?,
                file_off: u(m, "file_off")?,
                len: u(m, "len")?,
            });
        }
        // Cache fields are absent from pre-cache replies (and from the
        // stored payload form, which predates the disposition override).
        let cache = match v.get("cache") {
            Some(Json::Str(name)) => CacheDisposition::from_name(name)
                .ok_or_else(|| format!("bad cache disposition {name:?}"))?,
            Some(Json::Null) | None => CacheDisposition::Off,
            Some(_) => return Err("bad cache field".into()),
        };
        let digest = match v.get("digest") {
            Some(Json::Str(d)) => Some(d.clone()),
            Some(Json::Null) | None => None,
            Some(_) => return Err("bad digest field".into()),
        };
        Ok(EmitReply {
            binary,
            stats,
            size,
            loader_addr: u(v, "loader_addr")?,
            trap_count: u(v, "trap_count")?,
            reports,
            mappings,
            cache,
            digest,
        })
    }

    /// Serialize to the compact binary form the rewrite cache stores.
    ///
    /// The canonical-JSON form hex-encodes the patched binary (2 bytes
    /// per byte plus framing) and costs a full JSON parse on every warm
    /// hit; this codec stores the artifact verbatim — the payload is
    /// within ~1% of the binary's own size and a hit decodes with a
    /// handful of bounds checks. Fixed little-endian framing, fully
    /// length-checked on decode. The per-response `cache`/`digest` fields
    /// are deliberately NOT encoded: the server stamps them on each
    /// reply, they are not part of the cached artifact.
    pub fn encode_bin(&self) -> Vec<u8> {
        fn put(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let mut out = Vec::with_capacity(
            1 + 8 + self.binary.len()
                + 15 * 8
                + 8 + self.reports.len() * 19
                + 8 + self.mappings.len() * 24,
        );
        out.push(EMIT_BIN_VERSION);
        put(&mut out, self.binary.len() as u64);
        out.extend_from_slice(&self.binary);
        let s = &self.stats;
        for v in [s.b1, s.b2, s.t1, s.t2, s.t3, s.b0, s.failed] {
            put(&mut out, v as u64);
        }
        let z = &self.size;
        for v in [
            z.input_bytes,
            z.output_bytes,
            z.virtual_blocks,
            z.physical_blocks,
            z.mappings,
            z.granularity,
        ] {
            put(&mut out, v);
        }
        put(&mut out, self.loader_addr);
        put(&mut out, self.trap_count);
        put(&mut out, self.reports.len() as u64);
        for r in &self.reports {
            put(&mut out, r.addr);
            out.push(r.insn_len);
            out.push(match r.tactic {
                None => 0,
                Some(t) => tactic_code(t),
            });
            match r.trampoline {
                None => out.push(0),
                Some(addr) => {
                    out.push(1);
                    put(&mut out, addr);
                }
            }
        }
        put(&mut out, self.mappings.len() as u64);
        for m in &self.mappings {
            put(&mut out, m.vaddr);
            put(&mut out, m.file_off);
            put(&mut out, m.len);
        }
        out
    }

    /// Decode the compact binary form ([`encode_bin`](EmitReply::encode_bin)).
    /// `cache` comes back [`CacheDisposition::Off`] and `digest` `None` —
    /// the server stamps both per response.
    ///
    /// # Errors
    ///
    /// A string description of the first malformed field; cache payloads
    /// are integrity-checked by the store, so an error here means encoder
    /// and decoder disagree and the caller recomputes cold.
    pub fn decode_bin(raw: &[u8]) -> Result<EmitReply, String> {
        let mut r = BinReader { raw, pos: 0 };
        let version = r.u8()?;
        if version != EMIT_BIN_VERSION {
            return Err(format!("emit reply: unknown binary codec version {version}"));
        }
        let binary = r.bytes_with_len()?;
        let stats = PatchStats {
            b1: r.u64()? as usize,
            b2: r.u64()? as usize,
            t1: r.u64()? as usize,
            t2: r.u64()? as usize,
            t3: r.u64()? as usize,
            b0: r.u64()? as usize,
            failed: r.u64()? as usize,
        };
        let size = SizeStats {
            input_bytes: r.u64()?,
            output_bytes: r.u64()?,
            virtual_blocks: r.u64()?,
            physical_blocks: r.u64()?,
            mappings: r.u64()?,
            granularity: r.u64()?,
        };
        let loader_addr = r.u64()?;
        let trap_count = r.u64()?;
        let n_reports = r.count()?;
        let mut reports = Vec::with_capacity(n_reports);
        for _ in 0..n_reports {
            let addr = r.u64()?;
            let insn_len = r.u8()?;
            let tactic = match r.u8()? {
                0 => None,
                code => Some(tactic_from_code(code).ok_or("emit reply: bad tactic code")?),
            };
            let trampoline = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return Err("emit reply: bad trampoline flag".into()),
            };
            reports.push(SiteReport {
                addr,
                insn_len,
                tactic,
                trampoline,
            });
        }
        let n_mappings = r.count()?;
        let mut mappings = Vec::with_capacity(n_mappings);
        for _ in 0..n_mappings {
            mappings.push(WireMapping {
                vaddr: r.u64()?,
                file_off: r.u64()?,
                len: r.u64()?,
            });
        }
        if r.pos != raw.len() {
            return Err("emit reply: trailing bytes".into());
        }
        Ok(EmitReply {
            binary,
            stats,
            size,
            loader_addr,
            trap_count,
            reports,
            mappings,
            cache: CacheDisposition::Off,
            digest: None,
        })
    }
}

/// Version byte of the compact binary emit-reply codec.
const EMIT_BIN_VERSION: u8 = 1;

fn tactic_code(t: TacticKind) -> u8 {
    match t {
        TacticKind::B0 => 1,
        TacticKind::B1 => 2,
        TacticKind::B2 => 3,
        TacticKind::T1 => 4,
        TacticKind::T2 => 5,
        TacticKind::T3 => 6,
    }
}

fn tactic_from_code(code: u8) -> Option<TacticKind> {
    Some(match code {
        1 => TacticKind::B0,
        2 => TacticKind::B1,
        3 => TacticKind::B2,
        4 => TacticKind::T1,
        5 => TacticKind::T2,
        6 => TacticKind::T3,
        _ => return None,
    })
}

/// Bounds-checked little-endian reader for the binary emit-reply codec.
struct BinReader<'a> {
    raw: &'a [u8],
    pos: usize,
}

impl BinReader<'_> {
    fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .raw
            .get(self.pos)
            .ok_or("emit reply: truncated (u8)")?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.raw.len())
            .ok_or("emit reply: truncated (u64)")?;
        let v = u64::from_le_bytes(self.raw[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }

    /// A collection count, sanity-bounded by the remaining bytes so a
    /// corrupt count cannot drive a huge `Vec::with_capacity`.
    fn count(&mut self) -> Result<usize, String> {
        let n = self.u64()? as usize;
        if n > self.raw.len() - self.pos {
            return Err("emit reply: count exceeds remaining bytes".into());
        }
        Ok(n)
    }

    fn bytes_with_len(&mut self) -> Result<Vec<u8>, String> {
        let len = self.u64()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.raw.len())
            .ok_or("emit reply: truncated (bytes)")?;
        let out = self.raw[self.pos..end].to_vec();
        self.pos = end;
        Ok(out)
    }
}

// ---- typed hook reply ----------------------------------------------------

/// The fully-typed payload of a successful `hook` response: the planned
/// hook records (the same data the manifest segment will carry) plus the
/// runtime addresses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HookReply {
    /// Planned hooks in function-address order (dense ids from 0).
    pub hooks: Vec<e9hook::HookRecord>,
    /// Base of the counter-cell table (counter payloads only).
    pub counters_addr: Option<u64>,
    /// Address of the manifest segment.
    pub manifest_addr: u64,
}

impl HookReply {
    /// Serialize to the `result` object of a `hook` response.
    pub fn to_json(&self) -> Json {
        obj(vec![
            (
                "hooks",
                Json::Arr(
                    self.hooks
                        .iter()
                        .map(|h| {
                            obj(vec![
                                ("id", Json::Int(h.id as i128)),
                                ("flags", Json::Int(h.flags as i128)),
                                ("func_addr", Json::Int(h.func_addr as i128)),
                                ("payload_addr", Json::Int(h.payload_addr as i128)),
                                ("thunk_addr", Json::Int(h.thunk_addr as i128)),
                                ("counter_addr", Json::Int(h.counter_addr as i128)),
                                ("name", Json::Str(h.name.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("counters_addr", opt_u64(self.counters_addr)),
            ("manifest_addr", Json::Int(self.manifest_addr as i128)),
        ])
    }

    /// Decode the `result` object of a `hook` response.
    ///
    /// # Errors
    ///
    /// A string description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<HookReply, String> {
        let u = |o: &Json, name: &str| -> Result<u64, String> {
            o.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("hook reply: missing {name}"))
        };
        let mut hooks = Vec::new();
        for h in v
            .get("hooks")
            .and_then(Json::as_arr)
            .ok_or("hook reply: missing hooks")?
        {
            hooks.push(e9hook::HookRecord {
                id: u(h, "id")? as u32,
                flags: u(h, "flags")? as u32,
                func_addr: u(h, "func_addr")?,
                payload_addr: u(h, "payload_addr")?,
                thunk_addr: u(h, "thunk_addr")?,
                counter_addr: u(h, "counter_addr")?,
                name: h
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("hook reply: missing name")?
                    .to_string(),
            });
        }
        let counters_addr = match v.get("counters_addr") {
            Some(Json::Null) | None => None,
            Some(j) => Some(j.as_u64().ok_or("hook reply: bad counters_addr")?),
        };
        Ok(HookReply {
            hooks,
            counters_addr,
            manifest_addr: u(v, "manifest_addr")?,
        })
    }
}

// ---- typed cache-stats reply --------------------------------------------

/// The fully-typed payload of a successful `cache stats` response: a
/// snapshot of the server's [`e9cache::CacheStats`] plus whether a cache
/// is configured at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsReply {
    /// Whether the server has a cache at all (`false` → counters are 0).
    pub enabled: bool,
    /// Whether a disk tier is configured.
    pub disk: bool,
    /// Counter snapshot.
    pub stats: e9cache::CacheStats,
}

impl CacheStatsReply {
    /// Serialize to the `result` object of a `cache stats` response.
    pub fn to_json(&self) -> Json {
        let s = &self.stats;
        obj(vec![
            ("enabled", Json::Bool(self.enabled)),
            ("disk", Json::Bool(self.disk)),
            ("hits", Json::Int(s.hits as i128)),
            ("mem_hits", Json::Int(s.mem_hits as i128)),
            ("disk_hits", Json::Int(s.disk_hits as i128)),
            ("negative_hits", Json::Int(s.negative_hits as i128)),
            ("misses", Json::Int(s.misses as i128)),
            ("stores", Json::Int(s.stores as i128)),
            ("mem_evictions", Json::Int(s.mem_evictions as i128)),
            ("disk_evictions", Json::Int(s.disk_evictions as i128)),
            ("verify_failures", Json::Int(s.verify_failures as i128)),
            ("errors", Json::Int(s.errors as i128)),
            ("mem_entries", Json::Int(s.mem_entries as i128)),
            ("mem_bytes", Json::Int(s.mem_bytes as i128)),
            ("bypasses", Json::Int(s.bypasses as i128)),
            ("bypass_threshold", Json::Int(s.bypass_threshold as i128)),
            ("disk_breaker_open", Json::Bool(s.disk_breaker_open)),
            ("disk_breaker_trips", Json::Int(s.disk_breaker_trips as i128)),
            (
                "disk_breaker_fast_fails",
                Json::Int(s.disk_breaker_fast_fails as i128),
            ),
            ("disk_breaker_probes", Json::Int(s.disk_breaker_probes as i128)),
            (
                "disk_breaker_recoveries",
                Json::Int(s.disk_breaker_recoveries as i128),
            ),
        ])
    }

    /// Decode the `result` object of a `cache stats` response.
    ///
    /// # Errors
    ///
    /// A string description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<CacheStatsReply, String> {
        let u = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("cache stats: missing {name}"))
        };
        let b = |name: &str| -> Result<bool, String> {
            v.get(name)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("cache stats: missing {name}"))
        };
        Ok(CacheStatsReply {
            enabled: b("enabled")?,
            disk: b("disk")?,
            stats: e9cache::CacheStats {
                hits: u("hits")?,
                mem_hits: u("mem_hits")?,
                disk_hits: u("disk_hits")?,
                negative_hits: u("negative_hits")?,
                misses: u("misses")?,
                stores: u("stores")?,
                mem_evictions: u("mem_evictions")?,
                disk_evictions: u("disk_evictions")?,
                verify_failures: u("verify_failures")?,
                errors: u("errors")?,
                mem_entries: u("mem_entries")?,
                mem_bytes: u("mem_bytes")?,
                // Tolerant: absent on pre-bypass servers.
                bypasses: v.get("bypasses").and_then(Json::as_u64).unwrap_or(0),
                bypass_threshold: v
                    .get("bypass_threshold")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                // Tolerant: absent on pre-breaker servers.
                disk_breaker_open: v
                    .get("disk_breaker_open")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                disk_breaker_trips: v
                    .get("disk_breaker_trips")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                disk_breaker_fast_fails: v
                    .get("disk_breaker_fast_fails")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                disk_breaker_probes: v
                    .get("disk_breaker_probes")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                disk_breaker_recoveries: v
                    .get("disk_breaker_recoveries")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            },
        })
    }
}

// ---- typed health reply --------------------------------------------------

/// The fully-typed payload of a successful `health` response: which
/// serving core is running, how much load it has shed, whether fault
/// injection is active, and the cache/breaker snapshot. This is the
/// operator's one-call view of every degradation the daemon can be in.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthReply {
    /// Which serving core answered: `stdio`, `threaded`, `reactor`, or
    /// `in-process` (no daemon at all).
    pub serving_mode: String,
    /// Connections refused at accept time (admission control).
    pub shed_admission: u64,
    /// Requests rejected with `BUSY` after admission.
    pub shed_busy: u64,
    /// Whether `e9failpt` fault injection is compiled-in *and* active.
    pub faults_enabled: bool,
    /// The active failpoint spec (empty when injection is inactive).
    pub fault_spec: String,
    /// Total faults injected since activation.
    pub faults_injected: u64,
    /// Cache + disk-breaker snapshot (same shape as `cache stats`).
    pub cache: CacheStatsReply,
}

impl HealthReply {
    /// Serialize to the `result` object of a `health` response.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("cache", self.cache.to_json()),
            (
                "faults",
                obj(vec![
                    ("enabled", Json::Bool(self.faults_enabled)),
                    ("injected", Json::Int(self.faults_injected as i128)),
                    ("spec", Json::Str(self.fault_spec.clone())),
                ]),
            ),
            ("serving_mode", Json::Str(self.serving_mode.clone())),
            (
                "shed",
                obj(vec![
                    ("admission", Json::Int(self.shed_admission as i128)),
                    ("busy", Json::Int(self.shed_busy as i128)),
                ]),
            ),
        ])
    }

    /// Decode the `result` object of a `health` response. Tolerant in
    /// the same way as [`CacheStatsReply::from_json`]: unknown servers
    /// may omit sections, which decode to their zero values — but a
    /// malformed `cache` section is an error.
    ///
    /// # Errors
    ///
    /// A string description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<HealthReply, String> {
        let cache = match v.get("cache") {
            Some(c) => CacheStatsReply::from_json(c)?,
            None => CacheStatsReply::default(),
        };
        let shed = v.get("shed");
        let faults = v.get("faults");
        let sub_u64 = |section: Option<&Json>, name: &str| {
            section
                .and_then(|s| s.get(name))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        Ok(HealthReply {
            serving_mode: v
                .get("serving_mode")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            shed_admission: sub_u64(shed, "admission"),
            shed_busy: sub_u64(shed, "busy"),
            faults_enabled: faults
                .and_then(|f| f.get("enabled"))
                .and_then(Json::as_bool)
                .unwrap_or(false),
            fault_spec: faults
                .and_then(|f| f.get("spec"))
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            faults_injected: sub_u64(faults, "injected"),
            cache,
        })
    }

    /// One-line human summary, in the `CacheStats::summary` style.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "health: serving {}, shed {} admission + {} busy, faults {}",
            self.serving_mode,
            self.shed_admission,
            self.shed_busy,
            if self.faults_enabled {
                format!("on ({} injected, spec {:?})", self.faults_injected, self.fault_spec)
            } else {
                "off".to_string()
            },
        );
        if self.cache.enabled {
            line.push_str("; ");
            line.push_str(&self.cache.stats.summary());
        } else {
            line.push_str("; cache: disabled");
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn hex_roundtrip() {
        let data = [0x00u8, 0x7f, 0x80, 0xff, 0xde, 0xad];
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert_eq!(hex_decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn request_roundtrip_all_methods() {
        let cmds = vec![
            Command::Version { version: 1 },
            Command::Binary {
                bytes: vec![0x7f, b'E', b'L', b'F'],
                digest: None,
            },
            Command::Binary {
                bytes: vec![0x7f, b'E', b'L', b'F'],
                digest: Some(e9cache::digest(b"roundtrip")),
            },
            Command::Option {
                name: "granularity".into(),
                value: "8".into(),
            },
            Command::Reserve {
                vaddr: 0x3000_0000,
                bytes: vec![0; 16],
                exec: false,
                write: true,
            },
            Command::Instruction {
                addr: u64::MAX - 4096,
                bytes: vec![0x48, 0x89, 0x03],
            },
            Command::Patch {
                addr: 0x401000,
                template: Template::Counter {
                    counter_addr: 0x30000000,
                },
            },
            Command::Patch {
                addr: 0x401003,
                template: Template::Replace {
                    code: vec![0x90, 0x90],
                    resume: Some(0x401010),
                },
            },
            Command::Emit,
            Command::Shutdown,
        ];
        for (i, cmd) in cmds.into_iter().enumerate() {
            let req = Request { id: i as u64, cmd };
            let line = req.encode();
            let back = Request::decode(&parse(line.as_bytes()).unwrap()).unwrap();
            assert_eq!(back, req);
            assert_eq!(back.encode(), line, "canonical encoding must be stable");
        }
    }

    #[test]
    fn hook_command_and_templates_roundtrip() {
        let cmds = vec![
            Command::Hook {
                funcs: vec!["f*".into(), "main".into()],
                addrs: vec![0x401000, u64::MAX - 1],
                call_original: true,
                payload: e9hook::PayloadKind::Counter,
            },
            Command::Hook {
                funcs: vec![],
                addrs: vec![0x401000],
                call_original: false,
                payload: e9hook::PayloadKind::Raw(vec![0x90, 0xC3]),
            },
            Command::Hook {
                funcs: vec!["g".into()],
                addrs: vec![],
                call_original: false,
                payload: e9hook::PayloadKind::Nop,
            },
            Command::Patch {
                addr: 0x401000,
                template: Template::HookSave {
                    func_addr: 0x70000000,
                },
            },
            Command::Patch {
                addr: 0x401000,
                template: Template::HookOriginal {
                    func_addr: 0x70000000,
                    thunk_addr: 0x70000040,
                },
            },
        ];
        for (i, cmd) in cmds.into_iter().enumerate() {
            let req = Request { id: i as u64, cmd };
            let line = req.encode();
            let back = Request::decode(&parse(line.as_bytes()).unwrap()).unwrap();
            assert_eq!(back, req);
            assert_eq!(back.encode(), line, "canonical encoding must be stable");
        }
        let bad = Request::decode(
            &parse(br#"{"id":1,"method":"hook","params":{"funcs":["f"],"addrs":[],"call_original":false,"payload":{"kind":"defrag"}}}"#)
                .unwrap(),
        )
        .unwrap_err();
        assert_eq!(bad.code, code::INVALID_PARAMS);
    }

    #[test]
    fn hook_reply_roundtrip() {
        let reply = HookReply {
            hooks: vec![
                e9hook::HookRecord {
                    id: 0,
                    flags: 0,
                    func_addr: 0x401000,
                    payload_addr: 0x70000000,
                    thunk_addr: 0,
                    counter_addr: 0x70100000,
                    name: "f0000".into(),
                },
                e9hook::HookRecord {
                    id: 1,
                    flags: e9hook::FLAG_CALL_ORIGINAL,
                    func_addr: 0x401100,
                    payload_addr: 0x70000020,
                    thunk_addr: 0x70000040,
                    counter_addr: 0x70100008,
                    name: "f0001".into(),
                },
            ],
            counters_addr: Some(0x70100000),
            manifest_addr: 0x70200000,
        };
        let text = reply.to_json().serialize();
        let back = HookReply::from_json(&parse(text.as_bytes()).unwrap()).unwrap();
        assert_eq!(back, reply);
        // No counters: null round-trips to None.
        let none = HookReply {
            counters_addr: None,
            ..reply
        };
        let text = none.to_json().serialize();
        assert_eq!(
            HookReply::from_json(&parse(text.as_bytes()).unwrap()).unwrap(),
            none
        );
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::ok(7, obj(vec![("version", Json::Int(1))])),
            Response::err(Some(9), RpcError::state("binary not loaded")),
            Response::err(None, RpcError::new(code::PARSE, "bad json")),
        ] {
            let line = resp.encode();
            let back = Response::decode(&parse(line.as_bytes()).unwrap()).unwrap();
            assert_eq!(back, resp);
            assert_eq!(back.encode(), line);
        }
    }

    #[test]
    fn decode_rejects_malformed_envelopes() {
        let bad = |s: &str| Request::decode(&parse(s.as_bytes()).unwrap()).unwrap_err();
        assert_eq!(bad(r#"{"method":"emit"}"#).code, code::INVALID_REQUEST);
        assert_eq!(bad(r#"{"id":1}"#).code, code::INVALID_REQUEST);
        assert_eq!(bad(r#"{"id":1,"method":"nope"}"#).code, code::METHOD_NOT_FOUND);
        assert_eq!(
            bad(r#"{"id":1,"method":"patch","params":{}}"#).code,
            code::INVALID_PARAMS
        );
        assert_eq!(
            bad(r#"{"id":1,"method":"binary","params":{"bytes":"xyz"}}"#).code,
            code::INVALID_PARAMS
        );
    }

    #[test]
    fn emit_reply_roundtrip() {
        let reply = EmitReply {
            binary: vec![1, 2, 3, 4, 5],
            stats: PatchStats {
                b1: 1,
                b2: 2,
                t1: 3,
                t2: 0,
                t3: 1,
                b0: 0,
                failed: 1,
            },
            size: SizeStats {
                input_bytes: 4096,
                output_bytes: 8192,
                virtual_blocks: 3,
                physical_blocks: 1,
                mappings: 3,
                granularity: 1,
            },
            loader_addr: 0x7000_0000,
            trap_count: 0,
            reports: vec![
                SiteReport {
                    addr: 0x401000,
                    insn_len: 3,
                    tactic: Some(TacticKind::T2),
                    trampoline: Some(0x68000000),
                },
                SiteReport {
                    addr: 0x401003,
                    insn_len: 4,
                    tactic: None,
                    trampoline: None,
                },
            ],
            mappings: vec![WireMapping {
                vaddr: 0x68000000,
                file_off: 0x2000,
                len: 4096,
            }],
            cache: CacheDisposition::Hit,
            digest: Some("ab".repeat(32)),
        };
        let v = reply.to_json();
        let text = v.serialize();
        let back = EmitReply::from_json(&parse(text.as_bytes()).unwrap()).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn emit_reply_without_cache_fields_decodes_as_off() {
        // Pre-cache replies (and the stored payload form) omit the
        // disposition fields; they must decode, not error.
        let reply = EmitReply {
            binary: vec![1],
            stats: PatchStats::default(),
            size: SizeStats::default(),
            loader_addr: 0,
            trap_count: 0,
            reports: vec![],
            mappings: vec![],
            cache: CacheDisposition::Off,
            digest: None,
        };
        let mut v = reply.to_json();
        if let Json::Obj(members) = &mut v {
            members.retain(|(k, _)| k != "cache" && k != "digest");
        }
        let back = EmitReply::from_json(&v).unwrap();
        assert_eq!(back.cache, CacheDisposition::Off);
        assert_eq!(back.digest, None);
    }

    #[test]
    fn cache_command_roundtrip() {
        for action in [CacheAction::Stats, CacheAction::Clear] {
            let req = Request {
                id: 1,
                cmd: Command::Cache { action },
            };
            let line = req.encode();
            let back = Request::decode(&parse(line.as_bytes()).unwrap()).unwrap();
            assert_eq!(back, req);
        }
        let bad = Request::decode(
            &parse(br#"{"id":1,"method":"cache","params":{"action":"defrag"}}"#).unwrap(),
        )
        .unwrap_err();
        assert_eq!(bad.code, code::INVALID_PARAMS);
    }

    #[test]
    fn cache_stats_reply_roundtrip() {
        let reply = CacheStatsReply {
            enabled: true,
            disk: true,
            stats: e9cache::CacheStats {
                hits: 5,
                mem_hits: 3,
                disk_hits: 2,
                negative_hits: 1,
                misses: 7,
                stores: 7,
                mem_evictions: 1,
                disk_evictions: 2,
                verify_failures: 1,
                errors: 0,
                mem_entries: 4,
                mem_bytes: 4096,
                bypasses: 3,
                bypass_threshold: 128 << 10,
                disk_breaker_open: true,
                disk_breaker_trips: 2,
                disk_breaker_fast_fails: 9,
                disk_breaker_probes: 3,
                disk_breaker_recoveries: 1,
            },
        };
        let text = reply.to_json().serialize();
        let back = CacheStatsReply::from_json(&parse(text.as_bytes()).unwrap()).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn cache_stats_reply_tolerates_pre_breaker_servers() {
        let text = CacheStatsReply {
            enabled: true,
            disk: true,
            ..CacheStatsReply::default()
        }
        .to_json()
        .serialize();
        // Strip the breaker fields as an old server would omit them.
        let v = parse(text.as_bytes()).unwrap();
        let Json::Obj(fields) = v else { panic!() };
        let pruned = Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| !k.starts_with("disk_breaker"))
                .collect(),
        );
        let back = CacheStatsReply::from_json(&pruned).unwrap();
        assert!(!back.stats.disk_breaker_open);
        assert_eq!(back.stats.disk_breaker_trips, 0);
    }

    #[test]
    fn health_reply_roundtrip() {
        let reply = HealthReply {
            serving_mode: "reactor".into(),
            shed_admission: 4,
            shed_busy: 17,
            faults_enabled: true,
            fault_spec: "cache.disk.stage=enospc@first:4".into(),
            faults_injected: 4,
            cache: CacheStatsReply {
                enabled: true,
                disk: true,
                stats: e9cache::CacheStats {
                    hits: 2,
                    disk_breaker_open: true,
                    disk_breaker_trips: 1,
                    ..e9cache::CacheStats::default()
                },
            },
        };
        let text = reply.to_json().serialize();
        let back = HealthReply::from_json(&parse(text.as_bytes()).unwrap()).unwrap();
        assert_eq!(back, reply);
        let line = reply.summary();
        assert!(line.contains("serving reactor"), "{line}");
        assert!(line.contains("breaker open"), "{line}");

        // An empty result (hypothetical minimal server) decodes to zeros.
        let minimal = HealthReply::from_json(&parse(b"{}").unwrap()).unwrap();
        assert_eq!(minimal.serving_mode, "unknown");
        assert!(!minimal.faults_enabled);
    }

    #[test]
    fn health_request_roundtrip_and_empty_params() {
        let req = Request {
            id: 9,
            cmd: Command::Health,
        };
        let text = req.encode();
        assert!(text.contains("\"method\":\"health\""), "{text}");
        let back = Request::decode(&parse(text.as_bytes()).unwrap()).unwrap();
        assert_eq!(back, req);
    }
}
