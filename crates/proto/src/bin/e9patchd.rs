//! `e9patchd` — the standalone patch-backend daemon.
//!
//! Serves the streaming JSON-RPC patch protocol (see the `e9proto` crate
//! docs) so external frontends can drive the rewriter without linking it:
//!
//! ```console
//! $ e9patchd --stdio                      # one session on stdin/stdout
//! $ e9patchd --socket /tmp/e9.sock        # daemon on a Unix socket
//! $ e9patchd --listen-tcp 127.0.0.1:9990  # daemon on TCP
//! $ e9patchd --socket /tmp/e9.sock --max-conns 1   # serve one job, exit
//! ```
//!
//! ## Serving modes
//!
//! The socket modes default to the **reactor**: one `e9loop` epoll event
//! loop multiplexing every connection (thousands of concurrent sessions,
//! request pipelining, admission control, graceful drain). Replies are
//! byte-identical to the legacy thread-per-connection server, which
//! remains available behind `--threaded`. `--socket` and `--listen-tcp`
//! can be combined (one loop serves both); `--threaded` supports only
//! `--socket`.
//!
//! A client `shutdown` command stops the daemon cleanly: the listeners
//! close immediately (late connections are refused, never hung) while
//! in-flight work finishes and its replies are flushed. `--max-conns N`
//! drains after `N` accepted connections (handy for CI smoke stages).
//!
//! ## Overload: the BUSY contract
//!
//! Under the reactor the daemon never stalls on an overloaded or hostile
//! client; it sheds load with a typed `BUSY` (-7) error, `id: null`:
//!
//! * arrivals past `--max-clients` get one BUSY line, then close;
//! * requests arriving while queued replies exceed `--max-pending-bytes`
//!   are answered BUSY instead of dispatched;
//! * a client that stops reading its replies is disconnected once its
//!   queue passes the per-connection cap.
//!
//! Hardening knobs (all have safe defaults):
//!
//! * `--timeout-ms N` — idle timeout in milliseconds (default 30000; `0`
//!   disables): a connection with no bytes moving either way for that
//!   long is dropped. (In `--threaded` mode this is the per-read socket
//!   timeout, as before.)
//! * `--max-line-bytes N` — longest accepted request line (default
//!   67108864 = 64 MiB). Longer lines are drained and answered with a
//!   typed `LIMIT` error; the connection survives.
//! * `--jobs N` — default planner worker count for every session (the
//!   parallel sharded pipeline; output is byte-identical for every N).
//!   A client's explicit `option jobs` overrides it.
//! * `--drain-ms N` — on shutdown, how long an in-flight connection may
//!   sit inactive before being cut (default 5000).
//!
//! Rewrite cache (PR 5): `--cache-dir PATH` enables the two-tier
//! content-addressed cache (memory LRU in front of an on-disk CAS at
//! `PATH`), shared by every connection. `--cache-mem-bytes N` bounds (or,
//! alone, enables memory-only caching); `--cache-disk-bytes N` adds
//! size-budgeted LRU eviction of the disk tier. Clients observe hits via
//! the `cache`/`digest` fields of the `emit` reply and the `cache`
//! command (stats / clear).

use e9proto::server::ServeConfig;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "e9patchd — E9Patch backend daemon (protocol version {})

USAGE:
  e9patchd [--stdio]                        serve one session on stdio
  e9patchd --socket PATH [--max-conns N]    serve a Unix socket (reactor)
  e9patchd --listen-tcp ADDR:PORT           serve TCP (reactor; combinable
                                            with --socket, one event loop)

OPTIONS:
  --threaded            legacy thread-per-connection mode (--socket only)
  --max-clients N       reactor connection cap; extra arrivals get a typed
                        BUSY error (default 1024)
  --max-pending-bytes N reactor loop-wide queued-reply budget; requests
                        over it get BUSY instead of stalling (default
                        268435456)
  --drain-ms N          shutdown drain inactivity bound in ms (default 5000)
  --timeout-ms N        idle timeout in ms (default 30000, 0 = none)
  --max-line-bytes N    longest accepted request line (default 67108864)
  --jobs N              default planner worker count (default: sequential)
  --cache-dir PATH      enable the rewrite cache with an on-disk tier at PATH
  --cache-mem-bytes N   memory-tier budget in bytes (default 67108864;
                        without --cache-dir, enables memory-only caching)
  --cache-disk-bytes N  disk-tier budget in bytes (default: unbounded)
  --cache-bypass-bytes N  inputs below N bytes skip the cache entirely
                        (default 131072; 0 caches every size; modifier
                        only — does not enable the cache by itself)",
        e9proto::PROTOCOL_VERSION
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    // Fault injection ships in release builds but stays inert (one
    // relaxed atomic load per I/O boundary) unless E9FAILPOINTS is set.
    match e9failpt::init_from_env() {
        Ok(true) => eprintln!(
            "e9patchd: fault injection active: {}",
            e9failpt::active_spec().unwrap_or_default()
        ),
        Ok(false) => {}
        Err(e) => {
            eprintln!("e9patchd: bad {}: {e}", e9failpt::ENV_SPEC);
            return ExitCode::from(2);
        }
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut listen_tcp: Option<String> = None;
    let mut max_conns: Option<usize> = None;
    let mut stdio = false;
    let mut threaded = false;
    let mut config = ServeConfig::default();
    let mut cache_config = e9cache::CacheConfig::default();
    let mut want_cache = false;
    #[cfg(target_os = "linux")]
    let mut reactor_opts = e9proto::reactor::ReactorOptions::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--stdio" => {
                stdio = true;
                i += 1;
            }
            "--threaded" => {
                threaded = true;
                i += 1;
            }
            "--socket" if i + 1 < argv.len() => {
                socket = Some(argv[i + 1].clone());
                i += 2;
            }
            "--listen-tcp" if i + 1 < argv.len() => {
                listen_tcp = Some(argv[i + 1].clone());
                i += 2;
            }
            "--max-conns" if i + 1 < argv.len() => {
                match argv[i + 1].parse() {
                    Ok(n) => max_conns = Some(n),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            #[cfg(target_os = "linux")]
            "--max-clients" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<usize>() {
                    Ok(n) if n >= 1 => reactor_opts.max_clients = n,
                    _ => return usage(),
                }
                i += 2;
            }
            #[cfg(target_os = "linux")]
            "--max-pending-bytes" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<usize>() {
                    Ok(n) => reactor_opts.pending_budget_bytes = n,
                    Err(_) => return usage(),
                }
                i += 2;
            }
            #[cfg(target_os = "linux")]
            "--drain-ms" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<u64>() {
                    Ok(ms) => reactor_opts.drain_timeout = Duration::from_millis(ms),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--timeout-ms" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<u64>() {
                    Ok(0) => config.io_timeout = None,
                    Ok(ms) => config.io_timeout = Some(Duration::from_millis(ms)),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--max-line-bytes" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<usize>() {
                    Ok(n) if n > 0 => config.max_line_bytes = n,
                    _ => return usage(),
                }
                i += 2;
            }
            "--jobs" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<usize>() {
                    Ok(n) if n >= 1 => config.default_jobs = Some(n),
                    _ => return usage(),
                }
                i += 2;
            }
            "--cache-dir" if i + 1 < argv.len() => {
                cache_config.dir = Some(std::path::PathBuf::from(&argv[i + 1]));
                want_cache = true;
                i += 2;
            }
            "--cache-mem-bytes" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<usize>() {
                    Ok(n) => cache_config.mem_bytes = Some(n),
                    Err(_) => return usage(),
                }
                want_cache = true;
                i += 2;
            }
            "--cache-disk-bytes" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<u64>() {
                    Ok(n) => cache_config.disk_bytes = Some(n),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--cache-bypass-bytes" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<u64>() {
                    Ok(n) => cache_config.bypass_bytes = Some(n),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            _ => return usage(),
        }
    }
    let socket_mode = socket.is_some() || listen_tcp.is_some();
    if stdio && socket_mode {
        return usage();
    }
    if threaded && (listen_tcp.is_some() || socket.is_none()) {
        // The legacy mode only ever spoke Unix sockets.
        return usage();
    }
    if want_cache {
        match e9cache::Cache::open(&cache_config) {
            Ok(cache) => config.cache = Some(Arc::new(cache)),
            Err(e) => {
                eprintln!("e9patchd: cannot open cache: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = if !socket_mode {
        config.serving_mode = "stdio";
        e9proto::server::serve_stdio_with(&config)
    } else if threaded {
        #[cfg(unix)]
        {
            config.serving_mode = "threaded";
            let path = std::path::PathBuf::from(socket.expect("checked"));
            eprintln!(
                "e9patchd: listening on {} (threaded, protocol version {})",
                path.display(),
                e9proto::PROTOCOL_VERSION
            );
            e9proto::server::unix::serve_unix_with(&path, max_conns, &config)
        }
        #[cfg(not(unix))]
        {
            eprintln!("e9patchd: --socket is only supported on Unix");
            return ExitCode::from(2);
        }
    } else {
        #[cfg(target_os = "linux")]
        {
            config.serving_mode = "reactor";
            reactor_opts.accept_budget = max_conns;
            serve_reactor_mode(socket.as_deref(), listen_tcp.as_deref(), &config, &reactor_opts)
        }
        #[cfg(not(target_os = "linux"))]
        {
            eprintln!("e9patchd: socket modes need Linux (epoll); use --stdio");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("e9patchd: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Bind the requested listeners, announce them on stderr (the TCP line
/// prints the *resolved* address, so `--listen-tcp 127.0.0.1:0` callers
/// can parse the kernel-assigned port), and run the reactor.
#[cfg(target_os = "linux")]
fn serve_reactor_mode(
    socket: Option<&str>,
    listen_tcp: Option<&str>,
    config: &ServeConfig,
    opts: &e9proto::reactor::ReactorOptions,
) -> std::io::Result<()> {
    use e9loop::Listener;
    let mut listeners = Vec::new();
    let mut sock_path = None;
    if let Some(path) = socket {
        let path = std::path::PathBuf::from(path);
        let _ = std::fs::remove_file(&path);
        let l = std::os::unix::net::UnixListener::bind(&path)?;
        eprintln!(
            "e9patchd: listening on {} (reactor, protocol version {})",
            path.display(),
            e9proto::PROTOCOL_VERSION
        );
        sock_path = Some(path);
        listeners.push(Listener::Unix(l));
    }
    if let Some(addr) = listen_tcp {
        let l = std::net::TcpListener::bind(addr)?;
        let local = l.local_addr()?;
        eprintln!(
            "e9patchd: listening on tcp {local} (reactor, protocol version {})",
            e9proto::PROTOCOL_VERSION
        );
        listeners.push(Listener::Tcp(l));
    }
    let result = e9proto::reactor::serve_reactor(listeners, config, opts);
    if let Some(path) = sock_path {
        let _ = std::fs::remove_file(&path);
    }
    result.map(|_summary| ())
}
