//! `e9patchd` — the standalone patch-backend daemon.
//!
//! Serves the streaming JSON-RPC patch protocol (see the `e9proto` crate
//! docs) so external frontends can drive the rewriter without linking it:
//!
//! ```console
//! $ e9patchd --stdio                      # one session on stdin/stdout
//! $ e9patchd --socket /tmp/e9.sock        # daemon: thread per connection
//! $ e9patchd --socket /tmp/e9.sock --max-conns 1   # serve one job, exit
//! ```
//!
//! A client `shutdown` command stops the daemon cleanly; `--max-conns N`
//! exits after `N` connections (handy for CI smoke stages).
//!
//! Hardening knobs (all have safe defaults):
//!
//! * `--timeout-ms N` — per-connection socket read/write timeout in
//!   milliseconds (default 30000; `0` disables). A client that connects
//!   and stalls is dropped instead of pinning a server thread.
//! * `--max-line-bytes N` — longest accepted request line (default
//!   67108864 = 64 MiB). Longer lines are drained and answered with a
//!   typed `LIMIT` error; the connection survives.
//! * `--jobs N` — default planner worker count for every session (the
//!   parallel sharded pipeline; output is byte-identical for every N).
//!   A client's explicit `option jobs` overrides it.
//!
//! Rewrite cache (PR 5): `--cache-dir PATH` enables the two-tier
//! content-addressed cache (memory LRU in front of an on-disk CAS at
//! `PATH`), shared by every connection. `--cache-mem-bytes N` bounds (or,
//! alone, enables memory-only caching); `--cache-disk-bytes N` adds
//! size-budgeted LRU eviction of the disk tier. Clients observe hits via
//! the `cache`/`digest` fields of the `emit` reply and the `cache`
//! command (stats / clear).

use e9proto::server::ServeConfig;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "e9patchd — E9Patch backend daemon (protocol version {})

USAGE:
  e9patchd [--stdio]                        serve one session on stdio
  e9patchd --socket PATH [--max-conns N]    serve a Unix socket

OPTIONS:
  --timeout-ms N        socket read/write timeout in ms (default 30000, 0 = none)
  --max-line-bytes N    longest accepted request line (default 67108864)
  --jobs N              default planner worker count (default: sequential)
  --cache-dir PATH      enable the rewrite cache with an on-disk tier at PATH
  --cache-mem-bytes N   memory-tier budget in bytes (default 67108864;
                        without --cache-dir, enables memory-only caching)
  --cache-disk-bytes N  disk-tier budget in bytes (default: unbounded)
  --cache-bypass-bytes N  inputs below N bytes skip the cache entirely
                        (default 131072; 0 caches every size; modifier
                        only — does not enable the cache by itself)",
        e9proto::PROTOCOL_VERSION
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut max_conns: Option<usize> = None;
    let mut stdio = false;
    let mut config = ServeConfig::default();
    let mut cache_config = e9cache::CacheConfig::default();
    let mut want_cache = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--stdio" => {
                stdio = true;
                i += 1;
            }
            "--socket" if i + 1 < argv.len() => {
                socket = Some(argv[i + 1].clone());
                i += 2;
            }
            "--max-conns" if i + 1 < argv.len() => {
                match argv[i + 1].parse() {
                    Ok(n) => max_conns = Some(n),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--timeout-ms" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<u64>() {
                    Ok(0) => config.io_timeout = None,
                    Ok(ms) => config.io_timeout = Some(Duration::from_millis(ms)),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--max-line-bytes" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<usize>() {
                    Ok(n) if n > 0 => config.max_line_bytes = n,
                    _ => return usage(),
                }
                i += 2;
            }
            "--jobs" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<usize>() {
                    Ok(n) if n >= 1 => config.default_jobs = Some(n),
                    _ => return usage(),
                }
                i += 2;
            }
            "--cache-dir" if i + 1 < argv.len() => {
                cache_config.dir = Some(std::path::PathBuf::from(&argv[i + 1]));
                want_cache = true;
                i += 2;
            }
            "--cache-mem-bytes" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<usize>() {
                    Ok(n) => cache_config.mem_bytes = Some(n),
                    Err(_) => return usage(),
                }
                want_cache = true;
                i += 2;
            }
            "--cache-disk-bytes" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<u64>() {
                    Ok(n) => cache_config.disk_bytes = Some(n),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--cache-bypass-bytes" if i + 1 < argv.len() => {
                match argv[i + 1].parse::<u64>() {
                    Ok(n) => cache_config.bypass_bytes = Some(n),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            _ => return usage(),
        }
    }
    if stdio && socket.is_some() {
        return usage();
    }
    if want_cache {
        match e9cache::Cache::open(&cache_config) {
            Ok(cache) => config.cache = Some(Arc::new(cache)),
            Err(e) => {
                eprintln!("e9patchd: cannot open cache: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = match socket {
        #[cfg(unix)]
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            eprintln!(
                "e9patchd: listening on {} (protocol version {})",
                path.display(),
                e9proto::PROTOCOL_VERSION
            );
            e9proto::server::unix::serve_unix_with(&path, max_conns, &config)
        }
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("e9patchd: --socket is only supported on Unix");
            return ExitCode::from(2);
        }
        None => e9proto::server::serve_stdio_with(&config),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("e9patchd: {e}");
            ExitCode::FAILURE
        }
    }
}
