//! `e9patchd` — the standalone patch-backend daemon.
//!
//! Serves the streaming JSON-RPC patch protocol (see the `e9proto` crate
//! docs) so external frontends can drive the rewriter without linking it:
//!
//! ```console
//! $ e9patchd --stdio                      # one session on stdin/stdout
//! $ e9patchd --socket /tmp/e9.sock        # daemon: thread per connection
//! $ e9patchd --socket /tmp/e9.sock --max-conns 1   # serve one job, exit
//! ```
//!
//! A client `shutdown` command stops the daemon cleanly; `--max-conns N`
//! exits after `N` connections (handy for CI smoke stages).

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "e9patchd — E9Patch backend daemon (protocol version {})

USAGE:
  e9patchd [--stdio]                        serve one session on stdio
  e9patchd --socket PATH [--max-conns N]    serve a Unix socket",
        e9proto::PROTOCOL_VERSION
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut max_conns: Option<usize> = None;
    let mut stdio = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--stdio" => {
                stdio = true;
                i += 1;
            }
            "--socket" if i + 1 < argv.len() => {
                socket = Some(argv[i + 1].clone());
                i += 2;
            }
            "--max-conns" if i + 1 < argv.len() => {
                match argv[i + 1].parse() {
                    Ok(n) => max_conns = Some(n),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            _ => return usage(),
        }
    }
    if stdio && socket.is_some() {
        return usage();
    }
    let result = match socket {
        #[cfg(unix)]
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            eprintln!(
                "e9patchd: listening on {} (protocol version {})",
                path.display(),
                e9proto::PROTOCOL_VERSION
            );
            e9proto::server::unix::serve_unix(&path, max_conns)
        }
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("e9patchd: --socket is only supported on Unix");
            return ExitCode::from(2);
        }
        None => e9proto::server::serve_stdio(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("e9patchd: {e}");
            ExitCode::FAILURE
        }
    }
}
