//! The per-connection session state machine.
//!
//! A session accumulates the inputs of one rewriting run — binary, options,
//! reserved segments, disassembly info, patch requests — and hands them to
//! the in-process [`e9patch::Rewriter`] on `emit`. Buffering `patch`
//! commands until `emit` is what preserves the paper's S1 semantics: the
//! planner always sees the complete batch and processes it in reverse
//! address order, so a streaming frontend cannot perturb tactic selection
//! by message timing.
//!
//! State ordering enforced (violations are [`code::STATE`] errors):
//!
//! ```text
//! version → binary → {option|reserve|instruction|patch}* → emit
//! ```
//!
//! `option` and `reserve` are also legal between `version` and `binary`.
//! After `emit` the session stays usable — more patches or option changes
//! followed by another `emit` re-run the rewrite over the full batch.

use crate::cachekey;
use crate::msg::{code, CacheAction, CacheDisposition, CacheStatsReply, Command, EmitReply,
                 HealthReply, HookReply, RpcError, WireMapping, PROTOCOL_VERSION};
use crate::json::{obj, Json};
use crate::server::ShedCounters;
use e9cache::{Cache, Entry, Hit};
use e9patch::planner::AllocPolicy;
use e9patch::{ExtraSegment, PatchRequest, RewriteConfig, Rewriter};
use e9x86::insn::Insn;
use std::sync::Arc;

/// Per-session resource quotas. One hostile client must not be able to
/// grow a session's buffers without bound: every intake command is checked
/// against these caps and rejected with [`code::LIMIT`] when exceeded —
/// the session itself stays usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionLimits {
    /// Largest accepted input binary, in bytes.
    pub max_binary_bytes: usize,
    /// Most `instruction` declarations per session.
    pub max_insns: usize,
    /// Most buffered `patch` requests per session.
    pub max_patches: usize,
    /// Most `reserve` segments per session.
    pub max_extra_segments: usize,
    /// Combined size of all `reserve` segment contents, in bytes.
    pub max_extra_bytes: usize,
}

impl Default for SessionLimits {
    fn default() -> SessionLimits {
        SessionLimits {
            max_binary_bytes: 256 << 20,
            max_insns: 4_000_000,
            max_patches: 1_000_000,
            max_extra_segments: 64,
            max_extra_bytes: 256 << 20,
        }
    }
}

/// One protocol session (one connection's worth of rewriter state).
#[derive(Debug)]
pub struct Session {
    version: Option<u64>,
    binary: Option<Vec<u8>>,
    /// Tree digest of `binary`, computed at most once per session —
    /// verified at intake when the client sent one, or lazily at the
    /// first cache-engaged `emit` otherwise.
    binary_digest: Option<e9cache::Digest>,
    config: RewriteConfig,
    insns: Vec<Insn>,
    extra: Vec<ExtraSegment>,
    extra_bytes: usize,
    patches: Vec<PatchRequest>,
    limits: SessionLimits,
    shutdown: bool,
    /// Shared rewrite cache (one per server, not per session).
    cache: Option<Arc<Cache>>,
    /// Serving core reported by `health` (`in-process` when no server
    /// loop owns this session).
    serving_mode: &'static str,
    /// Shared load-shedding counters (one per server), when served.
    shed: Option<Arc<ShedCounters>>,
}

impl Default for Session {
    fn default() -> Session {
        Session::with_limits(SessionLimits::default())
    }
}

impl Session {
    /// A fresh session with the default rewriter configuration.
    pub fn new() -> Session {
        Session::default()
    }

    /// A fresh session with explicit resource quotas.
    pub fn with_limits(limits: SessionLimits) -> Session {
        Session {
            version: None,
            binary: None,
            binary_digest: None,
            config: RewriteConfig::default(),
            insns: Vec::new(),
            extra: Vec::new(),
            extra_bytes: 0,
            patches: Vec::new(),
            limits,
            shutdown: false,
            cache: None,
            serving_mode: "in-process",
            shed: None,
        }
    }

    /// Set a default worker count for planning, as if the client had sent
    /// `option jobs=<n>`. A later explicit `option jobs` overrides it.
    pub fn set_default_jobs(&mut self, jobs: Option<usize>) {
        self.config.jobs = jobs;
    }

    /// Attach a rewrite cache. The daemon passes one shared [`Arc`] to
    /// every connection's session, so all clients pool their artifacts.
    pub fn set_cache(&mut self, cache: Option<Arc<Cache>>) {
        self.cache = cache;
    }

    /// Attach the serving-core identity and shared shed counters that the
    /// `health` command reports. Server loops call this right after
    /// construction; an unserved session reports `in-process` and zeros.
    pub fn set_health(&mut self, serving_mode: &'static str, shed: Arc<ShedCounters>) {
        self.serving_mode = serving_mode;
        self.shed = Some(shed);
    }

    fn over_limit(what: &str, cap: usize) -> RpcError {
        RpcError::new(code::LIMIT, format!("session quota exceeded: {what} (max {cap})"))
    }

    /// Whether a `shutdown` command has been handled.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Handle one command, returning the `result` payload.
    ///
    /// # Errors
    ///
    /// Protocol-state violations, invalid parameters and rewrite failures,
    /// each with its [`code`] constant.
    pub fn handle(&mut self, cmd: Command) -> Result<Json, RpcError> {
        // Everything except version negotiation requires it done first —
        // except `health`, which must work against a daemon an operator
        // cannot (or does not want to) handshake with.
        if self.version.is_none() && !matches!(cmd, Command::Version { .. } | Command::Health) {
            return Err(RpcError::state("version not negotiated"));
        }
        match cmd {
            Command::Version { version } => self.version_cmd(version),
            Command::Binary { bytes, digest } => self.binary_cmd(bytes, digest),
            Command::Option { name, value } => self.option_cmd(&name, &value),
            Command::Reserve {
                vaddr,
                bytes,
                exec,
                write,
            } => {
                if self.extra.len() >= self.limits.max_extra_segments {
                    return Err(Self::over_limit(
                        "reserve segments",
                        self.limits.max_extra_segments,
                    ));
                }
                if self.extra_bytes.saturating_add(bytes.len()) > self.limits.max_extra_bytes {
                    return Err(Self::over_limit("reserve bytes", self.limits.max_extra_bytes));
                }
                self.extra_bytes += bytes.len();
                self.extra.push(ExtraSegment {
                    vaddr,
                    bytes,
                    exec,
                    write,
                });
                Ok(Json::Obj(Vec::new()))
            }
            Command::Instruction { addr, bytes } => self.instruction_cmd(addr, &bytes),
            Command::Patch { addr, template } => {
                if self.binary.is_none() {
                    return Err(RpcError::state("patch before binary"));
                }
                if self.patches.len() >= self.limits.max_patches {
                    return Err(Self::over_limit("patches", self.limits.max_patches));
                }
                self.patches.push(PatchRequest { addr, template });
                Ok(Json::Obj(Vec::new()))
            }
            Command::Hook {
                funcs,
                addrs,
                call_original,
                payload,
            } => self.hook_cmd(e9hook::HookSpec {
                funcs,
                addrs,
                call_original,
                payload,
            }),
            Command::Emit => self.emit_cmd(),
            Command::Cache { action } => self.cache_cmd(action),
            Command::Health => Ok(self.health_reply().to_json()),
            Command::Shutdown => {
                self.shutdown = true;
                Ok(Json::Obj(Vec::new()))
            }
        }
    }

    fn version_cmd(&mut self, version: u64) -> Result<Json, RpcError> {
        if self.version.is_some() {
            return Err(RpcError::state("version already negotiated"));
        }
        if version != PROTOCOL_VERSION {
            return Err(RpcError::new(
                code::VERSION,
                format!("unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"),
            ));
        }
        self.version = Some(version);
        Ok(obj(vec![
            ("version", Json::Int(PROTOCOL_VERSION as i128)),
            ("server", Json::Str("e9patchd".into())),
        ]))
    }

    fn binary_cmd(
        &mut self,
        bytes: Vec<u8>,
        digest: Option<e9cache::Digest>,
    ) -> Result<Json, RpcError> {
        if self.binary.is_some() {
            return Err(RpcError::state("binary already loaded"));
        }
        if bytes.len() > self.limits.max_binary_bytes {
            return Err(Self::over_limit("binary bytes", self.limits.max_binary_bytes));
        }
        // Validate eagerly so the client hears about a bad image now, not
        // at emit time.
        let elf = e9elf::Elf::parse(&bytes)
            .map_err(|e| RpcError::new(code::REWRITE, format!("unparseable ELF: {e}")))?;
        if let Some(claimed) = digest {
            // Verify, never trust: the cache is shared across every
            // client of this daemon, so an unchecked digest would let one
            // client poison another's cache keys. The recompute here is
            // the session's ONE hash of the input — every later emit
            // reuses it.
            let actual = e9cache::tree::tree_digest(&bytes, self.config.jobs.unwrap_or(1));
            if actual != claimed {
                return Err(RpcError::invalid_params(format!(
                    "binary digest mismatch: claimed {} but input hashes to {}",
                    e9cache::sha256::hex(&claimed),
                    e9cache::sha256::hex(&actual),
                )));
            }
            self.binary_digest = Some(actual);
        }
        let reply = obj(vec![
            ("size", Json::Int(bytes.len() as i128)),
            ("entry", Json::Int(elf.entry() as i128)),
        ]);
        self.binary = Some(bytes);
        Ok(reply)
    }

    fn option_cmd(&mut self, name: &str, value: &str) -> Result<Json, RpcError> {
        let parse_bool = || -> Result<bool, RpcError> {
            match value {
                "true" => Ok(true),
                "false" => Ok(false),
                _ => Err(RpcError::invalid_params(format!(
                    "option {name}: want true|false, got {value:?}"
                ))),
            }
        };
        match name {
            "t1" => self.config.tactics.t1 = parse_bool()?,
            "t2" => self.config.tactics.t2 = parse_bool()?,
            "t3" => self.config.tactics.t3 = parse_bool()?,
            "b0" => self.config.b0_fallback = parse_bool()?,
            "grouping" => self.config.grouping = parse_bool()?,
            "granularity" => {
                let m: u64 = value.parse().ok().filter(|&m| m >= 1).ok_or_else(|| {
                    RpcError::invalid_params(format!(
                        "option granularity: want an integer >= 1, got {value:?}"
                    ))
                })?;
                self.config.granularity = m;
            }
            "alloc" => {
                self.config.alloc_policy = match value {
                    "low" => AllocPolicy::FirstFitLow,
                    "high" => AllocPolicy::FirstFitHigh,
                    _ => {
                        return Err(RpcError::invalid_params(format!(
                            "option alloc: want low|high, got {value:?}"
                        )))
                    }
                };
            }
            "jobs" => {
                let n: usize = value.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    RpcError::invalid_params(format!(
                        "option jobs: want an integer >= 1, got {value:?}"
                    ))
                })?;
                self.config.jobs = Some(n);
            }
            _ => {
                return Err(RpcError::invalid_params(format!(
                    "unknown option {name:?}"
                )))
            }
        }
        Ok(Json::Obj(Vec::new()))
    }

    fn instruction_cmd(&mut self, addr: u64, bytes: &[u8]) -> Result<Json, RpcError> {
        if self.binary.is_none() {
            return Err(RpcError::state("instruction before binary"));
        }
        if self.insns.len() >= self.limits.max_insns {
            return Err(Self::over_limit("instructions", self.limits.max_insns));
        }
        let insn = e9x86::decode::decode(bytes, addr)
            .map_err(|e| RpcError::new(code::DECODE, format!("{addr:#x}: {e:?}")))?;
        if insn.len() != bytes.len() {
            return Err(RpcError::new(
                code::DECODE,
                format!(
                    "{addr:#x}: {} byte(s) sent but instruction is {}",
                    bytes.len(),
                    insn.len()
                ),
            ));
        }
        self.insns.push(insn);
        Ok(Json::Obj(Vec::new()))
    }

    /// Plan a hook batch server-side and buffer its segments and patches
    /// exactly as if the client had streamed them: a following `emit`
    /// sees the identical batch (and derives the identical cache key) a
    /// locally-planning client would have produced.
    fn hook_cmd(&mut self, spec: e9hook::HookSpec) -> Result<Json, RpcError> {
        let Some(binary) = self.binary.as_deref() else {
            return Err(RpcError::state("hook before binary"));
        };
        let plan = e9hook::plan_hooks(binary, &self.insns, &spec)
            .map_err(|e| RpcError::new(code::REWRITE, e.to_string()))?;
        // Admit the whole plan or none of it: quota checks run before any
        // buffer grows, so a rejected hook leaves the session unchanged.
        if self.extra.len() + plan.extra.len() > self.limits.max_extra_segments {
            return Err(Self::over_limit(
                "reserve segments",
                self.limits.max_extra_segments,
            ));
        }
        let plan_bytes: usize = plan.extra.iter().map(|s| s.bytes.len()).sum();
        if self.extra_bytes.saturating_add(plan_bytes) > self.limits.max_extra_bytes {
            return Err(Self::over_limit("reserve bytes", self.limits.max_extra_bytes));
        }
        if self.patches.len() + plan.requests.len() > self.limits.max_patches {
            return Err(Self::over_limit("patches", self.limits.max_patches));
        }
        self.extra_bytes += plan_bytes;
        self.extra.extend(plan.extra);
        self.patches.extend(plan.requests);
        Ok(HookReply {
            hooks: plan.hooks,
            counters_addr: plan.counters_addr,
            manifest_addr: plan.manifest_addr,
        }
        .to_json())
    }

    fn emit_cmd(&mut self) -> Result<Json, RpcError> {
        if self.binary.is_none() {
            return Err(RpcError::state("emit before binary"));
        }
        let Some(cache) = self.cache.clone() else {
            return self.emit_cold().map(|r| r.to_json());
        };
        let binary_len = self.binary.as_ref().map_or(0, Vec::len) as u64;
        if cache.should_bypass(binary_len) {
            // Below the break-even size the rewrite is cheaper than
            // keying it, so skip the cache entirely. Failures propagate
            // unstored — a negative entry would pay the keying cost the
            // bypass exists to avoid.
            let mut reply = self.emit_cold()?;
            reply.cache = CacheDisposition::Bypass;
            return Ok(reply.to_json());
        }
        // Digest-once: hash the input at the first engaged emit (unless
        // the client already sent a verified digest with `binary`), then
        // reuse the 32-byte digest for every later keying.
        if self.binary_digest.is_none() {
            let binary = self.binary.as_deref().expect("checked above");
            self.binary_digest =
                Some(e9cache::tree::tree_digest(binary, self.config.jobs.unwrap_or(1)));
        }
        let bin_digest = self.binary_digest.expect("just ensured");
        let key = cachekey::rewrite_key_from_digest(
            &bin_digest,
            &self.insns,
            &self.extra,
            &self.patches,
            &self.config,
        );
        let digest = e9cache::sha256::hex(&key);
        match cache.lookup(&key) {
            Some(Hit::Payload(blob)) => {
                // The stored payload is the compact binary reply of the
                // cold run, handed back as a zero-copy view; decode and
                // stamp the hit disposition. An undecodable payload
                // (encoder/decoder drift, which FORMAT_VERSION should
                // preclude) falls through cold.
                if let Ok(mut reply) = EmitReply::decode_bin(&blob) {
                    reply.cache = CacheDisposition::Hit;
                    reply.digest = Some(digest);
                    return Ok(reply.to_json());
                }
            }
            Some(Hit::Negative { code, message }) => {
                // Known-failing request: replay the original typed error
                // without re-running the rewriter.
                return Err(RpcError::new(code, message));
            }
            None => {}
        }
        match self.emit_cold() {
            Ok(mut reply) => {
                // The compact encoding carries neither disposition nor
                // digest — the server stamps both per response — so the
                // stored artifact is stamp-order independent.
                cache.put(&key, &Entry::Ok(reply.encode_bin()));
                reply.cache = CacheDisposition::Miss;
                reply.digest = Some(digest);
                Ok(reply.to_json())
            }
            Err(e) => {
                // Rewrite failures are deterministic too — cache them as
                // negative entries. State/limit errors are about *this*
                // session, not the job, and are not cached.
                if e.code == code::REWRITE {
                    cache.put(
                        &key,
                        &Entry::Negative {
                            code: e.code,
                            message: e.message.clone(),
                        },
                    );
                }
                Err(e)
            }
        }
    }

    /// The uncached rewrite: run the planner over the buffered batch.
    fn emit_cold(&self) -> Result<EmitReply, RpcError> {
        let Some(binary) = self.binary.as_deref() else {
            return Err(RpcError::state("emit before binary"));
        };
        let out = Rewriter::new(self.config)
            .rewrite(binary, &self.insns, &self.patches, &self.extra)
            .map_err(|e| RpcError::new(code::REWRITE, e.to_string()))?;
        Ok(EmitReply {
            binary: out.binary,
            stats: out.stats,
            size: out.size,
            loader_addr: out.loader_addr,
            trap_count: out.trap_count as u64,
            reports: out.reports,
            mappings: out
                .mappings
                .iter()
                .map(|m| WireMapping {
                    vaddr: m.vaddr,
                    file_off: m.file_off,
                    len: m.len,
                })
                .collect(),
            cache: CacheDisposition::Off,
            digest: None,
        })
    }

    fn cache_cmd(&mut self, action: CacheAction) -> Result<Json, RpcError> {
        match action {
            CacheAction::Stats => {
                let reply = match &self.cache {
                    Some(c) => CacheStatsReply {
                        enabled: true,
                        disk: c.has_disk(),
                        stats: c.stats(),
                    },
                    None => CacheStatsReply::default(),
                };
                Ok(reply.to_json())
            }
            CacheAction::Clear => {
                let (cleared, disk_removed) = match &self.cache {
                    Some(c) => (true, c.clear()),
                    None => (false, 0),
                };
                Ok(obj(vec![
                    ("cleared", Json::Bool(cleared)),
                    ("disk_removed", Json::Int(disk_removed as i128)),
                ]))
            }
        }
    }

    /// Assemble the `health` snapshot: serving core, shed counters,
    /// fault-injection state and the cache/breaker counters.
    fn health_reply(&self) -> HealthReply {
        let cache = match &self.cache {
            Some(c) => CacheStatsReply {
                enabled: true,
                disk: c.has_disk(),
                stats: c.stats(),
            },
            None => CacheStatsReply::default(),
        };
        let (shed_admission, shed_busy) = self
            .shed
            .as_ref()
            .map(|s| s.snapshot())
            .unwrap_or((0, 0));
        HealthReply {
            serving_mode: self.serving_mode.to_string(),
            shed_admission,
            shed_busy,
            faults_enabled: e9failpt::is_enabled(),
            fault_spec: e9failpt::active_spec().unwrap_or_default(),
            faults_injected: e9failpt::injected_total(),
            cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e9patch::Template;

    /// A tiny non-PIE binary (Figure-1 shape) plus its code bytes.
    fn tiny() -> (Vec<u8>, Vec<u8>, u64) {
        let code = vec![
            0x48, 0x89, 0x03, // mov %rax,(%rbx)
            0x48, 0x83, 0xC0, 0x20, // add $32,%rax
            0xC3, // ret
            0x0F, 0x1F, 0x44, 0x00, 0x00, // nop padding
            0x0F, 0x1F, 0x44, 0x00, 0x00,
        ];
        let mut b = e9elf::build::ElfBuilder::exec(0x400000);
        b.text(code.clone(), 0x401000);
        b.entry(0x401000);
        (b.build(), code, 0x401000)
    }

    fn drive(session: &mut Session, cmds: Vec<Command>) -> Vec<Result<Json, RpcError>> {
        cmds.into_iter().map(|c| session.handle(c)).collect()
    }

    #[test]
    fn state_machine_orders_commands() {
        let mut s = Session::new();
        // Anything before version is a state error.
        let e = s.handle(Command::Emit).unwrap_err();
        assert_eq!(e.code, code::STATE);
        // Wrong version is rejected and the session stays un-negotiated.
        let e = s.handle(Command::Version { version: 99 }).unwrap_err();
        assert_eq!(e.code, code::VERSION);
        assert!(s.handle(Command::Version { version: 1 }).is_ok());
        // Double negotiation is a state error.
        let e = s.handle(Command::Version { version: 1 }).unwrap_err();
        assert_eq!(e.code, code::STATE);
        // Instruction/patch before binary are state errors.
        let e = s
            .handle(Command::Instruction {
                addr: 0x401000,
                bytes: vec![0xC3],
            })
            .unwrap_err();
        assert_eq!(e.code, code::STATE);
        let e = s
            .handle(Command::Patch {
                addr: 0x401000,
                template: Template::Empty,
            })
            .unwrap_err();
        assert_eq!(e.code, code::STATE);
    }

    #[test]
    fn full_session_emits_patched_binary() {
        let (bin, code, base) = tiny();
        let disasm = e9x86::decode::linear_sweep(&code, base);
        let mut s = Session::new();
        let mut cmds = vec![
            Command::Version { version: 1 },
            Command::Binary { bytes: bin.clone(), digest: None },
        ];
        for i in &disasm {
            cmds.push(Command::Instruction {
                addr: i.addr,
                bytes: i.bytes().to_vec(),
            });
        }
        cmds.push(Command::Patch {
            addr: base,
            template: Template::Empty,
        });
        for r in drive(&mut s, cmds) {
            r.expect("setup command failed");
        }
        let reply = EmitReply::from_json(&s.handle(Command::Emit).unwrap()).unwrap();
        assert_eq!(reply.stats.succeeded(), 1);
        // Byte-identical to the in-process path with the same inputs.
        let direct = Rewriter::new(RewriteConfig::default())
            .rewrite(
                &bin,
                &disasm,
                &[PatchRequest {
                    addr: base,
                    template: Template::Empty,
                }],
                &[],
            )
            .unwrap();
        assert_eq!(reply.binary, direct.binary);
        assert_eq!(reply.stats, direct.stats);
        assert_eq!(reply.loader_addr, direct.loader_addr);
    }

    #[test]
    fn options_steer_the_config() {
        let (bin, code, base) = tiny();
        let disasm = e9x86::decode::linear_sweep(&code, base);
        let mut s = Session::new();
        s.handle(Command::Version { version: 1 }).unwrap();
        for (n, v) in [("t1", "false"), ("t2", "false"), ("t3", "false"), ("granularity", "4")] {
            s.handle(Command::Option {
                name: n.into(),
                value: v.into(),
            })
            .unwrap();
        }
        s.handle(Command::Binary { bytes: bin, digest: None }).unwrap();
        s.handle(Command::Instruction {
            addr: base,
            bytes: disasm[0].bytes().to_vec(),
        })
        .unwrap();
        s.handle(Command::Patch {
            addr: base,
            template: Template::Empty,
        })
        .unwrap();
        let reply = EmitReply::from_json(&s.handle(Command::Emit).unwrap()).unwrap();
        // Base-only tactics cannot pun this low non-PIE address: failed.
        assert_eq!(reply.stats.failed, 1);
        assert_eq!(reply.size.granularity, 4);
        // Unknown options and bad values are invalid-params.
        let e = s
            .handle(Command::Option {
                name: "turbo".into(),
                value: "on".into(),
            })
            .unwrap_err();
        assert_eq!(e.code, code::INVALID_PARAMS);
        let e = s
            .handle(Command::Option {
                name: "granularity".into(),
                value: "0".into(),
            })
            .unwrap_err();
        assert_eq!(e.code, code::INVALID_PARAMS);
    }

    #[test]
    fn jobs_option_parses_and_rejects_zero() {
        let mut s = Session::new();
        s.handle(Command::Version { version: 1 }).unwrap();
        s.handle(Command::Option {
            name: "jobs".into(),
            value: "4".into(),
        })
        .unwrap();
        assert_eq!(s.config.jobs, Some(4));
        for bad in ["0", "-1", "many"] {
            let e = s
                .handle(Command::Option {
                    name: "jobs".into(),
                    value: bad.into(),
                })
                .unwrap_err();
            assert_eq!(e.code, code::INVALID_PARAMS, "value {bad:?}");
        }
        // The daemon-level default is overridable by the client.
        let mut d = Session::new();
        d.set_default_jobs(Some(8));
        d.handle(Command::Version { version: 1 }).unwrap();
        assert_eq!(d.config.jobs, Some(8));
        d.handle(Command::Option {
            name: "jobs".into(),
            value: "2".into(),
        })
        .unwrap();
        assert_eq!(d.config.jobs, Some(2));
    }

    #[test]
    fn bad_instruction_bytes_are_decode_errors() {
        let (bin, _, _) = tiny();
        let mut s = Session::new();
        s.handle(Command::Version { version: 1 }).unwrap();
        s.handle(Command::Binary { bytes: bin, digest: None }).unwrap();
        // Truncated instruction (mov needs 3 bytes).
        let e = s
            .handle(Command::Instruction {
                addr: 0x401000,
                bytes: vec![0x48, 0x89],
            })
            .unwrap_err();
        assert_eq!(e.code, code::DECODE);
        // Trailing bytes beyond the decoded length.
        let e = s
            .handle(Command::Instruction {
                addr: 0x401000,
                bytes: vec![0xC3, 0x90],
            })
            .unwrap_err();
        assert_eq!(e.code, code::DECODE);
    }

    /// A fully-driven session up to (but excluding) `emit`, with the
    /// tiny workload patched at its first instruction.
    fn primed_session(cache: Option<Arc<Cache>>) -> Session {
        let (bin, code, base) = tiny();
        let disasm = e9x86::decode::linear_sweep(&code, base);
        let mut s = Session::new();
        s.set_cache(cache);
        s.handle(Command::Version { version: 1 }).unwrap();
        s.handle(Command::Binary { bytes: bin, digest: None }).unwrap();
        for i in &disasm {
            s.handle(Command::Instruction {
                addr: i.addr,
                bytes: i.bytes().to_vec(),
            })
            .unwrap();
        }
        s.handle(Command::Patch {
            addr: base,
            template: Template::Empty,
        })
        .unwrap();
        s
    }

    #[test]
    fn emit_without_cache_reports_off() {
        let mut s = primed_session(None);
        let reply = EmitReply::from_json(&s.handle(Command::Emit).unwrap()).unwrap();
        assert_eq!(reply.cache, crate::msg::CacheDisposition::Off);
        assert_eq!(reply.digest, None);
    }

    #[test]
    fn emit_misses_then_hits_byte_identically() {
        use crate::msg::CacheDisposition;
        let cache = Arc::new(Cache::in_memory_no_bypass());
        // Two *sessions* sharing one cache, like two daemon connections.
        let mut a = primed_session(Some(Arc::clone(&cache)));
        let cold = EmitReply::from_json(&a.handle(Command::Emit).unwrap()).unwrap();
        assert_eq!(cold.cache, CacheDisposition::Miss);
        let digest = cold.digest.clone().expect("miss carries the digest");

        let mut b = primed_session(Some(Arc::clone(&cache)));
        let warm = EmitReply::from_json(&b.handle(Command::Emit).unwrap()).unwrap();
        assert_eq!(warm.cache, CacheDisposition::Hit);
        assert_eq!(warm.digest, Some(digest));
        // The cache-hit invariant: bytes identical to the cold rewrite.
        assert_eq!(warm.binary, cold.binary);
        assert_eq!(warm.stats, cold.stats);
        assert_eq!(warm.reports, cold.reports);
        assert_eq!(warm.mappings, cold.mappings);

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.stores, 1);
    }

    #[test]
    fn config_change_changes_the_key() {
        let cache = Arc::new(Cache::in_memory_no_bypass());
        let mut a = primed_session(Some(Arc::clone(&cache)));
        a.handle(Command::Emit).unwrap();
        // Same job but different granularity: a distinct cache entry.
        let mut b = primed_session(Some(Arc::clone(&cache)));
        b.handle(Command::Option {
            name: "granularity".into(),
            value: "4".into(),
        })
        .unwrap();
        let reply = EmitReply::from_json(&b.handle(Command::Emit).unwrap()).unwrap();
        assert_eq!(reply.cache, crate::msg::CacheDisposition::Miss);
        assert_eq!(cache.stats().stores, 2);
    }

    #[test]
    fn failing_rewrite_is_cached_negatively() {
        let (bin, _, _) = tiny();
        let cache = Arc::new(Cache::in_memory_no_bypass());
        let mut s = Session::new();
        s.set_cache(Some(Arc::clone(&cache)));
        s.handle(Command::Version { version: 1 }).unwrap();
        s.handle(Command::Binary { bytes: bin, digest: None }).unwrap();
        // A patch at an address with no declared instruction fails the
        // rewrite deterministically.
        s.handle(Command::Patch {
            addr: 0x401000,
            template: Template::Empty,
        })
        .unwrap();
        let cold = s.handle(Command::Emit).unwrap_err();
        assert_eq!(cold.code, code::REWRITE);
        let warm = s.handle(Command::Emit).unwrap_err();
        // Replayed typed error, served from the negative entry.
        assert_eq!(warm, cold);
        assert_eq!(cache.stats().negative_hits, 1);
    }

    #[test]
    fn tiny_emits_bypass_the_cache_by_default() {
        use crate::msg::CacheDisposition;
        // The default threshold (128 KiB) dwarfs the tiny workload, so a
        // session with an un-tuned cache must skip keying entirely.
        let cache = Arc::new(Cache::in_memory());
        let mut s = primed_session(Some(Arc::clone(&cache)));
        let reply = EmitReply::from_json(&s.handle(Command::Emit).unwrap()).unwrap();
        assert_eq!(reply.cache, CacheDisposition::Bypass);
        assert_eq!(reply.digest, None);
        let stats = cache.stats();
        assert_eq!(stats.bypasses, 1);
        assert_eq!(stats.stores, 0);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn bypassed_failures_are_not_cached_negatively() {
        let (bin, _, _) = tiny();
        let cache = Arc::new(Cache::in_memory());
        let mut s = Session::new();
        s.set_cache(Some(Arc::clone(&cache)));
        s.handle(Command::Version { version: 1 }).unwrap();
        s.handle(Command::Binary { bytes: bin, digest: None }).unwrap();
        s.handle(Command::Patch {
            addr: 0x401000,
            template: Template::Empty,
        })
        .unwrap();
        // Both emits fail cold: below the threshold nothing is keyed, so
        // nothing — not even the failure — is stored.
        let first = s.handle(Command::Emit).unwrap_err();
        let second = s.handle(Command::Emit).unwrap_err();
        assert_eq!(first.code, code::REWRITE);
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!(stats.stores, 0);
        assert_eq!(stats.negative_hits, 0);
        assert_eq!(stats.bypasses, 2);
    }

    #[test]
    fn binary_digest_is_verified_at_intake() {
        let (bin, _, _) = tiny();
        let mut s = Session::new();
        s.handle(Command::Version { version: 1 }).unwrap();
        let wrong = e9cache::digest(b"not the binary");
        let e = s
            .handle(Command::Binary {
                bytes: bin.clone(),
                digest: Some(wrong),
            })
            .unwrap_err();
        assert_eq!(e.code, code::INVALID_PARAMS);
        assert!(e.message.contains("digest mismatch"), "{}", e.message);
        // The rejected intake left no binary behind; the correct digest
        // (jobs-invariant, so any worker count works) is accepted.
        let right = e9cache::tree::tree_digest(&bin, 4);
        s.handle(Command::Binary {
            bytes: bin,
            digest: Some(right),
        })
        .unwrap();
    }

    #[test]
    fn cache_command_reports_and_clears() {
        use crate::msg::{CacheAction, CacheStatsReply};
        // Without a cache: disabled, zero counters, clear is a no-op.
        let mut bare = Session::new();
        bare.handle(Command::Version { version: 1 }).unwrap();
        let r = bare
            .handle(Command::Cache {
                action: CacheAction::Stats,
            })
            .unwrap();
        let stats = CacheStatsReply::from_json(&r).unwrap();
        assert!(!stats.enabled);

        let cache = Arc::new(Cache::in_memory_no_bypass());
        let mut s = primed_session(Some(Arc::clone(&cache)));
        s.handle(Command::Emit).unwrap();
        let r = s
            .handle(Command::Cache {
                action: CacheAction::Stats,
            })
            .unwrap();
        let stats = CacheStatsReply::from_json(&r).unwrap();
        assert!(stats.enabled);
        assert!(!stats.disk);
        assert_eq!(stats.stats.stores, 1);
        let r = s
            .handle(Command::Cache {
                action: CacheAction::Clear,
            })
            .unwrap();
        assert_eq!(r.get("cleared").and_then(Json::as_bool), Some(true));
        // Cleared: the same emit misses again.
        let reply = EmitReply::from_json(&s.handle(Command::Emit).unwrap()).unwrap();
        assert_eq!(reply.cache, crate::msg::CacheDisposition::Miss);
    }

    #[test]
    fn health_is_allowed_pre_version_and_reports_state() {
        use crate::msg::HealthReply;
        use crate::server::ShedCounters;

        // No version negotiated yet: health must still answer (it is the
        // one command an operator can always issue against a live daemon).
        let mut s = Session::new();
        let h = HealthReply::from_json(&s.handle(Command::Health).unwrap()).unwrap();
        assert_eq!(h.serving_mode, "in-process");
        assert!(!h.cache.enabled);
        assert_eq!(h.shed_admission, 0);
        // Health does not substitute for negotiation: emit still gates.
        let e = s.handle(Command::Emit).unwrap_err();
        assert_eq!(e.code, code::STATE);

        // A daemon-shaped session reports its serving mode, shed
        // counters and cache tier state.
        let shed = Arc::new(ShedCounters::default());
        shed.admission.fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        shed.busy.fetch_add(5, std::sync::atomic::Ordering::Relaxed);
        let mut d = Session::new();
        d.set_cache(Some(Arc::new(Cache::in_memory())));
        d.set_health("reactor", shed);
        let h = HealthReply::from_json(&d.handle(Command::Health).unwrap()).unwrap();
        assert_eq!(h.serving_mode, "reactor");
        assert!(h.cache.enabled);
        assert!(!h.cache.disk);
        assert_eq!((h.shed_admission, h.shed_busy), (3, 5));
        assert!(!h.cache.stats.disk_breaker_open);
    }

    #[test]
    fn bad_elf_rejected_at_binary_time() {
        let mut s = Session::new();
        s.handle(Command::Version { version: 1 }).unwrap();
        let e = s
            .handle(Command::Binary {
                bytes: vec![0u8; 64],
                digest: None,
            })
            .unwrap_err();
        assert_eq!(e.code, code::REWRITE);
        // The session still has no binary: emit remains a state error.
        let e = s.handle(Command::Emit).unwrap_err();
        assert_eq!(e.code, code::STATE);
    }
}
