//! The reactor serving mode: `e9patchd`'s default multiplexed transport.
//!
//! Glue between the protocol-agnostic `e9loop` event loop and this
//! crate's [`Session`] state machine. The reactor owns sockets, framing,
//! fairness, admission control and drain; every complete request line
//! still funnels through [`dispatch_line`](crate::server::dispatch_line)
//! — the exact choke point the threaded path uses — so replies are
//! byte-identical between the two serving modes (asserted by the
//! `reactor_daemon` integration tests and verify.sh stage 8).
//!
//! ## The BUSY contract
//!
//! Overload never stalls a client; it is answered in-band with a typed
//! [`code::BUSY`] error (`id: null` — the request is refused *before*
//! parsing, deliberately, so a flood of expensive lines cannot buy CPU
//! with its own volume):
//!
//! * a connection arriving past `--max-clients` gets one BUSY line and a
//!   close;
//! * a request arriving while the loop's queued replies exceed
//!   `--max-pending-bytes` gets BUSY instead of a dispatch;
//! * a connection whose own unread replies exceed the per-connection
//!   queue cap is shed outright (it is not reading; nothing can be
//!   delivered to it).

use crate::msg::{code, Response, RpcError};
use crate::server::{dispatch_line, ServeConfig, ShedCounters};
use crate::session::Session;
use e9loop::Config as LoopConfig;
pub use e9loop::{Listener, Service, ServiceFactory, Summary};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Reactor-specific serving knobs, layered on top of [`ServeConfig`]
/// (which keeps owning the protocol-level hardening: line cap, session
/// quotas, idle timeout, shared cache, default jobs).
#[derive(Debug, Clone)]
pub struct ReactorOptions {
    /// Most live connections; arrivals beyond this get one BUSY line.
    pub max_clients: usize,
    /// Loop-wide cap on queued (unwritten) reply bytes; above it,
    /// requests are answered BUSY instead of dispatched.
    pub pending_budget_bytes: usize,
    /// Per-connection cap on queued reply bytes; a client that stops
    /// reading its replies is shed once it parks more than this.
    pub conn_queue_bytes: usize,
    /// During drain, how long an in-flight connection may sit *inactive*
    /// before being cut; connections still making progress finish.
    pub drain_timeout: Duration,
    /// Total connections to accept before draining (`--max-conns`).
    pub accept_budget: Option<usize>,
}

impl Default for ReactorOptions {
    fn default() -> ReactorOptions {
        ReactorOptions {
            max_clients: 1024,
            pending_budget_bytes: 256 << 20,
            conn_queue_bytes: 256 << 20,
            drain_timeout: Duration::from_millis(5_000),
            accept_budget: None,
        }
    }
}

/// The one BUSY line, shared by admission shed and budget shed.
fn busy_line() -> Vec<u8> {
    let resp = Response::err(
        None,
        RpcError::new(
            code::BUSY,
            "server over capacity; request shed, retry later",
        ),
    );
    let mut out = resp.encode().into_bytes();
    out.push(b'\n');
    out
}

/// One connection's service: a [`Session`] behind the shared
/// [`dispatch_line`] choke point, with per-request panic isolation
/// exactly like the threaded path.
pub struct SessionService {
    session: Session,
    shed: Arc<ShedCounters>,
}

impl Service for SessionService {
    fn on_line(&mut self, line: &[u8]) -> Option<Vec<u8>> {
        if line.iter().all(u8::is_ascii_whitespace) {
            return None; // blank lines are skipped, same as threaded
        }
        let resp =
            match catch_unwind(AssertUnwindSafe(|| dispatch_line(&mut self.session, line))) {
                Ok(resp) => resp,
                Err(_) => Response::err(
                    None,
                    RpcError::new(code::INTERNAL, "internal error while handling request"),
                ),
            };
        let mut out = resp.encode().into_bytes();
        out.push(b'\n');
        Some(out)
    }

    fn on_oversized(&mut self, cap: usize) -> Vec<u8> {
        // Byte-identical to the threaded server's oversized-line reply.
        let resp = Response::err(
            None,
            RpcError::new(
                code::LIMIT,
                format!("request line exceeds {cap} bytes; see --max-line-bytes"),
            ),
        );
        let mut out = resp.encode().into_bytes();
        out.push(b'\n');
        out
    }

    fn on_busy(&mut self, _line: &[u8]) -> Vec<u8> {
        self.shed.busy.fetch_add(1, Ordering::Relaxed);
        busy_line()
    }

    fn shutdown_requested(&self) -> bool {
        self.session.shutdown_requested()
    }
}

/// Creates one [`SessionService`] per accepted connection, wired to the
/// shared [`ServeConfig`] (quotas, cache, default jobs).
pub struct SessionFactory {
    config: ServeConfig,
}

impl SessionFactory {
    /// A factory serving sessions under `config`.
    #[must_use]
    pub fn new(config: ServeConfig) -> SessionFactory {
        SessionFactory { config }
    }
}

impl ServiceFactory for SessionFactory {
    type Svc = SessionService;

    fn connect(&mut self) -> SessionService {
        let mut session = Session::with_limits(self.config.limits.clone());
        session.set_default_jobs(self.config.default_jobs);
        session.set_cache(self.config.cache.clone());
        session.set_health(self.config.serving_mode, Arc::clone(&self.config.shed));
        SessionService {
            session,
            shed: Arc::clone(&self.config.shed),
        }
    }

    fn admission_busy(&self) -> Vec<u8> {
        self.config.shed.admission.fetch_add(1, Ordering::Relaxed);
        busy_line()
    }
}

/// Serve the protocol over `listeners` on one reactor thread until a
/// client sends `shutdown` (or the accept budget is spent) and the
/// graceful drain completes.
///
/// `config.io_timeout` becomes the idle timeout: a connection with no
/// bytes moving in either direction for that long is cut, replacing the
/// threaded path's per-read socket timeout.
///
/// # Errors
///
/// Listener registration and epoll failures. Per-connection I/O errors
/// only end that connection.
pub fn serve_reactor(
    listeners: Vec<Listener>,
    config: &ServeConfig,
    opts: &ReactorOptions,
) -> io::Result<Summary> {
    let loop_config = LoopConfig {
        max_line_bytes: config.max_line_bytes,
        max_clients: opts.max_clients,
        pending_budget_bytes: opts.pending_budget_bytes,
        conn_queue_bytes: opts.conn_queue_bytes,
        idle_timeout: config.io_timeout,
        drain_timeout: opts.drain_timeout,
        accept_budget: opts.accept_budget,
    };
    e9loop::serve(listeners, SessionFactory::new(config.clone()), loop_config)
}
