//! Cache-key derivation for finished rewrites.
//!
//! A rewrite's output is a pure function of `(input ELF bytes, the full
//! command batch, the rewriter configuration)` — the pipeline has been
//! deterministic since PR 1, and PR 4 pinned byte-identical output across
//! every `--jobs` value. That makes the output safely addressable by a
//! digest of those inputs, which is what [`rewrite_key`] computes.
//!
//! The batch is absorbed through a compact tagged binary framing: each
//! logical step (`instruction`, `reserve`, `patch`) contributes a type
//! tag, its fixed fields as little-endian words, and its byte payloads
//! length-prefixed (templates, which are small structured values, go
//! through the canonical JSON codec). Hashing raw bytes instead of a
//! hex-doubled JSON batch keeps keying linear in the input with a small
//! constant — the batch can carry megabytes of instruction and segment
//! bytes. `e9tool patch --cache-dir` (in-process) and an `e9patchd`
//! session (wire) still derive byte-identical keys for the same logical
//! job, so they share cache entries.
//!
//! The binary itself enters the key as its [`e9cache::tree`] digest, not
//! its raw bytes — that is what lets a client hash the input once, send
//! the digest alongside the `binary` command, and have the server reuse
//! the verified digest for every subsequent `emit` ([`rewrite_key_from_digest`]).
//! Since the tree digest is jobs-invariant, the key is too.
//!
//! Deliberately **excluded** from the key:
//!
//! * `jobs` — the parallelism degree changes wall-clock, not bytes
//!   (PR 4's parity guarantee); including it would split the cache per
//!   thread count for identical outputs.
//! * anything about the serving surface (socket vs stdio vs in-process),
//!   session limits, or I/O paths.
//!
//! Versioning: the key material starts with a domain tag plus
//! [`e9cache::FORMAT_VERSION`] and [`PROTOCOL_VERSION`], so any change to
//! the entry encoding or the wire grammar re-keys the world instead of
//! misreading old entries. All multi-byte parts are length-prefixed —
//! the encoding is injective, two different jobs cannot produce the same
//! key material.

use crate::json::Json;
use crate::msg::{Command, PROTOCOL_VERSION};
use e9cache::{Digest, Sha256};
use e9patch::planner::AllocPolicy;
use e9patch::{ExtraSegment, PatchRequest, RewriteConfig};
use e9x86::insn::Insn;

/// Domain-separation tag (NUL-terminated so no other use of the hash can
/// collide with key material by accident).
const DOMAIN: &[u8] = b"e9cache/rewrite-key\0";

/// Absorb one length-prefixed part.
fn part(h: &mut Sha256, bytes: &[u8]) {
    h.update(&(bytes.len() as u64).to_le_bytes());
    h.update(bytes);
}

/// Canonical JSON encoding of the cache-relevant [`RewriteConfig`]
/// fields (everything that can change output bytes; `jobs` is parity-
/// guaranteed and therefore omitted).
pub fn config_json(cfg: &RewriteConfig) -> Json {
    crate::json::obj(vec![
        ("t1", Json::Bool(cfg.tactics.t1)),
        ("t2", Json::Bool(cfg.tactics.t2)),
        ("t3", Json::Bool(cfg.tactics.t3)),
        ("b0", Json::Bool(cfg.b0_fallback)),
        ("granularity", Json::Int(cfg.granularity as i128)),
        ("grouping", Json::Bool(cfg.grouping)),
        (
            "alloc",
            Json::Str(
                match cfg.alloc_policy {
                    AllocPolicy::FirstFitLow => "low",
                    AllocPolicy::FirstFitHigh => "high",
                }
                .into(),
            ),
        ),
    ])
}

/// Absorb the batch in session order (instructions, then reserved
/// segments, then patches — the order the planner consumes them). Each
/// section is count-prefixed and each step carries a type tag, so the
/// framing is injective without any intermediate serialization of the
/// bulk bytes.
fn absorb_batch(h: &mut Sha256, insns: &[Insn], extra: &[ExtraSegment], patches: &[PatchRequest]) {
    h.update(&(insns.len() as u64).to_le_bytes());
    for i in insns {
        h.update(b"I");
        h.update(&i.addr.to_le_bytes());
        part(h, i.bytes());
    }
    h.update(&(extra.len() as u64).to_le_bytes());
    for e in extra {
        h.update(b"R");
        h.update(&e.vaddr.to_le_bytes());
        h.update(&[u8::from(e.exec), u8::from(e.write)]);
        part(h, &e.bytes);
    }
    h.update(&(patches.len() as u64).to_le_bytes());
    for p in patches {
        h.update(b"P");
        h.update(&p.addr.to_le_bytes());
        // Templates are small structured values; the canonical JSON
        // codec is their one canonical encoding.
        part(
            h,
            Command::Patch {
                addr: p.addr,
                template: p.template.clone(),
            }
            .to_json()
            .serialize()
            .as_bytes(),
        );
    }
}

/// Derive the content-address of a rewrite job from an already-computed
/// binary digest. This is the digest-once entry point: the input is
/// hashed exactly once per session (at `binary` intake or first engaged
/// `emit`) and every later keying reuses the 32-byte digest.
pub fn rewrite_key_from_digest(
    binary_digest: &Digest,
    insns: &[Insn],
    extra: &[ExtraSegment],
    patches: &[PatchRequest],
    cfg: &RewriteConfig,
) -> Digest {
    let mut h = Sha256::new();
    h.update(DOMAIN);
    h.update(&e9cache::FORMAT_VERSION.to_le_bytes());
    h.update(&PROTOCOL_VERSION.to_le_bytes());
    part(&mut h, binary_digest);
    absorb_batch(&mut h, insns, extra, patches);
    part(&mut h, config_json(cfg).serialize().as_bytes());
    h.finish()
}

/// Derive the content-address of a rewrite job from the raw input bytes.
/// Convenience over [`rewrite_key_from_digest`]; hashes the binary
/// single-threaded — callers that hold a worker count should compute
/// [`e9cache::tree::tree_digest`] themselves and use the `_from_digest`
/// form.
pub fn rewrite_key(
    binary: &[u8],
    insns: &[Insn],
    extra: &[ExtraSegment],
    patches: &[PatchRequest],
    cfg: &RewriteConfig,
) -> Digest {
    rewrite_key_from_digest(&e9cache::tree::tree_digest(binary, 1), insns, extra, patches, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use e9patch::Template;

    fn insn(addr: u64, bytes: &[u8]) -> Insn {
        e9x86::decode::decode(bytes, addr).expect("test instruction decodes")
    }

    fn job() -> (Vec<u8>, Vec<Insn>, Vec<ExtraSegment>, Vec<PatchRequest>) {
        (
            vec![0x7f, b'E', b'L', b'F', 0, 1, 2, 3],
            vec![insn(0x401000, &[0x48, 0x89, 0x03]), insn(0x401003, &[0x90])],
            vec![ExtraSegment {
                vaddr: 0x30000000,
                bytes: vec![0xAA; 16],
                exec: false,
                write: true,
            }],
            vec![PatchRequest {
                addr: 0x401000,
                template: Template::Empty,
            }],
        )
    }

    #[test]
    fn key_is_deterministic() {
        let (bin, insns, extra, patches) = job();
        let cfg = RewriteConfig::default();
        let a = rewrite_key(&bin, &insns, &extra, &patches, &cfg);
        let b = rewrite_key(&bin, &insns, &extra, &patches, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn every_input_part_changes_the_key() {
        let (bin, insns, extra, patches) = job();
        let cfg = RewriteConfig::default();
        let base = rewrite_key(&bin, &insns, &extra, &patches, &cfg);

        let mut bin2 = bin.clone();
        bin2[7] ^= 1;
        assert_ne!(rewrite_key(&bin2, &insns, &extra, &patches, &cfg), base);

        assert_ne!(rewrite_key(&bin, &insns[..1], &extra, &patches, &cfg), base);
        assert_ne!(rewrite_key(&bin, &insns, &[], &patches, &cfg), base);
        assert_ne!(rewrite_key(&bin, &insns, &extra, &[], &cfg), base);

        let mut cfg2 = cfg;
        cfg2.granularity += 1;
        assert_ne!(rewrite_key(&bin, &insns, &extra, &patches, &cfg2), base);
        let mut cfg3 = cfg;
        cfg3.tactics.t2 = !cfg3.tactics.t2;
        assert_ne!(rewrite_key(&bin, &insns, &extra, &patches, &cfg3), base);
    }

    #[test]
    fn jobs_does_not_split_the_cache() {
        // PR 4 guarantees byte-identical output for every jobs value, so
        // the key must not depend on it.
        let (bin, insns, extra, patches) = job();
        let mut cfg = RewriteConfig::default();
        let base = rewrite_key(&bin, &insns, &extra, &patches, &cfg);
        cfg.jobs = Some(8);
        assert_eq!(rewrite_key(&bin, &insns, &extra, &patches, &cfg), base);
    }

    #[test]
    fn digest_form_matches_raw_form_for_every_jobs() {
        // The digest-once path must land on the same key as the raw-bytes
        // convenience, for any worker count used to hash the input —
        // otherwise a client that pre-hashes with --jobs splits the cache.
        let (bin, insns, extra, patches) = job();
        let cfg = RewriteConfig::default();
        let base = rewrite_key(&bin, &insns, &extra, &patches, &cfg);
        for jobs in [1, 2, 7, 64] {
            let d = e9cache::tree::tree_digest(&bin, jobs);
            assert_eq!(
                rewrite_key_from_digest(&d, &insns, &extra, &patches, &cfg),
                base
            );
        }
    }

    #[test]
    fn length_prefixing_prevents_part_smearing() {
        // Moving a byte from the end of the binary into the batch text
        // must change the key (the parts are length-prefixed, so the
        // concatenated key material cannot alias).
        let (bin, insns, _, patches) = job();
        let cfg = RewriteConfig::default();
        let a = rewrite_key(&bin, &insns, &[], &patches, &cfg);
        let b = rewrite_key(&bin[..bin.len() - 1], &insns, &[], &patches, &cfg);
        assert_ne!(a, b);
    }
}
