//! # e9proto — the streaming patch-command protocol and backend daemon
//!
//! The original E9Patch is two decoupled tools (paper §2, §6): an
//! **`e9tool` frontend** that disassembles and decides *what* to patch, and
//! an **`e9patch` backend** that owns the control-flow-agnostic rewriting
//! and decides *how*. They communicate over a stream of JSON-RPC patch
//! commands, which is what lets arbitrary frontends — different
//! disassemblers, different languages — drive the same rewriter.
//!
//! This crate reproduces that interface for the Rust workspace:
//!
//! * [`json`] — a hand-rolled, hermetic JSON parser and canonical
//!   serializer (u64-exact integers, depth-bounded, panic-free);
//! * [`msg`] — the typed command set (`version`, `binary`, `option`,
//!   `reserve`, `instruction`, `patch`, `emit`, `shutdown`), request and
//!   response envelopes, and error codes;
//! * [`session`] — the per-connection state machine that buffers commands
//!   and feeds the in-process [`e9patch::Rewriter`] on `emit`, preserving
//!   the paper's S1 reverse-order batch semantics;
//! * [`server`] — the serve loop: stdio sessions and a Unix-socket daemon
//!   with one thread per connection;
//! * [`reactor`] — the default serving mode (Linux): a single-threaded
//!   epoll event loop (`e9loop`) multiplexing every connection, with
//!   admission control and graceful drain; replies are byte-identical to
//!   the threaded path;
//! * [`client`] — the frontend side, used by `e9tool patch --backend`.
//!
//! The `e9patchd` binary wraps [`server`] as a standalone daemon.
//!
//! ## Wire format
//!
//! One JSON object per `\n`-terminated line; requests carry
//! `{"jsonrpc","id","method","params"}`, responses echo the id with either
//! `result` or `error`. Binary payloads are lowercase hex strings. The
//! serializer is canonical (no whitespace, insertion-ordered keys), so a
//! session transcript — and therefore the emitted binary — is a pure
//! function of the commands sent: the determinism gate extends across the
//! process boundary.

pub mod cachekey;
pub mod client;
pub mod json;
pub mod msg;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod session;

pub use client::{ClientError, ProtoClient};
pub use json::{Json, JsonError};
pub use msg::{hex_decode, hex_encode, CacheAction, CacheDisposition, CacheStatsReply, Command,
              EmitReply, HookReply, Request, Response, RpcError, PROTOCOL_VERSION};
pub use session::Session;
