//! The server loop: line-delimited JSON-RPC sessions over arbitrary byte
//! streams, stdio, and a Unix-domain socket (one thread per connection).
//!
//! Each connection gets its own [`Session`]; a `shutdown` command ends the
//! connection and — for the socket server — stops the accept loop, so a
//! client can bring the daemon down cleanly. [`serve_unix`] also accepts a
//! connection budget (`max_conns`) for run-one-job-and-exit uses such as
//! CI smoke stages.

use crate::json;
use crate::msg::{code, Request, Response, RpcError};
use crate::session::Session;
use std::io::{self, BufRead, BufReader, Write};

/// Serve one session: read request lines from `reader`, write response
/// lines to `writer`, until EOF or `shutdown`.
///
/// Returns `true` if the session ended because of a `shutdown` command.
///
/// # Errors
///
/// Only transport-level I/O failures; protocol errors are reported to the
/// client in-band and never tear down the loop.
pub fn serve_connection<R: BufRead, W: Write>(reader: &mut R, writer: &mut W) -> io::Result<bool> {
    let mut session = Session::new();
    let mut line = Vec::new();
    loop {
        line.clear();
        if reader.read_until(b'\n', &mut line)? == 0 {
            return Ok(false); // EOF
        }
        if line.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        let response = dispatch_line(&mut session, &line);
        writer.write_all(response.encode().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if session.shutdown_requested() {
            return Ok(true);
        }
    }
}

/// Parse and execute one raw request line against `session`.
///
/// This is the protocol's single choke point: malformed JSON becomes a
/// [`code::PARSE`] error with a `null` id, a bad envelope or unknown
/// method keeps its id when one is recoverable, and session errors are
/// forwarded verbatim.
pub fn dispatch_line(session: &mut Session, line: &[u8]) -> Response {
    let value = match json::parse(trim_ascii(line)) {
        Ok(v) => v,
        Err(e) => {
            return Response::err(None, RpcError::new(code::PARSE, e.to_string()));
        }
    };
    match Request::decode(&value) {
        Ok(req) => {
            let body = session.handle(req.cmd);
            Response { id: Some(req.id), body }
        }
        Err(e) => {
            // Salvage the id when the envelope carried one.
            let id = value.get("id").and_then(json::Json::as_u64);
            Response::err(id, e)
        }
    }
}

fn trim_ascii(mut b: &[u8]) -> &[u8] {
    while let [rest @ .., last] = b {
        if last.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    while let [first, rest @ ..] = b {
        if first.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    b
}

/// Serve one session over the process's stdin/stdout (the `e9patchd`
/// default mode: the client owns the process and its pipes).
///
/// # Errors
///
/// Transport-level I/O failures.
pub fn serve_stdio() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    serve_connection(&mut reader, &mut writer)?;
    Ok(())
}

/// Unix-domain socket server: accept loop with one thread per connection.
#[cfg(unix)]
pub mod unix {
    use super::*;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Bind `path` and serve until a client sends `shutdown` or `max_conns`
    /// connections have been accepted (`None` = unlimited). The socket file
    /// is replaced on bind and removed on exit.
    ///
    /// # Errors
    ///
    /// Bind/accept failures. Per-connection I/O errors only end that
    /// connection.
    pub fn serve_unix(path: &Path, max_conns: Option<usize>) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let sockpath: PathBuf = path.to_path_buf();
        let mut handles = Vec::new();
        let mut accepted = 0usize;
        while !stop.load(Ordering::SeqCst) {
            let (stream, _) = listener.accept()?;
            if stop.load(Ordering::SeqCst) {
                break; // the wake-up connection after a shutdown
            }
            accepted += 1;
            let stop = Arc::clone(&stop);
            let wake = sockpath.clone();
            handles.push(std::thread::spawn(move || {
                if let Ok(true) = handle_stream(stream) {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it can observe the flag.
                    let _ = UnixStream::connect(&wake);
                }
            }));
            if let Some(max) = max_conns {
                if accepted >= max {
                    break;
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&sockpath);
        Ok(())
    }

    fn handle_stream(stream: UnixStream) -> io::Result<bool> {
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        serve_connection(&mut reader, &mut writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Command, EmitReply};

    fn run_lines(input: &str) -> Vec<Response> {
        let mut reader = io::Cursor::new(input.as_bytes().to_vec());
        let mut out: Vec<u8> = Vec::new();
        serve_connection(&mut reader, &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Response::decode(&json::parse(l.as_bytes()).unwrap()).unwrap())
            .collect()
    }

    #[test]
    fn parse_errors_get_null_id_and_continue() {
        let responses = run_lines(
            "this is not json\n\
             {\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"version\",\"params\":{\"version\":1}}\n",
        );
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].id, None);
        assert_eq!(responses[0].body.as_ref().unwrap_err().code, code::PARSE);
        assert_eq!(responses[1].id, Some(3));
        assert!(responses[1].body.is_ok());
    }

    #[test]
    fn unknown_method_keeps_its_id() {
        let responses = run_lines("{\"jsonrpc\":\"2.0\",\"id\":9,\"method\":\"frobnicate\"}\n");
        assert_eq!(responses[0].id, Some(9));
        assert_eq!(
            responses[0].body.as_ref().unwrap_err().code,
            code::METHOD_NOT_FOUND
        );
    }

    #[test]
    fn blank_lines_are_skipped() {
        let responses = run_lines(
            "\n  \n{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"version\",\"params\":{\"version\":1}}\n\n",
        );
        assert_eq!(responses.len(), 1);
    }

    #[test]
    fn shutdown_ends_the_connection() {
        let input = "\
            {\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"version\",\"params\":{\"version\":1}}\n\
            {\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"shutdown\",\"params\":{}}\n\
            {\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"emit\",\"params\":{}}\n";
        let mut reader = io::Cursor::new(input.as_bytes().to_vec());
        let mut out: Vec<u8> = Vec::new();
        let shut = serve_connection(&mut reader, &mut out).unwrap();
        assert!(shut);
        // The post-shutdown request was never processed.
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 2);
    }

    #[test]
    fn full_wire_session_round_trips() {
        // Drive a complete patch job purely through the byte-stream
        // interface and check the reply decodes.
        let code_bytes = vec![
            0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0xC3, //
            0x0F, 0x1F, 0x44, 0x00, 0x00, 0x0F, 0x1F, 0x44, 0x00, 0x00,
        ];
        let mut b = e9elf::build::ElfBuilder::exec(0x400000);
        b.text(code_bytes.clone(), 0x401000);
        b.entry(0x401000);
        let bin = b.build();
        let disasm = e9x86::decode::linear_sweep(&code_bytes, 0x401000);

        let mut input = String::new();
        let mut id = 0u64;
        let mut push = |cmd: Command, input: &mut String| {
            id += 1;
            input.push_str(&Request { id, cmd }.encode());
            input.push('\n');
        };
        push(Command::Version { version: 1 }, &mut input);
        push(Command::Binary { bytes: bin }, &mut input);
        for i in &disasm {
            push(
                Command::Instruction {
                    addr: i.addr,
                    bytes: i.bytes().to_vec(),
                },
                &mut input,
            );
        }
        push(
            Command::Patch {
                addr: 0x401000,
                template: e9patch::Template::Empty,
            },
            &mut input,
        );
        push(Command::Emit, &mut input);

        let responses = run_lines(&input);
        let last = responses.last().unwrap();
        let reply = EmitReply::from_json(last.body.as_ref().unwrap()).unwrap();
        assert_eq!(reply.stats.succeeded(), 1);
        assert!(reply.binary.len() > 0x1000);
    }
}
