//! The server loop: line-delimited JSON-RPC sessions over arbitrary byte
//! streams, stdio, and a Unix-domain socket (one thread per connection).
//!
//! Each connection gets its own [`Session`]; a `shutdown` command ends the
//! connection and — for the socket server — stops the accept loop, so a
//! client can bring the daemon down cleanly. [`serve_unix`] also accepts a
//! connection budget (`max_conns`) for run-one-job-and-exit uses such as
//! CI smoke stages.

use crate::json;
use crate::msg::{code, Request, Response, RpcError};
use crate::session::{Session, SessionLimits};
use std::io::{self, BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Load-shedding counters, shared by every connection of one server so
/// the `health` command can report how much work was refused. Both
/// counters only ever grow.
#[derive(Debug, Default)]
pub struct ShedCounters {
    /// Connections refused at accept time (admission control — the
    /// reactor's `max_clients` cap).
    pub admission: AtomicU64,
    /// Requests rejected with [`code::BUSY`] after admission.
    pub busy: AtomicU64,
}

impl ShedCounters {
    /// Snapshot `(admission, busy)`.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.admission.load(Ordering::Relaxed),
            self.busy.load(Ordering::Relaxed),
        )
    }
}

/// Serving-path hardening knobs: everything a hostile or broken client can
/// exhaust is bounded here, not in the session state machine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Longest accepted request line in bytes, newline included. Binaries
    /// travel hex-encoded on one line, so this caps the largest `binary`
    /// payload at roughly half this value; raise it (or `e9patchd
    /// --max-line-bytes`) for very large inputs. Oversized lines are
    /// drained and answered with a [`code::LIMIT`] error; the connection
    /// stays up.
    pub max_line_bytes: usize,
    /// Per-session resource quotas, enforced by [`Session`].
    pub limits: SessionLimits,
    /// Socket read/write timeout (`None` = block forever). Only the Unix
    /// socket transport can enforce this; stdio ignores it.
    pub io_timeout: Option<Duration>,
    /// Default planner worker count for every session served with this
    /// config (`e9patchd --jobs`). A client's explicit `option jobs`
    /// overrides it; `None` keeps the sequential planner.
    pub default_jobs: Option<usize>,
    /// Shared rewrite cache (`e9patchd --cache-dir` / `--cache-mem-bytes`).
    /// One [`Arc`](std::sync::Arc) handed to every connection's session,
    /// so all clients pool artifacts; `None` disables caching.
    pub cache: Option<std::sync::Arc<e9cache::Cache>>,
    /// Which serving core this config drives, as reported by the `health`
    /// command: `stdio`, `threaded`, `reactor`, or `in-process`.
    pub serving_mode: &'static str,
    /// Shared load-shedding counters, reported by `health`.
    pub shed: Arc<ShedCounters>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_line_bytes: 64 << 20,
            limits: SessionLimits::default(),
            io_timeout: Some(Duration::from_millis(30_000)),
            default_jobs: None,
            cache: None,
            serving_mode: "in-process",
            shed: Arc::new(ShedCounters::default()),
        }
    }
}

/// Outcome of one capped line read.
enum LineRead {
    /// Clean end of stream.
    Eof,
    /// A complete line is in the buffer.
    Line,
    /// The line exceeded the cap; it was drained up to its newline (or
    /// EOF) and the buffer contents are meaningless.
    Oversized,
}

/// Read one `\n`-terminated line into `buf`, refusing to buffer more than
/// `cap` bytes. An over-long line is consumed (so the stream stays framed)
/// but not stored.
fn read_capped_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    cap: usize,
) -> io::Result<LineRead> {
    buf.clear();
    loop {
        // EINTR during a socket read is not end-of-session: `fill_buf`
        // propagates it raw (unlike `write_all`, which retries
        // internally), so without this retry a signal delivered to a
        // serving thread — profiler, debugger attach, SIGCHLD — would
        // tear down an innocent connection.
        let chunk = match e9failpt::fail_io("proto.server.read").and_then(|()| reader.fill_buf()) {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => other?,
        };
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line // unterminated final line
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let take = pos + 1;
                let fits = buf.len().saturating_add(take) <= cap;
                if fits {
                    buf.extend_from_slice(&chunk[..take]);
                }
                reader.consume(take);
                return Ok(if fits { LineRead::Line } else { LineRead::Oversized });
            }
            None => {
                let take = chunk.len();
                if buf.len().saturating_add(take) > cap {
                    reader.consume(take);
                    drain_to_newline(reader)?;
                    return Ok(LineRead::Oversized);
                }
                buf.extend_from_slice(chunk);
                reader.consume(take);
            }
        }
    }
}

/// Discard stream bytes up to and including the next newline (or EOF).
fn drain_to_newline<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let chunk = match reader.fill_buf() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => other?,
        };
        if chunk.is_empty() {
            return Ok(());
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let n = chunk.len();
                reader.consume(n);
            }
        }
    }
}

/// Serve one session: read request lines from `reader`, write response
/// lines to `writer`, until EOF or `shutdown`. Uses [`ServeConfig`]
/// defaults; see [`serve_connection_with`].
///
/// Returns `true` if the session ended because of a `shutdown` command.
///
/// # Errors
///
/// Only transport-level I/O failures; protocol errors are reported to the
/// client in-band and never tear down the loop.
pub fn serve_connection<R: BufRead, W: Write>(reader: &mut R, writer: &mut W) -> io::Result<bool> {
    serve_connection_with(reader, writer, &ServeConfig::default())
}

/// [`serve_connection`] with explicit hardening knobs.
///
/// Three classes of bad input are survived in-band, keeping the
/// connection and the accept loop alive:
///
/// * request lines longer than `config.max_line_bytes` → drained,
///   answered with [`code::LIMIT`];
/// * malformed or over-quota requests → typed errors from
///   [`dispatch_line`] / [`Session`];
/// * a panic inside request handling → caught here, answered with
///   [`code::INTERNAL`]. [`dispatch_line`] itself stays panic-free by
///   construction (the fault-injection campaign drives it directly and
///   treats any unwind as a bug); this catch is defence in depth so one
///   connection's bug can never take the daemon down.
///
/// # Errors
///
/// Only transport-level I/O failures (including read timeouts configured
/// on the underlying stream).
pub fn serve_connection_with<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    config: &ServeConfig,
) -> io::Result<bool> {
    let mut session = Session::with_limits(config.limits.clone());
    session.set_default_jobs(config.default_jobs);
    session.set_cache(config.cache.clone());
    session.set_health(config.serving_mode, Arc::clone(&config.shed));
    let mut line = Vec::new();
    loop {
        let response = match read_capped_line(reader, &mut line, config.max_line_bytes)? {
            LineRead::Eof => return Ok(false),
            LineRead::Oversized => Response::err(
                None,
                RpcError::new(
                    code::LIMIT,
                    format!(
                        "request line exceeds {} bytes; see --max-line-bytes",
                        config.max_line_bytes
                    ),
                ),
            ),
            LineRead::Line => {
                if line.iter().all(|b| b.is_ascii_whitespace()) {
                    continue;
                }
                match catch_unwind(AssertUnwindSafe(|| dispatch_line(&mut session, &line))) {
                    Ok(resp) => resp,
                    Err(_) => Response::err(
                        None,
                        RpcError::new(code::INTERNAL, "internal error while handling request"),
                    ),
                }
            }
        };
        let text = response.encode();
        // The injection point sits *before* any bytes land, so a retried
        // interrupt can never duplicate a partial response. (Real EINTR
        // mid-write is already absorbed inside `write_all`.)
        e9failpt::retry::retry_interrupted(e9failpt::retry::EINTR_BUDGET, || {
            e9failpt::fail_io("proto.server.write")?;
            writer.write_all(text.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()
        })?;
        if session.shutdown_requested() {
            return Ok(true);
        }
    }
}

/// Parse and execute one raw request line against `session`.
///
/// This is the protocol's single choke point: malformed JSON becomes a
/// [`code::PARSE`] error with a `null` id, a bad envelope or unknown
/// method keeps its id when one is recoverable, and session errors are
/// forwarded verbatim.
pub fn dispatch_line(session: &mut Session, line: &[u8]) -> Response {
    let value = match json::parse(trim_ascii(line)) {
        Ok(v) => v,
        Err(e) => {
            return Response::err(None, RpcError::new(code::PARSE, e.to_string()));
        }
    };
    match Request::decode(&value) {
        Ok(req) => {
            let body = session.handle(req.cmd);
            Response { id: Some(req.id), body }
        }
        Err(e) => {
            // Salvage the id when the envelope carried one.
            let id = value.get("id").and_then(json::Json::as_u64);
            Response::err(id, e)
        }
    }
}

fn trim_ascii(mut b: &[u8]) -> &[u8] {
    while let [rest @ .., last] = b {
        if last.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    while let [first, rest @ ..] = b {
        if first.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    b
}

/// Serve one session over the process's stdin/stdout (the `e9patchd`
/// default mode: the client owns the process and its pipes).
///
/// # Errors
///
/// Transport-level I/O failures.
pub fn serve_stdio() -> io::Result<()> {
    serve_stdio_with(&ServeConfig::default())
}

/// [`serve_stdio`] with explicit hardening knobs. `config.io_timeout` is
/// ignored: pipes have no portable read timeout, and the client owns the
/// process anyway.
///
/// # Errors
///
/// Transport-level I/O failures.
pub fn serve_stdio_with(config: &ServeConfig) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    serve_connection_with(&mut reader, &mut writer, config)?;
    Ok(())
}

/// Unix-domain socket server: accept loop with one thread per connection.
#[cfg(unix)]
pub mod unix {
    use super::*;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Bind `path` and serve until a client sends `shutdown` or `max_conns`
    /// connections have been accepted (`None` = unlimited). The socket file
    /// is replaced on bind and removed on exit. Uses [`ServeConfig`]
    /// defaults; see [`serve_unix_with`].
    ///
    /// # Errors
    ///
    /// Bind/accept failures. Per-connection I/O errors only end that
    /// connection.
    pub fn serve_unix(path: &Path, max_conns: Option<usize>) -> io::Result<()> {
        serve_unix_with(path, max_conns, &ServeConfig::default())
    }

    /// [`serve_unix`] with explicit hardening knobs.
    ///
    /// Each accepted stream gets `config.io_timeout` as both its read and
    /// write timeout, so a client that connects and then stalls (or stops
    /// draining responses) is disconnected instead of pinning a server
    /// thread forever. Connection threads are panic-isolated twice over:
    /// request handling is caught inside [`serve_connection_with`], and a
    /// residual unwind in the transport layer is caught here so it can
    /// never poison the accept loop. On exit (shutdown or connection
    /// budget) all live connection threads are joined — a graceful drain,
    /// not an abort — before the socket file is removed.
    ///
    /// # Errors
    ///
    /// Bind/accept failures. Per-connection I/O errors only end that
    /// connection.
    pub fn serve_unix_with(
        path: &Path,
        max_conns: Option<usize>,
        config: &ServeConfig,
    ) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let sockpath: PathBuf = path.to_path_buf();
        let mut handles = Vec::new();
        let mut accepted = 0usize;
        while !stop.load(Ordering::SeqCst) {
            // `accept` is the classic EINTR victim: a stray signal must
            // re-check the stop flag and keep accepting, not kill the
            // daemon's accept loop.
            let (stream, _) = match e9failpt::fail_io("proto.server.accept")
                .and_then(|()| listener.accept())
            {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => other?,
            };
            if stop.load(Ordering::SeqCst) {
                break; // the wake-up connection after a shutdown
            }
            accepted += 1;
            let stop = Arc::clone(&stop);
            let wake = sockpath.clone();
            let config = config.clone();
            handles.push(std::thread::spawn(move || {
                let served =
                    catch_unwind(AssertUnwindSafe(|| handle_stream(stream, &config)));
                if let Ok(Ok(true)) = served {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it can observe the flag.
                    let _ = UnixStream::connect(&wake);
                }
            }));
            if let Some(max) = max_conns {
                if accepted >= max {
                    break;
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&sockpath);
        Ok(())
    }

    fn handle_stream(stream: UnixStream, config: &ServeConfig) -> io::Result<bool> {
        stream.set_read_timeout(config.io_timeout)?;
        stream.set_write_timeout(config.io_timeout)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        serve_connection_with(&mut reader, &mut writer, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Command, EmitReply};

    fn run_lines(input: &str) -> Vec<Response> {
        let mut reader = io::Cursor::new(input.as_bytes().to_vec());
        let mut out: Vec<u8> = Vec::new();
        serve_connection(&mut reader, &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Response::decode(&json::parse(l.as_bytes()).unwrap()).unwrap())
            .collect()
    }

    #[test]
    fn parse_errors_get_null_id_and_continue() {
        let responses = run_lines(
            "this is not json\n\
             {\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"version\",\"params\":{\"version\":1}}\n",
        );
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].id, None);
        assert_eq!(responses[0].body.as_ref().unwrap_err().code, code::PARSE);
        assert_eq!(responses[1].id, Some(3));
        assert!(responses[1].body.is_ok());
    }

    #[test]
    fn unknown_method_keeps_its_id() {
        let responses = run_lines("{\"jsonrpc\":\"2.0\",\"id\":9,\"method\":\"frobnicate\"}\n");
        assert_eq!(responses[0].id, Some(9));
        assert_eq!(
            responses[0].body.as_ref().unwrap_err().code,
            code::METHOD_NOT_FOUND
        );
    }

    #[test]
    fn oversized_lines_get_limit_error_and_continue() {
        let config = ServeConfig {
            max_line_bytes: 128,
            ..ServeConfig::default()
        };
        let big = "x".repeat(4096);
        let input = format!(
            "{{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"{big}\"}}\n\
             {{\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"version\",\"params\":{{\"version\":1}}}}\n"
        );
        let mut reader = io::Cursor::new(input.into_bytes());
        let mut out: Vec<u8> = Vec::new();
        serve_connection_with(&mut reader, &mut out, &config).unwrap();
        let responses: Vec<Response> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Response::decode(&json::parse(l.as_bytes()).unwrap()).unwrap())
            .collect();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].id, None);
        assert_eq!(responses[0].body.as_ref().unwrap_err().code, code::LIMIT);
        // The stream stayed framed: the next request still succeeds.
        assert_eq!(responses[1].id, Some(2));
        assert!(responses[1].body.is_ok());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let responses = run_lines(
            "\n  \n{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"version\",\"params\":{\"version\":1}}\n\n",
        );
        assert_eq!(responses.len(), 1);
    }

    #[test]
    fn shutdown_ends_the_connection() {
        let input = "\
            {\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"version\",\"params\":{\"version\":1}}\n\
            {\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"shutdown\",\"params\":{}}\n\
            {\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"emit\",\"params\":{}}\n";
        let mut reader = io::Cursor::new(input.as_bytes().to_vec());
        let mut out: Vec<u8> = Vec::new();
        let shut = serve_connection(&mut reader, &mut out).unwrap();
        assert!(shut);
        // The post-shutdown request was never processed.
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 2);
    }

    #[test]
    fn full_wire_session_round_trips() {
        // Drive a complete patch job purely through the byte-stream
        // interface and check the reply decodes.
        let code_bytes = vec![
            0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0xC3, //
            0x0F, 0x1F, 0x44, 0x00, 0x00, 0x0F, 0x1F, 0x44, 0x00, 0x00,
        ];
        let mut b = e9elf::build::ElfBuilder::exec(0x400000);
        b.text(code_bytes.clone(), 0x401000);
        b.entry(0x401000);
        let bin = b.build();
        let disasm = e9x86::decode::linear_sweep(&code_bytes, 0x401000);

        let mut input = String::new();
        let mut id = 0u64;
        let mut push = |cmd: Command, input: &mut String| {
            id += 1;
            input.push_str(&Request { id, cmd }.encode());
            input.push('\n');
        };
        push(Command::Version { version: 1 }, &mut input);
        push(Command::Binary { bytes: bin, digest: None }, &mut input);
        for i in &disasm {
            push(
                Command::Instruction {
                    addr: i.addr,
                    bytes: i.bytes().to_vec(),
                },
                &mut input,
            );
        }
        push(
            Command::Patch {
                addr: 0x401000,
                template: e9patch::Template::Empty,
            },
            &mut input,
        );
        push(Command::Emit, &mut input);

        let responses = run_lines(&input);
        let last = responses.last().unwrap();
        let reply = EmitReply::from_json(last.body.as_ref().unwrap()).unwrap();
        assert_eq!(reply.stats.succeeded(), 1);
        assert!(reply.binary.len() > 0x1000);
    }
}
