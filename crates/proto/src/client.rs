//! Frontend-side protocol client.
//!
//! A [`ProtoClient`] owns one request/response byte stream to a patch
//! backend and exposes the command set as typed calls. Three transports:
//!
//! * [`ProtoClient::spawn`] — launch an `e9patchd` child and talk over its
//!   stdio (the `e9tool patch --backend stdio` path);
//! * [`ProtoClient::connect_unix`] — connect to a daemon's Unix socket;
//! * [`ProtoClient::connect_tcp`] — connect to a daemon's TCP listener
//!   (the `e9tool patch --backend tcp:addr:port` path);
//! * [`ProtoClient::in_process`] — a loopback server thread over a socket
//!   pair. Full wire fidelity (every byte crosses the serializer, parser
//!   and session state machine) without process management; used by tests
//!   and benchmarks.

use crate::json;
use crate::msg::{CacheAction, CacheStatsReply, Command, EmitReply, HealthReply, HookReply,
                 Request, Response, RpcError, PROTOCOL_VERSION};
use e9failpt::retry::{retry_interrupted, with_backoff, Backoff, EINTR_BUDGET};
use e9patch::{ExtraSegment, Template};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::PathBuf;

/// A client-side protocol failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport I/O failed.
    Io(io::Error),
    /// The server's bytes did not parse as protocol responses.
    Protocol(String),
    /// The server answered with an in-band error.
    Rpc(RpcError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "backend i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "backend protocol: {m}"),
            ClientError::Rpc(e) => write!(f, "backend: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RpcError> for ClientError {
    fn from(e: RpcError) -> Self {
        ClientError::Rpc(e)
    }
}

/// What a client is connected to (used for teardown).
enum Transport {
    /// A spawned `e9patchd` child process.
    Child(std::process::Child),
    /// A connected stream (socket) or loopback pair.
    Stream,
}

/// A connection to a patch backend.
pub struct ProtoClient {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    transport: Transport,
    next_id: u64,
}

impl ProtoClient {
    /// Spawn `daemon` (an `e9patchd` binary) and connect over its stdio.
    ///
    /// # Errors
    ///
    /// Spawn failures.
    pub fn spawn(daemon: &std::path::Path) -> Result<ProtoClient, ClientError> {
        let mut child = std::process::Command::new(daemon)
            .arg("--stdio")
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| {
                ClientError::Protocol(format!("cannot spawn {}: {e}", daemon.display()))
            })?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        Ok(ProtoClient {
            reader: BufReader::new(Box::new(stdout)),
            writer: Box::new(stdin),
            transport: Transport::Child(child),
            next_id: 0,
        })
    }

    /// Spawn the default daemon: `$E9PATCHD` if set, else an `e9patchd`
    /// binary next to the current executable, else `e9patchd` on `PATH`.
    ///
    /// # Errors
    ///
    /// Spawn failures.
    pub fn spawn_default() -> Result<ProtoClient, ClientError> {
        ProtoClient::spawn(&default_daemon_path())
    }

    /// Connect to a daemon listening on a Unix socket.
    ///
    /// # Errors
    ///
    /// Connection failures.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> Result<ProtoClient, ClientError> {
        e9failpt::fail_io("proto.client.connect")?;
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(ProtoClient {
            reader: BufReader::new(Box::new(stream)),
            writer: Box::new(writer),
            transport: Transport::Stream,
            next_id: 0,
        })
    }

    /// Connect to a daemon's Unix socket, retrying on the shared
    /// [`Backoff::standard`] schedule while the daemon is still starting
    /// up (socket file absent or not yet listening): roughly 20 ms,
    /// 40 ms, 80 ms, ... between attempts, capped at 1 s per wait and
    /// `attempts` tries overall, so a daemon that never comes up fails
    /// the connect in bounded time instead of hanging the frontend.
    ///
    /// # Errors
    ///
    /// The final attempt's connection failure.
    #[cfg(unix)]
    pub fn connect_unix_retry(
        path: &std::path::Path,
        attempts: u32,
    ) -> Result<ProtoClient, ClientError> {
        with_backoff(Backoff::standard(attempts as usize), || {
            ProtoClient::connect_unix(path)
        })
    }

    /// Connect to a daemon listening on TCP (`e9patchd --listen-tcp`).
    ///
    /// # Errors
    ///
    /// Address resolution or connection failures.
    pub fn connect_tcp(addr: &str) -> Result<ProtoClient, ClientError> {
        e9failpt::fail_io("proto.client.connect")?;
        let stream = std::net::TcpStream::connect(addr)?;
        // One request line, one reply line: never wait for a full segment.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(ProtoClient {
            reader: BufReader::new(Box::new(stream)),
            writer: Box::new(writer),
            transport: Transport::Stream,
            next_id: 0,
        })
    }

    /// Connect to a daemon's TCP listener on the same
    /// [`Backoff::standard`] schedule as
    /// [`ProtoClient::connect_unix_retry`].
    ///
    /// # Errors
    ///
    /// The final attempt's connection failure.
    pub fn connect_tcp_retry(addr: &str, attempts: u32) -> Result<ProtoClient, ClientError> {
        with_backoff(Backoff::standard(attempts as usize), || {
            ProtoClient::connect_tcp(addr)
        })
    }

    /// A loopback backend: a server thread on the far end of a socket
    /// pair. The thread exits when the client drops (EOF on its stream).
    ///
    /// # Errors
    ///
    /// Socket-pair creation failures.
    #[cfg(unix)]
    pub fn in_process() -> Result<ProtoClient, ClientError> {
        let (ours, theirs) = std::os::unix::net::UnixStream::pair()?;
        std::thread::spawn(move || {
            let mut writer = match theirs.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            let mut reader = BufReader::new(theirs);
            let _ = crate::server::serve_connection(&mut reader, &mut writer);
        });
        let writer = ours.try_clone()?;
        Ok(ProtoClient {
            reader: BufReader::new(Box::new(ours)),
            writer: Box::new(writer),
            transport: Transport::Stream,
            next_id: 0,
        })
    }

    /// One request/response round trip.
    ///
    /// # Errors
    ///
    /// Transport failures, unparsable responses, id mismatches, or an
    /// in-band [`RpcError`] from the server.
    pub fn call(&mut self, cmd: Command) -> Result<json::Json, ClientError> {
        self.next_id += 1;
        let req = Request {
            id: self.next_id,
            cmd,
        };
        let text = req.encode();
        // Injection points fire *before* any bytes move, so a retried
        // interrupt can never send half a request or splice two reads;
        // real mid-stream EINTR is already absorbed inside
        // `write_all`/`read_line`.
        if let Err(err) = retry_interrupted(EINTR_BUDGET, || {
            e9failpt::fail_io("proto.client.write")?;
            self.writer.write_all(text.as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.writer.flush()
        }) {
            return Err(self.reply_for_failed_write(err));
        }
        let mut line = String::new();
        let n = retry_interrupted(EINTR_BUDGET, || {
            e9failpt::fail_io("proto.client.read")?;
            self.reader.read_line(&mut line)
        })?;
        if n == 0 {
            return Err(ClientError::Protocol("backend closed the connection".into()));
        }
        let value = json::parse(line.trim().as_bytes())
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        let resp = Response::decode(&value).map_err(ClientError::Protocol)?;
        if resp.id != Some(req.id) {
            // Errors refused before parsing (oversized lines, BUSY load
            // shedding) carry a null id; surface them as typed RPC
            // errors, not a framing failure.
            if resp.id.is_none() {
                if let Err(e) = resp.body {
                    return Err(ClientError::Rpc(e));
                }
            }
            return Err(ClientError::Protocol(format!(
                "response id {:?} for request {}",
                resp.id, req.id
            )));
        }
        resp.body.map_err(ClientError::Rpc)
    }

    /// A write that dies because the peer closed often races a typed
    /// in-band refusal: the server answers (BUSY shedding, oversized
    /// LIMIT) and closes the connection before our request lands, so the
    /// send fails while the refusal sits unread in our receive buffer. A
    /// closed peer can never block a read — buffered bytes drain, then
    /// EOF (or the reset surfaces as an error) — so pull one line and
    /// return the typed error instead of the raw transport failure.
    /// Anything other than a null-id error reply keeps the original
    /// error: only pre-parse refusals are ownerless by design.
    fn reply_for_failed_write(&mut self, err: std::io::Error) -> ClientError {
        use std::io::ErrorKind;
        if !matches!(
            err.kind(),
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
        ) {
            return ClientError::Io(err);
        }
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            _ => return ClientError::Io(err),
        }
        let Ok(value) = json::parse(line.trim().as_bytes()) else {
            return ClientError::Io(err);
        };
        let Ok(resp) = Response::decode(&value) else {
            return ClientError::Io(err);
        };
        match resp {
            Response {
                id: None,
                body: Err(e),
            } => ClientError::Rpc(e),
            _ => ClientError::Io(err),
        }
    }

    /// Negotiate the protocol version (must be the first call).
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`].
    pub fn negotiate(&mut self) -> Result<(), ClientError> {
        self.call(Command::Version {
            version: PROTOCOL_VERSION,
        })?;
        Ok(())
    }

    /// Send the input binary.
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`].
    pub fn binary(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.call(Command::Binary {
            bytes: bytes.to_vec(),
            digest: None,
        })?;
        Ok(())
    }

    /// Send the input binary together with its pre-computed tree digest.
    /// The server verifies the digest once at intake and reuses it for
    /// cache keying on every `emit`, so the input is hashed exactly once
    /// end to end.
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`] — a mismatched digest is rejected with
    /// `INVALID_PARAMS`.
    pub fn binary_with_digest(
        &mut self,
        bytes: &[u8],
        digest: &e9cache::Digest,
    ) -> Result<(), ClientError> {
        self.call(Command::Binary {
            bytes: bytes.to_vec(),
            digest: Some(*digest),
        })?;
        Ok(())
    }

    /// Set one rewriter option.
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`].
    pub fn option(&mut self, name: &str, value: &str) -> Result<(), ClientError> {
        self.call(Command::Option {
            name: name.to_string(),
            value: value.to_string(),
        })?;
        Ok(())
    }

    /// Reserve an extra output segment.
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`].
    pub fn reserve(&mut self, seg: &ExtraSegment) -> Result<(), ClientError> {
        self.call(Command::Reserve {
            vaddr: seg.vaddr,
            bytes: seg.bytes.clone(),
            exec: seg.exec,
            write: seg.write,
        })?;
        Ok(())
    }

    /// Declare one instruction of disassembly info.
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`].
    pub fn instruction(&mut self, addr: u64, bytes: &[u8]) -> Result<(), ClientError> {
        self.call(Command::Instruction {
            addr,
            bytes: bytes.to_vec(),
        })?;
        Ok(())
    }

    /// Request a patch (buffered server-side until emit).
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`].
    pub fn patch(&mut self, addr: u64, template: Template) -> Result<(), ClientError> {
        self.call(Command::Patch { addr, template })?;
        Ok(())
    }

    /// Plan a hook batch server-side from `spec`. The server resolves
    /// symbols against the loaded binary, buffers the resulting patch
    /// batch, and returns the planned hook records; a following
    /// [`emit`](ProtoClient::emit) runs the rewrite.
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`], plus reply-decoding failures.
    pub fn hook(&mut self, spec: &e9hook::HookSpec) -> Result<HookReply, ClientError> {
        let v = self.call(Command::Hook {
            funcs: spec.funcs.clone(),
            addrs: spec.addrs.clone(),
            call_original: spec.call_original,
            payload: spec.payload.clone(),
        })?;
        HookReply::from_json(&v).map_err(ClientError::Protocol)
    }

    /// Run the rewrite and fetch the patched binary + statistics.
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`], plus reply-decoding failures.
    pub fn emit(&mut self) -> Result<EmitReply, ClientError> {
        let v = self.call(Command::Emit)?;
        EmitReply::from_json(&v).map_err(ClientError::Protocol)
    }

    /// Fetch the server's rewrite-cache counters.
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`], plus reply-decoding failures.
    pub fn cache_stats(&mut self) -> Result<CacheStatsReply, ClientError> {
        let v = self.call(Command::Cache {
            action: CacheAction::Stats,
        })?;
        CacheStatsReply::from_json(&v).map_err(ClientError::Protocol)
    }

    /// Drop every entry from the server's rewrite cache. Returns whether
    /// a cache was configured at all.
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`].
    pub fn cache_clear(&mut self) -> Result<bool, ClientError> {
        let v = self.call(Command::Cache {
            action: CacheAction::Clear,
        })?;
        Ok(v.get("cleared").and_then(json::Json::as_bool).unwrap_or(false))
    }

    /// Fetch the server's per-subsystem health snapshot (serving mode,
    /// shed counters, fault injection, cache/breaker state). Works even
    /// before [`negotiate`](ProtoClient::negotiate).
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`], plus reply-decoding failures.
    pub fn health(&mut self) -> Result<HealthReply, ClientError> {
        let v = self.call(Command::Health)?;
        HealthReply::from_json(&v).map_err(ClientError::Protocol)
    }

    /// Ask the backend to shut down.
    ///
    /// # Errors
    ///
    /// As [`ProtoClient::call`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(Command::Shutdown)?;
        Ok(())
    }
}

impl Drop for ProtoClient {
    fn drop(&mut self) {
        if let Transport::Child(child) = &mut self.transport {
            // Closing stdin (dropping the writer would do it too, but we
            // can't partially move out of self) lets the child exit on
            // EOF; reap it so no zombie outlives the client.
            let _ = self.writer.flush();
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Where `e9tool patch --backend stdio` finds the daemon: `$E9PATCHD`,
/// else `e9patchd` next to the current executable, else `$PATH`.
pub fn default_daemon_path() -> PathBuf {
    if let Ok(p) = std::env::var("E9PATCHD") {
        return PathBuf::from(p);
    }
    if let Ok(exe) = std::env::current_exe() {
        if let Some(dir) = exe.parent() {
            let sibling = dir.join("e9patchd");
            if sibling.exists() {
                return sibling;
            }
        }
    }
    PathBuf::from("e9patchd")
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn in_process_loopback_negotiates_and_errors() {
        let mut c = ProtoClient::in_process().unwrap();
        c.negotiate().unwrap();
        // State violation travels back as a typed error.
        let err = c.patch(0x401000, Template::Empty).unwrap_err();
        match err {
            ClientError::Rpc(e) => assert_eq!(e.code, crate::msg::code::STATE),
            other => panic!("expected rpc error, got {other:?}"),
        }
    }

    #[test]
    fn health_answers_before_negotiation() {
        let mut c = ProtoClient::in_process().unwrap();
        // No negotiate(): health is the always-available probe.
        let h = c.health().unwrap();
        assert_eq!(h.serving_mode, "in-process");
        assert!(!h.cache.enabled);
        assert!(h.summary().starts_with("health: serving in-process"));
        // The connection is still fresh enough to negotiate and work.
        c.negotiate().unwrap();
        c.health().unwrap();
    }

    /// A peer that refuses in-band and slams the connection shut before
    /// the request even lands must still surface as the typed refusal,
    /// not as the EPIPE the race produces. This is the admission-shed
    /// race: the daemon writes one BUSY line and closes; whether our
    /// version request wins or loses the write race, the caller sees
    /// `Rpc(BUSY)`.
    #[test]
    #[cfg(unix)]
    fn write_failure_drains_pending_typed_refusal() {
        use std::os::unix::net::UnixStream;

        let (ours, theirs) = UnixStream::pair().unwrap();
        let refusal = Response::err(
            None,
            RpcError::new(crate::msg::code::BUSY, "server over capacity"),
        );
        {
            let mut w = theirs.try_clone().unwrap();
            let mut line = refusal.encode().into_bytes();
            line.push(b'\n');
            w.write_all(&line).unwrap();
        }
        drop(theirs); // guarantee the client's write hits a closed peer
        let writer = ours.try_clone().unwrap();
        let mut c = ProtoClient {
            reader: BufReader::new(Box::new(ours)),
            writer: Box::new(writer),
            transport: Transport::Stream,
            next_id: 0,
        };
        match c.negotiate().unwrap_err() {
            ClientError::Rpc(e) => assert_eq!(e.code, crate::msg::code::BUSY),
            other => panic!("expected typed BUSY, got {other:?}"),
        }
        // With nothing left to drain, the raw transport error survives.
        match c.negotiate().unwrap_err() {
            ClientError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe),
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn loopback_full_patch_job() {
        let code = vec![
            0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0xC3, //
            0x0F, 0x1F, 0x44, 0x00, 0x00, 0x0F, 0x1F, 0x44, 0x00, 0x00,
        ];
        let mut b = e9elf::build::ElfBuilder::exec(0x400000);
        b.text(code.clone(), 0x401000);
        b.entry(0x401000);
        let bin = b.build();
        let disasm = e9x86::decode::linear_sweep(&code, 0x401000);

        let mut c = ProtoClient::in_process().unwrap();
        c.negotiate().unwrap();
        c.binary(&bin).unwrap();
        for i in &disasm {
            c.instruction(i.addr, i.bytes()).unwrap();
        }
        c.patch(0x401000, Template::Empty).unwrap();
        let reply = c.emit().unwrap();
        assert_eq!(reply.stats.succeeded(), 1);
        c.shutdown().unwrap();
    }
}
