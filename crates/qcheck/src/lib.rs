//! # e9qcheck — a minimal, hermetic property-testing harness
//!
//! The workspace's differential and fuzz-style suites were written against
//! `proptest`, which cannot be resolved in an offline build. This crate
//! provides the small subset those suites actually use, with zero
//! dependencies beyond the in-tree [`e9rng`]:
//!
//! * [`Strategy`] — a value generator with a *halving* shrinker. Integer
//!   and float ranges, [`any`], [`vec`], [`alpha`] strings and tuples (up
//!   to arity 12) are strategies out of the box.
//! * [`props!`] — a `proptest!`-shaped macro: `#[test]` functions whose
//!   arguments are drawn from strategies; bodies may use `?` and
//!   `return Ok(())` and the [`prop_assert!`] family.
//! * A deterministic runner: the case stream is seeded from the test's
//!   module path (plus `E9QCHECK_SEED` if set), so failures reproduce
//!   across machines and runs. `E9QCHECK_CASES` scales test depth.
//! * On failure the input is shrunk by halving (numbers toward their
//!   lower bound, vectors toward their minimum length) and the minimal
//!   failing input is reported.
//!
//! ## Environment
//!
//! | variable | effect |
//! |---|---|
//! | `E9QCHECK_CASES` | cases per property (overrides per-suite and default 64) |
//! | `E9QCHECK_SEED`  | XORed into the per-test seed to explore new case streams |

use std::fmt;
use std::panic::{self, AssertUnwindSafe};

/// Generation context handed to strategies.
pub struct Gen {
    /// The underlying deterministic generator.
    pub rng: e9rng::StdRng,
}

/// A failed test case (the `Err` side of [`TestCaseResult`]).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// What a property body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator with a shrinker.
///
/// `shrink` returns *simpler* candidate values (never equal to `v`, always
/// inside the strategy's domain); the runner greedily adopts any candidate
/// that still fails. All built-in shrinkers halve: numbers halve their
/// distance to the range's lower bound, vectors halve their length.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + fmt::Debug;
    /// Draw one value.
    fn generate(&self, g: &mut Gen) -> Self::Value;
    /// Simpler candidates for a failing `v` (may be empty).
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// ---- integer / float range strategies ----------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                g.rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                $crate::int_ladder(self.start, *v)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                g.rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                $crate::int_ladder(*self.start(), *v)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Shrink candidates for an integer failing at `v` with lower bound `lo`:
/// the bound itself, the halfway point (halving descent), and `v - 1`
/// (so the greedy loop converges on the exact failure boundary).
#[doc(hidden)]
pub fn int_ladder<T>(lo: T, v: T) -> Vec<T>
where
    T: Copy + PartialEq + PartialOrd + IntHalf,
{
    let mut out = Vec::new();
    if v == lo {
        return out;
    }
    out.push(lo);
    let half = lo.midpoint_to(v);
    if half != lo && half != v {
        out.push(half);
    }
    let prev = v.pred();
    if prev != lo && prev != half {
        out.push(prev);
    }
    out
}

/// Integer halving/decrement used by [`int_ladder`].
#[doc(hidden)]
pub trait IntHalf: Sized {
    fn midpoint_to(self, hi: Self) -> Self;
    fn pred(self) -> Self;
}

macro_rules! impl_int_half {
    ($($t:ty),*) => {$(
        impl IntHalf for $t {
            fn midpoint_to(self, hi: $t) -> $t {
                self + (hi - self) / 2
            }
            fn pred(self) -> $t {
                self.wrapping_sub(1)
            }
        }
    )*};
}
impl_int_half!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, g: &mut Gen) -> f64 {
        g.rng.gen_range(self.clone())
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        let lo = self.start;
        let mut out = Vec::new();
        if *v != lo {
            out.push(lo);
            let half = lo + (*v - lo) / 2.0;
            if half != lo && half != *v {
                out.push(half);
            }
        }
        out
    }
}

// ---- any ---------------------------------------------------------------

/// Strategy over the full domain of `T` (see [`any`]).
pub struct Any<T>(core::marker::PhantomData<T>);

/// The `proptest`-style `any::<T>()` strategy: a uniform value of `T`.
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                g.rng.gen::<$t>()
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                $crate::int_ladder(0, *v)
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_any_sint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                g.rng.gen::<$t>()
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                // Halve toward zero, then step one toward zero —
                // wrapping-safe at MIN.
                if *v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v.wrapping_div(2)];
                let step = v.wrapping_sub(v.signum());
                if !out.contains(&step) {
                    out.push(step);
                }
                out.dedup();
                out
            }
        }
    )*};
}
impl_any_sint!(i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, g: &mut Gen) -> bool {
        g.rng.gen::<bool>()
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v { vec![false] } else { Vec::new() }
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, g: &mut Gen) -> f64 {
        g.rng.gen::<f64>()
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        if *v == 0.0 { Vec::new() } else { vec![0.0, *v / 2.0] }
    }
}

// ---- collections -------------------------------------------------------

/// Strategy for `Vec<S::Value>` with a length drawn from a range (see
/// [`vec`]).
pub struct VecStrategy<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

/// A vector whose length is drawn from `len` (a range or an exact count)
/// and whose elements come from `elem` — mirrors
/// `proptest::collection::vec`.
pub fn vec<S: Strategy, L: IntoLenRange>(elem: S, len: L) -> VecStrategy<S> {
    let len = len.into_len_range();
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

/// Length specifications [`vec`] accepts.
pub trait IntoLenRange {
    fn into_len_range(self) -> core::ops::Range<usize>;
}

impl IntoLenRange for core::ops::Range<usize> {
    fn into_len_range(self) -> core::ops::Range<usize> {
        self
    }
}

impl IntoLenRange for core::ops::RangeInclusive<usize> {
    fn into_len_range(self) -> core::ops::Range<usize> {
        *self.start()..*self.end() + 1
    }
}

impl IntoLenRange for usize {
    fn into_len_range(self) -> core::ops::Range<usize> {
        self..self + 1
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, g: &mut Gen) -> Self::Value {
        let n = g.rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(g)).collect()
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let min = self.len.start;
        let mut out = Vec::new();
        // Halve the length, then peel one element, then halve elements.
        let half = min.max(v.len() / 2);
        if half < v.len() {
            out.push(v[..half].to_vec());
        }
        if v.len() > min && v.len() - 1 != half {
            out.push(v[..v.len() - 1].to_vec());
        }
        for (i, e) in v.iter().enumerate() {
            if let Some(simpler) = self.elem.shrink(e).into_iter().next() {
                let mut c = v.clone();
                c[i] = simpler;
                out.push(c);
                if out.len() >= 8 {
                    break; // bound the candidate fan-out per step
                }
            }
        }
        out
    }
}

// ---- strings -----------------------------------------------------------

/// Strategy for fixed-length lowercase ASCII strings (see [`alpha`]).
pub struct Alpha {
    len: usize,
}

/// A fixed-length lowercase `[a-z]` string — replaces `proptest`'s regex
/// strategies where tests only need a distinct, printable seed name.
pub fn alpha(len: usize) -> Alpha {
    Alpha { len }
}

impl Strategy for Alpha {
    type Value = String;

    fn generate(&self, g: &mut Gen) -> String {
        (0..self.len)
            .map(|_| (b'a' + g.rng.gen_range(0u8..26)) as char)
            .collect()
    }

    fn shrink(&self, v: &String) -> Vec<String> {
        let floor: String = "a".repeat(self.len);
        if *v == floor { Vec::new() } else { vec![floor] }
    }
}

// ---- tuples ------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident . $i:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$i.generate(g),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&v.$i) {
                        let mut c = v.clone();
                        c.$i = cand;
                        out.push(c);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

// ---- runner ------------------------------------------------------------

/// FNV-1a, used to derive a stable per-test seed from its module path.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            s.parse().ok()
        }
    })
}

/// The number of cases a property runs: `E9QCHECK_CASES` if set, else the
/// suite's `#![cases = N]`, else 64.
pub fn case_count(suite_override: Option<u32>) -> u32 {
    env_u64("E9QCHECK_CASES")
        .map(|n| n.clamp(1, 1 << 24) as u32)
        .or(suite_override)
        .unwrap_or(64)
}

/// Run `f` on one value, catching both `Err` returns and panics.
/// Returns `None` on pass, `Some(message)` on failure.
fn run_case<V, F>(f: &F, v: V) -> Option<String>
where
    F: Fn(V) -> TestCaseResult,
{
    match panic::catch_unwind(AssertUnwindSafe(|| f(v))) {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(e.to_string()),
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic (non-string payload)".into()),
        ),
    }
}

/// Execute a property: `cases` draws from `strat`, shrinking on failure.
///
/// Panics (failing the enclosing `#[test]`) with the minimal failing
/// input, the seed, and the original failure message. Called by
/// [`props!`]; usable directly for hand-rolled properties.
pub fn run_prop<S, F>(name: &str, suite_cases: Option<u32>, strat: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let seed = fnv64(name) ^ env_u64("E9QCHECK_SEED").unwrap_or(0);
    let cases = case_count(suite_cases);
    let mut g = Gen {
        rng: e9rng::StdRng::seed_from_u64(seed),
    };
    for case in 0..cases {
        let value = strat.generate(&mut g);
        let Some(msg) = run_case(&f, value.clone()) else {
            continue;
        };
        // Shrink quietly: every candidate that still fails panics again,
        // and the default hook would spam stderr for each one.
        let prev_hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let (min_value, min_msg) = shrink_loop(strat, &f, value, msg);
        panic::set_hook(prev_hook);
        panic!(
            "property `{name}` failed at case {case}/{cases}\n\
             \x20 minimal failing input: {min_value:#?}\n\
             \x20 cause: {min_msg}\n\
             \x20 seed: {seed:#x} (E9QCHECK_SEED changes the stream; \
             E9QCHECK_CASES={cases})"
        );
    }
}

/// Greedy halving descent: adopt any shrink candidate that still fails,
/// until none does or the evaluation budget runs out.
fn shrink_loop<S, F>(strat: &S, f: &F, mut value: S::Value, mut msg: String) -> (S::Value, String)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut budget = 256usize;
    'descend: while budget > 0 {
        for cand in strat.shrink(&value) {
            if budget == 0 {
                break 'descend;
            }
            budget -= 1;
            if let Some(m) = run_case(f, cand.clone()) {
                value = cand;
                msg = m;
                continue 'descend;
            }
        }
        break;
    }
    (value, msg)
}

// ---- macros ------------------------------------------------------------

/// `proptest!`-shaped property definition.
///
/// ```ignore
/// e9qcheck::props! {
///     #![cases = 32]                      // optional per-suite depth
///     #[test]
///     fn sums_commute(a in any::<u32>(), b in 0u32..100) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
///
/// Bodies may use `?`, `return Ok(())`, and the [`prop_assert!`] family.
#[macro_export]
macro_rules! props {
    // Internal: one property fn, then recurse on the rest.
    (@cfg $cases:expr; $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __strat = ($($strat,)+);
            $crate::run_prop(
                concat!(module_path!(), "::", stringify!($name)),
                $cases,
                &__strat,
                |($($arg,)+)| -> $crate::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::props! { @cfg $cases; $($rest)* }
    };
    (@cfg $cases:expr;) => {};
    // Entry with a per-suite case count.
    (#![cases = $n:expr] $($rest:tt)*) => {
        $crate::props! { @cfg ::core::option::Option::Some($n); $($rest)* }
    };
    // Entry without.
    ($($rest:tt)*) => {
        $crate::props! { @cfg ::core::option::Option::None; $($rest)* }
    };
}

/// Like `assert!`, but returns a [`TestCaseError`] so the runner can
/// shrink the input. Only valid in functions returning [`TestCaseResult`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` for property bodies (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// A `proptest`-flavoured prelude so test ports stay one-line diffs.
pub mod prelude {
    pub use crate::{
        alpha, any, prop_assert, prop_assert_eq, prop_assert_ne, props, vec, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_gen(seed: u64) -> Gen {
        Gen {
            rng: e9rng::StdRng::seed_from_u64(seed),
        }
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut g = fresh_gen(1);
        for _ in 0..2000 {
            let v = (5u64..17).generate(&mut g);
            assert!((5..17).contains(&v));
            let w = (-8i32..=8).generate(&mut g);
            assert!((-8..=8).contains(&w));
            let f = (0.25f64..0.75).generate(&mut g);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn int_shrink_halves_toward_lo() {
        let s = 10u64..100;
        let c = s.shrink(&90);
        assert!(c.contains(&10));
        assert!(c.contains(&50));
        assert!(s.shrink(&10).is_empty());
    }

    #[test]
    fn vec_strategy_len_and_shrink() {
        let s = vec(any::<u8>(), 3..9);
        let mut g = fresh_gen(2);
        for _ in 0..200 {
            let v = s.generate(&mut g);
            assert!((3..9).contains(&v.len()));
        }
        let v = s.generate(&mut g);
        for c in s.shrink(&v) {
            assert!(c.len() >= 3);
        }
        // A long vector must offer a halved candidate.
        let long = vec![7u8; 8];
        assert!(s.shrink(&long).iter().any(|c| c.len() == 4));
    }

    #[test]
    fn tuple_strategy_shrinks_componentwise() {
        let s = (0u64..100, any::<bool>());
        let cands = s.shrink(&(40, true));
        assert!(cands.contains(&(0, true)));
        assert!(cands.contains(&(20, true)));
        assert!(cands.contains(&(40, false)));
    }

    #[test]
    fn alpha_generates_lowercase() {
        let s = alpha(6);
        let mut g = fresh_gen(3);
        for _ in 0..50 {
            let v = s.generate(&mut g);
            assert_eq!(v.len(), 6);
            assert!(v.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn deterministic_case_stream() {
        let s = vec(any::<u64>(), 1..5);
        let mut a = fresh_gen(99);
        let mut b = fresh_gen(99);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let hits = std::cell::Cell::new(0u32);
        run_prop("qcheck::self::pass", Some(17), &(0u64..10), |v| {
            hits.set(hits.get() + 1);
            prop_assert!(v < 10);
            Ok(())
        });
        assert_eq!(hits.get(), case_count(Some(17)));
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Fails for v >= 25: minimal failing input is exactly 25.
        let r = panic::catch_unwind(|| {
            run_prop("qcheck::self::shrinks", Some(64), &(0u64..1000), |v| {
                prop_assert!(v < 25, "too big: {v}");
                Ok(())
            });
        });
        let msg = match r {
            Ok(()) => panic!("property unexpectedly passed"),
            Err(p) => p.downcast_ref::<String>().unwrap().clone(),
        };
        assert!(msg.contains("minimal failing input: 25"), "{msg}");
        assert!(msg.contains("too big: 25"), "{msg}");
    }

    #[test]
    fn panicking_body_is_caught_and_shrunk() {
        let r = panic::catch_unwind(|| {
            run_prop("qcheck::self::panics", Some(64), &(0u64..1000), |v| {
                assert!(v < 25, "panicked at {v}");
                Ok(())
            });
        });
        let msg = match r {
            Ok(()) => panic!("property unexpectedly passed"),
            Err(p) => p.downcast_ref::<String>().unwrap().clone(),
        };
        assert!(msg.contains("minimal failing input: 25"), "{msg}");
    }

    // The macro surface, end to end.
    props! {
        #![cases = 32]

        #[test]
        fn macro_addition_commutes(a in any::<u32>(), b in 0u32..1000) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn macro_early_return_ok(v in 0u64..100) {
            if v > 50 {
                return Ok(());
            }
            prop_assert!(v <= 50);
        }

        #[test]
        fn macro_vecs_and_tuples(
            pairs in vec((0u64..256, any::<bool>()), 0..16),
            name in alpha(4),
        ) {
            prop_assert_eq!(name.len(), 4);
            for (n, _) in pairs {
                prop_assert!(n < 256);
            }
        }
    }
}
