//! Raw epoll bindings — the only place this crate touches the kernel
//! directly.
//!
//! `std` has no readiness API, and the hermetic `--offline` build rules
//! out tokio/mio/libc, so the three `epoll` entry points are declared
//! here by hand against the C library std already links. Everything else
//! (sockets, non-blocking reads/writes, fd ownership) goes through std:
//! the epoll fd itself lives in an [`OwnedFd`] so it is closed by Drop
//! without a hand-rolled `close`.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::c_int;
use std::time::Duration;

pub const EPOLL_CLOEXEC: c_int = 0o2000000;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
#[allow(dead_code)]
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

/// The kernel's `struct epoll_event`. On x86-64 the kernel declares it
/// packed (12 bytes, unaligned u64); elsewhere it is naturally aligned.
/// Getting this wrong corrupts every token the kernel hands back, so the
/// layout is pinned by a test below.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification, decoded from the raw event mask.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `data` value registered with the fd (a slab token here).
    pub token: u64,
    /// `EPOLLIN`: bytes (or a pending accept) are readable.
    pub readable: bool,
    /// `EPOLLOUT`: the socket buffer has room again.
    pub writable: bool,
    /// `EPOLLRDHUP`: the peer closed its write side (half-close); queued
    /// replies can still be flushed.
    pub read_closed: bool,
    /// `EPOLLERR | EPOLLHUP`: the connection is gone.
    pub error: bool,
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Create an epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// `epoll_create1` failures (fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: epoll_create1 returned a fresh fd we now own.
        Ok(Poller {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// Register `fd` for edge-triggered readiness with `token` as its
    /// identity in delivered events.
    ///
    /// # Errors
    ///
    /// `epoll_ctl` failures (bad fd, duplicate registration).
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_ADD, fd, &mut ev) })?;
        Ok(())
    }

    /// Remove `fd` from the interest set. Removal of an already-closed fd
    /// is not an error worth surfacing (the kernel drops registrations
    /// with the last fd reference anyway).
    pub fn del(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        let _ = unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Wait for readiness, filling `out` (cleared first). `None` blocks
    /// forever; `Some(d)` wakes after `d` even if nothing is ready.
    /// EINTR is retried internally.
    ///
    /// # Errors
    ///
    /// `epoll_wait` failures other than EINTR.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let timeout_ms: c_int = match timeout {
            // Round up so a 100 µs deadline does not spin at timeout 0.
            Some(d) => {
                let ms = d.as_millis().saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
                c_int::try_from(ms).unwrap_or(c_int::MAX)
            }
            None => -1,
        };
        const MAX_EVENTS: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = loop {
            match cvt(unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    raw.as_mut_ptr(),
                    MAX_EVENTS as c_int,
                    timeout_ms,
                )
            }) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in raw.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let events = ev.events;
            let data = ev.data;
            out.push(Event {
                token: data,
                readable: events & EPOLLIN != 0,
                writable: events & EPOLLOUT != 0,
                read_closed: events & EPOLLRDHUP != 0,
                error: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_the_kernel() {
        // x86-64 packs the struct to 12 bytes; everywhere else it is 16.
        if cfg!(target_arch = "x86_64") {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        } else {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
        }
    }

    #[test]
    fn wait_times_out_on_an_empty_interest_set() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let t0 = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn readiness_carries_the_registered_token() {
        use std::io::Write;
        use std::os::unix::net::UnixStream;
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(b.as_raw_fd(), 0xDEAD_BEEF, EPOLLIN | EPOLLET)
            .unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 0xDEAD_BEEF);
        assert!(events[0].readable);
    }
}
