//! # e9loop — a hermetic epoll reactor
//!
//! The multiplexed serving core under `e9patchd`: one thread, one epoll
//! instance, non-blocking accept/read/write with edge-triggered
//! readiness, and a per-connection state machine
//!
//! ```text
//! line-buffered read → dispatch → write-queue drain
//! ```
//!
//! The crate is deliberately *generic* and *dependency-free*: it knows
//! nothing about the wire protocol. A [`Service`] turns complete request
//! lines into response bytes (in `e9patchd` that is the existing
//! `e9proto::Session`, unchanged); the reactor owns framing, fairness,
//! admission control and shutdown. Keeping the protocol out of this
//! crate is what lets the fault-injection harness drive the loop with a
//! hostile service-free client while the daemon reuses the exact
//! `dispatch_line` choke point the threaded path hardened.
//!
//! ## Why a reactor at all
//!
//! The thread-per-connection server caps the daemon at a handful of
//! clients: every stalled reader pins a thread, and a thousand idle
//! connections cost a thousand stacks. Here a connection is ~one slab
//! slot (a socket, two byte buffers, a `Service`), so thousands of
//! concurrent sessions fit in one loop, and *requests pipeline*: every
//! complete line already buffered is dispatched before the loop returns
//! to `epoll_wait`.
//!
//! ## Admission control and backpressure
//!
//! Overload is shed, never queued unboundedly and never stalled on:
//!
//! * more than [`Config::max_clients`] live connections → a new arrival
//!   is answered with the factory's one-line BUSY reply and closed;
//! * loop-wide queued reply bytes above
//!   [`Config::pending_budget_bytes`] → further requests are answered
//!   with [`Service::on_busy`] (a typed error, not a dispatch) until the
//!   queues drain;
//! * one connection's unread replies above [`Config::conn_queue_bytes`]
//!   (a client that writes requests but never reads responses) → that
//!   connection is shed: closed, queue discarded.
//!
//! ## Graceful drain
//!
//! When a service requests shutdown (or the accept budget is spent) the
//! reactor *drains*: listeners are closed immediately — late connections
//! get a clean refusal, not a hang — while live connections keep being
//! served until they finish, bounded per connection by
//! [`Config::drain_timeout`] of inactivity. In-flight work completes and
//! its replies are flushed before the loop exits.

#![cfg(target_os = "linux")]

pub mod sys;

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::{Duration, Instant};

/// Turns complete request lines into response bytes. One instance per
/// connection, created by the [`ServiceFactory`] at accept time.
pub trait Service {
    /// Handle one complete line (newline stripped). `None` means no
    /// response (blank lines). The returned bytes are queued verbatim —
    /// include the trailing newline.
    fn on_line(&mut self, line: &[u8]) -> Option<Vec<u8>>;

    /// Response for a line that exceeded `max_line_bytes` (the line was
    /// drained off the stream but never buffered).
    fn on_oversized(&mut self, cap: usize) -> Vec<u8>;

    /// Response for a line refused because the loop-wide pending-byte
    /// budget is exhausted. The line is *not* dispatched.
    fn on_busy(&mut self, line: &[u8]) -> Vec<u8>;

    /// Whether the last handled line asked the whole server to shut
    /// down. Checked after every dispatch; `true` stops this
    /// connection's intake and puts the reactor into drain.
    fn shutdown_requested(&self) -> bool;
}

/// Creates one [`Service`] per accepted connection, plus the one-line
/// reply sent to connections refused at admission.
pub trait ServiceFactory {
    /// The per-connection service type.
    type Svc: Service;

    /// Called once per accepted connection.
    fn connect(&mut self) -> Self::Svc;

    /// One-line reply (with newline) written best-effort to a connection
    /// refused because [`Config::max_clients`] is reached.
    fn admission_busy(&self) -> Vec<u8>;
}

/// Reactor tuning knobs. Defaults match the threaded server's hardening
/// posture (64 MiB lines, 30 s idle cut) plus serving-scale admission
/// bounds.
#[derive(Debug, Clone)]
pub struct Config {
    /// Longest accepted request line in bytes, newline included. Longer
    /// lines are drained and answered via [`Service::on_oversized`].
    pub max_line_bytes: usize,
    /// Most live connections; arrivals beyond this are refused with the
    /// factory's BUSY line.
    pub max_clients: usize,
    /// Loop-wide cap on queued (unwritten) reply bytes; above it,
    /// requests are answered with [`Service::on_busy`] instead of being
    /// dispatched.
    pub pending_budget_bytes: usize,
    /// Per-connection cap on queued reply bytes; above it the connection
    /// is shed (it is not reading its replies).
    pub conn_queue_bytes: usize,
    /// Close a connection after this much inactivity (no bytes in, no
    /// bytes out). `None` = never.
    pub idle_timeout: Option<Duration>,
    /// During drain, the per-connection inactivity bound: connections
    /// still making progress finish; idle ones are cut after this.
    pub drain_timeout: Duration,
    /// Total connections to accept before draining (`None` = unlimited).
    /// The CI serve-one-job-and-exit mode.
    pub accept_budget: Option<usize>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_line_bytes: 64 << 20,
            max_clients: 1024,
            pending_budget_bytes: 256 << 20,
            conn_queue_bytes: 64 << 20,
            idle_timeout: Some(Duration::from_millis(30_000)),
            drain_timeout: Duration::from_millis(5_000),
            accept_budget: None,
        }
    }
}

/// What the loop did, for tests, stats lines and the fault harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Connections accepted (including ones later shed).
    pub accepted: u64,
    /// Arrivals refused at admission (`max_clients`).
    pub shed_admission: u64,
    /// Connections shed for an over-budget write queue.
    pub shed_queue: u64,
    /// Requests answered with BUSY because the pending budget was spent.
    pub busy_replies: u64,
    /// Connections cut for idleness (including drain-phase cuts).
    pub closed_idle: u64,
    /// Request lines dispatched to services.
    pub dispatched: u64,
}

/// A bound, not-yet-registered accept source.
#[derive(Debug)]
pub enum Listener {
    /// A Unix-domain listener (the daemon's default transport).
    Unix(UnixListener),
    /// A TCP listener (`--listen-tcp`).
    Tcp(TcpListener),
}

impl Listener {
    fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                Ok(Stream::Unix(s))
            }
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                // Request/response lines are latency-bound, not
                // bandwidth-bound; never wait for a full segment.
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }
}

/// A connected non-blocking byte stream.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn raw_fd(&self) -> RawFd {
        match self {
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
}

/// Reading-side state of the line framer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadState {
    /// Accumulating a line into `rbuf`.
    Line,
    /// The current line blew the cap; discarding until its newline.
    Oversized,
}

struct Conn<S> {
    stream: Stream,
    svc: S,
    /// Bytes of the current (incomplete) request line.
    rbuf: Vec<u8>,
    read_state: ReadState,
    /// Queued response bytes not yet accepted by the kernel.
    wbuf: Vec<u8>,
    /// Prefix of `wbuf` already written.
    wpos: usize,
    /// Last moment bytes moved in either direction.
    last_activity: Instant,
    /// EOF (or RDHUP) seen: no more requests will arrive.
    peer_eof: bool,
    /// Flush the queue, then close (EOF path, shutdown path).
    closing: bool,
}

impl<S> Conn<S> {
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// Token layout: listeners get the top bit + their index; connections
/// get `generation << 32 | slot`, so a slot reused within one event
/// batch cannot receive a stale event.
const LISTENER_FLAG: u64 = 1 << 63;

struct Slab<S> {
    slots: Vec<Option<Conn<S>>>,
    gens: Vec<u32>,
    free: VecDeque<usize>,
    live: usize,
}

impl<S> Slab<S> {
    fn new() -> Slab<S> {
        Slab {
            slots: Vec::new(),
            gens: Vec::new(),
            free: VecDeque::new(),
            live: 0,
        }
    }

    fn insert(&mut self, conn: Conn<S>) -> u64 {
        self.live += 1;
        let idx = match self.free.pop_front() {
            Some(i) => {
                self.slots[i] = Some(conn);
                i
            }
            None => {
                self.slots.push(Some(conn));
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        (u64::from(self.gens[idx]) << 32) | idx as u64
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Conn<S>> {
        let idx = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        if self.gens.get(idx).copied() != Some(gen) {
            return None;
        }
        self.slots.get_mut(idx).and_then(Option::as_mut)
    }

    fn remove(&mut self, token: u64) -> Option<Conn<S>> {
        let idx = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        if self.gens.get(idx).copied() != Some(gen) {
            return None;
        }
        let conn = self.slots.get_mut(idx).and_then(Option::take)?;
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push_back(idx);
        self.live -= 1;
        Some(conn)
    }

    /// Tokens of all live connections (for timer sweeps).
    fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| (u64::from(self.gens[i]) << 32) | i as u64)
            .collect()
    }
}

/// Run the event loop over `listeners` until a service requests
/// shutdown (or the accept budget is spent) and the drain completes.
///
/// # Errors
///
/// Fatal reactor failures only: epoll creation/registration and
/// listener setup. Per-connection I/O errors close that connection.
pub fn serve<F: ServiceFactory>(
    listeners: Vec<Listener>,
    factory: F,
    config: Config,
) -> io::Result<Summary> {
    Reactor::new(listeners, factory, config)?.run()
}

struct Reactor<F: ServiceFactory> {
    poller: sys::Poller,
    listeners: Vec<Listener>,
    factory: F,
    config: Config,
    slab: Slab<F::Svc>,
    /// Sum of all connections' pending reply bytes.
    total_pending: usize,
    draining: bool,
    summary: Summary,
}

const CONN_INTEREST: u32 =
    sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;

impl<F: ServiceFactory> Reactor<F> {
    fn new(listeners: Vec<Listener>, factory: F, config: Config) -> io::Result<Reactor<F>> {
        let poller = sys::Poller::new()?;
        for (i, l) in listeners.iter().enumerate() {
            l.set_nonblocking()?;
            poller.add(l.raw_fd(), LISTENER_FLAG | i as u64, sys::EPOLLIN | sys::EPOLLET)?;
        }
        Ok(Reactor {
            poller,
            listeners,
            factory,
            config,
            slab: Slab::new(),
            total_pending: 0,
            draining: false,
            summary: Summary::default(),
        })
    }

    fn run(&mut self) -> io::Result<Summary> {
        let mut events = Vec::new();
        if self.config.accept_budget == Some(0) {
            self.enter_drain();
        }
        loop {
            let timeout = self.next_timeout();
            self.poller.wait(&mut events, timeout)?;
            for ev in events.clone() {
                if ev.token & LISTENER_FLAG != 0 {
                    if !self.draining {
                        self.accept_ready((ev.token & !LISTENER_FLAG) as usize);
                    }
                } else {
                    self.conn_ready(ev.token, &ev);
                }
            }
            self.sweep_timers();
            if self.draining && self.slab.live == 0 {
                return Ok(self.summary);
            }
        }
    }

    /// The next `epoll_wait` timeout: the soonest idle/drain deadline.
    fn next_timeout(&self) -> Option<Duration> {
        let limit = self.activity_limit()?;
        let now = Instant::now();
        let mut soonest: Option<Duration> = None;
        for slot in self.slab.slots.iter().flatten() {
            let deadline = slot.last_activity + limit;
            let left = deadline.saturating_duration_since(now);
            soonest = Some(match soonest {
                Some(cur) => cur.min(left),
                None => left,
            });
        }
        soonest
    }

    /// The inactivity bound currently in force.
    fn activity_limit(&self) -> Option<Duration> {
        if self.draining {
            Some(match self.config.idle_timeout {
                Some(idle) => idle.min(self.config.drain_timeout),
                None => self.config.drain_timeout,
            })
        } else {
            self.config.idle_timeout
        }
    }

    fn sweep_timers(&mut self) {
        let Some(limit) = self.activity_limit() else {
            return;
        };
        let now = Instant::now();
        for token in self.slab.tokens() {
            let expired = self
                .slab
                .get_mut(token)
                .is_some_and(|c| now.duration_since(c.last_activity) >= limit);
            if expired {
                self.summary.closed_idle += 1;
                self.close(token);
            }
        }
    }

    /// Stop accepting: deregister and drop every listener so late
    /// connections are refused by the kernel, then let live connections
    /// finish under the drain inactivity bound.
    fn enter_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        for l in self.listeners.drain(..) {
            self.poller.del(l.raw_fd());
            // Dropping the listener closes the fd; pending backlog
            // connections are refused, not silently parked.
            drop(l);
        }
    }

    fn accept_ready(&mut self, idx: usize) {
        loop {
            if self.draining || idx >= self.listeners.len() {
                return;
            }
            let accepted = self.listeners[idx].accept();
            match accepted {
                Ok(mut stream) => {
                    self.summary.accepted += 1;
                    let budget_spent = self
                        .config
                        .accept_budget
                        .is_some_and(|max| self.summary.accepted >= max as u64);
                    if self.slab.live >= self.config.max_clients {
                        // Admission shed: one BUSY line, best effort,
                        // then the connection is gone. Never blocks.
                        self.summary.shed_admission += 1;
                        let _ = stream.write(&self.factory.admission_busy());
                    } else {
                        let svc = self.factory.connect();
                        let conn = Conn {
                            stream,
                            svc,
                            rbuf: Vec::new(),
                            read_state: ReadState::Line,
                            wbuf: Vec::new(),
                            wpos: 0,
                            last_activity: Instant::now(),
                            peer_eof: false,
                            closing: false,
                        };
                        let fd = conn.stream.raw_fd();
                        let token = self.slab.insert(conn);
                        if self.poller.add(fd, token, CONN_INTEREST).is_err() {
                            self.slab.remove(token);
                        } else {
                            // Edge-triggered: bytes that arrived before
                            // registration must be pulled now.
                            self.handle_readable(token);
                        }
                    }
                    if budget_spent {
                        self.enter_drain();
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Aborted handshakes and transient per-connection accept
                // errors must not kill the loop.
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: &sys::Event) {
        if self.slab.get_mut(token).is_none() {
            return; // stale event for a closed slot
        }
        if ev.error {
            self.close(token);
            return;
        }
        // RDHUP still implies buffered bytes may be readable; always
        // drain reads before acting on the half-close.
        if ev.readable || ev.read_closed {
            self.handle_readable(token);
        }
        if self.slab.get_mut(token).is_some() && ev.writable {
            self.handle_writable(token);
        }
    }

    fn handle_readable(&mut self, token: u64) {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.slab.get_mut(token) else {
                return;
            };
            if conn.closing {
                break;
            }
            match conn.stream.read(&mut tmp) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    if !self.ingest(token, &tmp[..n].to_vec()) {
                        return; // connection was shed mid-ingest
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        // EOF: a trailing unterminated line is still one request (the
        // threaded reader behaves identically), then flush-and-close.
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if conn.peer_eof && !conn.closing {
            if conn.read_state == ReadState::Line && !conn.rbuf.is_empty() {
                let line = std::mem::take(&mut conn.rbuf);
                if !self.dispatch(token, &line) {
                    return;
                }
            }
            if let Some(conn) = self.slab.get_mut(token) {
                conn.closing = true;
            }
        }
        self.handle_writable(token);
    }

    /// Feed freshly-read bytes through the line framer, dispatching
    /// every completed line. Returns `false` if the connection went away.
    fn ingest(&mut self, token: u64, chunk: &[u8]) -> bool {
        let mut rest: &[u8] = chunk;
        while !rest.is_empty() {
            let Some(conn) = self.slab.get_mut(token) else {
                return false;
            };
            if conn.closing {
                return true; // shutdown handled: drop pipelined input
            }
            match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let (head, tail) = rest.split_at(pos + 1);
                    rest = tail;
                    match conn.read_state {
                        ReadState::Oversized => {
                            // The over-cap line just ended; answer it.
                            conn.read_state = ReadState::Line;
                            let cap = self.config.max_line_bytes;
                            let resp = {
                                let conn = self.slab.get_mut(token).expect("checked");
                                conn.svc.on_oversized(cap)
                            };
                            if !self.enqueue(token, resp) {
                                return false;
                            }
                        }
                        ReadState::Line => {
                            // `head` includes the newline; the cap counts
                            // it, the dispatched line excludes it.
                            if conn.rbuf.len().saturating_add(head.len())
                                > self.config.max_line_bytes
                            {
                                conn.rbuf.clear();
                                let cap = self.config.max_line_bytes;
                                let resp = {
                                    let conn = self.slab.get_mut(token).expect("checked");
                                    conn.svc.on_oversized(cap)
                                };
                                if !self.enqueue(token, resp) {
                                    return false;
                                }
                            } else {
                                let mut line = std::mem::take(&mut conn.rbuf);
                                line.extend_from_slice(&head[..head.len() - 1]);
                                if !self.dispatch(token, &line) {
                                    return false;
                                }
                            }
                        }
                    }
                }
                None => {
                    match conn.read_state {
                        ReadState::Oversized => {} // keep discarding
                        ReadState::Line => {
                            if conn.rbuf.len().saturating_add(rest.len())
                                > self.config.max_line_bytes
                            {
                                conn.rbuf.clear();
                                conn.read_state = ReadState::Oversized;
                            } else {
                                conn.rbuf.extend_from_slice(rest);
                            }
                        }
                    }
                    rest = &[];
                }
            }
        }
        true
    }

    /// Dispatch one complete line. Returns `false` if the connection was
    /// shed in the process.
    fn dispatch(&mut self, token: u64, line: &[u8]) -> bool {
        let over_budget = self.total_pending > self.config.pending_budget_bytes;
        let Some(conn) = self.slab.get_mut(token) else {
            return false;
        };
        let resp = if over_budget {
            // Load shed: a typed error instead of a stall. The request
            // is consumed but never reaches the service.
            self.summary.busy_replies += 1;
            Some(conn.svc.on_busy(line))
        } else {
            self.summary.dispatched += 1;
            conn.svc.on_line(line)
        };
        let shutdown = conn.svc.shutdown_requested();
        if let Some(resp) = resp {
            if !self.enqueue(token, resp) {
                return false;
            }
        }
        if shutdown {
            if let Some(conn) = self.slab.get_mut(token) {
                conn.closing = true; // flush replies, then close
            }
            self.enter_drain();
        }
        true
    }

    /// Queue response bytes and try to push them out. Returns `false` if
    /// the connection was shed (queue over budget) or closed on error.
    fn enqueue(&mut self, token: u64, resp: Vec<u8>) -> bool {
        let Some(conn) = self.slab.get_mut(token) else {
            return false;
        };
        if resp.is_empty() {
            return true;
        }
        // Compact the already-written prefix before growing the queue.
        if conn.wpos > 0 && conn.wpos == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
        }
        conn.wbuf.extend_from_slice(&resp);
        self.total_pending += resp.len();
        if self.slab.get_mut(token).expect("checked").pending() > self.config.conn_queue_bytes {
            // This client is not reading its replies; shedding it is the
            // only bounded option left.
            self.summary.shed_queue += 1;
            self.close(token);
            return false;
        }
        self.handle_writable(token);
        self.slab.get_mut(token).is_some()
    }

    fn handle_writable(&mut self, token: u64) {
        loop {
            let Some(conn) = self.slab.get_mut(token) else {
                return;
            };
            if conn.pending() == 0 {
                break;
            }
            let wpos = conn.wpos;
            let res = {
                let buf = conn.wbuf[wpos..].to_vec();
                conn.stream.write(&buf)
            };
            match res {
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => {
                    let conn = self.slab.get_mut(token).expect("checked");
                    conn.wpos += n;
                    conn.last_activity = Instant::now();
                    self.total_pending -= n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if conn.pending() == 0 {
            conn.wbuf.clear();
            conn.wpos = 0;
            if conn.closing {
                self.close(token);
            }
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.slab.remove(token) {
            self.total_pending -= conn.pending();
            self.poller.del(conn.stream.raw_fd());
            // Drop closes the socket.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream as ClientStream;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Toy service: upper-cases each line; "die" asks for shutdown.
    struct Upper {
        shutdown: bool,
        dispatched: Arc<AtomicU64>,
    }

    impl Service for Upper {
        fn on_line(&mut self, line: &[u8]) -> Option<Vec<u8>> {
            if line.iter().all(|b| b.is_ascii_whitespace()) {
                return None;
            }
            self.dispatched.fetch_add(1, Ordering::SeqCst);
            if line == b"die" {
                self.shutdown = true;
                return Some(b"bye\n".to_vec());
            }
            let mut out: Vec<u8> = line.to_ascii_uppercase();
            out.push(b'\n');
            Some(out)
        }

        fn on_oversized(&mut self, _cap: usize) -> Vec<u8> {
            b"TOOBIG\n".to_vec()
        }

        fn on_busy(&mut self, _line: &[u8]) -> Vec<u8> {
            b"BUSY\n".to_vec()
        }

        fn shutdown_requested(&self) -> bool {
            self.shutdown
        }
    }

    struct UpperFactory {
        dispatched: Arc<AtomicU64>,
    }

    impl ServiceFactory for UpperFactory {
        type Svc = Upper;

        fn connect(&mut self) -> Upper {
            Upper {
                shutdown: false,
                dispatched: Arc::clone(&self.dispatched),
            }
        }

        fn admission_busy(&self) -> Vec<u8> {
            b"BUSY\n".to_vec()
        }
    }

    fn temp_sock(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("e9loop-{tag}-{}.sock", std::process::id()))
    }

    fn start(
        tag: &str,
        config: Config,
    ) -> (PathBuf, Arc<AtomicU64>, std::thread::JoinHandle<io::Result<Summary>>) {
        let path = temp_sock(tag);
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let dispatched = Arc::new(AtomicU64::new(0));
        let factory = UpperFactory {
            dispatched: Arc::clone(&dispatched),
        };
        let handle = std::thread::spawn(move || {
            serve(vec![Listener::Unix(listener)], factory, config)
        });
        (path, dispatched, handle)
    }

    #[test]
    fn echo_round_trip_and_pipelining() {
        let (path, dispatched, handle) = start("echo", Config::default());
        let mut c = ClientStream::connect(&path).unwrap();
        // Three pipelined requests in one write; replies arrive in order.
        c.write_all(b"one\ntwo\nthree\ndie\n").unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        let mut lines = Vec::new();
        for _ in 0..4 {
            let mut l = String::new();
            r.read_line(&mut l).unwrap();
            lines.push(l);
        }
        assert_eq!(lines, vec!["ONE\n", "TWO\n", "THREE\n", "bye\n"]);
        let summary = handle.join().unwrap().unwrap();
        assert_eq!(summary.dispatched, 4);
        assert_eq!(dispatched.load(Ordering::SeqCst), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unterminated_final_line_is_still_served() {
        let (path, _, handle) = start(
            "eof",
            Config {
                accept_budget: Some(1),
                ..Config::default()
            },
        );
        let mut c = ClientStream::connect(&path).unwrap();
        c.write_all(b"tail-no-newline").unwrap();
        c.shutdown(std::net::Shutdown::Write).unwrap();
        let mut r = BufReader::new(c);
        let mut l = String::new();
        r.read_line(&mut l).unwrap();
        assert_eq!(l, "TAIL-NO-NEWLINE\n");
        handle.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_lines_are_drained_and_answered() {
        let (path, dispatched, handle) = start(
            "cap",
            Config {
                max_line_bytes: 16,
                accept_budget: Some(1),
                ..Config::default()
            },
        );
        let mut c = ClientStream::connect(&path).unwrap();
        let big = vec![b'x'; 1024];
        c.write_all(&big).unwrap();
        c.write_all(b"\nok\n").unwrap();
        c.shutdown(std::net::Shutdown::Write).unwrap();
        let mut r = BufReader::new(c);
        let mut l = String::new();
        r.read_line(&mut l).unwrap();
        assert_eq!(l, "TOOBIG\n");
        l.clear();
        r.read_line(&mut l).unwrap();
        assert_eq!(l, "OK\n");
        // The oversized line was never dispatched.
        assert_eq!(dispatched.load(Ordering::SeqCst), 1);
        handle.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn admission_cap_sheds_with_busy_line() {
        let (path, _, handle) = start(
            "cap2",
            Config {
                max_clients: 1,
                ..Config::default()
            },
        );
        let mut keep = ClientStream::connect(&path).unwrap();
        keep.write_all(b"hello\n").unwrap();
        let mut r = BufReader::new(keep.try_clone().unwrap());
        let mut l = String::new();
        r.read_line(&mut l).unwrap();
        assert_eq!(l, "HELLO\n");
        // Second arrival: one BUSY line, then EOF.
        let over = ClientStream::connect(&path).unwrap();
        let mut r2 = BufReader::new(over);
        let mut l2 = String::new();
        r2.read_line(&mut l2).unwrap();
        assert_eq!(l2, "BUSY\n");
        l2.clear();
        assert_eq!(r2.read_line(&mut l2).unwrap(), 0, "refused conn must close");
        // The healthy connection is still serviceable.
        keep.write_all(b"still\ndie\n").unwrap();
        l.clear();
        r.read_line(&mut l).unwrap();
        assert_eq!(l, "STILL\n");
        let summary = handle.join().unwrap().unwrap();
        assert_eq!(summary.shed_admission, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn never_reading_client_is_shed_while_healthy_conn_survives() {
        let (path, _, handle) = start(
            "shed",
            Config {
                conn_queue_bytes: 256,
                ..Config::default()
            },
        );
        // Hostile: pipelines replies it never reads until its queue
        // blows the cap. The kernel socket buffer absorbs some; the cap
        // is small enough that the reactor-side queue overflows anyway.
        let mut hostile = ClientStream::connect(&path).unwrap();
        let line = vec![b'a'; 128];
        let mut req = line.clone();
        req.push(b'\n');
        let mut shed = false;
        for _ in 0..10_000 {
            if hostile.write_all(&req).is_err() {
                shed = true; // EPIPE: the reactor closed us
                break;
            }
        }
        // Give the loop a moment if the write side never errored (all
        // requests fit in flight) — the shed must still have happened.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !shed && Instant::now() < deadline {
            if hostile.write_all(&req).is_err() {
                shed = true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(shed, "hostile connection was never shed");
        // Healthy client: full service.
        let mut ok = ClientStream::connect(&path).unwrap();
        ok.write_all(b"ping\ndie\n").unwrap();
        let mut r = BufReader::new(ok);
        let mut l = String::new();
        r.read_line(&mut l).unwrap();
        assert_eq!(l, "PING\n");
        let summary = handle.join().unwrap().unwrap();
        assert!(summary.shed_queue >= 1, "{summary:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pending_budget_answers_busy_instead_of_dispatching() {
        let (path, _, handle) = start(
            "budget",
            Config {
                // Tiny loop-wide budget: once one reply is stuck in a
                // queue, further requests get BUSY.
                pending_budget_bytes: 64,
                conn_queue_bytes: 1 << 20,
                ..Config::default()
            },
        );
        // A non-reading client parks >64 queued bytes. Its own queue cap
        // is generous, so it is not shed — its backlog just poisons the
        // loop-wide budget. Socket buffers absorb the first ~200 KiB of
        // replies, so push enough to fill them AND the reactor queue.
        let mut parked = ClientStream::connect(&path).unwrap();
        let mut req = vec![b'b'; 512];
        req.push(b'\n');
        for _ in 0..2_000 {
            if parked.write_all(&req).is_err() {
                break;
            }
        }
        // Poll until a fresh request is answered BUSY (the parked
        // backlog is past the budget once the socket buffers fill).
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut saw_busy = false;
        while Instant::now() < deadline {
            let mut probe = ClientStream::connect(&path).unwrap();
            probe.write_all(b"hello\n").unwrap();
            let mut r = BufReader::new(probe);
            let mut l = String::new();
            r.read_line(&mut l).unwrap();
            if l == "BUSY\n" {
                saw_busy = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(saw_busy, "over-budget load was never answered BUSY");
        drop(parked);
        // Shut down via a fresh connection once the budget recovers.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut c = ClientStream::connect(&path).unwrap();
            c.write_all(b"die\n").unwrap();
            let mut r = BufReader::new(c);
            let mut l = String::new();
            r.read_line(&mut l).unwrap();
            if l == "bye\n" || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let summary = handle.join().unwrap().unwrap();
        assert!(summary.busy_replies >= 1, "{summary:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn idle_connections_are_cut() {
        let (path, _, handle) = start(
            "idle",
            Config {
                idle_timeout: Some(Duration::from_millis(50)),
                accept_budget: Some(1),
                ..Config::default()
            },
        );
        let c = ClientStream::connect(&path).unwrap();
        let mut r = BufReader::new(c);
        let mut l = String::new();
        // The server cuts us without a byte; read_line sees EOF.
        assert_eq!(r.read_line(&mut l).unwrap(), 0);
        let summary = handle.join().unwrap().unwrap();
        assert_eq!(summary.closed_idle, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drain_refuses_late_connections_cleanly() {
        let (path, _, handle) = start("drain", Config::default());
        let mut c = ClientStream::connect(&path).unwrap();
        c.write_all(b"die\n").unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        let mut l = String::new();
        r.read_line(&mut l).unwrap();
        assert_eq!(l, "bye\n");
        drop((c, r));
        handle.join().unwrap().unwrap();
        // The listener is gone: a late connect is refused, not parked.
        let err = ClientStream::connect(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        let _ = std::fs::remove_file(&path);
    }
}
