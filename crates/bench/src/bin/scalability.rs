//! Scalability curve: rewriting wall-clock versus patch-site count.
//!
//! The paper's central systems claim is that E9Patch's *local* patching
//! methodology scales to very large binaries — cost should grow roughly
//! linearly with the number of sites, with no global-analysis blow-up.
//!
//! Usage: `cargo run --release -p e9bench --bin scalability`

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::RewriteConfig;
use e9synth::{generate, PaperRow, Preset, Profile};
use std::time::Instant;

fn main() {
    println!("Rewrite cost vs. site count (A1, empty payload)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "sites", "gen(ms)", "rewrite(ms)", "sites/sec", "Succ%"
    );
    // Sweep synthetic scales; paper chrome ≈ 3.8M sites at scale 1.
    for scale in [2000u64, 500, 100, 25, 10] {
        let profile = Profile::scaled(
            &format!("scal-{scale}"),
            true, // PIE, like the browsers
            Preset::Browser,
            PaperRow {
                size_mb: 152.0,
                a1_loc: 3_800_565,
                a2_loc: 2_624_800,
                a1_succ: 100.0,
                a2_succ: 100.0,
            },
            scale,
            0,
            1,
        );
        let t0 = Instant::now();
        let sb = generate(&profile);
        let gen_ms = t0.elapsed().as_millis();
        let sites = sb.disasm.iter().filter(|i| i.kind.is_jump()).count();

        let t1 = Instant::now();
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options {
                app: Application::A1Jumps,
                payload: Payload::Empty,
                config: RewriteConfig::default(),
            },
        )
        .expect("instrument");
        let rw_ms = t1.elapsed().as_millis().max(1);
        println!(
            "{:>10} {:>12} {:>12} {:>14.0} {:>11.2}%",
            sites,
            gen_ms,
            rw_ms,
            sites as f64 / (rw_ms as f64 / 1000.0),
            out.rewrite.stats.succ_pct()
        );
    }
    println!("\nlinear-ish growth in rewrite(ms) with sites ⇒ no global-analysis blow-up");
}
