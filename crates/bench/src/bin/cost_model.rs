//! Cost-model sensitivity: the reproduction replaces wall-clock with a
//! cost-weighted instruction count (near branches cost `b`, far branches
//! cost `f`, everything else 1). This experiment sweeps `f` to show how
//! the headline Time% numbers depend on the model — and that the paper's
//! A1 ≈ +110% / A2 ≈ +65% pair is matched near the default `f = 6`.
//!
//! Usage: `cargo run --release -p e9bench --bin cost_model`

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9synth::{generate, Profile};
use e9vm::{load_elf, Vm};

fn run_cost(binary: &[u8], far_cost: u64, entry: Option<u64>) -> u64 {
    let mut vm = Vm::new();
    vm.far_branch_cost = far_cost;
    load_elf(&mut vm, binary).expect("load");
    let mut startup = 0;
    if let Some(e) = entry {
        while vm.cpu.rip != e {
            vm.step().expect("loader");
        }
        startup = vm.steps;
    }
    vm.run(u64::MAX).expect("run").steps - startup
}

fn main() {
    let profiles: Vec<Profile> = ["cost-a", "cost-b", "cost-c"]
        .iter()
        .map(|n| {
            let mut p = Profile::tiny(n, false);
            p.funcs = 8;
            p
        })
        .collect();

    println!("Time%% as a function of the far-branch cost f (near = 2)\n");
    println!(
        "{:>4} {:>12} {:>12}   (geomean over {} programs)",
        "f",
        "A1 Time%",
        "A2 Time%",
        profiles.len()
    );
    for far in [1u64, 2, 4, 6, 8, 12] {
        let mut a1 = Vec::new();
        let mut a2 = Vec::new();
        for p in &profiles {
            let sb = generate(p);
            for (app, acc) in [
                (Application::A1Jumps, &mut a1),
                (Application::A2HeapWrites, &mut a2),
            ] {
                let out = instrument_with_disasm(
                    &sb.binary,
                    &sb.disasm,
                    &Options::new(app, Payload::Empty),
                )
                .expect("instrument");
                let orig = run_cost(&sb.binary, far, None);
                let patched = run_cost(&out.rewrite.binary, far, Some(sb.entry));
                acc.push(100.0 * patched as f64 / orig as f64);
            }
        }
        println!(
            "{:>4} {:>11.1}% {:>11.1}%",
            far,
            e9bench::geomean(&a1),
            e9bench::geomean(&a2)
        );
    }
    println!("\npaper reference: A1 210.8%, A2 164.7% (the default f=6 is calibrated");
    println!("to land near that pair; the A1 > A2 ordering holds for every f)");
}
