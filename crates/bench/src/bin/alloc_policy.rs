//! Trampoline placement ablation: first-fit-low (dense packing, the
//! default) versus first-fit-high (scattered) — how much of the file-size
//! result depends on the allocator, and how well physical page grouping
//! (§4) rescues a bad placement.
//!
//! Usage: `cargo run --release -p e9bench --bin alloc_policy`

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::planner::AllocPolicy;
use e9patch::RewriteConfig;
use e9synth::generate;

fn main() {
    let scale = e9bench::scale_from_env();
    let mut profiles = e9synth::spec_profiles(scale);
    profiles.retain(|p| ["perlbench", "gcc", "gamess", "xalancbmk"].contains(&p.name.as_str()));

    println!("Placement policy ablation (A1, empty payload, grouping on/off)\n");
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>14} {:>14}",
        "binary", "sites", "low+grp%", "high+grp%", "low+naive%", "high+naive%"
    );
    for p in &profiles {
        let sb = generate(p);
        let sites = sb.disasm.iter().filter(|i| i.kind.is_jump()).count();
        let mut cols = Vec::new();
        for grouping in [true, false] {
            for policy in [AllocPolicy::FirstFitLow, AllocPolicy::FirstFitHigh] {
                let out = instrument_with_disasm(
                    &sb.binary,
                    &sb.disasm,
                    &Options {
                        app: Application::A1Jumps,
                        payload: Payload::Empty,
                        config: RewriteConfig {
                            grouping,
                            alloc_policy: policy,
                            ..RewriteConfig::default()
                        },
                    },
                )
                .expect("instrument");
                cols.push(out.rewrite.size.size_pct());
            }
        }
        println!(
            "{:<12} {:>10} {:>13.1}% {:>13.1}% {:>13.1}% {:>13.1}%",
            p.name, sites, cols[0], cols[1], cols[2], cols[3]
        );
    }
    println!("\ndense placement keeps even the naive backing tolerable; scattered");
    println!("placement relies on grouping — the combination (low+grouping) wins,");
    println!("matching the paper's design choice.");
}
