//! Internal debugging tool: localize a behavioural divergence between an
//! original and patched binary by comparing architectural state at every
//! `ret` retired at an original text address.

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::RewriteConfig;
use e9synth::{generate, Profile};
use e9vm::{load_elf, Vm};
use e9x86::reg::Reg;

fn trace_steps(
    binary: &[u8],
    text: (u64, u64),
    exclude: &std::collections::HashSet<u64>,
    limit: usize,
) -> Vec<(u64, u64)> {
    let mut vm = Vm::new();
    load_elf(&mut vm, binary).unwrap();
    let mut out = Vec::new();
    loop {
        let rip = vm.cpu.rip;
        if rip >= text.0 && rip < text.1 && !exclude.contains(&rip) {
            out.push((rip, vm.cpu.get(Reg::R12)));
            if out.len() >= limit {
                return out;
            }
        }
        match vm.step() {
            Ok(true) => {}
            _ => return out,
        }
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "vim".into());
    let scale: u64 = std::env::var("E9_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let profile = e9synth::all_profiles(scale)
        .into_iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| Profile::tiny(&name, false));
    let sb = generate(&profile);
    let out = instrument_with_disasm(
        &sb.binary,
        &sb.disasm,
        &Options {
            app: Application::A1Jumps,
            payload: Payload::Empty,
            config: RewriteConfig::default(),
        },
    )
    .unwrap();
    println!("stats: {:?}", out.rewrite.stats);
    let text = (sb.text_vaddr, sb.text_vaddr + sb.code_len as u64);
    // Patched sites never retire at their original rip (they run in
    // trampolines); exclude them from the original trace for alignment.
    let patched_sites: std::collections::HashSet<u64> = sb
        .disasm
        .iter()
        .filter(|i| i.kind.is_jump())
        .map(|i| i.addr)
        .collect();
    let a = trace_steps(&sb.binary, text, &patched_sites, 200_000);
    let b = trace_steps(&out.rewrite.binary, text, &patched_sites, 200_000);
    println!("orig steps: {}, patched steps: {}", a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y {
            println!("first divergence at aligned step #{i}:");
            for j in i.saturating_sub(5)..(i + 3).min(a.len()).min(b.len()) {
                println!("  orig[{j}] = {:x?}   patched[{j}] = {:x?}", a[j], b[j]);
            }
            // Decode around the divergent original rip.
            let elfo = e9elf::Elf::parse(&sb.binary).unwrap();
            let elfp = e9elf::Elf::parse(&out.rewrite.binary).unwrap();
            let from = a[i].0.saturating_sub(24).max(text.0);
            println!("original bytes @{from:#x}: {:02x?}", elfo.slice_at(from, 40).unwrap());
            println!("patched  bytes @{from:#x}: {:02x?}", elfp.slice_at(from, 40).unwrap());
            return;
        }
    }
    println!("no divergence in compared prefix");
}
