//! Experiment E7 — the §4 granularity trade-off: sweep the physical page
//! grouping block size `M ∈ {1,2,4,…,64}` on a Chrome-class binary and
//! report mapping count versus physical memory/file size. The paper notes
//! `M ≥ 64` keeps mappings below Linux's default
//! `vm.max_map_count = 65536`.
//!
//! Usage: `cargo run --release -p e9bench --bin granularity`

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::group::DEFAULT_MAX_MAP_COUNT;
use e9patch::RewriteConfig;
use e9synth::generate;

fn main() {
    let scale = e9bench::scale_from_env();
    let profile = e9synth::browser_profiles(scale)
        .into_iter()
        .find(|p| p.name == "chrome")
        .expect("chrome profile");
    let sb = generate(&profile);
    let a1 = sb.disasm.iter().filter(|i| i.kind.is_jump()).count();
    println!(
        "Granularity sweep on the Chrome-class binary ({a1} A1 sites, scale 1/{scale})\n"
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "M", "mappings", "physblocks", "physMB", "Size%", "fits map_count"
    );
    for m in [1u64, 2, 4, 8, 16, 32, 64] {
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options {
                app: Application::A1Jumps,
                payload: Payload::Empty,
                config: RewriteConfig {
                    granularity: m,
                    ..RewriteConfig::default()
                },
            },
        )
        .expect("instrument");
        let s = out.rewrite.size;
        let phys_mb = s.physical_blocks as f64 * m as f64 * 4096.0 / 1e6;
        // Scale the mapping count back up to paper scale for the
        // max_map_count comparison.
        let paper_scale_mappings = s.mappings * scale;
        println!(
            "{:>4} {:>12} {:>12} {:>12.2} {:>11.1}% {:>14}",
            m,
            s.mappings,
            s.physical_blocks,
            phys_mb,
            s.size_pct(),
            if paper_scale_mappings <= DEFAULT_MAX_MAP_COUNT {
                "yes"
            } else {
                "no (raise M)"
            }
        );
    }
    println!("\npaper reference: M=1 is most aggressive; M>=64 always fits the");
    println!("default vm.max_map_count=65536 budget for a single binary");
}
