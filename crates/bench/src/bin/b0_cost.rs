//! Experiment E6 — the §2.1.1 signal-handler baseline: patch the same
//! sites with B0 (`int3` + trap dispatch) versus the jump-based tactics
//! and compare runtime cost. The paper notes B0 is "sometimes orders of
//! magnitude" slower.
//!
//! Usage: `cargo run --release -p e9bench --bin b0_cost`

use e9bench::run_guest;
use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::{RewriteConfig, Tactics};
use e9synth::{generate, Profile};

fn main() {
    let profiles = [
        Profile::tiny("b0demo-a", false),
        Profile::tiny("b0demo-b", false),
        Profile::tiny("b0demo-c", true),
    ];
    println!("B0 (int3 trap) vs jump tactics: Time% over the original binary\n");
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "Binary", "tactics%", "B0%", "B0/tactics"
    );
    for p in &profiles {
        let sb = generate(p);
        let (orig, _, _) = run_guest(&sb.binary, false, None, None);

        // Jump tactics.
        let jmp = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options::new(Application::A1Jumps, Payload::Empty),
        )
        .expect("instrument");
        let (jr, _, _) = run_guest(&jmp.rewrite.binary, false, None, Some(sb.entry));

        // Pure B0: disable every tactic, force the trap fallback.
        let b0 = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options {
                app: Application::A1Jumps,
                payload: Payload::Empty,
                config: RewriteConfig {
                    tactics: Tactics {
                        t1: false,
                        t2: false,
                        t3: false,
                    },
                    b0_fallback: true,
                    ..RewriteConfig::default()
                },
            },
        )
        .expect("instrument b0");
        // Count only trap-patched sites as B0 work (any site B1/B2 could
        // patch was still patched with a jump; that matches a real B0
        // fallback deployment).
        let (br, _, _) = run_guest(&b0.rewrite.binary, false, None, Some(sb.entry));

        let t_pct = 100.0 * jr.steps as f64 / orig.steps as f64;
        let b_pct = 100.0 * br.steps as f64 / orig.steps as f64;
        println!(
            "{:<14} {:>11.1}% {:>11.1}% {:>9.1}x   ({} B0 sites of {})",
            p.name,
            t_pct,
            b_pct,
            b_pct / t_pct,
            b0.rewrite.stats.b0,
            b0.rewrite.stats.total(),
        );
    }
    println!("\npaper reference: B0 suffers kernel round trips per execution —");
    println!("orders of magnitude slower than jump-based patching (§2.1.1)");
}
