//! Experiment E3 — regenerate **Figure 5**: per-benchmark timings of A2
//! empty instrumentation versus LowFat redzone-checking instrumentation
//! (the §6.3 heap-write hardening application), over SPEC-like rows and
//! the browser kernels.
//!
//! Usage: `cargo run --release -p e9bench --bin fig5 [--quick]`

use e9bench::{geomean, measure, quick_from_args, scale_from_env};
use e9front::{Application, Payload};
use e9patch::RewriteConfig;
use e9synth::{dromaeo_kernel, DROMAEO_KERNELS};

fn main() {
    let scale = scale_from_env();
    let quick = quick_from_args();
    let mut profiles = e9synth::spec_profiles(scale);
    if quick {
        let keep = ["perlbench", "bzip2", "mcf", "milc", "lbm", "sjeng"];
        profiles.retain(|p| keep.contains(&p.name.as_str()));
    }

    println!("Figure 5 reproduction: A2 empty vs LowFat instrumentation (Time%)\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "Benchmark", "A2 empty", "LowFat", "violations"
    );
    let mut empty_all = Vec::new();
    let mut lowfat_all = Vec::new();
    for p in &profiles {
        let e = measure(
            p,
            Application::A2HeapWrites,
            Payload::Empty,
            RewriteConfig::default(),
        );
        let l = measure(
            p,
            Application::A2HeapWrites,
            Payload::LowFat,
            RewriteConfig::default(),
        );
        assert_eq!(l.violations, 0, "{}: false positives", p.name);
        println!(
            "{:<14} {:>11.1}% {:>11.1}% {:>12}",
            p.name, e.time_pct, l.time_pct, l.violations
        );
        empty_all.push(e.time_pct);
        lowfat_all.push(l.time_pct);
    }
    println!(
        "{:<14} {:>11.1}% {:>11.1}%   (SPEC geomean)",
        "SPEC Mean",
        geomean(&empty_all),
        geomean(&lowfat_all)
    );

    // Browser points (Chrome/FireFox means over the Dromaeo kernels).
    for browser in ["chrome", "firefox"] {
        let kernels: &[&str] = if quick {
            &DROMAEO_KERNELS[..3]
        } else {
            &DROMAEO_KERNELS
        };
        let mut e_v = Vec::new();
        let mut l_v = Vec::new();
        for kernel in kernels {
            let p = dromaeo_kernel(browser, kernel);
            e_v.push(
                measure(
                    &p,
                    Application::A2HeapWrites,
                    Payload::Empty,
                    RewriteConfig::default(),
                )
                .time_pct,
            );
            let l = measure(
                &p,
                Application::A2HeapWrites,
                Payload::LowFat,
                RewriteConfig::default(),
            );
            assert_eq!(l.violations, 0);
            l_v.push(l.time_pct);
        }
        println!(
            "{:<14} {:>11.1}% {:>11.1}%   (browser mean)",
            format!("{browser} Mean"),
            geomean(&e_v),
            geomean(&l_v)
        );
    }
    println!("\npaper reference: SPEC A2 +64.71% → LowFat +127.27%;");
    println!("                 Chrome +113% → +170%; FireFox +46% → +60%");
}
