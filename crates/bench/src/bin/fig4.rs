//! Experiment E2 — regenerate **Figure 4**: relative runtime overhead of
//! A2 (heap-write) empty instrumentation on Chrome- and FireFox-class
//! binaries across the fourteen Dromaeo DOM sub-benchmarks.
//!
//! Usage: `cargo run --release -p e9bench --bin fig4`

use e9bench::{geomean, measure};
use e9front::{Application, Payload};
use e9patch::RewriteConfig;
use e9synth::{dromaeo_kernel, DROMAEO_KERNELS};

fn main() {
    println!("Figure 4 reproduction: Dromaeo DOM overheads (A2 empty instrumentation)\n");
    println!("{:<18} {:>14} {:>14}", "Benchmark", "Chrome", "FireFox");
    let mut chrome = Vec::new();
    let mut firefox = Vec::new();
    for kernel in DROMAEO_KERNELS {
        let mut row = Vec::new();
        for (browser, acc) in [("chrome", &mut chrome), ("firefox", &mut firefox)] {
            let p = dromaeo_kernel(browser, kernel);
            let r = measure(
                &p,
                Application::A2HeapWrites,
                Payload::Empty,
                RewriteConfig::default(),
            );
            acc.push(r.time_pct);
            row.push(r.time_pct);
        }
        println!("{:<18} {:>13.1}% {:>13.1}%", kernel, row[0], row[1]);
    }
    println!(
        "{:<18} {:>13.1}% {:>13.1}%   (geometric mean)",
        "Geom.Mean",
        geomean(&chrome),
        geomean(&firefox)
    );
    println!("\npaper reference: Chrome ≈ 213% (i.e. ~113% overhead), FireFox ≈ 146%");
}
