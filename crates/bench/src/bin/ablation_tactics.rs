//! Experiment E5 — tactic ablation: coverage with tactic sets
//! {B1/B2} → {+T1} → {+T2} → {+T3}, reproducing the paper's §2.2 claim
//! that the baselines alone cover only 42–94% of sites and §6.1's
//! observation that dropping T3 costs ~10 points of coverage.
//!
//! Usage: `cargo run --release -p e9bench --bin ablation_tactics [--quick]`

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::{RewriteConfig, Tactics};
use e9synth::generate;

fn main() {
    let scale = e9bench::scale_from_env();
    let quick = e9bench::quick_from_args();
    let mut profiles = e9synth::spec_profiles(scale);
    if quick {
        let keep = ["perlbench", "gamess", "zeusmp", "mcf", "lbm", "tonto"];
        profiles.retain(|p| keep.contains(&p.name.as_str()));
    }

    let sets: [(&str, Tactics); 4] = [
        ("Base", Tactics::base_only()),
        (
            "+T1",
            Tactics {
                t1: true,
                t2: false,
                t3: false,
            },
        ),
        (
            "+T2",
            Tactics {
                t1: true,
                t2: true,
                t3: false,
            },
        ),
        ("+T3", Tactics::all()),
    ];

    for (app, label) in [
        (Application::A1Jumps, "A1 jumps"),
        (Application::A2HeapWrites, "A2 heap writes"),
    ] {
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>8}   Succ%% by tactic set [{label}]",
            "Binary", "Base", "+T1", "+T2", "+T3"
        );
        let mut sums = [0f64; 4];
        for p in &profiles {
            let sb = generate(p);
            let mut cols = Vec::new();
            for (_, tactics) in sets {
                let out = instrument_with_disasm(
                    &sb.binary,
                    &sb.disasm,
                    &Options {
                        app,
                        payload: Payload::Empty,
                        config: RewriteConfig {
                            tactics,
                            ..RewriteConfig::default()
                        },
                    },
                )
                .expect("instrument");
                cols.push(out.rewrite.stats.succ_pct());
            }
            println!(
                "{:<14} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
                p.name, cols[0], cols[1], cols[2], cols[3]
            );
            for (s, c) in sums.iter_mut().zip(&cols) {
                *s += c;
            }
        }
        let n = profiles.len() as f64;
        println!(
            "{:<14} {:>7.2} {:>7.2} {:>7.2} {:>7.2}   (average)\n",
            "Average",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n,
            sums[3] / n
        );
    }
    println!("paper reference (A1): Base 72.79 → +T1 86.74 → +T2 90.47 → +T3 99.94");
}
