//! Experiment E4 — the §6.1 file-size ablation: physical page grouping
//! ON (the paper's +57.43%/+30.90% averages) versus the naïve one-to-one
//! physical↔virtual mapping (the paper's +2239.83%/+568.96% blow-up).
//!
//! Usage: `cargo run --release -p e9bench --bin ablation_grouping [--quick]`

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::RewriteConfig;
use e9synth::generate;

fn main() {
    let scale = e9bench::scale_from_env();
    let quick = e9bench::quick_from_args();
    let mut profiles = e9synth::spec_profiles(scale);
    if quick {
        let keep = ["perlbench", "bzip2", "mcf", "lbm"];
        profiles.retain(|p| keep.contains(&p.name.as_str()));
    }

    println!("File-size ablation: physical page grouping vs naive 1:1 backing\n");
    for (app, label) in [
        (Application::A1Jumps, "A1 jumps"),
        (Application::A2HeapWrites, "A2 heap writes"),
    ] {
        println!(
            "{:<14} {:>12} {:>12} {:>10} {:>10}   [{label}]",
            "Binary", "grouped%", "naive%", "physblk", "virtblk"
        );
        let mut grouped_pcts = Vec::new();
        let mut naive_pcts = Vec::new();
        for p in &profiles {
            let sb = generate(p);
            let mut sizes = Vec::new();
            let mut blocks = (0, 0);
            for grouping in [true, false] {
                let out = instrument_with_disasm(
                    &sb.binary,
                    &sb.disasm,
                    &Options {
                        app,
                        payload: Payload::Empty,
                        config: RewriteConfig {
                            grouping,
                            ..RewriteConfig::default()
                        },
                    },
                )
                .expect("instrument");
                sizes.push(out.rewrite.size.size_pct());
                if grouping {
                    blocks = (
                        out.rewrite.size.physical_blocks,
                        out.rewrite.size.virtual_blocks,
                    );
                }
            }
            println!(
                "{:<14} {:>11.1}% {:>11.1}% {:>10} {:>10}",
                p.name, sizes[0], sizes[1], blocks.0, blocks.1
            );
            grouped_pcts.push(sizes[0]);
            naive_pcts.push(sizes[1]);
        }
        let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:<14} {:>11.1}% {:>11.1}%   (average)\n",
            "Average",
            avg(&grouped_pcts),
            avg(&naive_pcts)
        );
    }
    println!("paper reference: grouped +57.43%/+30.90%, naive +2239.83%/+568.96% (A1/A2)");
}
