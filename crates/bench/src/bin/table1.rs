//! Experiment E1 — regenerate **Table 1** (patching statistics).
//!
//! For every benchmark row: #Loc, Base%, T1%, T2%, T3%, Succ%, Time%,
//! Size% for applications A1 (all jmp/jcc) and A2 (heap writes), on
//! synthetic stand-ins scaled by `E9_SCALE` (default 50).
//!
//! Usage: `cargo run --release -p e9bench --bin table1 [--quick]`

use e9bench::{measure, quick_from_args, scale_from_env, table1_header, table1_row};
use e9front::{Application, Payload};
use e9patch::RewriteConfig;

fn main() {
    let scale = scale_from_env();
    let quick = quick_from_args();
    let mut profiles = e9synth::all_profiles(scale);
    if quick {
        let keep = [
            "perlbench",
            "bzip2",
            "gamess",
            "mcf",
            "lbm",
            "vim",
            "chrome",
            "libxul.so",
        ];
        profiles.retain(|p| keep.contains(&p.name.as_str()));
    }

    println!("Table 1 reproduction (scale 1/{scale}{})", if quick { ", --quick" } else { "" });
    println!("PIE rows: inkscape, vim, evince, chrome, firefox\n");

    for (app, app_name, payload) in [
        (Application::A1Jumps, "A1: jmp/jcc instructions", Payload::Empty),
        (Application::A2HeapWrites, "A2: heap write instructions", Payload::Empty),
    ] {
        println!("{}", table1_header(app_name));
        let mut total_sites = 0usize;
        let mut total_succ = 0usize;
        let mut time_pcts = Vec::new();
        let mut size_pcts = Vec::new();
        for p in &profiles {
            let row = measure(p, app, payload, RewriteConfig::default());
            println!("{}", table1_row(&row));
            total_sites += row.stats.total();
            total_succ += row.stats.succeeded();
            time_pcts.push(row.time_pct);
            size_pcts.push(row.size.size_pct());
        }
        let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:<14} {:>8} {:>38.2}% {:>8.2} {:>8.2}   (totals)",
            "#Total/Avg",
            total_sites,
            100.0 * total_succ as f64 / total_sites.max(1) as f64,
            avg(&time_pcts),
            avg(&size_pcts)
        );
        println!();
    }
    println!("paper reference: A1 avg Succ 99.94%, Time +110.81%, Size +57.43%");
    println!("                 A2 avg Succ 99.99%, Time +64.71%, Size +30.90%");
}
