//! One-command reproduction: run every experiment (E1–E12) in sequence
//! and write the outputs under `results/`.
//!
//! Usage: `cargo run --release -p e9bench --bin repro_all [--quick]`
//!
//! Equivalent to invoking each experiment binary by hand; see DESIGN.md §3
//! for the experiment index and EXPERIMENTS.md for the recorded
//! paper-vs-measured discussion.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig4",
    "fig5",
    "ablation_grouping",
    "ablation_tactics",
    "b0_cost",
    "granularity",
    "frontends",
    "cost_model",
    "alloc_policy",
    "scalability",
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    std::fs::create_dir_all("results").expect("create results/");
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate sibling experiment binaries");

    let mut failures = 0;
    for name in EXPERIMENTS {
        let path = exe_dir.join(name);
        if !path.exists() {
            eprintln!("skipping {name}: binary not built (run with --release -p e9bench)");
            failures += 1;
            continue;
        }
        print!("running {name:<20} ");
        use std::io::Write;
        std::io::stdout().flush().ok();
        let t0 = std::time::Instant::now();
        let mut cmd = Command::new(&path);
        if quick {
            cmd.arg("--quick");
        }
        match cmd.output() {
            Ok(out) if out.status.success() => {
                let dest = format!("results/{name}.txt");
                std::fs::write(&dest, &out.stdout).expect("write result");
                println!("ok ({:.1}s) → {dest}", t0.elapsed().as_secs_f64());
            }
            Ok(out) => {
                println!("FAILED (exit {:?})", out.status.code());
                eprintln!("{}", String::from_utf8_lossy(&out.stderr));
                failures += 1;
            }
            Err(e) => {
                println!("FAILED to launch: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("\nall experiments regenerated; see EXPERIMENTS.md for interpretation");
    } else {
        println!("\n{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
