//! Frontend comparison (§2.2): E9Patch takes disassembly info as an
//! *input*, so coverage depends on the frontend, not the rewriter. This
//! experiment contrasts the prototype linear-sweep frontend with a
//! recursive-descent frontend on the same binaries: recursion is sound but
//! misses indirectly-reached code (jump tables, function-pointer calls),
//! shrinking the instrumentable site set.
//!
//! Usage: `cargo run --release -p e9bench --bin frontends`

use e9front::{instrument_with_disasm, recursive, Application, Options, Payload};
use e9synth::{generate, Profile};

fn main() {
    println!("Linear vs recursive disassembly frontends (A1 sites)\n");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "binary", "lin insns", "rec insns", "lin sites", "rec sites", "rec/lin"
    );
    for (name, switch_pct) in [("few-switch", 10u32), ("mid-switch", 40), ("all-switch", 100)] {
        let mut p = Profile::tiny(name, false);
        p.funcs = 12;
        p.switch_pct = switch_pct;
        let sb = generate(&p);
        let elf = e9elf::Elf::parse(&sb.binary).unwrap();
        let rec = recursive::recursive_sweep(&elf, &[sb.entry]);

        let lin_sites = sb.disasm.iter().filter(|i| i.kind.is_jump()).count();
        let rec_sites = rec.iter().filter(|i| i.kind.is_jump()).count();
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>12} {:>9.0}%",
            name,
            sb.disasm.len(),
            rec.len(),
            lin_sites,
            rec_sites,
            100.0 * rec_sites as f64 / lin_sites.max(1) as f64
        );

        // Both frontends must preserve behaviour when used for rewriting.
        let orig = e9vm::run_binary(&sb.binary, 200_000_000).unwrap();
        for disasm in [&sb.disasm, &rec] {
            let out = instrument_with_disasm(
                &sb.binary,
                disasm,
                &Options::new(Application::A1Jumps, Payload::Empty),
            )
            .unwrap();
            let r = e9vm::run_binary(&out.rewrite.binary, 400_000_000).unwrap();
            assert_eq!(r.output, orig.output, "{name}");
        }
    }
    println!("\nrecursive descent is sound but incomplete: more indirect control");
    println!("flow (switch tables) ⇒ fewer reachable sites. The rewriter is");
    println!("agnostic — both frontends' outputs patch correctly.");
}
