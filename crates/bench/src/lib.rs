//! # e9bench — measurement harness for the paper's evaluation
//!
//! Shared machinery for the table/figure generator binaries (`table1`,
//! `fig4`, `fig5`, `ablation_grouping`, `ablation_tactics`, `b0_cost`,
//! `granularity`) and the in-tree micro-benchmarks (see [`harness`]). See DESIGN.md §3 for
//! the experiment index and EXPERIMENTS.md for recorded results.
//!
//! Every measurement *also* verifies correctness: the patched binary must
//! produce byte-identical output and exit code to the original, or the
//! harness panics — a rewritten benchmark that silently misbehaves would
//! invalidate the numbers.

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::{PatchStats, RewriteConfig, SizeStats};
use e9synth::{generate, Profile};
use e9vm::{load_elf, RunResult, Vm};

pub mod harness;

/// Upper bound on emulated cost units per run.
pub const MAX_STEPS: u64 = 2_000_000_000;

/// Run `binary`, optionally with the low-fat heap backend. Returns the run
/// result plus the low-fat violation count read from `violations_addr`.
///
/// When `main_entry` is given, cost units spent *before* control first
/// reaches that address (the injected loader's startup `mmap` loop) are
/// subtracted from the reported steps — the paper measures steady-state
/// benchmark time, and startup mapping cost is a one-off. The raw startup
/// cost is returned separately.
///
/// # Panics
///
/// Panics on guest errors — benchmark binaries are expected to be correct.
pub fn run_guest(
    binary: &[u8],
    lowfat: bool,
    violations_addr: Option<u64>,
    main_entry: Option<u64>,
) -> (RunResult, u64, u64) {
    let mut vm = Vm::new();
    if lowfat {
        vm.set_heap(Box::new(e9lowfat::LowFatAllocator::new()));
    }
    load_elf(&mut vm, binary).expect("load benchmark binary");
    let mut startup = 0u64;
    if let Some(entry) = main_entry {
        while vm.cpu.rip != entry {
            vm.step().expect("loader step");
            assert!(vm.steps < MAX_STEPS, "loader never reached the entry");
        }
        startup = vm.steps;
    }
    let mut r = vm.run(MAX_STEPS).expect("run benchmark binary");
    r.steps -= startup;
    r.insns -= startup;
    let v = violations_addr
        .map(|a| vm.mem.read_le(a, 8).unwrap_or(0))
        .unwrap_or(0);
    (r, v, startup)
}

/// One measured table row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Number of selected patch sites (#Loc).
    pub sites: usize,
    /// Tactic outcome counters.
    pub stats: PatchStats,
    /// File-size statistics.
    pub size: SizeStats,
    /// Patched/original cost ratio × 100 (the paper's Time% column).
    pub time_pct: f64,
    /// Original run cost (diagnostics).
    pub orig_steps: u64,
    /// Patched run cost (diagnostics).
    pub patched_steps: u64,
    /// Low-fat violations observed (0 for clean programs).
    pub violations: u64,
    /// One-off startup cost of the injected loader (mapping loop).
    pub loader_steps: u64,
    /// Paper reference values, when the profile has them.
    pub paper: Option<e9synth::PaperRow>,
}

/// Generate, instrument, and measure one profile under one application.
///
/// # Panics
///
/// Panics if the patched binary diverges from the original — correctness
/// is a precondition for reporting performance.
pub fn measure(profile: &Profile, app: Application, payload: Payload, cfg: RewriteConfig) -> Row {
    let sb = generate(profile);
    let lowfat = payload == Payload::LowFat;
    let (orig, _, _) = run_guest(&sb.binary, lowfat, None, None);

    let opts = Options {
        app,
        payload,
        config: cfg,
    };
    let out = instrument_with_disasm(&sb.binary, &sb.disasm, &opts)
        .expect("instrumentation must not error");
    let (patched, violations, loader_steps) =
        run_guest(&out.rewrite.binary, lowfat, out.violations_addr, Some(sb.entry));

    assert_eq!(
        patched.output, orig.output,
        "{}: patched output diverged",
        profile.name
    );
    assert_eq!(
        patched.exit_code, orig.exit_code,
        "{}: patched exit code diverged",
        profile.name
    );

    Row {
        name: profile.name.clone(),
        sites: out.sites,
        stats: out.rewrite.stats,
        size: out.rewrite.size,
        time_pct: 100.0 * patched.steps as f64 / orig.steps.max(1) as f64,
        orig_steps: orig.steps,
        patched_steps: patched.steps,
        violations,
        loader_steps,
        paper: profile.paper,
    }
}

/// Format a Table-1-style header.
pub fn table1_header(app: &str) -> String {
    format!(
        "{:<14} {:>8} {:>7} {:>6} {:>6} {:>6} {:>7} {:>8} {:>8}   [{app}]",
        "Binary", "#Loc", "Base%", "T1%", "T2%", "T3%", "Succ%", "Time%", "Size%"
    )
}

/// Format one Table-1-style row.
pub fn table1_row(r: &Row) -> String {
    format!(
        "{:<14} {} {:>8.2} {:>8.2}",
        r.name,
        r.stats.table_row(),
        r.time_pct,
        r.size.size_pct()
    )
}

/// Scale factor from the `E9_SCALE` environment variable (default
/// [`e9synth::DEFAULT_SCALE`]). Larger = smaller/faster benchmarks.
pub fn scale_from_env() -> u64 {
    std::env::var("E9_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(e9synth::DEFAULT_SCALE)
}

/// `--quick` flag or `E9_QUICK=1`: run a representative subset.
pub fn quick_from_args() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("E9_QUICK").is_ok_and(|v| v == "1")
}

/// Geometric mean helper (the paper reports geo-means for Figure 4).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use e9patch::Tactics;

    #[test]
    fn measure_tiny_a1() {
        let p = Profile::tiny("benchtest", false);
        let row = measure(&p, Application::A1Jumps, Payload::Empty, RewriteConfig::default());
        assert!(row.sites > 0);
        assert!(row.time_pct > 100.0, "instrumentation must cost something");
        assert_eq!(row.stats.total(), row.sites);
    }

    #[test]
    fn measure_tiny_a2_lowfat() {
        let p = Profile::tiny("benchlf", false);
        let row = measure(
            &p,
            Application::A2HeapWrites,
            Payload::LowFat,
            RewriteConfig::default(),
        );
        assert_eq!(row.violations, 0);
        assert!(row.time_pct >= 100.0);
    }

    #[test]
    fn ablation_config_reduces_coverage() {
        let p = Profile::tiny("benchabl", false);
        let full = measure(
            &p,
            Application::A1Jumps,
            Payload::Empty,
            RewriteConfig::default(),
        );
        let base = measure(
            &p,
            Application::A1Jumps,
            Payload::Empty,
            RewriteConfig {
                tactics: Tactics::base_only(),
                ..RewriteConfig::default()
            },
        );
        assert!(base.stats.succ_pct() <= full.stats.succ_pct());
    }

    #[test]
    fn geomean_sane() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn formatting_contains_columns() {
        let h = table1_header("A1");
        assert!(h.contains("Base%"));
        assert!(h.contains("Succ%"));
    }
}
