//! In-tree micro-benchmark harness — the offline replacement for
//! Criterion behind the same `cargo bench` entry points.
//!
//! Each `[[bench]]` target (built with `harness = false`) constructs a
//! [`Harness`], registers timed closures, and calls [`Harness::finish`].
//! Measurement is deliberately simple and dependency-free:
//!
//! * a wall-clock **warmup** phase sizes the per-sample iteration count so
//!   one sample costs ~10 ms (amortising timer overhead);
//! * **median-of-N** samples (default 15) are reported, with min/max for
//!   spread — the median is robust against scheduler noise, which is all
//!   a CI smoke signal needs;
//! * results are appended to `results/bench_<group>.json` as hand-rolled
//!   JSON (no serde), so later PRs can diff hot-path regressions.
//!
//! ## Flags (after `cargo bench -q -- …`)
//!
//! | flag | effect |
//! |---|---|
//! | `--smoke` | 3 samples, 1 iteration each — a compile-and-run gate |
//! | `--samples N` | override the sample count |
//! | `--no-json` | skip writing `results/` |
//!
//! Unknown flags (e.g. the `--bench` cargo appends) are ignored.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Units for reporting throughput alongside time per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical items processed per iteration.
    Elements(u64),
}

/// One measured benchmark.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
}

/// A benchmark group: collects timed closures, prints a table, writes
/// JSON. See the module docs for the measurement protocol.
pub struct Harness {
    group: String,
    smoke: bool,
    samples: usize,
    write_json: bool,
    throughput: Option<Throughput>,
    records: Vec<Record>,
    notes: Vec<(String, String)>,
}

const WARMUP: Duration = Duration::from_millis(100);
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

impl Harness {
    /// Build a harness for `group`, reading flags from `std::env::args`.
    pub fn from_args(group: &str) -> Harness {
        let mut smoke = false;
        let mut samples = 15usize;
        let mut write_json = true;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--smoke" => smoke = true,
                "--no-json" => write_json = false,
                "--samples" => {
                    samples = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--samples needs a number");
                }
                _ => {} // cargo appends `--bench`; tolerate anything else
            }
        }
        if smoke {
            samples = 3;
        }
        Harness {
            group: group.to_string(),
            smoke,
            samples: samples.max(1),
            write_json,
            throughput: None,
            records: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Whether this is a `--smoke` run (benches can shrink their inputs).
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }

    /// Median of an already-measured bench, for derived summary notes.
    pub fn median_ns(&self, name: &str) -> Option<f64> {
        self.records.iter().find(|r| r.name == name).map(|r| r.median_ns)
    }

    /// Attach a derived key/value to the JSON output (`"notes"` object).
    /// `value` is embedded verbatim — pass a bare number, or quote it
    /// yourself for a string.
    pub fn note(&mut self, key: &str, value: impl std::fmt::Display) {
        self.notes.push((key.to_string(), value.to_string()));
    }

    /// Set the throughput denominator for the *next* [`Harness::bench`]
    /// call (cleared after it, mirroring Criterion's per-input style).
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Time `f`, record the median, and print one progress line.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        // Warmup: run until the budget elapses, learning the cost.
        let mut iters = 0u64;
        let warmup = if self.smoke {
            Duration::ZERO
        } else {
            WARMUP
        };
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= warmup {
                break;
            }
        }
        let est = start.elapsed().as_secs_f64() / iters as f64;

        // Size one sample at ~10 ms (one iteration in smoke mode).
        let iters_per_sample = if self.smoke {
            1
        } else {
            ((TARGET_SAMPLE.as_secs_f64() / est.max(1e-9)) as u64).clamp(1, 1 << 24)
        };

        let mut sample_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64
            })
            .collect();
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let median = sample_ns[sample_ns.len() / 2];
        let rec = Record {
            name: name.to_string(),
            median_ns: median,
            min_ns: sample_ns[0],
            max_ns: *sample_ns.last().unwrap(),
            samples: self.samples,
            iters_per_sample,
            throughput: self.throughput.take(),
        };
        println!("{:>28}  {}", format!("{}/{}", self.group, rec.name), summary(&rec));
        self.records.push(rec);
    }

    /// Print the footer and write `results/bench_<group>.json`.
    pub fn finish(self) {
        if !self.write_json {
            return;
        }
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("results");
        if std::fs::create_dir_all(&dir).is_err() {
            eprintln!("warning: cannot create {}", dir.display());
            return;
        }
        let path = dir.join(format!("bench_{}.json", self.group));
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"group\": {:?},\n  \"smoke\": {},\n",
            self.group, self.smoke
        ));
        if !self.notes.is_empty() {
            out.push_str("  \"notes\": {");
            for (i, (k, v)) in self.notes.iter().enumerate() {
                out.push_str(&format!(
                    "{}{:?}: {v}",
                    if i == 0 { "" } else { ", " },
                    k
                ));
            }
            out.push_str("},\n");
        }
        out.push_str("  \"benches\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let (tp_kind, tp_val) = match r.throughput {
                Some(Throughput::Bytes(n)) => ("bytes", n),
                Some(Throughput::Elements(n)) => ("elements", n),
                None => ("none", 0),
            };
            out.push_str(&format!(
                "    {{\"name\": {:?}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \
                 \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}, \
                 \"throughput_kind\": {:?}, \"throughput\": {}}}{}\n",
                r.name,
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                r.iters_per_sample,
                tp_kind,
                tp_val,
                if i + 1 == self.records.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    }
}

/// Human-readable one-liner for a record.
fn summary(r: &Record) -> String {
    let rate = match r.throughput {
        Some(Throughput::Bytes(n)) => {
            let mibs = n as f64 / (r.median_ns * 1e-9) / (1 << 20) as f64;
            format!("  {mibs:10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (r.median_ns * 1e-9);
            format!("  {eps:10.0} elem/s")
        }
        None => String::new(),
    };
    format!(
        "median {:>12}  (min {:>12}, max {:>12}){rate}",
        fmt_ns(r.median_ns),
        fmt_ns(r.min_ns),
        fmt_ns(r.max_ns)
    )
}

/// `1234.5 ns` / `12.3 µs` / `4.5 ms` style formatting.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.3 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn smoke_harness_measures_and_serialises() {
        let mut h = Harness {
            group: "selftest".into(),
            smoke: true,
            samples: 3,
            write_json: false,
            throughput: None,
            records: Vec::new(),
            notes: Vec::new(),
        };
        h.throughput(Throughput::Elements(100));
        let mut acc = 0u64;
        h.bench("spin", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(h.records.len(), 1);
        let r = &h.records[0];
        assert!(r.median_ns >= 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert_eq!(r.iters_per_sample, 1);
        assert!(matches!(r.throughput, Some(Throughput::Elements(100))));
        // Throughput is consumed by the bench call.
        assert!(h.throughput.is_none());
        h.finish();
    }
}
