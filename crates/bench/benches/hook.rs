//! Hooking-layer performance: planning + emission cost per hook across
//! three orders of magnitude (1 / 100 / 10k hooks), and manifest decode
//! throughput.
//!
//! `plan/{n}` isolates the planner (symbol resolution, payload/thunk
//! assembly, manifest serialization); `hook/{n}` is the end-to-end path
//! the `e9tool hook` command pays (plan + rewrite + emit). Call-original
//! planning is measured separately at the 100-hook rung — it adds one
//! relocation per hook, and that delta is the per-thunk price. Decode
//! throughput bounds what any post-mortem tool (`e9tool run
//! --hook-counters`) pays to read a manifest back.

use e9bench::harness::{Harness, Throughput};
use e9front::hook_with_disasm;
use e9hook::{manifest, plan_hooks, HookSpec};
use e9patch::RewriteConfig;
use e9synth::{generate, Profile};
use std::hint::black_box;

/// A synthetic binary with at least `n` hookable functions.
fn sample(n: usize) -> e9synth::SynthBinary {
    let profile = Profile {
        funcs: n.max(1),
        ..Profile::tiny(&format!("hookbench{n}"), false)
    };
    generate(&profile)
}

fn main() {
    let mut h = Harness::from_args("hook");

    // 10k hooks means a multi-MiB synthetic binary; smoke runs stop at
    // 100 so the CI gate stays fast.
    let rungs: &[usize] = if h.is_smoke() { &[1, 100] } else { &[1, 100, 10_000] };

    for &n in rungs {
        let sb = sample(n);
        let spec = HookSpec::counters(&["f*", "main"]);

        let planned = plan_hooks(&sb.binary, &sb.disasm, &spec).unwrap();
        let hooks = planned.hooks.len() as u64;
        h.throughput(Throughput::Elements(hooks));
        h.bench(&format!("plan/{n}"), || {
            plan_hooks(black_box(&sb.binary), &sb.disasm, &spec).unwrap()
        });

        h.throughput(Throughput::Elements(hooks));
        h.bench(&format!("hook/{n}"), || {
            hook_with_disasm(
                black_box(&sb.binary),
                &sb.disasm,
                &spec,
                RewriteConfig::default(),
            )
            .unwrap()
        });
    }

    // The call-original delta: same rung, one relocated-prologue thunk
    // per hook on top of the plain plan.
    {
        let sb = sample(100);
        let spec = HookSpec {
            call_original: true,
            ..HookSpec::counters(&["f*", "main"])
        };
        let hooks = plan_hooks(&sb.binary, &sb.disasm, &spec).unwrap().hooks.len() as u64;
        h.throughput(Throughput::Elements(hooks));
        h.bench("plan_call_original/100", || {
            plan_hooks(black_box(&sb.binary), &sb.disasm, &spec).unwrap()
        });
    }

    // Manifest decode throughput, at the largest rung measured above.
    {
        let n = *rungs.last().unwrap();
        let sb = sample(n);
        let spec = HookSpec::counters(&["f*", "main"]);
        let records = plan_hooks(&sb.binary, &sb.disasm, &spec).unwrap().hooks;
        let bytes = manifest::encode(&records);
        h.throughput(Throughput::Bytes(bytes.len() as u64));
        h.bench(&format!("manifest_decode/{n}"), || {
            manifest::decode(black_box(&bytes)).unwrap()
        });
        h.note("manifest_bytes_at_max_rung", bytes.len());
        h.note("hooks_at_max_rung", records.len());
    }

    h.finish();
}
