//! Serving-core throughput: N concurrent sessions against `e9patchd`'s
//! two serving modes — the epoll reactor (default) and the legacy
//! thread-per-connection path.
//!
//! Each session runs the same full patch job (version → binary →
//! instructions → patches → emit) over a Unix socket backed by a shared
//! in-memory rewrite cache, so the fleet exercises concurrent cache
//! reuse the way a real `e9tool --backend` swarm does. Every client
//! asserts its reply stream byte-identical to an in-process reference
//! transcript, so the timing numbers double as a byte-identity check at
//! every fleet size — including the 512-connection point.
//!
//! One bench iteration = boot the server, run all N sessions to
//! completion, drain and join. Throughput is sessions per second.

fn main() {
    #[cfg(target_os = "linux")]
    linux::run();
    #[cfg(not(target_os = "linux"))]
    eprintln!("bench_serve needs Linux (the reactor serving core is epoll-based)");
}

#[cfg(target_os = "linux")]
mod linux {
    use e9bench::harness::{Harness, Throughput};
    use e9patch::Template;
    use e9proto::msg::{Command, Request};
    use e9proto::reactor::{serve_reactor, Listener, ReactorOptions};
    use e9proto::server::{serve_connection_with, unix::serve_unix_with, ServeConfig};
    use std::io::{BufRead, BufReader, Cursor, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    /// The raw request transcript for one full patch job.
    fn job_transcript() -> Vec<u8> {
        let sb = e9synth::generate(&e9synth::Profile::tiny("bench-serve", false));
        let mut input = String::new();
        let mut id = 0u64;
        let mut push = |cmd: Command, input: &mut String| {
            id += 1;
            input.push_str(&Request { id, cmd }.encode());
            input.push('\n');
        };
        push(Command::Version { version: 1 }, &mut input);
        push(
            Command::Binary {
                bytes: sb.binary.clone(),
                digest: None,
            },
            &mut input,
        );
        for i in &sb.disasm {
            push(
                Command::Instruction {
                    addr: i.addr,
                    bytes: i.bytes().to_vec(),
                },
                &mut input,
            );
        }
        for i in sb.disasm.iter().filter(|i| i.kind.is_jump()) {
            push(
                Command::Patch {
                    addr: i.addr,
                    template: Template::Empty,
                },
                &mut input,
            );
        }
        push(Command::Emit, &mut input);
        input.into_bytes()
    }

    /// The reply stream every session must produce, computed through the
    /// same `dispatch_line` choke point both serving modes funnel into.
    fn reference_replies(transcript: &[u8], config: &ServeConfig) -> Vec<u8> {
        let mut reader = Cursor::new(transcript.to_vec());
        let mut out: Vec<u8> = Vec::new();
        serve_connection_with(&mut reader, &mut out, config).unwrap();
        out
    }

    fn connect_retry(sock: &Path) -> UnixStream {
        // Backlog pressure at high fleet sizes surfaces as transient
        // connect failures; every client owns exactly one accepted slot.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match UnixStream::connect(sock) {
                Ok(s) => return s,
                Err(e) => {
                    assert!(Instant::now() < deadline, "connect to {sock:?} failed: {e}");
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    /// One client session: send the whole job, read the whole reply
    /// stream, assert it byte-identical to the in-process reference.
    fn session(sock: &Path, transcript: &[u8], expected: &[u8]) {
        let mut stream = connect_retry(sock);
        stream.write_all(transcript).unwrap();
        let want = expected.iter().filter(|&&b| b == b'\n').count();
        let mut reader = BufReader::new(stream);
        let mut got = Vec::with_capacity(expected.len());
        for _ in 0..want {
            let n = reader.read_until(b'\n', &mut got).unwrap();
            assert!(n > 0, "early EOF after {} reply bytes", got.len());
        }
        assert!(got == expected, "reply stream diverged from reference");
    }

    fn scratch_sock() -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "e9bench-serve-{}-{}.sock",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn run_clients(sock: &Path, n: usize, transcript: &[u8], expected: &[u8]) {
        let clients: Vec<_> = (0..n)
            .map(|_| {
                let sock = sock.to_path_buf();
                let transcript = transcript.to_vec();
                let expected = expected.to_vec();
                std::thread::spawn(move || session(&sock, &transcript, &expected))
            })
            .collect();
        for c in clients {
            c.join().expect("client session failed");
        }
    }

    /// Boot a reactor with an accept budget of exactly `n`, run the
    /// fleet, and let the budget-triggered drain end the loop.
    fn run_reactor(n: usize, transcript: &[u8], expected: &[u8], config: &ServeConfig) {
        let sock = scratch_sock();
        let listener = UnixListener::bind(&sock).unwrap();
        let opts = ReactorOptions {
            accept_budget: Some(n),
            ..ReactorOptions::default()
        };
        let server = {
            let config = config.clone();
            std::thread::spawn(move || serve_reactor(vec![Listener::Unix(listener)], &config, &opts))
        };
        run_clients(&sock, n, transcript, expected);
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&sock);
    }

    /// Boot the legacy thread-per-connection server with a connection
    /// budget of exactly `n`, run the fleet, and join the drain.
    fn run_threaded(n: usize, transcript: &[u8], expected: &[u8], config: &ServeConfig) {
        let sock = scratch_sock();
        let server = {
            let (sock, config) = (sock.clone(), config.clone());
            std::thread::spawn(move || serve_unix_with(&sock, Some(n), &config))
        };
        // serve_unix_with binds the socket itself; wait for it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !sock.exists() {
            assert!(Instant::now() < deadline, "threaded server never bound");
            std::thread::sleep(Duration::from_millis(1));
        }
        run_clients(&sock, n, transcript, expected);
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&sock);
    }

    pub fn run() {
        let mut h = Harness::from_args("serve");
        let transcript = job_transcript();
        let config = ServeConfig {
            cache: Some(std::sync::Arc::new(e9cache::Cache::in_memory_no_bypass())),
            ..ServeConfig::default()
        };
        // The emit reply records its cache disposition (miss vs hit), so
        // prime the shared cache with one cold run and take the *warm*
        // transcript as the reference: every benched session is a cache
        // hit, which is both deterministic and the fleet steady state.
        let _prime = reference_replies(&transcript, &config);
        let expected = reference_replies(&transcript, &config);

        let sizes: &[usize] = if h.is_smoke() {
            &[1, 512]
        } else {
            &[1, 16, 128, 512]
        };
        for &n in sizes {
            h.throughput(Throughput::Elements(n as u64));
            h.bench(&format!("reactor/{n}"), || {
                run_reactor(n, &transcript, &expected, &config)
            });
            h.throughput(Throughput::Elements(n as u64));
            h.bench(&format!("threaded/{n}"), || {
                run_threaded(n, &transcript, &expected, &config)
            });
            if let (Some(r), Some(t)) = (
                h.median_ns(&format!("reactor/{n}")),
                h.median_ns(&format!("threaded/{n}")),
            ) {
                h.note(&format!("reactor_vs_threaded_{n}"), format!("{:.3}", t / r));
            }
        }
        h.finish();
    }
}
