//! Decoder micro-benchmarks: linear-sweep throughput over synthetic
//! `.text` (the frontend's dominant cost on a 100 MB browser binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use e9synth::{generate, Profile};

fn bench_decode(c: &mut Criterion) {
    let prog = generate(&Profile::tiny("bench-decode", false));
    let elf = e9elf::Elf::parse(&prog.binary).unwrap();
    let text = elf.section_bytes(".text").unwrap().to_vec();

    let mut g = c.benchmark_group("decode");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_with_input(
        BenchmarkId::new("linear_sweep", text.len()),
        &text,
        |b, bytes| {
            b.iter(|| e9x86::decode::linear_sweep(std::hint::black_box(bytes), 0x401000));
        },
    );
    g.bench_function("single_insn", |b| {
        let bytes = [0x48u8, 0x89, 0x44, 0x8D, 0x10]; // mov %rax,0x10(%rbp,%rcx,4)
        b.iter(|| e9x86::decode(std::hint::black_box(&bytes), 0x401000).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
