//! Decoder micro-benchmarks: linear-sweep throughput over synthetic
//! `.text` (the frontend's dominant cost on a 100 MB browser binary).

use e9bench::harness::{Harness, Throughput};
use e9synth::{generate, Profile};
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("decode");
    let prog = generate(&Profile::tiny("bench-decode", false));
    let elf = e9elf::Elf::parse(&prog.binary).unwrap();
    let text = elf.section_bytes(".text").unwrap().to_vec();

    h.throughput(Throughput::Bytes(text.len() as u64));
    h.bench(&format!("linear_sweep/{}", text.len()), || {
        e9x86::decode::linear_sweep(black_box(&text), 0x401000)
    });

    let bytes = [0x48u8, 0x89, 0x44, 0x8D, 0x10]; // mov %rax,0x10(%rbp,%rcx,4)
    h.throughput(Throughput::Bytes(bytes.len() as u64));
    h.bench("single_insn", || {
        e9x86::decode(black_box(&bytes), 0x401000).unwrap()
    });

    h.finish();
}
