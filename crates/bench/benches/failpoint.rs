//! The price of carrying failpoints in release builds.
//!
//! `e9failpt` stays compiled into production binaries so operators can
//! inject faults into the real artifact (`E9FAILPOINTS=...`), which
//! means every instrumented I/O site pays the *disabled* check on every
//! call — one relaxed atomic load and a branch. These benches pin that
//! cost, the cost when injection is active but the point does not match
//! (the slow path without a fault), and the end-to-end effect on a real
//! instrumented syscall path (`write_atomic`), so a regression that
//! turns the checks into a measurable tax on the hot path shows up here
//! rather than in a production profile.

use e9bench::harness::Harness;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("failpoint");

    // The common case everywhere: injection disabled. One relaxed load.
    h.bench("check_disabled", || {
        black_box(e9failpt::check(black_box("bench.never.armed")))
    });
    h.bench("fail_io_disabled", || {
        black_box(e9failpt::fail_io(black_box("bench.never.armed")).is_ok())
    });
    h.bench("write_len_disabled", || {
        black_box(e9failpt::write_len(black_box("bench.never.armed"), black_box(4096)).unwrap())
    });

    // Injection active, but aimed elsewhere: the slow path walks the
    // spec and matches nothing. This is what every *other* I/O site
    // pays while one site is under test.
    {
        let _guard = e9failpt::activate_scoped("some.other.point=eio@always", 42).unwrap();
        h.bench("check_active_nonmatching", || {
            black_box(e9failpt::check(black_box("bench.never.armed")))
        });
    }

    // The instrumented real path: a full atomic write (create, write,
    // fsync, rename) of 64 KiB with its three failpoints disabled. The
    // checks must vanish into the syscall noise.
    {
        let dir = std::env::temp_dir().join(format!("e9bench-failpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("artifact.bin");
        let payload = vec![0xABu8; 64 << 10];
        h.bench("write_atomic_64KiB_disabled", || {
            e9front::output::write_atomic(black_box(&dest), black_box(&payload)).unwrap()
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    h.note("points_instrumented", 11);
    h.finish();
}
