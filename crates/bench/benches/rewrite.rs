//! Rewriter throughput: sites patched per second — the paper's
//! scalability argument is that patching is local and needs no global
//! analysis, so cost is linear in the number of sites.

use e9bench::harness::{Harness, Throughput};
use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::RewriteConfig;
use e9synth::{generate, Preset, Profile};
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("rewrite");
    for scale in [400u64, 100] {
        let profile = Profile::scaled(
            "bench-rw",
            false,
            Preset::Int,
            e9synth::PaperRow {
                size_mb: 1.0,
                a1_loc: 36821,
                a2_loc: 7522,
                a1_succ: 100.0,
                a2_succ: 100.0,
            },
            scale,
            0,
            2,
        );
        let prog = generate(&profile);
        let sites = prog.disasm.iter().filter(|i| i.kind.is_jump()).count();
        h.throughput(Throughput::Elements(sites as u64));
        h.bench(&format!("a1_empty/{sites}"), || {
            instrument_with_disasm(
                black_box(&prog.binary),
                &prog.disasm,
                &Options {
                    app: Application::A1Jumps,
                    payload: Payload::Empty,
                    config: RewriteConfig::default(),
                },
            )
            .unwrap()
        });
    }
    h.finish();
}
