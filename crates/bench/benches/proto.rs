//! Protocol overhead: raw message throughput through the server loop, and
//! end-to-end patch throughput over the wire versus the in-process path.
//!
//! The paper's frontend/backend split costs one JSON round trip per
//! command; these benches bound that overhead so the `--backend` path can
//! be judged against calling the `Rewriter` directly.

use e9bench::harness::{Harness, Throughput};
use e9front::{instrument_via_backend, instrument_with_disasm, Application, Options, Payload};
use e9proto::msg::{Command, Request};
use e9proto::server::serve_connection;
use e9proto::ProtoClient;
use e9synth::{generate, Profile};
use std::hint::black_box;
use std::io::Cursor;

fn main() {
    let mut h = Harness::from_args("proto");

    // 1. Messages per second through parse → dispatch → serialize. One
    // version handshake plus a batch of cheap stateless-ish commands.
    const MSGS: u64 = 1000;
    let mut input = String::new();
    input.push_str(&Request { id: 1, cmd: Command::Version { version: 1 } }.encode());
    input.push('\n');
    for id in 2..=MSGS {
        input.push_str(
            &Request {
                id,
                cmd: Command::Option {
                    name: "b0".into(),
                    value: "false".into(),
                },
            }
            .encode(),
        );
        input.push('\n');
    }
    let input = input.into_bytes();
    h.throughput(Throughput::Elements(MSGS));
    h.bench(&format!("messages/{MSGS}"), || {
        let mut reader = Cursor::new(black_box(&input[..]));
        let mut out: Vec<u8> = Vec::with_capacity(input.len());
        serve_connection(&mut reader, &mut out).unwrap();
        out
    });

    // 2. End-to-end instrumentation of the same workload, in-process vs
    // through the full wire protocol (loopback socket pair: every byte
    // crosses the serializer, parser and session state machine).
    let prog = generate(&Profile::tiny("bench-proto", false));
    let sites = prog.disasm.iter().filter(|i| i.kind.is_jump()).count() as u64;
    let opts = Options::new(Application::A1Jumps, Payload::Empty);

    h.throughput(Throughput::Elements(sites));
    h.bench(&format!("patch_in_process/{sites}"), || {
        instrument_with_disasm(black_box(&prog.binary), &prog.disasm, &opts).unwrap()
    });

    h.throughput(Throughput::Elements(sites));
    h.bench(&format!("patch_backend/{sites}"), || {
        let mut client = ProtoClient::in_process().unwrap();
        instrument_via_backend(black_box(&prog.binary), &prog.disasm, &opts, &mut client).unwrap()
    });

    h.finish();
}
