//! Physical page grouping micro-benchmark: the greedy partitioning pass
//! over scattered trampolines (§4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scattered_trampolines(n: usize) -> Vec<(u64, Vec<u8>)> {
    // Mimic punned placement: uniform over a 256 MB window, 16–40 bytes
    // each, non-overlapping by construction.
    let mut rng = StdRng::seed_from_u64(7);
    let mut v = Vec::with_capacity(n);
    let mut used = std::collections::BTreeSet::new();
    while v.len() < n {
        let slot = rng.gen_range(0..(256u64 << 20) / 64);
        if used.insert(slot) {
            let addr = 0x1000_0000 + slot * 64;
            let len = rng.gen_range(16..40);
            v.push((addr, vec![0xCC; len]));
        }
    }
    v
}

fn bench_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("grouping");
    for n in [1_000usize, 10_000] {
        let ts = scattered_trampolines(n);
        g.throughput(Throughput::Elements(n as u64));
        for m in [1u64, 16] {
            g.bench_with_input(
                BenchmarkId::new(format!("greedy_m{m}"), n),
                &ts,
                |b, ts| {
                    b.iter(|| e9patch::group::group(std::hint::black_box(ts), m, true));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
