//! Physical page grouping micro-benchmark: the greedy partitioning pass
//! over scattered trampolines (§4).

use e9bench::harness::{Harness, Throughput};
use e9rng::StdRng;

fn scattered_trampolines(n: usize) -> Vec<(u64, Vec<u8>)> {
    // Mimic punned placement: uniform over a 256 MB window, 16–40 bytes
    // each, non-overlapping by construction.
    let mut rng = StdRng::seed_from_u64(7);
    let mut v = Vec::with_capacity(n);
    let mut used = std::collections::BTreeSet::new();
    while v.len() < n {
        let slot = rng.gen_range(0..(256u64 << 20) / 64);
        if used.insert(slot) {
            let addr = 0x1000_0000 + slot * 64;
            let len = rng.gen_range(16..40);
            v.push((addr, vec![0xCC; len]));
        }
    }
    v
}

fn main() {
    let mut h = Harness::from_args("grouping");
    for n in [1_000usize, 10_000] {
        let ts = scattered_trampolines(n);
        for m in [1u64, 16] {
            h.throughput(Throughput::Elements(n as u64));
            h.bench(&format!("greedy_m{m}/{n}"), || {
                e9patch::group::group(std::hint::black_box(&ts), m, true)
            });
        }
    }
    h.finish();
}
