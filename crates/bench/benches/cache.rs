//! Rewrite-cache performance: what a cache hit saves over a cold rewrite,
//! and how fast the in-tree SHA-256 keys jobs.
//!
//! Three end-to-end patch configurations over the same workload: uncached
//! (the PR-5 baseline), cold-through-cache (miss + store overhead on top
//! of the rewrite), and warm (memory hit, and a disk hit through a fresh
//! process-like cache with an empty memory tier). The digest bench bounds
//! the fixed keying cost every cache-enabled patch pays.

use e9bench::harness::{Harness, Throughput};
use e9cache::{Cache, CacheConfig};
use e9front::{instrument_cached, instrument_with_disasm, Application, Options, Payload};
use e9synth::{generate, Profile};
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("cache");

    let prog = generate(&Profile::tiny("bench-cache", false));
    let sites = prog.disasm.iter().filter(|i| i.kind.is_jump()).count() as u64;
    let opts = Options::new(Application::A1Jumps, Payload::Empty);

    // Baseline: the plain in-process path, no cache in sight.
    h.throughput(Throughput::Elements(sites));
    h.bench(&format!("patch_uncached/{sites}"), || {
        instrument_with_disasm(black_box(&prog.binary), &prog.disasm, &opts).unwrap()
    });

    // Cold: every iteration starts with an empty cache, so each one pays
    // the full rewrite plus keying and store overhead.
    h.throughput(Throughput::Elements(sites));
    h.bench(&format!("patch_cold/{sites}"), || {
        let cache = Cache::in_memory();
        instrument_cached(black_box(&prog.binary), &prog.disasm, &opts, &cache).unwrap()
    });

    // Warm (memory tier): one shared primed cache; iterations measure the
    // hit path — key derivation, lookup, reply decode.
    let warm = Cache::in_memory();
    instrument_cached(&prog.binary, &prog.disasm, &opts, &warm).unwrap();
    h.throughput(Throughput::Elements(sites));
    h.bench(&format!("patch_warm_mem/{sites}"), || {
        instrument_cached(black_box(&prog.binary), &prog.disasm, &opts, &warm).unwrap()
    });

    // Warm (disk tier): the store is primed once on disk; every iteration
    // opens a fresh cache (empty memory tier) the way a new `e9tool patch`
    // process would, so the hit is served — and re-verified — from disk.
    let dir = std::env::temp_dir().join(format!("e9bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk_config = CacheConfig {
        dir: Some(dir.clone()),
        ..CacheConfig::default()
    };
    let primer = Cache::open(&disk_config).unwrap();
    instrument_cached(&prog.binary, &prog.disasm, &opts, &primer).unwrap();
    drop(primer);
    h.throughput(Throughput::Elements(sites));
    h.bench(&format!("patch_warm_disk/{sites}"), || {
        let cache = Cache::open(&disk_config).unwrap();
        instrument_cached(black_box(&prog.binary), &prog.disasm, &opts, &cache).unwrap()
    });
    let _ = std::fs::remove_dir_all(&dir);

    // Keying cost: in-tree SHA-256 throughput over a buffer the size of a
    // respectable input binary.
    const MIB: usize = 1 << 20;
    let buf: Vec<u8> = (0..4 * MIB).map(|i| (i * 31 % 251) as u8).collect();
    h.throughput(Throughput::Bytes(buf.len() as u64));
    h.bench("sha256_digest/4MiB", || e9cache::digest(black_box(&buf)));

    h.finish();
}
