//! Rewrite-cache performance over a size ladder: warm hits must beat
//! cold rewrites at every size the cache engages, and the keying hash
//! must not be the reason they don't.
//!
//! Per ladder rung (64 KiB → 128 MiB synthetic ELFs, same patch batch):
//! `patch_uncached` (the no-cache baseline) vs `patch_warm_mem` (memory-
//! tier hit: tree-digest keying + lookup + compact reply decode). The
//! smallest rung is also measured through a DEFAULT-configured cache to
//! time the bypass path — that rung sits below the 128 KiB threshold, so
//! a default cache never keys it at all. `patch_cold` and
//! `patch_warm_disk` stay on the small rung where their per-iteration
//! store/open cost is tolerable. The digest benches bound the fixed
//! keying cost every engaged patch pays.
//!
//! The JSON gains a `notes` object with `break_even_bytes`: the smallest
//! measured rung where the warm memory hit beats the uncached rewrite —
//! the measurement behind `DEFAULT_BYPASS_BYTES`. `scripts/verify.sh`
//! stage 7 gates on warm-beats-uncached at the largest rung.

use e9bench::harness::{Harness, Throughput};
use e9cache::{Cache, CacheConfig};
use e9front::{instrument_cached, instrument_with_disasm, Application, Options, Payload};
use std::hint::black_box;

const MIB: usize = 1 << 20;

/// A synthetic workload of roughly `total` bytes: a jump-dense text
/// section whose site count scales with the binary (one patch site per
/// KiB — an order of magnitude SPARSER than real instrumented binaries;
/// the paper's chrome workload patches ~1 jump per 90 bytes, so the
/// rewrite side of the comparison is charitable), plus an incompressible
/// rodata pad that carries the bulk of the size (what the hash and the
/// copy paths actually chew on).
fn ladder_binary(total: usize) -> (Vec<u8>, Vec<e9x86::insn::Insn>) {
    let sites = (total >> 10).max(64);
    let mut code = Vec::with_capacity(2 * sites + 1);
    for _ in 0..sites {
        code.extend_from_slice(&[0xEB, 0x00]); // jmp +0
    }
    code.push(0xC3); // ret
    let disasm = e9x86::decode::linear_sweep(&code, 0x401000);

    let pad_len = total.saturating_sub(8192).max(4096);
    let mut pad = vec![0u8; pad_len];
    let mut state = 0x9e3779b97f4a7c15u64 | 1;
    for chunk in pad.chunks_mut(8) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        chunk.copy_from_slice(&state.to_le_bytes()[..chunk.len()]);
    }

    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.rodata(pad, 0x1000000);
    b.entry(0x401000);
    (b.build(), disasm)
}

fn main() {
    let mut h = Harness::from_args("cache");
    let opts = Options::new(Application::A1Jumps, Payload::Empty);

    // The ladder. Smoke runs keep only the small rungs so the CI gate
    // stays fast; full runs regenerate the committed JSON.
    let rungs: &[usize] = if h.is_smoke() {
        &[64 << 10, MIB]
    } else {
        &[64 << 10, MIB, 16 * MIB, 128 * MIB]
    };

    // Engaged-cache config: bypass off (we are measuring the cache, the
    // threshold is derived from these numbers) and a memory tier big
    // enough to admit the largest artifact.
    let engaged = CacheConfig {
        mem_bytes: Some(512 * MIB),
        bypass_bytes: Some(0),
        ..CacheConfig::default()
    };

    for &size in rungs {
        let (bin, disasm) = ladder_binary(size);
        let label = if size < MIB {
            format!("{}KiB", size >> 10)
        } else {
            format!("{}MiB", size / MIB)
        };

        h.throughput(Throughput::Bytes(bin.len() as u64));
        h.bench(&format!("patch_uncached/{label}"), || {
            instrument_with_disasm(black_box(&bin), &disasm, &opts).unwrap()
        });

        let warm = Cache::open(&engaged).unwrap();
        instrument_cached(&bin, &disasm, &opts, &warm).unwrap();
        h.throughput(Throughput::Bytes(bin.len() as u64));
        h.bench(&format!("patch_warm_mem/{label}"), || {
            instrument_cached(black_box(&bin), &disasm, &opts, &warm).unwrap()
        });
    }

    // The bypass path: the 64 KiB rung through a DEFAULT cache sits below
    // the threshold, so this times `should_bypass` + the plain rewrite —
    // what tiny inputs actually pay with a cache configured.
    {
        let (bin, disasm) = ladder_binary(64 << 10);
        let bypassing = Cache::in_memory();
        h.throughput(Throughput::Bytes(bin.len() as u64));
        h.bench("patch_bypass/64KiB", || {
            instrument_cached(black_box(&bin), &disasm, &opts, &bypassing).unwrap()
        });
        assert!(bypassing.stats().bypasses > 0, "64 KiB rung must bypass");
        assert_eq!(bypassing.stats().stores, 0);
    }

    // Cold (miss + store) and disk-tier warm hits, on the small rung
    // where per-iteration cache construction is tolerable.
    {
        let (bin, disasm) = ladder_binary(MIB);
        h.throughput(Throughput::Bytes(bin.len() as u64));
        h.bench("patch_cold/1MiB", || {
            let cache = Cache::open(&engaged).unwrap();
            instrument_cached(black_box(&bin), &disasm, &opts, &cache).unwrap()
        });

        let dir = std::env::temp_dir().join(format!("e9bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk_config = CacheConfig {
            dir: Some(dir.clone()),
            bypass_bytes: Some(0),
            ..CacheConfig::default()
        };
        let primer = Cache::open(&disk_config).unwrap();
        instrument_cached(&bin, &disasm, &opts, &primer).unwrap();
        drop(primer);
        h.throughput(Throughput::Bytes(bin.len() as u64));
        h.bench("patch_warm_disk/1MiB", || {
            let cache = Cache::open(&disk_config).unwrap();
            instrument_cached(black_box(&bin), &disasm, &opts, &cache).unwrap()
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Keying cost: flat SHA-256 throughput, and the shard-parallel tree
    // digest that actually keys large inputs.
    let buf_len = if h.is_smoke() { 4 * MIB } else { 64 * MIB };
    let mut buf = vec![0u8; buf_len];
    let mut state = 1u64;
    for chunk in buf.chunks_mut(8) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        chunk.copy_from_slice(&state.to_le_bytes()[..chunk.len()]);
    }
    let flat_label = format!("sha256_digest/{}MiB", buf_len / MIB);
    h.throughput(Throughput::Bytes(buf.len() as u64));
    h.bench(&flat_label, || e9cache::digest(black_box(&buf)));
    for jobs in [1usize, 2, 4] {
        h.throughput(Throughput::Bytes(buf.len() as u64));
        h.bench(&format!("tree_digest/{}MiB/jobs{jobs}", buf_len / MIB), || {
            e9cache::tree::tree_digest(black_box(&buf), jobs)
        });
    }

    // Derived: the smallest rung where the warm memory hit beats the
    // uncached rewrite. Everything below is bypass territory.
    let mut break_even: Option<usize> = None;
    for &size in rungs {
        let label = if size < MIB {
            format!("{}KiB", size >> 10)
        } else {
            format!("{}MiB", size / MIB)
        };
        if let (Some(warm), Some(cold)) = (
            h.median_ns(&format!("patch_warm_mem/{label}")),
            h.median_ns(&format!("patch_uncached/{label}")),
        ) {
            if warm < cold && break_even.is_none() {
                break_even = Some(size);
            }
            println!(
                "  break-even probe {label}: warm {warm:.0} ns vs uncached {cold:.0} ns → {}",
                if warm < cold { "warm wins" } else { "uncached wins" }
            );
        }
    }
    match break_even {
        Some(size) => {
            println!("break-even: warm hits win from {size} bytes up");
            h.note("break_even_bytes", size);
        }
        None => {
            println!("break-even: warm hits never won — cache pessimized at every rung");
            h.note("break_even_bytes", "null");
        }
    }
    h.note("default_bypass_bytes", e9cache::DEFAULT_BYPASS_BYTES);

    h.finish();
}
