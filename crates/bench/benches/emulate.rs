//! Emulator throughput: instructions per second of the interpreter that
//! backs every Time% measurement.

use e9bench::harness::{Harness, Throughput};
use e9synth::{generate, Profile};
use e9vm::{load_elf, Vm};
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("emulate");
    let prog = generate(&Profile::tiny("bench-vm", false));
    // Measure raw retired instructions for throughput accounting.
    let insns = {
        let mut vm = Vm::new();
        load_elf(&mut vm, &prog.binary).unwrap();
        vm.run(u64::MAX).unwrap().insns
    };

    h.throughput(Throughput::Elements(insns));
    h.bench("run_tiny_program", || {
        let mut vm = Vm::new();
        load_elf(&mut vm, black_box(&prog.binary)).unwrap();
        vm.run(u64::MAX).unwrap()
    });

    h.finish();
}
