//! Emulator throughput: instructions per second of the interpreter that
//! backs every Time% measurement.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use e9synth::{generate, Profile};
use e9vm::{load_elf, Vm};

fn bench_emulate(c: &mut Criterion) {
    let prog = generate(&Profile::tiny("bench-vm", false));
    // Measure raw retired instructions for throughput accounting.
    let insns = {
        let mut vm = Vm::new();
        load_elf(&mut vm, &prog.binary).unwrap();
        vm.run(u64::MAX).unwrap().insns
    };

    let mut g = c.benchmark_group("emulate");
    g.throughput(Throughput::Elements(insns));
    g.bench_function("run_tiny_program", |b| {
        b.iter(|| {
            let mut vm = Vm::new();
            load_elf(&mut vm, std::hint::black_box(&prog.binary)).unwrap();
            vm.run(u64::MAX).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_emulate);
criterion_main!(benches);
