//! Parallel planning: the sharded worker-pool pipeline at 1/2/4/8
//! workers against the sequential planner, on two request shapes:
//!
//! * **dense** — every A1 jump site patched. Gaps never reach the
//!   dependency horizon, the stream chains into one shard, and the
//!   pipeline degenerates to sequential (the honest worst case);
//! * **sparse** — every 8th site (selective instrumentation), which
//!   cuts into many shards and can actually fan out across workers.
//!
//! Speedup additionally requires multiple physical cores; on a 1-core
//! host every worker count should measure within noise of sequential,
//! and the byte-identity contract is what the numbers certify.

use e9bench::harness::{Harness, Throughput};
use e9patch::planner::{PatchRequest, RewriteConfig};
use e9patch::{Rewriter, Template};
use e9synth::{generate, Preset, Profile};
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("parallel");
    let profile = Profile::scaled(
        "bench-par",
        false,
        Preset::Int,
        e9synth::PaperRow {
            size_mb: 1.0,
            a1_loc: 36821,
            a2_loc: 7522,
            a1_succ: 100.0,
            a2_succ: 100.0,
        },
        10,
        0,
        2,
    );
    let prog = generate(&profile);
    let mut dense: Vec<PatchRequest> = prog
        .disasm
        .iter()
        .filter(|i| i.kind.is_jump())
        .map(|i| PatchRequest {
            addr: i.addr,
            template: Template::Empty,
        })
        .collect();
    dense.sort_by_key(|r| r.addr);
    let sparse: Vec<PatchRequest> = dense.iter().step_by(8).cloned().collect();

    for (shape, reqs) in [("dense", &dense), ("sparse", &sparse)] {
        h.throughput(Throughput::Elements(reqs.len() as u64));
        for jobs in [None, Some(1usize), Some(2), Some(4), Some(8)] {
            let cfg = RewriteConfig {
                jobs,
                ..RewriteConfig::default()
            };
            let label = match jobs {
                None => format!("{shape}/seq"),
                Some(n) => format!("{shape}/jobs{n}"),
            };
            h.bench(&label, || {
                Rewriter::new(cfg)
                    .rewrite(black_box(&prog.binary), &prog.disasm, reqs, &[])
                    .unwrap()
            });
        }
    }
    h.finish();
}
