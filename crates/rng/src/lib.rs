//! # e9rng — deterministic, dependency-free pseudo-randomness
//!
//! The whole workspace must build and test **offline**: no registry, no
//! `rand` crate. This crate provides the small slice of `rand`'s API the
//! synthesizer ([`e9synth`]), the property-test harness (`e9qcheck`) and
//! the benchmark generators actually use, backed by two tiny, well-known
//! generators:
//!
//! * [`SplitMix64`] — the canonical 64-bit seed expander (Steele et al.),
//!   used to turn a single `u64` seed into a full xoshiro state.
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna), the workspace's
//!   workhorse generator. Exported as [`StdRng`] so call sites read the
//!   same as they would against `rand`.
//!
//! Everything here is deterministic by construction: the same seed always
//! yields the same stream on every platform (only shift/rotate/multiply on
//! `u64`), which is what makes `E9_SEED`-pinned reproduction runs
//! byte-identical.
//!
//! [`e9synth`]: ../e9synth/index.html

/// The canonical SplitMix64 sequence (Steele, Lea, Flood 2014). Used to
/// expand a single `u64` seed into generator state; also usable directly
/// where a minimal, splittable stream is enough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start the sequence at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019): 256 bits of state, full
/// 64-bit output, passes BigCrush, and is trivially portable — exactly
/// what a hermetic test/bench loop needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace's default generator, named for `rand` parity so ports
/// are mechanical (`StdRng::seed_from_u64(..)` reads identically).
pub type StdRng = Xoshiro256pp;

impl Xoshiro256pp {
    /// Seed via SplitMix64 expansion (the upstream-recommended way to
    /// initialise xoshiro state from a small seed; never yields the
    /// all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next 32-bit output (upper bits — xoshiro's weakest bits are the
    /// low ones).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Lemire's widening-multiply method with rejection — unbiased and
    /// only one division in the (rare) rejection path.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform sample from `range` (`a..b` or `a..=b`). Panics on an
    /// empty range, mirroring `rand`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value of a primitive type (`rand`-style `gen::<T>()`).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Fill `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&b[..rest.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }

    /// Jump ahead 2^128 steps — carves independent substreams out of one
    /// seed (one per worker/test without inter-stream correlation).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180EC6D33CFD0ABA,
            0xD5A61266F0C9392C,
            0xA9582618E03FC9AA,
            0x39ABDC4529B1661C,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j >> b) & 1 != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

/// Types [`Xoshiro256pp::gen`] can produce uniformly.
pub trait Sample: Sized {
    fn sample(rng: &mut Xoshiro256pp) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample(rng: &mut Xoshiro256pp) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample(rng: &mut Xoshiro256pp) -> bool {
        rng.next_u64() & 1 != 0
    }
}

impl Sample for f64 {
    fn sample(rng: &mut Xoshiro256pp) -> f64 {
        rng.gen_f64()
    }
}

/// Ranges [`Xoshiro256pp::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Xoshiro256pp) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, usize);

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample(self, rng: &mut Xoshiro256pp) -> u64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}
impl SampleRange<u64> for core::ops::RangeInclusive<u64> {
    fn sample(self, rng: &mut Xoshiro256pp) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.bounded_u64(span + 1)
    }
}

macro_rules! impl_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded_u64(span + 1) as $t)
            }
        }
    )*};
}
impl_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut Xoshiro256pp) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of SplitMix64 with seed 0 (published reference).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(sm.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(sm.next_u64(), 0x06C45D188009454F);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-64i32..256);
            assert!((-64..256).contains(&w));
            let x = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&x));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn full_width_inclusive_ranges() {
        let mut r = StdRng::seed_from_u64(5);
        // Must not overflow or hang.
        let _: u64 = r.gen_range(0u64..=u64::MAX);
        let _: i64 = r.gen_range(i64::MIN..=i64::MAX);
        let _: u8 = r.gen_range(0u8..=u8::MAX);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.1)));
    }

    #[test]
    fn fill_bytes_all_lengths() {
        let mut r = StdRng::seed_from_u64(9);
        for n in 0..40 {
            let mut buf = vec![0u8; n];
            r.fill_bytes(&mut buf);
            if n >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "n={n}");
            }
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = StdRng::seed_from_u64(17);
        assert_eq!(r.choose::<u8>(&[]), None);
        let xs = [4u8, 5, 6];
        for _ in 0..50 {
            assert!(xs.contains(r.choose(&xs).unwrap()));
        }
    }

    #[test]
    fn jump_produces_disjoint_stream() {
        let mut a = StdRng::seed_from_u64(21);
        let mut b = a.clone();
        b.jump();
        let overlap = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(overlap, 0);
    }
}
