//! # e9hook — symbol-driven function hooking
//!
//! A first-class detour subsystem layered on the E9Patch-style rewriter:
//! resolve function names (or globs, or explicit addresses for stripped
//! binaries) to entry points, lower each hook to an ordinary patch batch
//! — a register-preserving trampoline template plus injected runtime
//! segments — and record everything in a persistent [`manifest`] inside
//! the output binary.
//!
//! Because [`plan_hooks`] produces nothing but `PatchRequest`s and
//! `ExtraSegment`s, hook jobs flow unchanged through every existing
//! execution path: the in-process rewriter, the content-addressed rewrite
//! cache, the `--jobs` sharded planner, and the `e9patchd` wire backends.
//! Identical specs produce identical batches, so all paths emit
//! byte-identical binaries.
//!
//! ## Hook shapes
//!
//! * **Plain** (`Template::HookSave`): at function entry, spill all 15
//!   GPRs + RFLAGS past the red zone, call `payload(site)`, restore,
//!   execute the displaced entry instruction, continue.
//! * **Call-original** (`Template::HookOriginal`): as above, but the
//!   payload receives `payload(site, thunk)` where `thunk` is an
//!   executable relocation of the displaced entry instruction followed by
//!   a jump to the second instruction — calling it re-enters the original
//!   function. The trampoline itself also resumes through the thunk.

pub mod manifest;

use e9elf::symbols::{self, SymbolError};
use e9elf::Elf;
use e9patch::{ExtraSegment, PatchRequest, Template};
use e9x86::asm::{Asm, Mem};
use e9x86::insn::{Insn, Kind};
use e9x86::reg::{Reg, Width};
use e9x86::reloc;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use manifest::{HookRecord, ManifestError, FLAG_CALL_ORIGINAL};

/// What each hook's payload does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadKind {
    /// Increment a per-hook 64-bit counter cell (readable back through
    /// the manifest's `counter_addr`). The canonical observable payload.
    Counter,
    /// Return immediately — measures pure hook overhead.
    Nop,
    /// Caller-supplied position-independent code; must end in `ret` and
    /// may clobber any register (the trampoline restores all state).
    Raw(Vec<u8>),
}

/// A hook job: which functions to hook and what the hook does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HookSpec {
    /// Function name patterns (exact or shell-style globs), resolved
    /// against the binary's symbol table.
    pub funcs: Vec<String>,
    /// Explicit entry addresses — the fallback for stripped binaries.
    pub addrs: Vec<u64>,
    /// Build a call-original thunk per hook and use the
    /// [`Template::HookOriginal`] trampoline.
    pub call_original: bool,
    /// The payload body.
    pub payload: PayloadKind,
}

impl HookSpec {
    /// A counter-payload spec for `funcs`.
    pub fn counters(funcs: &[&str]) -> HookSpec {
        HookSpec {
            funcs: funcs.iter().map(|s| s.to_string()).collect(),
            addrs: Vec::new(),
            call_original: false,
            payload: PayloadKind::Counter,
        }
    }
}

/// Hook planning failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HookError {
    /// The binary is not parseable ELF.
    Input(String),
    /// Symbol resolution failed (stripped table or no match; carries
    /// nearest-candidate diagnostics).
    Symbol(SymbolError),
    /// The spec names no functions and no addresses, or resolved to zero
    /// targets.
    NoTargets,
    /// No disassembled instruction starts at a requested entry address.
    NoInstructionAt(u64),
    /// The function's entry instruction cannot be relocated into a
    /// call-original thunk (`loop`/`jrcxz`, or a displacement that cannot
    /// reach from the thunk).
    Unrelocatable {
        /// Entry address of the offending function.
        func_addr: u64,
        /// Human-readable relocation failure.
        detail: String,
    },
}

impl fmt::Display for HookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HookError::Input(m) => write!(f, "bad input: {m}"),
            HookError::Symbol(e) => write!(f, "{e}"),
            HookError::NoTargets => write!(f, "hook spec resolves to no targets"),
            HookError::NoInstructionAt(a) => {
                write!(f, "no disassembled instruction at entry {a:#x}")
            }
            HookError::Unrelocatable { func_addr, detail } => {
                write!(f, "prologue of {func_addr:#x} cannot be relocated: {detail}")
            }
        }
    }
}

impl std::error::Error for HookError {}

impl From<SymbolError> for HookError {
    fn from(e: SymbolError) -> Self {
        HookError::Symbol(e)
    }
}

/// Runtime addresses the hook layer injects at, clear of the binary's own
/// image (the same placement rule the instrumentation frontend uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Executable segment holding payloads and thunks.
    pub code: u64,
    /// Writable segment holding one 8-byte counter cell per hook.
    pub counters: u64,
    /// Read-only segment holding the [`manifest`].
    pub manifest: u64,
}

/// Compute the hook runtime [`Layout`] for a binary.
///
/// # Errors
///
/// Hostile images can push the load extent to the top of the address
/// space, so every step of the placement math is checked; overflow is a
/// typed [`HookError::Input`].
pub fn layout(elf: &Elf) -> Result<Layout, HookError> {
    let (_, hi) = elf.vaddr_extent();
    let code = hi
        .checked_add(0xFFF)
        .map(|v| v & !0xFFF)
        .and_then(|v| v.checked_add(0x100_0000));
    match (code, code.and_then(|c| c.checked_add(0x20_0000))) {
        (Some(code), Some(manifest)) => Ok(Layout {
            code,
            counters: code + 0x10_0000,
            manifest,
        }),
        _ => Err(HookError::Input(
            "image extends beyond the hookable address space".into(),
        )),
    }
}

/// A fully planned hook batch, ready for any rewriting backend.
#[derive(Debug, Clone)]
pub struct HookPlan {
    /// One record per hook, in function-address order (ids are dense from
    /// 0 in that order). The same records are serialized into the
    /// manifest segment.
    pub hooks: Vec<HookRecord>,
    /// One patch request per hook, in the same order.
    pub requests: Vec<PatchRequest>,
    /// Injected segments: payload/thunk code, counter cells (counter
    /// payloads only), and the manifest.
    pub extra: Vec<ExtraSegment>,
    /// Base of the counter-cell table, when the payload keeps counters.
    pub counters_addr: Option<u64>,
    /// Address of the manifest segment.
    pub manifest_addr: u64,
}

/// Does `kind` unconditionally leave the thunk (no fall-through jump
/// needed after the relocated entry instruction)?
fn diverts(kind: Kind) -> bool {
    matches!(kind, Kind::Ret | Kind::JmpRel8 | Kind::JmpRel32 | Kind::JmpInd)
}

/// Resolve `spec` against `binary` and lower it to a patch batch.
///
/// Targets are deduplicated by entry address and planned in address
/// order, so a given (binary, spec) pair always yields the identical
/// batch — the property that makes hook jobs cache-keyable and
/// byte-identical across sequential/sharded planners and in-process/
/// daemon backends.
///
/// # Errors
///
/// Typed [`HookError`]s for unparseable input, failed symbol resolution
/// (with nearest-candidate diagnostics), addresses with no disassembled
/// instruction, and unrelocatable prologues. Per-site patch *placement*
/// failures are not planning errors; they surface in the rewriter's site
/// reports.
pub fn plan_hooks(binary: &[u8], disasm: &[Insn], spec: &HookSpec) -> Result<HookPlan, HookError> {
    let elf = Elf::parse(binary).map_err(|e| HookError::Input(e.to_string()))?;
    if spec.funcs.is_empty() && spec.addrs.is_empty() {
        return Err(HookError::NoTargets);
    }

    // Resolve names first, then merge explicit addresses; a BTreeMap
    // dedupes and fixes the planning order in one move.
    let mut targets: BTreeMap<u64, String> = BTreeMap::new();
    if !spec.funcs.is_empty() {
        let syms = symbols::parse(&elf);
        for pat in &spec.funcs {
            for s in symbols::resolve(&syms, pat)? {
                targets.entry(s.value).or_insert_with(|| s.name.clone());
            }
        }
    }
    for &a in &spec.addrs {
        targets.entry(a).or_insert_with(|| format!("{a:#x}"));
    }
    if targets.is_empty() {
        return Err(HookError::NoTargets);
    }

    let by_addr: HashMap<u64, &Insn> = disasm.iter().map(|i| (i.addr, i)).collect();
    let lay = layout(&elf)?;

    // One pass emits every payload (and thunk) into a single executable
    // segment while the records and patch requests are built alongside.
    let mut a = Asm::new(lay.code);
    let mut hooks: Vec<HookRecord> = Vec::with_capacity(targets.len());
    let mut requests: Vec<PatchRequest> = Vec::with_capacity(targets.len());
    let counters = matches!(spec.payload, PayloadKind::Counter);

    for (id, (&func_addr, name)) in targets.iter().enumerate() {
        let insn = *by_addr
            .get(&func_addr)
            .ok_or(HookError::NoInstructionAt(func_addr))?;
        let id = id as u32;
        let counter_addr = if counters { lay.counters + 8 * id as u64 } else { 0 };

        let payload_addr = a.here();
        match &spec.payload {
            PayloadKind::Counter => {
                a.mov_ri64(Reg::Rax, counter_addr as i64);
                a.inc_m(Width::Q, Mem::base(Reg::Rax));
                a.ret();
            }
            PayloadKind::Nop => a.ret(),
            PayloadKind::Raw(code) => a.raw(code),
        }

        let (thunk_addr, flags) = if spec.call_original {
            let thunk_addr = a.here();
            let displaced =
                reloc::relocate(insn, thunk_addr).map_err(|e| HookError::Unrelocatable {
                    func_addr,
                    detail: e.to_string(),
                })?;
            a.raw(&displaced);
            if !diverts(insn.kind) {
                a.jmp_abs(insn.end()).map_err(|e| HookError::Unrelocatable {
                    func_addr,
                    detail: e.to_string(),
                })?;
            }
            (thunk_addr, FLAG_CALL_ORIGINAL)
        } else {
            (0, 0)
        };

        let template = if spec.call_original {
            Template::HookOriginal {
                func_addr: payload_addr,
                thunk_addr,
            }
        } else {
            Template::HookSave {
                func_addr: payload_addr,
            }
        };
        requests.push(PatchRequest {
            addr: func_addr,
            template,
        });
        hooks.push(HookRecord {
            id,
            flags,
            func_addr,
            payload_addr,
            thunk_addr,
            counter_addr,
            name: name.clone(),
        });
    }

    let code_bytes = a.finish().map_err(|e| HookError::Unrelocatable {
        func_addr: 0,
        detail: e.to_string(),
    })?;

    let mut extra = vec![ExtraSegment {
        vaddr: lay.code,
        bytes: code_bytes,
        exec: true,
        write: false,
    }];
    let counters_addr = if counters {
        extra.push(ExtraSegment {
            vaddr: lay.counters,
            bytes: vec![0u8; (hooks.len() * 8).next_multiple_of(4096)],
            exec: false,
            write: true,
        });
        Some(lay.counters)
    } else {
        None
    };
    extra.push(ExtraSegment {
        vaddr: lay.manifest,
        bytes: manifest::encode(&hooks),
        exec: false,
        write: false,
    });

    Ok(HookPlan {
        hooks,
        requests,
        extra,
        counters_addr,
        manifest_addr: lay.manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use e9synth::{generate, Profile};

    fn sample() -> e9synth::SynthBinary {
        generate(&Profile::tiny("hooktest", false))
    }

    #[test]
    fn plan_by_name_glob_and_addr() {
        let sb = sample();
        let by_name = plan_hooks(&sb.binary, &sb.disasm, &HookSpec::counters(&["f0000"])).unwrap();
        assert_eq!(by_name.hooks.len(), 1);
        assert_eq!(by_name.hooks[0].name, "f0000");
        assert_eq!(by_name.requests.len(), 1);
        // Payload + counters + manifest segments.
        assert_eq!(by_name.extra.len(), 3);

        let by_glob = plan_hooks(&sb.binary, &sb.disasm, &HookSpec::counters(&["f*"])).unwrap();
        assert!(by_glob.hooks.len() > 1);
        // Address order and dense ids.
        for (k, h) in by_glob.hooks.iter().enumerate() {
            assert_eq!(h.id, k as u32);
        }
        assert!(by_glob.hooks.windows(2).all(|w| w[0].func_addr < w[1].func_addr));

        let addr = by_name.hooks[0].func_addr;
        let by_addr = plan_hooks(
            &sb.binary,
            &sb.disasm,
            &HookSpec {
                funcs: vec![],
                addrs: vec![addr],
                call_original: false,
                payload: PayloadKind::Counter,
            },
        )
        .unwrap();
        assert_eq!(by_addr.hooks[0].func_addr, addr);
        assert_eq!(by_addr.hooks[0].name, format!("{addr:#x}"));
        // Same target → same patch request either way.
        assert_eq!(by_addr.requests, by_name.requests);
    }

    #[test]
    fn planning_is_deterministic() {
        let sb = sample();
        let spec = HookSpec {
            funcs: vec!["f*".into(), "main".into()],
            addrs: vec![],
            call_original: true,
            payload: PayloadKind::Counter,
        };
        let a = plan_hooks(&sb.binary, &sb.disasm, &spec).unwrap();
        let b = plan_hooks(&sb.binary, &sb.disasm, &spec).unwrap();
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.hooks, b.hooks);
        assert_eq!(
            a.extra.iter().map(|s| &s.bytes).collect::<Vec<_>>(),
            b.extra.iter().map(|s| &s.bytes).collect::<Vec<_>>()
        );
    }

    #[test]
    fn call_original_builds_thunks() {
        let sb = sample();
        let spec = HookSpec {
            funcs: vec!["f0000".into()],
            addrs: vec![],
            call_original: true,
            payload: PayloadKind::Counter,
        };
        let p = plan_hooks(&sb.binary, &sb.disasm, &spec).unwrap();
        let h = &p.hooks[0];
        assert!(h.is_call_original());
        assert!(h.thunk_addr > h.payload_addr);
        match &p.requests[0].template {
            Template::HookOriginal { func_addr, thunk_addr } => {
                assert_eq!(*func_addr, h.payload_addr);
                assert_eq!(*thunk_addr, h.thunk_addr);
            }
            t => panic!("wrong template: {t:?}"),
        }
        // The thunk starts with a relocation of the entry instruction:
        // decodable, and its fall-through jump targets the second insn.
        let code = &p.extra[0];
        let off = (h.thunk_addr - code.vaddr) as usize;
        let first = e9x86::decode(&code.bytes[off..], h.thunk_addr).unwrap();
        let entry = sb.disasm.iter().find(|i| i.addr == h.func_addr).unwrap();
        let j = e9x86::decode(
            &code.bytes[off + first.len()..],
            h.thunk_addr + first.len() as u64,
        )
        .unwrap();
        assert_eq!(j.branch_target(), Some(entry.end()));
    }

    #[test]
    fn manifest_segment_roundtrips() {
        let sb = sample();
        let p = plan_hooks(&sb.binary, &sb.disasm, &HookSpec::counters(&["f*"])).unwrap();
        let seg = p.extra.iter().find(|s| s.vaddr == p.manifest_addr).unwrap();
        assert_eq!(manifest::decode(&seg.bytes).unwrap(), p.hooks);
    }

    #[test]
    fn typed_errors() {
        let sb = sample();
        assert!(matches!(
            plan_hooks(&sb.binary, &sb.disasm, &HookSpec::counters(&["f000x"])),
            Err(HookError::Symbol(SymbolError::NotFound { .. }))
        ));
        assert_eq!(
            plan_hooks(
                &sb.binary,
                &sb.disasm,
                &HookSpec {
                    funcs: vec![],
                    addrs: vec![],
                    call_original: false,
                    payload: PayloadKind::Counter,
                }
            )
            .unwrap_err(),
            HookError::NoTargets
        );
        assert_eq!(
            plan_hooks(
                &sb.binary,
                &sb.disasm,
                &HookSpec {
                    funcs: vec![],
                    addrs: vec![0xdead_0000],
                    call_original: false,
                    payload: PayloadKind::Counter,
                }
            )
            .unwrap_err(),
            HookError::NoInstructionAt(0xdead_0000)
        );
        assert!(matches!(
            plan_hooks(&b"not an elf"[..].to_vec().as_slice(), &[], &HookSpec::counters(&["f"])),
            Err(HookError::Input(_))
        ));
    }

    #[test]
    fn stripped_binary_needs_addresses() {
        let mut b = e9elf::build::ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.entry(0x401000);
        let bin = b.build();
        let disasm = vec![e9x86::decode(&[0xC3], 0x401000).unwrap()];
        assert!(matches!(
            plan_hooks(&bin, &disasm, &HookSpec::counters(&["main"])),
            Err(HookError::Symbol(SymbolError::Stripped))
        ));
        // Explicit address works on the same stripped binary.
        let p = plan_hooks(
            &bin,
            &disasm,
            &HookSpec {
                funcs: vec![],
                addrs: vec![0x401000],
                call_original: false,
                payload: PayloadKind::Nop,
            },
        )
        .unwrap();
        assert_eq!(p.hooks[0].name, "0x401000");
        assert!(p.counters_addr.is_none());
        assert_eq!(p.extra.len(), 2); // code + manifest, no counter table
    }
}
