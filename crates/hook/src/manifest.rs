//! The persistent hook manifest: a read-only table emitted into the
//! rewritten binary recording every installed hook, so hooks remain
//! enumerable post-rewrite (by `e9tool info`-style tooling, by the guest
//! itself, or by a later re-instrumentation pass).
//!
//! ## Format
//!
//! The manifest lives in its own loadable segment that begins with the
//! 8-byte magic, so it can be located by scanning segment starts — no
//! section headers required (they may be stripped).
//!
//! ```text
//! offset  size  field
//! 0       8     magic "E9HOOK\0\x01" (version in last byte)
//! 8       4     record count (u32 LE)
//! 12      ...   records
//! ```
//!
//! Each record:
//!
//! ```text
//! 0       4     hook id (u32 LE, dense from 0 in address order)
//! 4       4     flags (bit 0 = call-original)
//! 8       8     hooked function entry address
//! 16      8     payload address
//! 24      8     call-original thunk address (0 = none)
//! 32      8     counter cell address (0 = none)
//! 40      4     symbol name length (u32 LE)
//! 44      n     symbol name bytes (UTF-8, no terminator)
//! ```
//!
//! All multi-byte fields are little-endian. The decoder is defensive:
//! every read is bounds-checked and all arithmetic is `checked_*`, since
//! manifests may be read back out of untrusted (or hostile) binaries.

use e9elf::Elf;
use std::fmt;

/// Manifest magic: `E9HOOK`, NUL, format version 1.
pub const MAGIC: &[u8; 8] = b"E9HOOK\0\x01";

/// Flag bit: the hook has a call-original thunk.
pub const FLAG_CALL_ORIGINAL: u32 = 1;

/// Fixed-size prefix of one record (everything before the name bytes).
pub const RECORD_FIXED: usize = 44;

/// Decoded upper bound on records — a manifest bigger than this is
/// rejected as malformed rather than allocated for.
pub const MAX_RECORDS: u32 = 1_000_000;

/// One decoded manifest record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HookRecord {
    /// Dense hook id, assigned in function-address order.
    pub id: u32,
    /// Flag bits ([`FLAG_CALL_ORIGINAL`]).
    pub flags: u32,
    /// Entry address of the hooked function.
    pub func_addr: u64,
    /// Address of the payload the hook calls.
    pub payload_addr: u64,
    /// Address of the call-original thunk, 0 when the hook has none.
    pub thunk_addr: u64,
    /// Address of the hook's counter cell, 0 when the payload keeps none.
    pub counter_addr: u64,
    /// Symbol name the hook was planned from (may be a synthesized
    /// `0x...` name for explicit-address hooks on stripped binaries).
    pub name: String,
}

impl HookRecord {
    /// Does this hook carry a call-original thunk?
    pub fn is_call_original(&self) -> bool {
        self.flags & FLAG_CALL_ORIGINAL != 0
    }
}

/// Manifest decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The bytes do not start with [`MAGIC`].
    BadMagic,
    /// A length or count field points past the end of the manifest.
    Truncated,
    /// The record count exceeds [`MAX_RECORDS`].
    TooManyRecords(u32),
    /// A name is not valid UTF-8.
    BadName,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::BadMagic => write!(f, "hook manifest magic missing"),
            ManifestError::Truncated => write!(f, "hook manifest truncated"),
            ManifestError::TooManyRecords(n) => {
                write!(f, "hook manifest claims {n} records (max {MAX_RECORDS})")
            }
            ManifestError::BadName => write!(f, "hook manifest name is not UTF-8"),
        }
    }
}

impl std::error::Error for ManifestError {}

/// Serialize `records` into manifest bytes.
pub fn encode(records: &[HookRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + records.len() * (RECORD_FIXED + 16));
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        out.extend_from_slice(&r.id.to_le_bytes());
        out.extend_from_slice(&r.flags.to_le_bytes());
        out.extend_from_slice(&r.func_addr.to_le_bytes());
        out.extend_from_slice(&r.payload_addr.to_le_bytes());
        out.extend_from_slice(&r.thunk_addr.to_le_bytes());
        out.extend_from_slice(&r.counter_addr.to_le_bytes());
        out.extend_from_slice(&(r.name.len() as u32).to_le_bytes());
        out.extend_from_slice(r.name.as_bytes());
    }
    out
}

fn take<'a>(bytes: &'a [u8], off: &mut usize, len: usize) -> Result<&'a [u8], ManifestError> {
    let end = off.checked_add(len).ok_or(ManifestError::Truncated)?;
    let s = bytes.get(*off..end).ok_or(ManifestError::Truncated)?;
    *off = end;
    Ok(s)
}

fn u32_at(bytes: &[u8], off: &mut usize) -> Result<u32, ManifestError> {
    Ok(u32::from_le_bytes(take(bytes, off, 4)?.try_into().unwrap()))
}

fn u64_at(bytes: &[u8], off: &mut usize) -> Result<u64, ManifestError> {
    Ok(u64::from_le_bytes(take(bytes, off, 8)?.try_into().unwrap()))
}

/// Decode a manifest from `bytes` (which may have trailing padding, e.g.
/// page-rounding zeroes from the segment loader).
///
/// # Errors
///
/// Any structural defect yields a typed [`ManifestError`]; the decoder
/// never panics on malformed input.
pub fn decode(bytes: &[u8]) -> Result<Vec<HookRecord>, ManifestError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(ManifestError::BadMagic);
    }
    let mut off = MAGIC.len();
    let count = u32_at(bytes, &mut off)?;
    if count > MAX_RECORDS {
        return Err(ManifestError::TooManyRecords(count));
    }
    let mut out = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let id = u32_at(bytes, &mut off)?;
        let flags = u32_at(bytes, &mut off)?;
        let func_addr = u64_at(bytes, &mut off)?;
        let payload_addr = u64_at(bytes, &mut off)?;
        let thunk_addr = u64_at(bytes, &mut off)?;
        let counter_addr = u64_at(bytes, &mut off)?;
        let name_len = u32_at(bytes, &mut off)? as usize;
        let name_bytes = take(bytes, &mut off, name_len)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| ManifestError::BadName)?
            .to_string();
        out.push(HookRecord {
            id,
            flags,
            func_addr,
            payload_addr,
            thunk_addr,
            counter_addr,
            name,
        });
    }
    Ok(out)
}

/// Locate and decode the hook manifest in a rewritten binary by scanning
/// loadable segments for [`MAGIC`] at a segment start. Returns `None`
/// when the binary carries no manifest.
///
/// # Errors
///
/// A segment that *starts* with the magic but fails to decode is an
/// error — a present-but-corrupt manifest should not be silently treated
/// as absent.
pub fn find_in_elf(elf: &Elf) -> Result<Option<Vec<HookRecord>>, ManifestError> {
    for ph in elf.load_segments() {
        let len = ph.p_filesz as usize;
        if len < MAGIC.len() {
            continue;
        }
        if let Ok(bytes) = elf.slice_at(ph.p_vaddr, len) {
            if bytes.starts_with(MAGIC) {
                return decode(bytes).map(Some);
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<HookRecord> {
        vec![
            HookRecord {
                id: 0,
                flags: 0,
                func_addr: 0x401000,
                payload_addr: 0x70000000,
                thunk_addr: 0,
                counter_addr: 0x70100000,
                name: "f0000".into(),
            },
            HookRecord {
                id: 1,
                flags: FLAG_CALL_ORIGINAL,
                func_addr: 0x401100,
                payload_addr: 0x70000020,
                thunk_addr: 0x70000040,
                counter_addr: 0x70100008,
                name: "f0001".into(),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let recs = sample();
        let bytes = encode(&recs);
        assert_eq!(decode(&bytes).unwrap(), recs);
        assert!(recs[1].is_call_original());
        assert!(!recs[0].is_call_original());
    }

    #[test]
    fn trailing_padding_tolerated() {
        let mut bytes = encode(&sample());
        bytes.extend_from_slice(&[0u8; 512]); // page-rounding zeroes
        assert_eq!(decode(&bytes).unwrap(), sample());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOTHOOK\x01rest"), Err(ManifestError::BadMagic));
        assert_eq!(decode(b""), Err(ManifestError::BadMagic));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&sample());
        // Chopping at every prefix length must yield a typed error, never
        // a panic or a bogus success.
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix succeeded");
        }
    }

    #[test]
    fn hostile_count_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode(&bytes),
            Err(ManifestError::TooManyRecords(u32::MAX))
        );
    }

    #[test]
    fn hostile_name_len_rejected() {
        let mut bytes = encode(&sample()[..1].to_vec());
        // Patch the name_len field (offset 12 + 40) to a huge value.
        let off = 12 + 40;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&bytes), Err(ManifestError::Truncated));
    }

    #[test]
    fn non_utf8_name_rejected() {
        let mut bytes = encode(&sample()[..1].to_vec());
        let off = 12 + RECORD_FIXED; // first name byte
        bytes[off] = 0xFF;
        assert_eq!(decode(&bytes), Err(ManifestError::BadName));
    }
}
