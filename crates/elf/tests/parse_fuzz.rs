//! Robustness: the ELF parser must never panic on arbitrary or corrupted
//! input — a static rewriter's first exposure to untrusted data.

use e9elf::build::ElfBuilder;
use e9elf::Elf;
use e9qcheck::prelude::*;

fn valid_binary() -> Vec<u8> {
    let mut b = ElfBuilder::exec(0x400000);
    b.text(vec![0x90; 64], 0x401000);
    b.rodata(vec![1, 2, 3], 0x402000);
    b.data(vec![9; 16], 0x403000);
    b.bss(0x1000, 0x404000);
    b.entry(0x401000);
    b.build()
}

props! {
    /// Arbitrary bytes: parse returns an error or a structurally sane Elf.
    #[test]
    fn parse_never_panics(bytes in vec(any::<u8>(), 0..512)) {
        if let Ok(elf) = Elf::parse(&bytes) {
            // Accessors must stay total too.
            let _ = elf.entry();
            let _ = elf.vaddr_extent();
            let _ = elf.section(".text");
            let _ = elf.slice_at(0x401000, 8);
        }
    }

    /// Single-byte corruptions of a valid binary: never panic; if the
    /// image still parses, accessors stay in bounds.
    #[test]
    fn corrupted_binary_never_panics(pos_frac in 0.0f64..1.0, val in any::<u8>()) {
        let mut bytes = valid_binary();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = val;
        if let Ok(elf) = Elf::parse(&bytes) {
            for s in &elf.sections {
                let _ = elf.section_bytes(&s.name);
            }
            for p in elf.load_segments() {
                let _ = elf.slice_at(p.p_vaddr, 1);
            }
        }
    }

    /// Truncations of a valid binary never panic.
    #[test]
    fn truncated_binary_never_panics(keep_frac in 0.0f64..1.0) {
        let bytes = valid_binary();
        let keep = ((bytes.len() as f64) * keep_frac) as usize;
        let _ = Elf::parse(&bytes[..keep]);
    }
}
