//! Robustness: the ELF parser must never panic on arbitrary or corrupted
//! input — a static rewriter's first exposure to untrusted data.

use e9elf::build::ElfBuilder;
use e9elf::Elf;
use e9qcheck::prelude::*;

fn valid_binary() -> Vec<u8> {
    let mut b = ElfBuilder::exec(0x400000);
    b.text(vec![0x90; 64], 0x401000);
    b.rodata(vec![1, 2, 3], 0x402000);
    b.data(vec![9; 16], 0x403000);
    b.bss(0x1000, 0x404000);
    b.entry(0x401000);
    b.build()
}

props! {
    /// Arbitrary bytes: parse returns an error or a structurally sane Elf.
    #[test]
    fn parse_never_panics(bytes in vec(any::<u8>(), 0..512)) {
        if let Ok(elf) = Elf::parse(&bytes) {
            // Accessors must stay total too.
            let _ = elf.entry();
            let _ = elf.vaddr_extent();
            let _ = elf.section(".text");
            let _ = elf.slice_at(0x401000, 8);
        }
    }

    /// Single-byte corruptions of a valid binary: never panic; if the
    /// image still parses, accessors stay in bounds.
    #[test]
    fn corrupted_binary_never_panics(pos_frac in 0.0f64..1.0, val in any::<u8>()) {
        let mut bytes = valid_binary();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = val;
        if let Ok(elf) = Elf::parse(&bytes) {
            for s in &elf.sections {
                let _ = elf.section_bytes(&s.name);
            }
            for p in elf.load_segments() {
                let _ = elf.slice_at(p.p_vaddr, 1);
            }
        }
    }

    /// Truncations of a valid binary never panic.
    #[test]
    fn truncated_binary_never_panics(keep_frac in 0.0f64..1.0) {
        let bytes = valid_binary();
        let keep = ((bytes.len() as f64) * keep_frac) as usize;
        let _ = Elf::parse(&bytes[..keep]);
    }

    /// Boundary values planted in the header-count and segment-size
    /// fields (the u64/u16 overflow bait) never panic the parser or the
    /// accessors — regression guard for the checked-arithmetic rewrite.
    #[test]
    fn planted_overflow_fields_never_panic(field in 0u32..6, bomb_i in 0usize..6) {
        const BOMBS: [u64; 6] =
            [u64::MAX, u64::MAX - 1, u64::MAX / 2, 1 << 63, 1 << 32, 0xFFFF_FFFF];
        let bomb = BOMBS[bomb_i];
        let mut bytes = valid_binary();
        let phoff = u64::from_le_bytes(bytes[32..40].try_into().unwrap()) as usize;
        match field {
            0 => bytes[32..40].copy_from_slice(&bomb.to_le_bytes()),          // e_phoff
            1 => bytes[40..48].copy_from_slice(&bomb.to_le_bytes()),          // e_shoff
            2 => bytes[56..58].copy_from_slice(&0xFFFFu16.to_le_bytes()),     // e_phnum
            3 => bytes[60..62].copy_from_slice(&0xFFFFu16.to_le_bytes()),     // e_shnum
            4 => bytes[phoff + 16..phoff + 24].copy_from_slice(&bomb.to_le_bytes()), // p_vaddr
            _ => bytes[phoff + 40..phoff + 48].copy_from_slice(&bomb.to_le_bytes()), // p_memsz
        }
        if let Ok(elf) = Elf::parse(&bytes) {
            let _ = elf.vaddr_extent();
            let _ = elf.slice_at(u64::MAX - 4, 8);
            let _ = elf.slice_at(0x401000, usize::MAX);
            for p in elf.load_segments() {
                let _ = elf.vaddr_to_offset(p.p_vaddr);
            }
        }
    }
}
