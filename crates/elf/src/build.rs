//! Synthetic ELF executable builder.
//!
//! The reproduction cannot ship SPEC2006 or browser binaries, so the
//! workload generator (`e9synth`) assembles programs from scratch and this
//! builder turns them into well-formed ELF64 executables: file header,
//! one `PT_LOAD` per section, and a section-header table with names (so the
//! output is inspectable with standard tooling).
//!
//! Position-independent executables are modelled as `ET_DYN` files whose
//! segments already carry their final (high) load addresses — the dynamic
//! linker's relocation step is outside the scope of the paper, and what
//! matters to the rewriter is the *address range* code executes at (PIE
//! doubles the valid `rel32` offsets, paper §5.1).

use crate::types::*;
use crate::{page_ceil, PAGE_SIZE};

#[derive(Debug, Clone)]
struct PendingSection {
    name: String,
    vaddr: u64,
    bytes: Vec<u8>,
    memsz: u64,
    flags: u32,     // PF_*
    sh_flags: u64,  // SHF_*
    nobits: bool,
}

/// Builder for synthetic ELF64 executables.
#[derive(Debug, Clone)]
pub struct ElfBuilder {
    e_type: u16,
    base: u64,
    entry: u64,
    sections: Vec<PendingSection>,
    notes: Vec<(String, Vec<u8>)>,
}

impl ElfBuilder {
    /// A fixed-address executable (`ET_EXEC`) with image base `base`
    /// (conventionally `0x400000`, like `ld`'s default — the hard case for
    /// punning because negative `rel32` offsets underflow).
    pub fn exec(base: u64) -> ElfBuilder {
        ElfBuilder {
            e_type: ET_EXEC,
            base,
            entry: 0,
            sections: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// A position-independent executable (`ET_DYN`) modelled at its loaded
    /// base (conventionally high, e.g. `0x5555_5555_4000`).
    pub fn pie(base: u64) -> ElfBuilder {
        ElfBuilder {
            e_type: ET_DYN,
            base,
            entry: 0,
            sections: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a non-allocated metadata section (present in the file, not
    /// loaded into memory) — e.g. `.note.e9code`, which records the true
    /// code extent so frontends can skip data-in-text jump tables.
    pub fn note(&mut self, name: &str, bytes: Vec<u8>) -> &mut Self {
        self.notes.push((name.to_string(), bytes));
        self
    }

    /// Image base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Set the entry point.
    pub fn entry(&mut self, vaddr: u64) -> &mut Self {
        self.entry = vaddr;
        self
    }

    /// Add an executable `.text` section at `vaddr`.
    pub fn text(&mut self, code: Vec<u8>, vaddr: u64) -> &mut Self {
        self.add(".text", code, vaddr, PF_R | PF_X, SHF_ALLOC | SHF_EXECINSTR, false)
    }

    /// Add a read-only `.rodata` section at `vaddr`.
    pub fn rodata(&mut self, bytes: Vec<u8>, vaddr: u64) -> &mut Self {
        self.add(".rodata", bytes, vaddr, PF_R, SHF_ALLOC, false)
    }

    /// Add a writable `.data` section at `vaddr`.
    pub fn data(&mut self, bytes: Vec<u8>, vaddr: u64) -> &mut Self {
        self.add(".data", bytes, vaddr, PF_R | PF_W, SHF_ALLOC | SHF_WRITE, false)
    }

    /// Add a zero-initialised `.bss` of `size` bytes at `vaddr` (occupies
    /// address space but no file bytes — how gamess/zeusmp pressure the
    /// trampoline allocator in the paper's limitation L1).
    pub fn bss(&mut self, size: u64, vaddr: u64) -> &mut Self {
        self.sections.push(PendingSection {
            name: ".bss".into(),
            vaddr,
            bytes: Vec::new(),
            memsz: size,
            flags: PF_R | PF_W,
            sh_flags: SHF_ALLOC | SHF_WRITE,
            nobits: true,
        });
        self
    }

    /// Add an arbitrary named section.
    pub fn section(
        &mut self,
        name: &str,
        bytes: Vec<u8>,
        vaddr: u64,
        exec: bool,
        write: bool,
    ) -> &mut Self {
        let mut flags = PF_R;
        let mut sh_flags = SHF_ALLOC;
        if exec {
            flags |= PF_X;
            sh_flags |= SHF_EXECINSTR;
        }
        if write {
            flags |= PF_W;
            sh_flags |= SHF_WRITE;
        }
        self.add(name, bytes, vaddr, flags, sh_flags, false)
    }

    fn add(
        &mut self,
        name: &str,
        bytes: Vec<u8>,
        vaddr: u64,
        flags: u32,
        sh_flags: u64,
        nobits: bool,
    ) -> &mut Self {
        let memsz = bytes.len() as u64;
        self.sections.push(PendingSection {
            name: name.to_string(),
            vaddr,
            bytes,
            memsz,
            flags,
            sh_flags,
            nobits,
        });
        self
    }

    /// Emit the ELF file bytes.
    ///
    /// # Panics
    ///
    /// Panics if sections overlap in virtual memory or precede the image
    /// base — builder misuse, not input-dependent conditions.
    pub fn build(&self) -> Vec<u8> {
        let mut sections = self.sections.clone();
        sections.sort_by_key(|s| s.vaddr);
        for w in sections.windows(2) {
            assert!(
                w[0].vaddr + w[0].memsz.max(w[0].bytes.len() as u64) <= w[1].vaddr,
                "sections {} and {} overlap",
                w[0].name,
                w[1].name
            );
        }

        let file_sections: Vec<&PendingSection> = sections.iter().filter(|s| !s.nobits).collect();
        // Program headers: one for the header page, one per section.
        let phnum = 1 + sections.len();
        let phoff = EHDR_SIZE as u64;
        let headers_end = phoff + (phnum * PHDR_SIZE) as u64;
        assert!(
            headers_end <= PAGE_SIZE,
            "too many sections for a one-page header"
        );

        // Assign file offsets congruent to vaddr mod page.
        let mut out = vec![0u8; headers_end as usize];
        let mut offsets = Vec::new();
        for s in &file_sections {
            let mut off = page_ceil(out.len() as u64);
            off += s.vaddr % PAGE_SIZE;
            out.resize(off as usize, 0);
            out.extend_from_slice(&s.bytes);
            offsets.push(off);
        }

        // Non-allocated note sections (metadata only).
        let mut note_offsets = Vec::new();
        for (_, bytes) in &self.notes {
            note_offsets.push(out.len() as u64);
            out.extend_from_slice(bytes);
        }

        // Section header table: null + sections + notes + .shstrtab.
        let mut shstrtab = vec![0u8]; // index 0 = empty name
        let mut name_offsets = Vec::new();
        for s in &sections {
            name_offsets.push(shstrtab.len() as u32);
            shstrtab.extend_from_slice(s.name.as_bytes());
            shstrtab.push(0);
        }
        let mut note_name_offsets = Vec::new();
        for (name, _) in &self.notes {
            note_name_offsets.push(shstrtab.len() as u32);
            shstrtab.extend_from_slice(name.as_bytes());
            shstrtab.push(0);
        }
        let shstrtab_name_off = shstrtab.len() as u32;
        shstrtab.extend_from_slice(b".shstrtab\0");

        let shstrtab_off = out.len() as u64;
        out.extend_from_slice(&shstrtab);
        // Align section header table.
        while !out.len().is_multiple_of(8) {
            out.push(0);
        }
        let shoff = out.len() as u64;
        let shnum = 2 + sections.len() + self.notes.len(); // null + sections + notes + shstrtab

        let push_shdr = |out: &mut Vec<u8>,
                             name_off: u32,
                             sh_type: u32,
                             sh_flags: u64,
                             addr: u64,
                             offset: u64,
                             size: u64| {
            let mut b = [0u8; SHDR_SIZE];
            b[0..4].copy_from_slice(&name_off.to_le_bytes());
            b[4..8].copy_from_slice(&sh_type.to_le_bytes());
            b[8..16].copy_from_slice(&sh_flags.to_le_bytes());
            b[16..24].copy_from_slice(&addr.to_le_bytes());
            b[24..32].copy_from_slice(&offset.to_le_bytes());
            b[32..40].copy_from_slice(&size.to_le_bytes());
            b[48..56].copy_from_slice(&1u64.to_le_bytes()); // sh_addralign
            out.extend_from_slice(&b);
        };

        push_shdr(&mut out, 0, 0, 0, 0, 0, 0); // SHN_UNDEF
        let mut file_idx = 0usize;
        for (i, s) in sections.iter().enumerate() {
            let (sh_type, offset, size) = if s.nobits {
                (SHT_NOBITS, 0, s.memsz)
            } else {
                let off = offsets[file_idx];
                file_idx += 1;
                (SHT_PROGBITS, off, s.bytes.len() as u64)
            };
            push_shdr(
                &mut out,
                name_offsets[i],
                sh_type,
                s.sh_flags,
                s.vaddr,
                offset,
                size,
            );
        }
        for (i, (_, bytes)) in self.notes.iter().enumerate() {
            push_shdr(
                &mut out,
                note_name_offsets[i],
                SHT_PROGBITS,
                0,
                0,
                note_offsets[i],
                bytes.len() as u64,
            );
        }
        push_shdr(
            &mut out,
            shstrtab_name_off,
            SHT_STRTAB,
            0,
            0,
            shstrtab_off,
            shstrtab.len() as u64,
        );

        // File header.
        out[0..4].copy_from_slice(&ELF_MAGIC);
        out[4] = ELFCLASS64;
        out[5] = ELFDATA2LSB;
        out[6] = EV_CURRENT;
        out[16..18].copy_from_slice(&self.e_type.to_le_bytes());
        out[18..20].copy_from_slice(&EM_X86_64.to_le_bytes());
        out[20..24].copy_from_slice(&1u32.to_le_bytes()); // e_version
        out[24..32].copy_from_slice(&self.entry.to_le_bytes());
        out[32..40].copy_from_slice(&phoff.to_le_bytes());
        out[40..48].copy_from_slice(&shoff.to_le_bytes());
        out[52..54].copy_from_slice(&(EHDR_SIZE as u16).to_le_bytes());
        out[54..56].copy_from_slice(&(PHDR_SIZE as u16).to_le_bytes());
        out[56..58].copy_from_slice(&(phnum as u16).to_le_bytes());
        out[58..60].copy_from_slice(&(SHDR_SIZE as u16).to_le_bytes());
        out[60..62].copy_from_slice(&(shnum as u16).to_le_bytes());
        out[62..64].copy_from_slice(&((shnum - 1) as u16).to_le_bytes());

        // Program headers: header page first.
        let mut phdr_bytes = Vec::new();
        let hdr_ph = Phdr {
            p_type: PT_LOAD,
            p_flags: PF_R,
            p_offset: 0,
            p_vaddr: self.base,
            p_filesz: headers_end,
            p_memsz: headers_end,
            p_align: PAGE_SIZE,
        };
        phdr_bytes.extend_from_slice(&hdr_ph.to_bytes());
        let mut file_idx = 0usize;
        for s in &sections {
            let (offset, filesz, memsz) = if s.nobits {
                (0, 0, s.memsz)
            } else {
                let off = offsets[file_idx];
                file_idx += 1;
                (off, s.bytes.len() as u64, s.bytes.len() as u64)
            };
            let ph = Phdr {
                p_type: PT_LOAD,
                p_flags: s.flags,
                p_offset: offset,
                p_vaddr: s.vaddr,
                p_filesz: filesz,
                p_memsz: memsz,
                p_align: PAGE_SIZE,
            };
            phdr_bytes.extend_from_slice(&ph.to_bytes());
        }
        out[phoff as usize..phoff as usize + phdr_bytes.len()].copy_from_slice(&phdr_bytes);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Elf;

    #[test]
    fn minimal_executable() {
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.entry(0x401000);
        let bytes = b.build();
        let elf = Elf::parse(&bytes).unwrap();
        assert_eq!(elf.entry(), 0x401000);
        assert_eq!(elf.slice_at(0x401000, 1).unwrap(), &[0xC3]);
    }

    #[test]
    fn pie_flag() {
        let mut b = ElfBuilder::pie(0x5555_5555_4000);
        b.text(vec![0xC3], 0x5555_5555_5000);
        b.entry(0x5555_5555_5000);
        let elf = Elf::parse(&b.build()).unwrap();
        assert!(elf.is_pie());
    }

    #[test]
    fn offsets_congruent_to_vaddr() {
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0x90; 100], 0x401234);
        b.entry(0x401234);
        let bytes = b.build();
        let elf = Elf::parse(&bytes).unwrap();
        let off = elf.vaddr_to_offset(0x401234).unwrap();
        assert_eq!(off % PAGE_SIZE, 0x234);
    }

    #[test]
    fn bss_occupies_memory_not_file() {
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.bss(0x10_0000, 0x500000);
        b.entry(0x401000);
        let bytes = b.build();
        let elf = Elf::parse(&bytes).unwrap();
        assert!(bytes.len() < 0x10_0000); // bss contributes no file bytes
        let (_, hi) = elf.vaddr_extent();
        assert_eq!(hi, 0x500000 + 0x10_0000);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_sections_rejected() {
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0x90; 0x100], 0x401000);
        b.rodata(vec![0; 0x100], 0x401080);
        b.build();
    }

    #[test]
    fn sections_named_and_ordered() {
        let mut b = ElfBuilder::exec(0x400000);
        b.data(vec![0xAB], 0x403000);
        b.text(vec![0xC3], 0x401000);
        b.rodata(vec![7], 0x402000);
        b.entry(0x401000);
        let elf = Elf::parse(&b.build()).unwrap();
        assert_eq!(elf.section(".text").unwrap().sh_addr, 0x401000);
        assert_eq!(elf.section(".rodata").unwrap().sh_addr, 0x402000);
        assert_eq!(elf.section_bytes(".data").unwrap(), &[0xAB]);
    }
}
