//! ELF64 on-disk structures and constants (subset needed for executables
//! and shared objects).

/// ELF magic bytes.
pub const ELF_MAGIC: [u8; 4] = [0x7F, b'E', b'L', b'F'];
/// 64-bit class.
pub const ELFCLASS64: u8 = 2;
/// Little-endian data encoding.
pub const ELFDATA2LSB: u8 = 1;
/// Current ELF version.
pub const EV_CURRENT: u8 = 1;

/// Executable file (fixed load address).
pub const ET_EXEC: u16 = 2;
/// Shared object / position-independent executable.
pub const ET_DYN: u16 = 3;
/// AMD x86-64 machine.
pub const EM_X86_64: u16 = 62;

/// Loadable segment.
pub const PT_LOAD: u32 = 1;
/// Note segment (used for the patch manifest).
pub const PT_NOTE: u32 = 4;
/// Program header table self-reference.
pub const PT_PHDR: u32 = 6;

/// Segment is executable.
pub const PF_X: u32 = 1;
/// Segment is writable.
pub const PF_W: u32 = 2;
/// Segment is readable.
pub const PF_R: u32 = 4;

/// Size of the ELF64 file header.
pub const EHDR_SIZE: usize = 64;
/// Size of one ELF64 program header.
pub const PHDR_SIZE: usize = 56;
/// Size of one ELF64 section header.
pub const SHDR_SIZE: usize = 64;

/// Section holds program data (`SHT_PROGBITS`).
pub const SHT_PROGBITS: u32 = 1;
/// Section holds uninitialised data (`SHT_NOBITS`).
pub const SHT_NOBITS: u32 = 8;
/// String table section.
pub const SHT_STRTAB: u32 = 3;

/// Section occupies memory at run time.
pub const SHF_ALLOC: u64 = 2;
/// Section is executable.
pub const SHF_EXECINSTR: u64 = 4;
/// Section is writable.
pub const SHF_WRITE: u64 = 1;

/// Parsed ELF64 file header (fields the reproduction uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ehdr {
    /// Object file type (`ET_EXEC` or `ET_DYN`).
    pub e_type: u16,
    /// Entry-point virtual address.
    pub e_entry: u64,
    /// Program-header table file offset.
    pub e_phoff: u64,
    /// Section-header table file offset.
    pub e_shoff: u64,
    /// Number of program headers.
    pub e_phnum: u16,
    /// Number of section headers.
    pub e_shnum: u16,
    /// Section name string table index.
    pub e_shstrndx: u16,
}

/// Parsed ELF64 program header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phdr {
    /// Segment type (`PT_LOAD`, ...).
    pub p_type: u32,
    /// Permission flags (`PF_R | PF_W | PF_X`).
    pub p_flags: u32,
    /// File offset of the segment contents.
    pub p_offset: u64,
    /// Virtual load address.
    pub p_vaddr: u64,
    /// Size of the segment in the file.
    pub p_filesz: u64,
    /// Size of the segment in memory (≥ `p_filesz`; tail is zero-filled).
    pub p_memsz: u64,
    /// Alignment.
    pub p_align: u64,
}

impl Phdr {
    /// Does this loadable segment cover virtual address `vaddr` in memory?
    ///
    /// Phrased as a checked subtraction so a hostile `p_vaddr + p_memsz`
    /// near `u64::MAX` cannot wrap.
    #[inline]
    pub fn covers(&self, vaddr: u64) -> bool {
        vaddr.checked_sub(self.p_vaddr).is_some_and(|d| d < self.p_memsz)
    }

    /// Does the *file-backed* part of this segment cover `vaddr`?
    #[inline]
    pub fn covers_file(&self, vaddr: u64) -> bool {
        vaddr.checked_sub(self.p_vaddr).is_some_and(|d| d < self.p_filesz)
    }

    /// Serialize to the 56-byte on-disk representation.
    pub fn to_bytes(&self) -> [u8; PHDR_SIZE] {
        let mut b = [0u8; PHDR_SIZE];
        b[0..4].copy_from_slice(&self.p_type.to_le_bytes());
        b[4..8].copy_from_slice(&self.p_flags.to_le_bytes());
        b[8..16].copy_from_slice(&self.p_offset.to_le_bytes());
        b[16..24].copy_from_slice(&self.p_vaddr.to_le_bytes());
        b[24..32].copy_from_slice(&self.p_vaddr.to_le_bytes()); // p_paddr = p_vaddr
        b[32..40].copy_from_slice(&self.p_filesz.to_le_bytes());
        b[40..48].copy_from_slice(&self.p_memsz.to_le_bytes());
        b[48..56].copy_from_slice(&self.p_align.to_le_bytes());
        b
    }

    /// Deserialize from the on-disk representation.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than [`PHDR_SIZE`]; use
    /// [`Phdr::try_from_bytes`] for untrusted input.
    pub fn from_bytes(b: &[u8]) -> Phdr {
        Phdr::try_from_bytes(b).expect("program header shorter than PHDR_SIZE")
    }

    /// Deserialize from the on-disk representation, or `None` if the slice
    /// is shorter than [`PHDR_SIZE`]. Total: never panics.
    pub fn try_from_bytes(b: &[u8]) -> Option<Phdr> {
        if b.len() < PHDR_SIZE {
            return None;
        }
        let u32le = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().unwrap());
        let u64le = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
        Some(Phdr {
            p_type: u32le(0),
            p_flags: u32le(4),
            p_offset: u64le(8),
            p_vaddr: u64le(16),
            p_filesz: u64le(32),
            p_memsz: u64le(40),
            p_align: u64le(48),
        })
    }
}

/// Parsed ELF64 section header plus its resolved name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (resolved through `.shstrtab`).
    pub name: String,
    /// Section type.
    pub sh_type: u32,
    /// Section flags.
    pub sh_flags: u64,
    /// Virtual address (0 for non-alloc sections).
    pub sh_addr: u64,
    /// File offset.
    pub sh_offset: u64,
    /// Size in bytes.
    pub sh_size: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phdr_roundtrip() {
        let p = Phdr {
            p_type: PT_LOAD,
            p_flags: PF_R | PF_X,
            p_offset: 0x1000,
            p_vaddr: 0x401000,
            p_filesz: 0x2345,
            p_memsz: 0x3000,
            p_align: 0x1000,
        };
        assert_eq!(Phdr::from_bytes(&p.to_bytes()), p);
    }

    #[test]
    fn phdr_covers() {
        let p = Phdr {
            p_type: PT_LOAD,
            p_flags: PF_R,
            p_offset: 0,
            p_vaddr: 0x1000,
            p_filesz: 0x100,
            p_memsz: 0x200,
            p_align: 0x1000,
        };
        assert!(p.covers(0x1000));
        assert!(p.covers(0x11FF));
        assert!(!p.covers(0x1200));
        assert!(p.covers_file(0x10FF));
        assert!(!p.covers_file(0x1100)); // bss tail
    }
}
