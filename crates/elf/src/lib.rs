//! # e9elf — ELF64 substrate
//!
//! A from-scratch ELF64 **parser**, **builder** and **rewriter** for the
//! E9Patch reproduction.
//!
//! Three roles:
//!
//! * [`image::Elf`] parses an existing binary into a navigable image with
//!   virtual-address ⇄ file-offset translation (the rewriter patches bytes
//!   *in place* and never moves existing data, per the paper's §5.1).
//! * [`build::ElfBuilder`] assembles synthetic executables (PIE and
//!   non-PIE) from raw section bytes — the substitute for compiling
//!   SPEC2006 with gcc.
//! * [`rewrite::Patcher`] produces the patched output binary: original
//!   bytes patched in place, trampoline blobs and loader segments appended
//!   at the end of the file, and the program-header table relocated to the
//!   file tail so new `PT_LOAD` entries can be added without moving data.
//!
//! ```
//! use e9elf::build::ElfBuilder;
//!
//! let mut b = ElfBuilder::exec(0x400000);
//! b.text(vec![0xC3], 0x401000); // ret
//! b.entry(0x401000);
//! let bytes = b.build();
//! let elf = e9elf::image::Elf::parse(&bytes).unwrap();
//! assert_eq!(elf.entry(), 0x401000);
//! ```

pub mod build;
pub mod image;
pub mod symbols;
pub mod rewrite;
pub mod types;

pub use image::{Elf, ElfError};
pub use rewrite::Patcher;

/// Page size assumed throughout the reproduction (x86_64 Linux).
pub const PAGE_SIZE: u64 = 4096;

/// Round `v` down to a page boundary.
#[inline]
pub fn page_floor(v: u64) -> u64 {
    v & !(PAGE_SIZE - 1)
}

/// Round `v` up to a page boundary.
#[inline]
pub fn page_ceil(v: u64) -> u64 {
    (v + PAGE_SIZE - 1) & !(PAGE_SIZE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_rounding() {
        assert_eq!(page_floor(0x1234), 0x1000);
        assert_eq!(page_ceil(0x1234), 0x2000);
        assert_eq!(page_ceil(0x1000), 0x1000);
        assert_eq!(page_floor(0), 0);
    }
}
