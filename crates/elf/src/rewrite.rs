//! Output-binary construction: in-place patches + appended segments.
//!
//! Following the paper's §5.1, the rewriter never moves existing data:
//!
//! * patched instruction bytes are overwritten **in place**;
//! * new data (trampolines, loader, mapping table) is **appended** at the
//!   end of the file;
//! * the program-header table is *relocated to the file tail* so new
//!   `PT_LOAD` entries can be added without shifting any existing offset;
//! * the entry point is redirected to the injected loader, which maps the
//!   appended trampoline blobs before tail-jumping to the original entry.

use crate::image::{Elf, ElfError};
use crate::types::*;
use crate::{page_ceil, PAGE_SIZE};

/// Builds the patched output binary from a parsed input [`Elf`].
#[derive(Debug)]
pub struct Patcher {
    elf: Elf,
    /// Appended region (starts at `page_ceil(original file size)`).
    appended: Vec<u8>,
    append_base: u64,
    new_phdrs: Vec<Phdr>,
    new_entry: Option<u64>,
}

impl Patcher {
    /// Start patching `elf`.
    pub fn new(elf: Elf) -> Patcher {
        let append_base = page_ceil(elf.file_size() as u64);
        Patcher {
            elf,
            appended: Vec::new(),
            append_base,
            new_phdrs: Vec::new(),
            new_entry: None,
        }
    }

    /// The underlying (in-place patched) input image.
    pub fn elf(&self) -> &Elf {
        &self.elf
    }

    /// Overwrite bytes of an existing segment in place.
    ///
    /// # Errors
    ///
    /// Fails if `vaddr..vaddr+bytes.len()` is not file-backed.
    pub fn write_code(&mut self, vaddr: u64, bytes: &[u8]) -> Result<(), ElfError> {
        self.elf.write_at(vaddr, bytes)
    }

    /// File offset the next appended byte will land at if aligned to
    /// `align`.
    pub fn next_append_offset(&self, align: u64) -> u64 {
        let cur = self.append_base + self.appended.len() as u64;
        cur.next_multiple_of(align.max(1))
    }

    /// Append a raw blob (not described by any program header — the loader
    /// maps it explicitly). Returns its file offset.
    pub fn append_blob(&mut self, bytes: &[u8], align: u64) -> u64 {
        let off = self.next_append_offset(align);
        let pad = off - (self.append_base + self.appended.len() as u64);
        self.appended.extend(std::iter::repeat_n(0, pad as usize));
        self.appended.extend_from_slice(bytes);
        off
    }

    /// Append `bytes` as a new `PT_LOAD` segment mapped at `vaddr` with
    /// permission `flags` (`PF_*`). Used for the loader stub and any
    /// conventionally-mapped instrumentation segment. The file offset is
    /// made page-congruent with `vaddr`.
    pub fn add_segment(&mut self, vaddr: u64, bytes: &[u8], flags: u32) -> u64 {
        let off = {
            let cur = self.append_base + self.appended.len() as u64;
            let base = page_ceil(cur);
            base + vaddr % PAGE_SIZE
        };
        let pad = off - (self.append_base + self.appended.len() as u64);
        self.appended.extend(std::iter::repeat_n(0, pad as usize));
        self.appended.extend_from_slice(bytes);
        self.new_phdrs.push(Phdr {
            p_type: PT_LOAD,
            p_flags: flags,
            p_offset: off,
            p_vaddr: vaddr,
            p_filesz: bytes.len() as u64,
            p_memsz: bytes.len() as u64,
            p_align: PAGE_SIZE,
        });
        off
    }

    /// Record a `PT_NOTE`-style metadata segment pointing at an existing
    /// appended blob (e.g. the patch manifest).
    pub fn add_note(&mut self, offset: u64, size: u64) {
        self.new_phdrs.push(Phdr {
            p_type: PT_NOTE,
            p_flags: PF_R,
            p_offset: offset,
            p_vaddr: 0,
            p_filesz: size,
            p_memsz: 0,
            p_align: 1,
        });
    }

    /// Redirect the entry point (to the injected loader).
    pub fn set_entry(&mut self, vaddr: u64) {
        self.new_entry = Some(vaddr);
    }

    /// Total output file size so far (before the relocated phdr table).
    pub fn current_size(&self) -> u64 {
        self.append_base + self.appended.len() as u64
    }

    /// Emit the output binary.
    pub fn finish(self) -> Vec<u8> {
        let orig_len = self.elf.file_size();
        let ehdr = self.elf.ehdr;
        let old_phdrs = self.elf.phdrs.clone();
        let mut out = self.elf.into_bytes();

        // Pad original to the append base, then the appended region.
        out.resize(self.append_base as usize, 0);
        out.extend_from_slice(&self.appended);
        debug_assert_eq!(out.len() as u64, self.append_base + self.appended.len() as u64);
        let _ = orig_len;

        // Relocated program-header table at the file tail.
        while !out.len().is_multiple_of(8) {
            out.push(0);
        }
        let new_phoff = out.len() as u64;
        let mut phnum = 0u16;
        for p in old_phdrs.iter().chain(self.new_phdrs.iter()) {
            out.extend_from_slice(&p.to_bytes());
            phnum += 1;
        }

        // Patch the file header: new phoff/phnum/entry.
        out[32..40].copy_from_slice(&new_phoff.to_le_bytes());
        out[56..58].copy_from_slice(&phnum.to_le_bytes());
        let entry = self.new_entry.unwrap_or(ehdr.e_entry);
        out[24..32].copy_from_slice(&entry.to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ElfBuilder;

    fn sample() -> Elf {
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0x90, 0x90, 0x90, 0x90, 0xC3], 0x401000);
        b.entry(0x401000);
        Elf::parse(&b.build()).unwrap()
    }

    #[test]
    fn in_place_patch_survives_finish() {
        let mut p = Patcher::new(sample());
        p.write_code(0x401000, &[0xE9, 1, 2, 3, 4]).unwrap();
        let out = p.finish();
        let elf = Elf::parse(&out).unwrap();
        assert_eq!(elf.slice_at(0x401000, 5).unwrap(), &[0xE9, 1, 2, 3, 4]);
    }

    #[test]
    fn appended_segment_parses_back() {
        let mut p = Patcher::new(sample());
        let code = vec![0xCC; 64];
        p.add_segment(0x70000000, &code, PF_R | PF_X);
        p.set_entry(0x70000000);
        let out = p.finish();
        let elf = Elf::parse(&out).unwrap();
        assert_eq!(elf.entry(), 0x70000000);
        assert_eq!(elf.slice_at(0x70000000, 64).unwrap(), &code[..]);
        // Original segment still intact.
        assert_eq!(elf.slice_at(0x401004, 1).unwrap(), &[0xC3]);
    }

    #[test]
    fn blob_offsets_are_aligned() {
        let mut p = Patcher::new(sample());
        let o1 = p.append_blob(&[1, 2, 3], 4096);
        let o2 = p.append_blob(&[4, 5], 4096);
        assert_eq!(o1 % 4096, 0);
        assert_eq!(o2 % 4096, 0);
        assert!(o2 > o1);
        let out = p.finish();
        assert_eq!(&out[o1 as usize..o1 as usize + 3], &[1, 2, 3]);
        assert_eq!(&out[o2 as usize..o2 as usize + 2], &[4, 5]);
    }

    #[test]
    fn original_bytes_never_move() {
        let elf = sample();
        let text_off = elf.vaddr_to_offset(0x401000).unwrap();
        let mut p = Patcher::new(elf);
        p.append_blob(&[0xFF; 8192], 4096);
        p.add_segment(0x71000000, &[0x90; 10], PF_R | PF_X);
        let out = p.finish();
        let reparsed = Elf::parse(&out).unwrap();
        assert_eq!(reparsed.vaddr_to_offset(0x401000).unwrap(), text_off);
    }

    #[test]
    fn segment_file_offset_congruent() {
        let mut p = Patcher::new(sample());
        let off = p.add_segment(0x70000123, &[0xAA; 4], PF_R);
        assert_eq!(off % PAGE_SIZE, 0x123);
    }

    #[test]
    fn note_segment_recorded() {
        let mut p = Patcher::new(sample());
        let off = p.append_blob(b"manifest", 8);
        p.add_note(off, 8);
        let out = p.finish();
        let elf = Elf::parse(&out).unwrap();
        assert!(elf.phdrs.iter().any(|ph| ph.p_type == PT_NOTE && ph.p_offset == off));
    }
}
