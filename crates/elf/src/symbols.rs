//! ELF symbol tables (`.symtab` / `.strtab`, with `.dynsym` fallback).
//!
//! E9Patch works on *stripped* binaries, but when symbols exist a frontend
//! can exploit them (better disassembly roots, human-readable reports,
//! symbol-driven hooking). The builder can emit function symbols; the
//! parser recovers them, falling back to the dynamic symbol table when the
//! static one has been stripped.

use crate::image::Elf;
use crate::types::SHT_PROGBITS;
use std::fmt;

/// `st_info` for a global function symbol (`STB_GLOBAL << 4 | STT_FUNC`).
pub const GLOBAL_FUNC: u8 = 0x12;

/// Size of one ELF64 symbol record.
pub const SYM_SIZE: usize = 24;

/// A (simplified) function symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Value (function address).
    pub value: u64,
    /// Size in bytes (0 if unknown).
    pub size: u64,
}

/// Serialize symbols into (`.symtab` bytes, `.strtab` bytes).
pub fn encode(symbols: &[Symbol]) -> (Vec<u8>, Vec<u8>) {
    let mut strtab = vec![0u8];
    let mut symtab = vec![0u8; SYM_SIZE]; // index 0: undefined symbol
    for s in symbols {
        let name_off = strtab.len() as u32;
        strtab.extend_from_slice(s.name.as_bytes());
        strtab.push(0);
        let mut rec = [0u8; SYM_SIZE];
        rec[0..4].copy_from_slice(&name_off.to_le_bytes());
        rec[4] = GLOBAL_FUNC;
        // st_shndx: leave 0 (our consumers key off value, not section).
        rec[8..16].copy_from_slice(&s.value.to_le_bytes());
        rec[16..24].copy_from_slice(&s.size.to_le_bytes());
        symtab.extend_from_slice(&rec);
    }
    (symtab, strtab)
}

/// Symbol-resolution failure, carrying enough context for a useful
/// diagnostic instead of a bare miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolError {
    /// The binary has no symbol table at all (fully stripped — callers
    /// should fall back to explicit addresses).
    Stripped,
    /// No symbol matched `name`; `nearest` holds the closest candidate
    /// names (by edit distance, best first) to aid typo diagnosis.
    NotFound {
        /// The name (or glob pattern) that failed to resolve.
        name: String,
        /// Up to three nearest candidate symbol names, best first.
        nearest: Vec<String>,
    },
}

impl fmt::Display for SymbolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolError::Stripped => {
                write!(f, "binary has no symbol table (stripped); use an explicit address")
            }
            SymbolError::NotFound { name, nearest } => {
                write!(f, "symbol {name:?} not found")?;
                if !nearest.is_empty() {
                    write!(f, "; nearest candidates: {}", nearest.join(", "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SymbolError {}

/// Parse function symbols out of a binary's `.symtab`/`.strtab` sections,
/// falling back to `.dynsym`/`.dynstr` when the static table is stripped.
/// Returns an empty vec for fully stripped binaries.
pub fn parse(elf: &Elf) -> Vec<Symbol> {
    let (symtab, strtab) = match (elf.section_bytes(".symtab"), elf.section_bytes(".strtab")) {
        (Some(sym), Some(str_)) => (sym, str_),
        _ => match (elf.section_bytes(".dynsym"), elf.section_bytes(".dynstr")) {
            (Some(sym), Some(str_)) => (sym, str_),
            _ => return Vec::new(),
        },
    };
    let mut out = Vec::new();
    for rec in symtab.chunks_exact(SYM_SIZE).skip(1) {
        let name_off = u32::from_le_bytes(rec[0..4].try_into().unwrap()) as usize;
        let info = rec[4];
        if info & 0xF != 2 {
            continue; // not STT_FUNC
        }
        let value = u64::from_le_bytes(rec[8..16].try_into().unwrap());
        let size = u64::from_le_bytes(rec[16..24].try_into().unwrap());
        let name = strtab
            .get(name_off..)
            .and_then(|s| s.split(|&b| b == 0).next())
            .map(|s| String::from_utf8_lossy(s).into_owned())
            .unwrap_or_default();
        out.push(Symbol { name, value, size });
    }
    out.sort_by_key(|s| s.value);
    out
}

/// Shell-style glob match over symbol names: `*` matches any run of
/// characters (including empty), `?` matches exactly one. Anything else
/// matches literally. Used by hook planning to select families like
/// `malloc*` in one pattern.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    // Iterative two-pointer matcher with single-star backtracking: O(p·n)
    // worst case, constant stack — symbol names are untrusted input.
    let (p, n) = (pattern.as_bytes(), name.as_bytes());
    let (mut pi, mut ni) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((sp, sn)) = star {
            pi = sp + 1;
            ni = sn + 1;
            star = Some((sp, sn + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// Does `pattern` contain glob metacharacters?
pub fn is_glob(pattern: &str) -> bool {
    pattern.contains('*') || pattern.contains('?')
}

/// Levenshtein edit distance, used to rank "did you mean" candidates.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ac) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &bc) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ac != bc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Up to three symbol names nearest to `name` by edit distance, best first.
/// Ties break alphabetically so diagnostics are deterministic.
fn nearest_candidates(symbols: &[Symbol], name: &str) -> Vec<String> {
    let mut ranked: Vec<(usize, &str)> = symbols
        .iter()
        .map(|s| (edit_distance(name, &s.name), s.name.as_str()))
        .collect();
    ranked.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(b.1)));
    ranked.into_iter().take(3).map(|(_, n)| n.to_string()).collect()
}

/// Resolve `pattern` (an exact name or a glob) against `symbols`,
/// returning every match in address order.
///
/// # Errors
///
/// [`SymbolError::Stripped`] when `symbols` is empty, and
/// [`SymbolError::NotFound`] — naming the nearest candidates — when
/// nothing matches.
pub fn resolve<'a>(symbols: &'a [Symbol], pattern: &str) -> Result<Vec<&'a Symbol>, SymbolError> {
    if symbols.is_empty() {
        return Err(SymbolError::Stripped);
    }
    let matches: Vec<&Symbol> = if is_glob(pattern) {
        symbols.iter().filter(|s| glob_match(pattern, &s.name)).collect()
    } else {
        symbols.iter().filter(|s| s.name == pattern).collect()
    };
    if matches.is_empty() {
        return Err(SymbolError::NotFound {
            name: pattern.to_string(),
            nearest: nearest_candidates(symbols, pattern),
        });
    }
    Ok(matches)
}

/// The section type used when emitting via [`crate::build::ElfBuilder`]
/// notes (we reuse the non-alloc note channel, typed as PROGBITS like a
/// real `.symtab`'s payload for our simplified consumers).
pub const SECTION_TYPE: u32 = SHT_PROGBITS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ElfBuilder;

    #[test]
    fn roundtrip_through_binary() {
        let syms = vec![
            Symbol {
                name: "main".into(),
                value: 0x401000,
                size: 0x40,
            },
            Symbol {
                name: "helper".into(),
                value: 0x401040,
                size: 0x20,
            },
        ];
        let (symtab, strtab) = encode(&syms);
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.entry(0x401000);
        b.note(".symtab", symtab);
        b.note(".strtab", strtab);
        let elf = Elf::parse(&b.build()).unwrap();
        assert_eq!(parse(&elf), syms);
    }

    #[test]
    fn stripped_binary_has_no_symbols() {
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.entry(0x401000);
        let elf = Elf::parse(&b.build()).unwrap();
        assert!(parse(&elf).is_empty());
    }

    #[test]
    fn dynsym_fallback_when_symtab_stripped() {
        let syms = vec![Symbol {
            name: "exported".into(),
            value: 0x401000,
            size: 0x10,
        }];
        let (symtab, strtab) = encode(&syms);
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.entry(0x401000);
        b.note(".dynsym", symtab);
        b.note(".dynstr", strtab);
        let elf = Elf::parse(&b.build()).unwrap();
        assert_eq!(parse(&elf), syms);
    }

    #[test]
    fn symtab_preferred_over_dynsym() {
        let stat = vec![Symbol { name: "s".into(), value: 0x401000, size: 0 }];
        let dynv = vec![Symbol { name: "d".into(), value: 0x401000, size: 0 }];
        let (st, ss) = encode(&stat);
        let (dt, ds) = encode(&dynv);
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.entry(0x401000);
        b.note(".symtab", st);
        b.note(".strtab", ss);
        b.note(".dynsym", dt);
        b.note(".dynstr", ds);
        let parsed = parse(&Elf::parse(&b.build()).unwrap());
        assert_eq!(parsed[0].name, "s");
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("malloc*", "malloc_usable_size"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("f????", "f0000"));
        assert!(glob_match("*lo*", "hello_world"));
        assert!(!glob_match("f???", "f0000"));
        assert!(!glob_match("malloc*", "calloc"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
        // Untrusted-input safety: long names, many stars, no blowup.
        let long = "a".repeat(100_000);
        assert!(glob_match("*a*a*a*a*b*", &(long.clone() + "b")));
        assert!(!glob_match("*a*a*a*a*b", &long));
    }

    #[test]
    fn resolve_exact_glob_and_errors() {
        let syms = vec![
            Symbol { name: "main".into(), value: 0x401000, size: 0 },
            Symbol { name: "f0000".into(), value: 0x401100, size: 0 },
            Symbol { name: "f0001".into(), value: 0x401200, size: 0 },
        ];
        assert_eq!(resolve(&syms, "main").unwrap()[0].value, 0x401000);
        let globbed = resolve(&syms, "f*").unwrap();
        assert_eq!(globbed.len(), 2);
        // Miss names the nearest candidates, best first.
        let err = resolve(&syms, "f0002").unwrap_err();
        match &err {
            SymbolError::NotFound { name, nearest } => {
                assert_eq!(name, "f0002");
                assert_eq!(nearest[0], "f0000"); // distance 1, alphabetical tie-break
                assert!(nearest.contains(&"f0001".to_string()));
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(err.to_string().contains("nearest candidates: f0000"));
        // Glob with no match is NotFound too, not Stripped.
        assert!(matches!(resolve(&syms, "g*"), Err(SymbolError::NotFound { .. })));
        // Empty table is the stripped case.
        assert_eq!(resolve(&[], "main"), Err(SymbolError::Stripped));
    }

    #[test]
    fn symbols_sorted_by_address() {
        let syms = vec![
            Symbol {
                name: "z".into(),
                value: 0x402000,
                size: 0,
            },
            Symbol {
                name: "a".into(),
                value: 0x401000,
                size: 0,
            },
        ];
        let (symtab, strtab) = encode(&syms);
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.entry(0x401000);
        b.note(".symtab", symtab);
        b.note(".strtab", strtab);
        let parsed = parse(&Elf::parse(&b.build()).unwrap());
        assert_eq!(parsed[0].name, "a");
        assert_eq!(parsed[1].name, "z");
    }
}
