//! ELF symbol tables (`.symtab` / `.strtab`).
//!
//! E9Patch works on *stripped* binaries, but when symbols exist a frontend
//! can exploit them (better disassembly roots, human-readable reports).
//! The builder can emit function symbols; the parser recovers them.

use crate::image::Elf;
use crate::types::SHT_PROGBITS;

/// `st_info` for a global function symbol (`STB_GLOBAL << 4 | STT_FUNC`).
pub const GLOBAL_FUNC: u8 = 0x12;

/// Size of one ELF64 symbol record.
pub const SYM_SIZE: usize = 24;

/// A (simplified) function symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Value (function address).
    pub value: u64,
    /// Size in bytes (0 if unknown).
    pub size: u64,
}

/// Serialize symbols into (`.symtab` bytes, `.strtab` bytes).
pub fn encode(symbols: &[Symbol]) -> (Vec<u8>, Vec<u8>) {
    let mut strtab = vec![0u8];
    let mut symtab = vec![0u8; SYM_SIZE]; // index 0: undefined symbol
    for s in symbols {
        let name_off = strtab.len() as u32;
        strtab.extend_from_slice(s.name.as_bytes());
        strtab.push(0);
        let mut rec = [0u8; SYM_SIZE];
        rec[0..4].copy_from_slice(&name_off.to_le_bytes());
        rec[4] = GLOBAL_FUNC;
        // st_shndx: leave 0 (our consumers key off value, not section).
        rec[8..16].copy_from_slice(&s.value.to_le_bytes());
        rec[16..24].copy_from_slice(&s.size.to_le_bytes());
        symtab.extend_from_slice(&rec);
    }
    (symtab, strtab)
}

/// Parse function symbols out of a binary's `.symtab`/`.strtab` sections.
/// Returns an empty vec for stripped binaries.
pub fn parse(elf: &Elf) -> Vec<Symbol> {
    let (Some(symtab), Some(strtab)) =
        (elf.section_bytes(".symtab"), elf.section_bytes(".strtab"))
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for rec in symtab.chunks_exact(SYM_SIZE).skip(1) {
        let name_off = u32::from_le_bytes(rec[0..4].try_into().unwrap()) as usize;
        let info = rec[4];
        if info & 0xF != 2 {
            continue; // not STT_FUNC
        }
        let value = u64::from_le_bytes(rec[8..16].try_into().unwrap());
        let size = u64::from_le_bytes(rec[16..24].try_into().unwrap());
        let name = strtab
            .get(name_off..)
            .and_then(|s| s.split(|&b| b == 0).next())
            .map(|s| String::from_utf8_lossy(s).into_owned())
            .unwrap_or_default();
        out.push(Symbol { name, value, size });
    }
    out.sort_by_key(|s| s.value);
    out
}

/// The section type used when emitting via [`crate::build::ElfBuilder`]
/// notes (we reuse the non-alloc note channel, typed as PROGBITS like a
/// real `.symtab`'s payload for our simplified consumers).
pub const SECTION_TYPE: u32 = SHT_PROGBITS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ElfBuilder;

    #[test]
    fn roundtrip_through_binary() {
        let syms = vec![
            Symbol {
                name: "main".into(),
                value: 0x401000,
                size: 0x40,
            },
            Symbol {
                name: "helper".into(),
                value: 0x401040,
                size: 0x20,
            },
        ];
        let (symtab, strtab) = encode(&syms);
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.entry(0x401000);
        b.note(".symtab", symtab);
        b.note(".strtab", strtab);
        let elf = Elf::parse(&b.build()).unwrap();
        assert_eq!(parse(&elf), syms);
    }

    #[test]
    fn stripped_binary_has_no_symbols() {
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.entry(0x401000);
        let elf = Elf::parse(&b.build()).unwrap();
        assert!(parse(&elf).is_empty());
    }

    #[test]
    fn symbols_sorted_by_address() {
        let syms = vec![
            Symbol {
                name: "z".into(),
                value: 0x402000,
                size: 0,
            },
            Symbol {
                name: "a".into(),
                value: 0x401000,
                size: 0,
            },
        ];
        let (symtab, strtab) = encode(&syms);
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0xC3], 0x401000);
        b.entry(0x401000);
        b.note(".symtab", symtab);
        b.note(".strtab", strtab);
        let parsed = parse(&Elf::parse(&b.build()).unwrap());
        assert_eq!(parsed[0].name, "a");
        assert_eq!(parsed[1].name, "z");
    }
}
