//! Parsed ELF image with virtual-address ⇄ file-offset translation and
//! in-place byte patching.

use crate::types::*;
use std::fmt;

/// Errors from [`Elf::parse`] and image accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// The file is not a 64-bit little-endian x86-64 ELF.
    BadMagic,
    /// A header or table lies outside the file.
    Truncated(&'static str),
    /// A virtual address is not mapped by any file-backed segment.
    Unmapped(u64),
    /// Unsupported object type (only `ET_EXEC`/`ET_DYN` are handled).
    BadType(u16),
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::BadMagic => write!(f, "not a 64-bit little-endian x86-64 ELF"),
            ElfError::Truncated(what) => write!(f, "truncated ELF: {what} out of bounds"),
            ElfError::Unmapped(a) => write!(f, "virtual address {a:#x} is not file-backed"),
            ElfError::BadType(t) => write!(f, "unsupported ELF type {t}"),
        }
    }
}

impl std::error::Error for ElfError {}

/// A parsed ELF binary: raw file bytes plus decoded headers.
///
/// All patching is performed on the retained byte image; existing data is
/// never moved (the paper's in-place rewriting discipline, §5.1).
#[derive(Debug, Clone)]
pub struct Elf {
    /// Decoded file header.
    pub ehdr: Ehdr,
    /// Program headers in file order.
    pub phdrs: Vec<Phdr>,
    /// Section headers with resolved names (may be empty for fully
    /// stripped binaries).
    pub sections: Vec<Section>,
    data: Vec<u8>,
}

impl Elf {
    /// Parse an ELF64 binary.
    ///
    /// # Errors
    ///
    /// Fails on bad magic/class/machine or truncated header tables. Section
    /// headers are optional (stripped binaries parse fine). Every read is
    /// bounds-checked: arbitrary input yields a typed [`ElfError`], never a
    /// panic (the hostile-input corpus and `e9faultgen` enforce this).
    pub fn parse(bytes: &[u8]) -> Result<Elf, ElfError> {
        if bytes.len() < 6
            || bytes[0..4] != ELF_MAGIC
            || bytes[4] != ELFCLASS64
            || bytes[5] != ELFDATA2LSB
        {
            return Err(ElfError::BadMagic);
        }
        if bytes.len() < EHDR_SIZE {
            // Right magic, but the file header itself is cut short.
            return Err(ElfError::Truncated("file header"));
        }
        let u16le = |o: usize| -> Result<u16, ElfError> {
            bytes
                .get(o..o + 2)
                .and_then(|b| b.try_into().ok())
                .map(u16::from_le_bytes)
                .ok_or(ElfError::Truncated("file header"))
        };
        let u64le = |o: usize| -> Result<u64, ElfError> {
            bytes
                .get(o..o + 8)
                .and_then(|b| b.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or(ElfError::Truncated("file header"))
        };
        let e_type = u16le(16)?;
        if e_type != ET_EXEC && e_type != ET_DYN {
            return Err(ElfError::BadType(e_type));
        }
        let machine = u16le(18)?;
        if machine != EM_X86_64 {
            return Err(ElfError::BadMagic);
        }
        let ehdr = Ehdr {
            e_type,
            e_entry: u64le(24)?,
            e_phoff: u64le(32)?,
            e_shoff: u64le(40)?,
            e_phnum: u16le(56)?,
            e_shnum: u16le(60)?,
            e_shstrndx: u16le(62)?,
        };
        // Program headers. All table arithmetic is checked: a crafted
        // e_phoff/e_phnum must not be able to wrap and alias the header.
        let table_end = |off: u64, count: u16, entry: usize| -> Option<usize> {
            let off = usize::try_from(off).ok()?;
            (count as usize)
                .checked_mul(entry)
                .and_then(|len| off.checked_add(len))
                .filter(|&end| end <= bytes.len())
                .map(|_| off)
        };
        let phoff = table_end(ehdr.e_phoff, ehdr.e_phnum, PHDR_SIZE)
            .ok_or(ElfError::Truncated("program header table"))?;
        let phdrs: Vec<Phdr> = (0..ehdr.e_phnum as usize)
            .map(|i| {
                Phdr::try_from_bytes(&bytes[phoff + i * PHDR_SIZE..phoff + (i + 1) * PHDR_SIZE])
                    .ok_or(ElfError::Truncated("program header"))
            })
            .collect::<Result<_, _>>()?;
        // Section headers (optional).
        let mut sections = Vec::new();
        if ehdr.e_shnum > 0 && ehdr.e_shoff != 0 {
            let shoff = table_end(ehdr.e_shoff, ehdr.e_shnum, SHDR_SIZE)
                .ok_or(ElfError::Truncated("section header table"))?;
            let shdr_at = |i: usize| -> (u32, u32, u64, u64, u64, u64) {
                // In bounds by the table_end check above.
                let b = &bytes[shoff + i * SHDR_SIZE..];
                let name_off = u32::from_le_bytes(b[0..4].try_into().unwrap());
                let sh_type = u32::from_le_bytes(b[4..8].try_into().unwrap());
                let sh_flags = u64::from_le_bytes(b[8..16].try_into().unwrap());
                let sh_addr = u64::from_le_bytes(b[16..24].try_into().unwrap());
                let sh_offset = u64::from_le_bytes(b[24..32].try_into().unwrap());
                let sh_size = u64::from_le_bytes(b[32..40].try_into().unwrap());
                (name_off, sh_type, sh_addr, sh_offset, sh_size, sh_flags)
            };
            // Resolve names through .shstrtab; a bogus or out-of-file
            // shstrndx degrades to empty names rather than failing.
            let strtab: &[u8] = if (ehdr.e_shstrndx as usize) < ehdr.e_shnum as usize {
                let (_, _, _, off, size, _) = shdr_at(ehdr.e_shstrndx as usize);
                usize::try_from(off)
                    .ok()
                    .zip(usize::try_from(size).ok())
                    .and_then(|(off, size)| bytes.get(off..off.checked_add(size)?))
                    .unwrap_or(&[])
            } else {
                &[]
            };
            for i in 0..ehdr.e_shnum as usize {
                let (name_off, sh_type, sh_addr, sh_offset, sh_size, sh_flags) = shdr_at(i);
                let name = strtab
                    .get(name_off as usize..)
                    .and_then(|s| s.split(|&b| b == 0).next())
                    .map(|s| String::from_utf8_lossy(s).into_owned())
                    .unwrap_or_default();
                sections.push(Section {
                    name,
                    sh_type,
                    sh_flags,
                    sh_addr,
                    sh_offset,
                    sh_size,
                });
            }
        }
        Ok(Elf {
            ehdr,
            phdrs,
            sections,
            data: bytes.to_vec(),
        })
    }

    /// Entry-point virtual address.
    #[inline]
    pub fn entry(&self) -> u64 {
        self.ehdr.e_entry
    }

    /// Is this a position-independent executable / shared object?
    #[inline]
    pub fn is_pie(&self) -> bool {
        self.ehdr.e_type == ET_DYN
    }

    /// The raw file image.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// File size in bytes.
    #[inline]
    pub fn file_size(&self) -> usize {
        self.data.len()
    }

    /// Loadable segments only.
    pub fn load_segments(&self) -> impl Iterator<Item = &Phdr> {
        self.phdrs.iter().filter(|p| p.p_type == PT_LOAD)
    }

    /// Translate a virtual address to its file offset through the
    /// file-backed part of a `PT_LOAD` segment.
    ///
    /// # Errors
    ///
    /// [`ElfError::Unmapped`] if no segment's file-backed range covers
    /// `vaddr`.
    pub fn vaddr_to_offset(&self, vaddr: u64) -> Result<u64, ElfError> {
        for p in self.load_segments() {
            if p.covers_file(vaddr) {
                // A hostile p_offset can sit near u64::MAX; the sum must
                // not wrap into a plausible-looking low offset.
                return p
                    .p_offset
                    .checked_add(vaddr - p.p_vaddr)
                    .ok_or(ElfError::Truncated("segment offset"));
            }
        }
        Err(ElfError::Unmapped(vaddr))
    }

    /// Borrow `len` bytes of file-backed data at virtual address `vaddr`.
    ///
    /// # Errors
    ///
    /// Fails if the range is not fully file-backed within one segment.
    pub fn slice_at(&self, vaddr: u64, len: usize) -> Result<&[u8], ElfError> {
        if len == 0 {
            return Ok(&[]);
        }
        let off = usize::try_from(self.vaddr_to_offset(vaddr)?)
            .map_err(|_| ElfError::Truncated("segment data"))?;
        // The whole range must stay within the same segment's file image.
        let last = vaddr
            .checked_add(len as u64 - 1)
            .ok_or(ElfError::Unmapped(vaddr))?;
        self.vaddr_to_offset(last)?;
        self.data
            .get(off..off.checked_add(len).ok_or(ElfError::Truncated("segment data"))?)
            .ok_or(ElfError::Truncated("segment data"))
    }

    /// Overwrite file-backed bytes at `vaddr` in place.
    ///
    /// # Errors
    ///
    /// Fails if the range is not fully file-backed.
    pub fn write_at(&mut self, vaddr: u64, bytes: &[u8]) -> Result<(), ElfError> {
        if bytes.is_empty() {
            return Ok(());
        }
        let off = usize::try_from(self.vaddr_to_offset(vaddr)?)
            .map_err(|_| ElfError::Truncated("segment data"))?;
        let last = vaddr
            .checked_add(bytes.len() as u64 - 1)
            .ok_or(ElfError::Unmapped(vaddr))?;
        self.vaddr_to_offset(last)?;
        self.data
            .get_mut(off..off + bytes.len())
            .ok_or(ElfError::Truncated("segment data"))?
            .copy_from_slice(bytes);
        Ok(())
    }

    /// Look up a section by name (e.g. `.text`).
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// The bytes of a named section (file-backed sections only).
    pub fn section_bytes(&self, name: &str) -> Option<&[u8]> {
        let s = self.section(name)?;
        if s.sh_type == SHT_NOBITS {
            return None;
        }
        let off = usize::try_from(s.sh_offset).ok()?;
        let size = usize::try_from(s.sh_size).ok()?;
        self.data.get(off..off.checked_add(size)?)
    }

    /// Lowest and highest+1 virtual addresses of any loadable segment
    /// (memory image extent).
    pub fn vaddr_extent(&self) -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = 0;
        for p in self.load_segments() {
            lo = lo.min(p.p_vaddr);
            hi = hi.max(p.p_vaddr.saturating_add(p.p_memsz));
        }
        if lo == u64::MAX {
            (0, 0)
        } else {
            (lo, hi)
        }
    }

    /// Consume the image, returning the (possibly patched) file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ElfBuilder;

    fn sample() -> Vec<u8> {
        let mut b = ElfBuilder::exec(0x400000);
        b.text(vec![0x90, 0x90, 0xC3], 0x401000);
        b.rodata(vec![1, 2, 3, 4], 0x402000);
        b.data(vec![9, 9], 0x403000);
        b.bss(0x1000, 0x404000);
        b.entry(0x401000);
        b.build()
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(Elf::parse(&[0u8; 16]), Err(ElfError::BadMagic)));
        assert!(matches!(Elf::parse(&[0x7F, b'E', b'L', b'F']), Err(ElfError::BadMagic)));
    }

    #[test]
    fn parse_roundtrip() {
        let bytes = sample();
        let elf = Elf::parse(&bytes).unwrap();
        assert_eq!(elf.entry(), 0x401000);
        assert!(!elf.is_pie());
        assert_eq!(elf.slice_at(0x401000, 3).unwrap(), &[0x90, 0x90, 0xC3]);
        assert_eq!(elf.slice_at(0x402000, 4).unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn section_lookup() {
        let bytes = sample();
        let elf = Elf::parse(&bytes).unwrap();
        let text = elf.section(".text").expect(".text present");
        assert_eq!(text.sh_addr, 0x401000);
        assert_eq!(elf.section_bytes(".text").unwrap(), &[0x90, 0x90, 0xC3]);
        assert!(elf.section(".bss").is_some());
        assert!(elf.section_bytes(".bss").is_none());
    }

    #[test]
    fn unmapped_address_errors() {
        let bytes = sample();
        let elf = Elf::parse(&bytes).unwrap();
        assert!(matches!(elf.slice_at(0x500000, 1), Err(ElfError::Unmapped(_))));
        // bss is memory-mapped but not file-backed.
        assert!(matches!(elf.slice_at(0x404000, 1), Err(ElfError::Unmapped(_))));
    }

    #[test]
    fn in_place_patch() {
        let bytes = sample();
        let mut elf = Elf::parse(&bytes).unwrap();
        elf.write_at(0x401000, &[0xCC]).unwrap();
        assert_eq!(elf.slice_at(0x401000, 3).unwrap(), &[0xCC, 0x90, 0xC3]);
        // File size unchanged: strictly in place.
        assert_eq!(elf.file_size(), bytes.len());
    }

    #[test]
    fn extent_covers_bss() {
        let bytes = sample();
        let elf = Elf::parse(&bytes).unwrap();
        let (lo, hi) = elf.vaddr_extent();
        assert!(lo <= 0x400000);
        assert!(hi >= 0x404000 + 0x1000);
    }
}
