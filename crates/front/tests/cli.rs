//! End-to-end tests of the `e9tool` command-line interface.

use std::path::PathBuf;
use std::process::Command;

fn e9tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_e9tool"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("e9tool-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_info_disasm_patch_run_pipeline() {
    let dir = tmpdir("pipeline");
    let elf = dir.join("demo.elf");
    let patched = dir.join("demo.e9");

    // gen
    let out = e9tool()
        .args(["gen", "--tiny", "cli-pipeline", "-o"])
        .arg(&elf)
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {:?}", out);
    assert!(elf.exists());

    // info
    let out = e9tool().arg("info").arg(&elf).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ET_EXEC"));
    assert!(text.contains("entry: 0x401000"));

    // disasm
    let out = e9tool()
        .arg("disasm")
        .arg(&elf)
        .args(["--limit", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let listing = String::from_utf8_lossy(&out.stdout);
    assert!(listing.contains("mov"), "listing: {listing}");

    // run original
    let out = e9tool()
        .arg("run")
        .arg(&elf)
        .arg("--hex-output")
        .output()
        .unwrap();
    assert!(out.status.success());
    let orig_out = String::from_utf8_lossy(&out.stdout).to_string();

    // patch
    let out = e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(&patched)
        .args(["--app", "a1", "--report"])
        .output()
        .unwrap();
    assert!(out.status.success(), "patch failed: {:?}", out);
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("patched"));
    assert!(report.contains("site report"));
    assert!(report.contains("failed 0"), "report: {report}");

    // run patched — identical output.
    let out = e9tool()
        .arg("run")
        .arg(&patched)
        .arg("--hex-output")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), orig_out);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn patch_with_lowfat_payload() {
    let dir = tmpdir("lowfat");
    let elf = dir.join("demo.elf");
    let patched = dir.join("demo.lf");
    assert!(e9tool()
        .args(["gen", "--tiny", "cli-lowfat", "-o"])
        .arg(&elf)
        .status()
        .unwrap()
        .success());
    assert!(e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(&patched)
        .args(["--app", "a2", "--payload", "lowfat"])
        .status()
        .unwrap()
        .success());
    // Run with the low-fat heap.
    let out = e9tool()
        .arg("run")
        .arg(&patched)
        .args(["--lowfat", "--hex-output"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_on_bad_invocations() {
    let out = e9tool().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = e9tool().arg("bogus-subcommand").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = e9tool().args(["gen", "--tiny", "x"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1)); // missing -o
    let out = e9tool().args(["info", "/nonexistent/file"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn profile_rows_are_generatable() {
    let dir = tmpdir("profiles");
    let elf = dir.join("mcf.elf");
    let out = e9tool()
        .args(["gen", "--profile", "mcf", "--scale", "200", "-o"])
        .arg(&elf)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = e9tool()
        .args(["gen", "--profile", "does-not-exist", "-o"])
        .arg(dir.join("x.elf"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn patch_verify_flag() {
    let dir = tmpdir("verify");
    let elf = dir.join("demo.elf");
    let patched = dir.join("demo.e9");
    assert!(e9tool()
        .args(["gen", "--tiny", "cli-verify", "-o"])
        .arg(&elf)
        .status()
        .unwrap()
        .success());
    let out = e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(&patched)
        .args(["--app", "a1", "--verify"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("verify: OK"));
    std::fs::remove_dir_all(&dir).ok();
}
