//! End-to-end tests of the `e9tool` command-line interface.

use std::path::PathBuf;
use std::process::Command;

fn e9tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_e9tool"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("e9tool-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_info_disasm_patch_run_pipeline() {
    let dir = tmpdir("pipeline");
    let elf = dir.join("demo.elf");
    let patched = dir.join("demo.e9");

    // gen
    let out = e9tool()
        .args(["gen", "--tiny", "cli-pipeline", "-o"])
        .arg(&elf)
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {:?}", out);
    assert!(elf.exists());

    // info
    let out = e9tool().arg("info").arg(&elf).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ET_EXEC"));
    assert!(text.contains("entry: 0x401000"));

    // disasm
    let out = e9tool()
        .arg("disasm")
        .arg(&elf)
        .args(["--limit", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let listing = String::from_utf8_lossy(&out.stdout);
    assert!(listing.contains("mov"), "listing: {listing}");

    // run original
    let out = e9tool()
        .arg("run")
        .arg(&elf)
        .arg("--hex-output")
        .output()
        .unwrap();
    assert!(out.status.success());
    let orig_out = String::from_utf8_lossy(&out.stdout).to_string();

    // patch
    let out = e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(&patched)
        .args(["--app", "a1", "--report"])
        .output()
        .unwrap();
    assert!(out.status.success(), "patch failed: {:?}", out);
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("patched"));
    assert!(report.contains("site report"));
    assert!(report.contains("failed 0"), "report: {report}");

    // run patched — identical output.
    let out = e9tool()
        .arg("run")
        .arg(&patched)
        .arg("--hex-output")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), orig_out);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn patch_with_lowfat_payload() {
    let dir = tmpdir("lowfat");
    let elf = dir.join("demo.elf");
    let patched = dir.join("demo.lf");
    assert!(e9tool()
        .args(["gen", "--tiny", "cli-lowfat", "-o"])
        .arg(&elf)
        .status()
        .unwrap()
        .success());
    assert!(e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(&patched)
        .args(["--app", "a2", "--payload", "lowfat"])
        .status()
        .unwrap()
        .success());
    // Run with the low-fat heap.
    let out = e9tool()
        .arg("run")
        .arg(&patched)
        .args(["--lowfat", "--hex-output"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_on_bad_invocations() {
    let out = e9tool().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = e9tool().arg("bogus-subcommand").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = e9tool().args(["gen", "--tiny", "x"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1)); // missing -o
    let out = e9tool().args(["info", "/nonexistent/file"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn unknown_flags_are_rejected() {
    // A typo'd flag must fail loudly before any work happens, on every
    // subcommand.
    let out = e9tool()
        .args(["patch", "in.elf", "-o", "out.e9", "--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --frobnicate"), "stderr: {err}");

    let out = e9tool()
        .args(["run", "in.elf", "--max-step", "5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --max-step"), "stderr: {err}");

    let out = e9tool()
        .args(["gen", "--tiny", "x", "--pei", "-o", "x.elf"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --pei"), "stderr: {err}");
}

#[cfg(unix)]
#[test]
fn patch_backend_socket_matches_in_process() {
    let dir = tmpdir("backend");
    let elf = dir.join("demo.elf");
    let direct = dir.join("direct.e9");
    let via = dir.join("via.e9");
    let sock = dir.join("e9.sock");

    assert!(e9tool()
        .args(["gen", "--tiny", "cli-backend", "-o"])
        .arg(&elf)
        .env("E9_SEED", "42")
        .status()
        .unwrap()
        .success());

    // In-process reference output.
    assert!(e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(&direct)
        .args(["--app", "a1", "--payload", "counter"])
        .status()
        .unwrap()
        .success());

    // An in-thread daemon serving exactly one connection.
    let server_sock = sock.clone();
    let server = std::thread::spawn(move || {
        e9proto::server::unix::serve_unix(&server_sock, Some(1)).unwrap();
    });
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(sock.exists(), "daemon socket never appeared");

    let out = e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(&via)
        .args(["--app", "a1", "--payload", "counter", "--backend"])
        .arg(&sock)
        .output()
        .unwrap();
    assert!(out.status.success(), "backend patch failed: {out:?}");
    server.join().unwrap();

    // The protocol round trip changes nothing: byte-identical outputs.
    let a = std::fs::read(&direct).unwrap();
    let b = std::fs::read(&via).unwrap();
    assert_eq!(a, b, "backend output diverged from in-process output");

    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(target_os = "linux")]
#[test]
fn patch_backend_tcp_matches_in_process() {
    let dir = tmpdir("backend-tcp");
    let elf = dir.join("demo.elf");
    let direct = dir.join("direct.e9");
    let via = dir.join("via.e9");

    assert!(e9tool()
        .args(["gen", "--tiny", "cli-backend-tcp", "-o"])
        .arg(&elf)
        .env("E9_SEED", "43")
        .status()
        .unwrap()
        .success());

    // In-process reference output.
    assert!(e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(&direct)
        .args(["--app", "a1", "--payload", "counter"])
        .status()
        .unwrap()
        .success());

    // An in-thread reactor daemon on an ephemeral TCP port, draining
    // after one connection.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let opts = e9proto::reactor::ReactorOptions {
            accept_budget: Some(1),
            ..e9proto::reactor::ReactorOptions::default()
        };
        e9proto::reactor::serve_reactor(
            vec![e9proto::reactor::Listener::Tcp(listener)],
            &e9proto::server::ServeConfig::default(),
            &opts,
        )
        .unwrap();
    });

    let out = e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(&via)
        .args(["--app", "a1", "--payload", "counter", "--backend"])
        .arg(format!("tcp:{addr}"))
        .output()
        .unwrap();
    assert!(out.status.success(), "tcp backend patch failed: {out:?}");
    server.join().unwrap();

    let a = std::fs::read(&direct).unwrap();
    let b = std::fs::read(&via).unwrap();
    assert_eq!(a, b, "tcp backend output diverged from in-process output");

    std::fs::remove_dir_all(&dir).ok();
}

/// A malformed `--backend tcp:` spec is a named diagnostic and exit 1 —
/// no connect attempt, no partial output.
#[test]
fn malformed_tcp_backend_exits_one_with_diagnostic() {
    let dir = tmpdir("backend-tcp-bad");
    let elf = dir.join("demo.elf");
    assert!(e9tool()
        .args(["gen", "--tiny", "cli-bad-tcp", "-o"])
        .arg(&elf)
        .status()
        .unwrap()
        .success());

    let out = e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(dir.join("never.e9"))
        .args(["--app", "a1", "--backend", "tcp:no-port-here"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--backend tcp:"), "stderr: {err}");
    assert!(err.contains("ADDR:PORT"), "stderr: {err}");
    assert!(!dir.join("never.e9").exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_rows_are_generatable() {
    let dir = tmpdir("profiles");
    let elf = dir.join("mcf.elf");
    let out = e9tool()
        .args(["gen", "--profile", "mcf", "--scale", "200", "-o"])
        .arg(&elf)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = e9tool()
        .args(["gen", "--profile", "does-not-exist", "-o"])
        .arg(dir.join("x.elf"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn patch_verify_flag() {
    let dir = tmpdir("verify");
    let elf = dir.join("demo.elf");
    let patched = dir.join("demo.e9");
    assert!(e9tool()
        .args(["gen", "--tiny", "cli-verify", "-o"])
        .arg(&elf)
        .status()
        .unwrap()
        .success());
    let out = e9tool()
        .arg("patch")
        .arg(&elf)
        .arg("-o")
        .arg(&patched)
        .args(["--app", "a1", "--verify"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("verify: OK"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Run a subcommand against `input`, expecting exit code 1 and a stderr
/// diagnostic containing every fragment in `expect`.
fn assert_diagnostic(cmd_args: &[&str], input: &std::path::Path, expect: &[&str]) {
    let mut cmd = e9tool();
    cmd.arg(cmd_args[0]).arg(input);
    for a in &cmd_args[1..] {
        cmd.arg(a);
    }
    let out = cmd.output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "{cmd_args:?} on {} should exit 1: {out:?}",
        input.display()
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    for frag in expect {
        assert!(
            stderr.contains(frag),
            "{cmd_args:?} diagnostic missing {frag:?}: {stderr}"
        );
    }
}

#[test]
fn directory_input_gets_a_clear_diagnostic() {
    let dir = tmpdir("dir-input");
    for args in [
        &["info"][..],
        &["disasm"],
        &["run"],
        &["patch", "-o", "/tmp/never-written.e9"],
    ] {
        assert_diagnostic(args, &dir, &["is a directory", "not an ELF binary"]);
    }
    assert!(!std::path::Path::new("/tmp/never-written.e9").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_input_gets_a_clear_diagnostic() {
    let dir = tmpdir("empty-input");
    let empty = dir.join("empty.bin");
    std::fs::write(&empty, b"").unwrap();
    for args in [
        &["info"][..],
        &["disasm"],
        &["run"],
        &["patch", "-o", "/tmp/never-written.e9"],
    ] {
        assert_diagnostic(args, &empty, &["is empty"]);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn non_elf_input_gets_a_clear_diagnostic() {
    let dir = tmpdir("non-elf-input");
    let text = dir.join("notes.txt");
    std::fs::write(&text, b"just some text, definitely not an executable\n").unwrap();
    for args in [
        &["info"][..],
        &["disasm"],
        &["patch", "-o", "/tmp/never-written.e9"],
    ] {
        assert_diagnostic(args, &text, &["notes.txt", "not a valid ELF binary"]);
    }
    // `run` goes through the loader; the message differs but the contract
    // (exit 1, named file, no panic) is the same.
    assert_diagnostic(&["run"], &text, &["notes.txt"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_patch_preserves_preexisting_output() {
    // Crash-safety contract at the CLI level: when the rewrite fails, an
    // output file from an earlier run must survive untouched.
    let dir = tmpdir("preserve-output");
    let bad = dir.join("bad.bin");
    std::fs::write(&bad, b"not an elf").unwrap();
    let out_path = dir.join("out.e9");
    std::fs::write(&out_path, b"precious previous output").unwrap();
    let out = e9tool()
        .arg("patch")
        .arg(&bad)
        .arg("-o")
        .arg(&out_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        std::fs::read(&out_path).unwrap(),
        b"precious previous output"
    );
    // And no staging droppings either.
    let droppings: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".e9tmp"))
        .collect();
    assert!(droppings.is_empty(), "staging droppings: {droppings:?}");
    std::fs::remove_dir_all(&dir).ok();
}
