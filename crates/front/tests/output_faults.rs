//! `write_atomic` under injected I/O faults: EINTR and partial writes
//! are absorbed transparently, hard faults surface as typed errors that
//! leave the destination untouched and no staging droppings behind.
//!
//! Failpoint activation is process-global, so every test holds the
//! `activate_scoped` gate (they serialize against each other; no other
//! e9front test binary activates failpoints).

use e9front::output::{stage, write_atomic};
use std::fs;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("e9front-outfault-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn droppings(dir: &PathBuf, keep: &str) -> Vec<std::ffi::OsString> {
    fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .filter(|n| n != keep)
        .collect()
}

#[test]
fn eintr_storms_are_retried_transparently() {
    let d = tmpdir("eintr");
    let out = d.join("a.bin");
    let _fp = e9failpt::activate_scoped("front.output.write=eintr@first:5", 7).unwrap();
    write_atomic(&out, b"interrupted but intact").unwrap();
    assert_eq!(fs::read(&out).unwrap(), b"interrupted but intact");
    assert!(droppings(&d, "a.bin").is_empty());
}

#[test]
fn partial_writes_complete_to_the_full_payload() {
    let d = tmpdir("partial");
    let out = d.join("a.bin");
    let payload: Vec<u8> = (0..=255u8).cycle().take(64 << 10).collect();
    // Every write is cut short; the resilient loop still lands all bytes.
    let _fp = e9failpt::activate_scoped("front.output.write=partial@always", 7).unwrap();
    write_atomic(&out, &payload).unwrap();
    assert_eq!(fs::read(&out).unwrap(), payload);
    assert!(droppings(&d, "a.bin").is_empty());
}

#[test]
fn enospc_is_typed_and_leaves_previous_contents() {
    let d = tmpdir("enospc");
    let out = d.join("a.bin");
    fs::write(&out, b"previous").unwrap();
    let _fp = e9failpt::activate_scoped("front.output.stage=enospc@once", 7).unwrap();
    let err = write_atomic(&out, b"next").unwrap_err();
    assert_eq!(err.raw_os_error(), Some(28), "expected ENOSPC: {err}");
    assert_eq!(fs::read(&out).unwrap(), b"previous");
    assert!(droppings(&d, "a.bin").is_empty());
    // Fault cleared: the same call now succeeds.
    write_atomic(&out, b"next").unwrap();
    assert_eq!(fs::read(&out).unwrap(), b"next");
}

#[test]
fn commit_rename_failure_keeps_destination_and_cleans_stage() {
    let d = tmpdir("commit");
    let out = d.join("a.bin");
    fs::write(&out, b"previous").unwrap();
    let _fp = e9failpt::activate_scoped("front.output.commit=rename@once", 7).unwrap();
    let err = write_atomic(&out, b"next").unwrap_err();
    assert!(err.raw_os_error().is_some(), "expected an errno-backed error: {err}");
    assert_eq!(fs::read(&out).unwrap(), b"previous");
    assert!(droppings(&d, "a.bin").is_empty());
}

#[test]
fn exhausted_eintr_budget_surfaces_the_error() {
    let d = tmpdir("budget");
    let out = d.join("a.bin");
    // More interrupts than the budget tolerates: the error must surface
    // (typed, destination untouched) rather than loop forever.
    let _fp = e9failpt::activate_scoped("front.output.write=eintr@always", 7).unwrap();
    let err = write_atomic(&out, b"never lands").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
    assert!(!out.exists());
    assert!(droppings(&d, "").is_empty());
}

#[test]
fn stage_commit_split_still_behaves_under_faults() {
    // The crash-window contract holds with injection active but inert
    // (no matching points fire on this path).
    let d = tmpdir("window");
    let out = d.join("a.bin");
    fs::write(&out, b"previous").unwrap();
    let _fp = e9failpt::activate_scoped("cache.disk.read=eio@always", 7).unwrap();
    let tmp = stage(&out, b"next").unwrap();
    assert_eq!(fs::read(&out).unwrap(), b"previous");
    e9front::output::commit(&tmp, &out).unwrap();
    assert_eq!(fs::read(&out).unwrap(), b"next");
}
