//! Site-tracing runtime: an instrumentation hook that records the address
//! of every executed patch site into a ring buffer — the frontend's
//! analogue of the tracing/coverage tools built on E9Patch (e.g.
//! coverage-guided fuzzing, the paper's §1 motivation list).
//!
//! Layout of the data segment:
//!
//! ```text
//! +0   u64 cursor      (total events; ring index = cursor % capacity)
//! +8   u64 capacity
//! +16  u64 ring[capacity]
//! ```

use e9x86::asm::{Asm, Mem};
use e9x86::reg::{Reg, Width};

/// The assembled trace runtime.
#[derive(Debug, Clone)]
pub struct TraceRuntime {
    /// Address of the hook function (`fn(site in %rdi)`).
    pub hook_fn: u64,
    /// Address of the event counter / ring header.
    pub data_addr: u64,
    /// Ring capacity in events.
    pub capacity: u64,
    /// Executable code blob.
    pub code: Vec<u8>,
    /// Data blob (header + zeroed ring).
    pub data: Vec<u8>,
    /// Load address of `code`.
    pub code_vaddr: u64,
    /// Load address of `data`.
    pub data_vaddr: u64,
}

impl TraceRuntime {
    /// Total number of recorded events from a memory dump of the header.
    pub fn event_count(header_cursor: u64) -> u64 {
        header_cursor
    }
}

/// Assemble the trace runtime. `capacity` must be a power of two (the
/// ring index is computed with a mask).
///
/// # Panics
///
/// Panics if `capacity` is not a power of two.
pub fn build(code_vaddr: u64, data_vaddr: u64, capacity: u64) -> TraceRuntime {
    assert!(capacity.is_power_of_two(), "capacity must be a power of two");
    let cursor_addr = data_vaddr;
    let ring_addr = data_vaddr + 16;

    let mut a = Asm::new(code_vaddr);
    // rdi = site address (argument); rax free; preserve rcx/rdx.
    a.push_r(Reg::Rcx);
    a.push_r(Reg::Rdx);
    a.mov_ri64(Reg::Rax, cursor_addr as i64);
    a.mov_rm(Width::Q, Reg::Rcx, Mem::base(Reg::Rax)); // cursor
    a.inc_m(Width::Q, Mem::base(Reg::Rax));
    a.and_ri(Width::Q, Reg::Rcx, (capacity - 1) as i32); // ring index
    a.mov_ri64(Reg::Rdx, ring_addr as i64);
    a.mov_mr(Width::Q, Mem::base_index(Reg::Rdx, Reg::Rcx, 8, 0), Reg::Rdi);
    a.pop_r(Reg::Rdx);
    a.pop_r(Reg::Rcx);
    a.ret();
    let code = a.finish().expect("trace runtime assembly");

    let mut data = Vec::with_capacity(16 + capacity as usize * 8);
    data.extend_from_slice(&0u64.to_le_bytes()); // cursor
    data.extend_from_slice(&capacity.to_le_bytes());
    data.resize(16 + capacity as usize * 8, 0);

    TraceRuntime {
        hook_fn: code_vaddr,
        data_addr: data_vaddr,
        capacity,
        code,
        data,
        code_vaddr,
        data_vaddr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_decodes_cleanly() {
        let rt = build(0x10400000, 0x10500000, 64);
        let insns = e9x86::decode::linear_sweep(&rt.code, rt.code_vaddr);
        let total: usize = insns.iter().map(|i| i.len()).sum();
        assert_eq!(total, rt.code.len());
        assert_eq!(rt.data.len(), 16 + 64 * 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        build(0x10400000, 0x10500000, 100);
    }
}
