//! # e9front — disassembly frontend and instrumentation driver
//!
//! E9Patch deliberately has **no built-in disassembler**: instruction
//! locations and sizes are an *input* (paper §2.2), so the rewriter can be
//! paired with any disassembly technique. This crate is the reproduction's
//! counterpart of the paper's "basic wrapper frontend that applies linear
//! disassembly to the `.text` section", plus the two evaluation
//! applications:
//!
//! * **A1** — instrument every `jmp`/`jcc` instruction;
//! * **A2** — instrument every instruction that may write to heap
//!   pointers (excluding `%rsp`-based and `%rip`-relative writes);
//!
//! and the §6.3 hardening payload (low-fat redzone checking).
//!
//! ```no_run
//! use e9front::{instrument, Application, Payload, Options};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let binary: Vec<u8> = vec![];
//! let out = instrument(&binary, &Options::new(Application::A1Jumps, Payload::Empty))?;
//! println!("coverage: {:.2}%", out.rewrite.stats.succ_pct());
//! # Ok(())
//! # }
//! ```

pub mod output;
pub mod recursive;
pub mod trace;

use e9elf::Elf;
use e9patch::{ExtraSegment, PatchRequest, RewriteConfig, RewriteOutput, Rewriter, Template};
use e9x86::decode::linear_sweep;
use e9x86::insn::Insn;

/// Which instruction class to instrument (the paper's evaluation
/// applications).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Application {
    /// All `jmp`/`jcc` jump instructions (§6.1 A1).
    A1Jumps,
    /// All heap-write instructions (§6.1 A2).
    A2HeapWrites,
    /// All call instructions (direct and indirect) — call-graph tracing.
    A3Calls,
    /// Every instruction (the stress case, limitation L3).
    AllInstructions,
}

/// What each trampoline does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// Execute/emulate the displaced instruction only (the paper's "empty"
    /// instrumentation).
    Empty,
    /// Increment a global execution counter.
    Counter,
    /// Increment a *per-site* execution counter (the classic basic-block
    /// counting instrumentation benchmarked by PEBIL/DynInst, §6.1).
    CounterPerSite,
    /// Low-fat redzone check on the written pointer (§6.3; A2 only).
    LowFat,
    /// Record every executed site's address into a ring buffer (tracing /
    /// coverage instrumentation; see [`trace`]).
    Trace,
}

/// Instrumentation options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Site selector.
    pub app: Application,
    /// Trampoline payload.
    pub payload: Payload,
    /// Rewriter configuration (tactics, grouping, B0 fallback).
    pub config: RewriteConfig,
}

impl Options {
    /// Options with the default rewriter configuration.
    pub fn new(app: Application, payload: Payload) -> Options {
        Options {
            app,
            payload,
            config: RewriteConfig::default(),
        }
    }
}

/// Result of [`instrument`].
#[derive(Debug)]
pub struct Instrumented {
    /// Rewriting output (patched binary + statistics).
    pub rewrite: RewriteOutput,
    /// Number of patch sites selected.
    pub sites: usize,
    /// Address of the low-fat violation counter, when
    /// [`Payload::LowFat`] was used.
    pub violations_addr: Option<u64>,
    /// Address of the execution counter, when [`Payload::Counter`] was
    /// used.
    pub counter_addr: Option<u64>,
    /// Trace ring header address, when [`Payload::Trace`] was used.
    pub trace_addr: Option<u64>,
    /// How the rewrite cache participated (`None` = no cache in play).
    pub cache: Option<CacheOutcome>,
}

/// Frontend error.
#[derive(Debug)]
pub enum FrontError {
    /// Input is not a parseable ELF or has no `.text` section.
    Input(String),
    /// Rewriting failed.
    Rewrite(e9patch::Error),
    /// Hook planning failed (symbol resolution, unrelocatable prologue).
    Hook(e9hook::HookError),
    /// The external patch backend failed (protocol, transport, or an
    /// in-band error reply).
    Backend(String),
    /// A cached negative entry: this exact job failed before, and the
    /// original typed error is replayed without re-running the rewriter.
    CachedFailure {
        /// The wire error code of the original failure.
        code: i64,
        /// The original failure message.
        message: String,
    },
}

impl std::fmt::Display for FrontError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontError::Input(m) => write!(f, "bad input: {m}"),
            FrontError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
            FrontError::Hook(e) => write!(f, "hook planning failed: {e}"),
            FrontError::Backend(m) => write!(f, "backend failed: {m}"),
            FrontError::CachedFailure { code, message } => {
                write!(f, "rewrite failed (cached, code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for FrontError {}

impl From<e9patch::Error> for FrontError {
    fn from(e: e9patch::Error) -> Self {
        FrontError::Rewrite(e)
    }
}

impl From<e9proto::ClientError> for FrontError {
    fn from(e: e9proto::ClientError) -> Self {
        FrontError::Backend(e.to_string())
    }
}

impl From<e9hook::HookError> for FrontError {
    fn from(e: e9hook::HookError) -> Self {
        FrontError::Hook(e)
    }
}

/// Linear disassembly of the binary's `.text` section — the paper's
/// prototype frontend.
///
/// # Errors
///
/// Fails if the ELF cannot be parsed or has no `.text` section (fully
/// stripped *section tables* are rare; a production frontend would fall
/// back to `PT_LOAD` executable segments, which
/// [`disassemble_exec_segments`] provides).
pub fn disassemble_text(binary: &[u8]) -> Result<Vec<Insn>, FrontError> {
    let elf = Elf::parse(binary).map_err(|e| FrontError::Input(e.to_string()))?;
    let text = elf
        .section(".text")
        .ok_or_else(|| FrontError::Input("no .text section".into()))?;
    let bytes = elf
        .section_bytes(".text")
        .ok_or_else(|| FrontError::Input(".text has no file contents".into()))?;
    // Honour a `.note.e9code` marker — `n × (vaddr u64, len u64)` code
    // ranges — when present: it bounds the sweep to real code, excluding
    // data-in-text blobs and jump tables. This is the moral equivalent of
    // the paper skipping Chrome's pre-ChromeMain data (§6.2).
    if let Some(note) = elf.section_bytes(".note.e9code") {
        let mut out = Vec::new();
        let mut used_note = false;
        // Note contents are untrusted: a range is honoured only if both its
        // end and the section end compute without wrapping.
        let text_end = text.sh_addr.checked_add(text.sh_size);
        for pair in note.chunks_exact(16) {
            let nv = u64::from_le_bytes(pair[0..8].try_into().unwrap());
            let nl = u64::from_le_bytes(pair[8..16].try_into().unwrap());
            let in_text = nv >= text.sh_addr
                && nv
                    .checked_add(nl)
                    .zip(text_end)
                    .is_some_and(|(end, te)| end <= te);
            if in_text {
                let start = (nv - text.sh_addr) as usize;
                out.extend(linear_sweep(&bytes[start..start + nl as usize], nv));
                used_note = true;
            }
        }
        if used_note {
            return Ok(out);
        }
    }
    Ok(linear_sweep(bytes, text.sh_addr))
}

/// Fallback frontend for section-stripped binaries: linearly disassemble
/// every executable `PT_LOAD` segment.
///
/// # Errors
///
/// Fails only on unparseable ELF input.
pub fn disassemble_exec_segments(binary: &[u8]) -> Result<Vec<Insn>, FrontError> {
    let elf = Elf::parse(binary).map_err(|e| FrontError::Input(e.to_string()))?;
    let mut out = Vec::new();
    for ph in elf.load_segments() {
        if ph.p_flags & e9elf::types::PF_X == 0 {
            continue;
        }
        if let Ok(bytes) = elf.slice_at(ph.p_vaddr, ph.p_filesz as usize) {
            out.extend(linear_sweep(bytes, ph.p_vaddr));
        }
    }
    Ok(out)
}

/// Select patch sites for an application.
pub fn select_sites(disasm: &[Insn], app: Application) -> Vec<u64> {
    disasm
        .iter()
        .filter(|i| match app {
            Application::A1Jumps => i.kind.is_jump(),
            Application::A2HeapWrites => i.is_heap_write(),
            Application::A3Calls => matches!(
                i.kind,
                e9x86::Kind::CallRel32 | e9x86::Kind::CallInd
            ),
            Application::AllInstructions => true,
        })
        .map(|i| i.addr)
        .collect()
}

/// Pick load addresses for the instrumentation runtime, clear of the
/// binary's own image.
fn runtime_vaddrs(elf: &Elf) -> (u64, u64) {
    let (_, hi) = elf.vaddr_extent();
    let code = e9elf::page_ceil(hi) + 0x100_0000;
    let data = code + 0x10_0000;
    (code, data)
}

/// Instrument `binary` according to `opts`: disassemble, select sites,
/// build the payload runtime, and rewrite.
///
/// # Errors
///
/// Propagates frontend and rewriter errors. Per-site patch failures are
/// *not* errors; see [`RewriteOutput::stats`].
pub fn instrument(binary: &[u8], opts: &Options) -> Result<Instrumented, FrontError> {
    let disasm = disassemble_text(binary)?;
    instrument_with_disasm(binary, &disasm, opts)
}

/// The frontend's planning output: everything a rewriting backend needs
/// besides the binary and disassembly themselves.
///
/// [`plan`] is shared by the in-process path ([`instrument_with_disasm`])
/// and the protocol path ([`instrument_via_backend`]); feeding both the
/// same plan is what makes their outputs byte-identical.
#[derive(Debug)]
pub struct Plan {
    /// Selected patch-site addresses, in disassembly order.
    pub sites: Vec<u64>,
    /// One patch request per site.
    pub requests: Vec<PatchRequest>,
    /// Runtime segments the payload needs injected.
    pub extra: Vec<ExtraSegment>,
    /// Low-fat violation counter address, when [`Payload::LowFat`].
    pub violations_addr: Option<u64>,
    /// Execution counter address, when [`Payload::Counter`] /
    /// [`Payload::CounterPerSite`].
    pub counter_addr: Option<u64>,
    /// Trace ring header address, when [`Payload::Trace`].
    pub trace_addr: Option<u64>,
}

/// [`instrument`] with caller-provided disassembly info (e.g. from
/// `e9synth`, which knows its exact code extent).
///
/// # Errors
///
/// As [`instrument`].
pub fn instrument_with_disasm(
    binary: &[u8],
    disasm: &[Insn],
    opts: &Options,
) -> Result<Instrumented, FrontError> {
    let p = plan(binary, disasm, opts)?;
    let rewrite = run_job(&Job {
        binary,
        disasm,
        requests: &p.requests,
        extra: &p.extra,
        config: opts.config,
    })?;
    Ok(Instrumented {
        rewrite,
        sites: p.sites.len(),
        violations_addr: p.violations_addr,
        counter_addr: p.counter_addr,
        trace_addr: p.trace_addr,
        cache: None,
    })
}

/// One fully-planned rewrite job: the batch every execution path —
/// in-process ([`run_job`]), cached ([`run_job_cached`]) and protocol
/// backend ([`run_job_via_backend`]) — consumes identically. Any driver
/// that lowers its work to a `Job` (instrumentation via [`plan`], hooking
/// via [`e9hook::plan_hooks`]) inherits the byte-identity guarantee
/// across all three paths for free.
#[derive(Debug, Clone, Copy)]
pub struct Job<'a> {
    /// The input binary.
    pub binary: &'a [u8],
    /// Disassembly info (instruction locations and sizes).
    pub disasm: &'a [Insn],
    /// The patch batch.
    pub requests: &'a [PatchRequest],
    /// Runtime segments to inject.
    pub extra: &'a [ExtraSegment],
    /// Rewriter configuration.
    pub config: RewriteConfig,
}

/// Execute a job with the in-process [`Rewriter`].
///
/// # Errors
///
/// Rewriting failures. Per-site patch failures are *not* errors; see
/// [`RewriteOutput::stats`].
pub fn run_job(job: &Job) -> Result<RewriteOutput, FrontError> {
    Rewriter::new(job.config)
        .rewrite(job.binary, job.disasm, job.requests, job.extra)
        .map_err(FrontError::Rewrite)
}

/// Execute a job through a rewrite cache. The key is derived exactly as
/// an `e9patchd` session would derive it (same codec, same config
/// encoding), so the in-process path and a daemon with the same
/// `--cache-dir` share artifacts. Corrupt or unreadable entries degrade
/// to a cold rewrite.
///
/// # Errors
///
/// As [`run_job`], plus [`FrontError::CachedFailure`] when a negative
/// entry short-circuits a known-failing job.
pub fn run_job_cached(
    job: &Job,
    cache: &e9cache::Cache,
) -> Result<(RewriteOutput, CacheOutcome), FrontError> {
    if cache.should_bypass(job.binary.len() as u64) {
        // Below the break-even size the rewrite is cheaper than keying
        // it: run cold, report the bypass, store nothing (failures
        // included — a negative entry would pay the keying cost too).
        let rewrite = run_job(job)?;
        return Ok((
            rewrite,
            CacheOutcome {
                disposition: e9proto::CacheDisposition::Bypass,
                digest: None,
            },
        ));
    }
    // Hash the input exactly once (shard-parallel under --jobs; the tree
    // digest is jobs-invariant so the key is too).
    let bin_digest = e9cache::tree::tree_digest(job.binary, job.config.jobs.unwrap_or(1));
    let key = e9proto::cachekey::rewrite_key_from_digest(
        &bin_digest,
        job.disasm,
        job.extra,
        job.requests,
        &job.config,
    );
    let digest = Some(e9cache::sha256::hex(&key));
    match cache.lookup(&key) {
        Some(e9cache::Hit::Payload(blob)) => {
            // Stored payload is the compact binary emit reply of the cold
            // run, served as a zero-copy view; an undecodable one falls
            // through to a cold rewrite.
            if let Ok(reply) = e9proto::EmitReply::decode_bin(&blob) {
                return Ok((
                    output_from_reply(reply),
                    CacheOutcome {
                        disposition: e9proto::CacheDisposition::Hit,
                        digest,
                    },
                ));
            }
        }
        Some(e9cache::Hit::Negative { code, message }) => {
            return Err(FrontError::CachedFailure { code, message });
        }
        None => {}
    }
    match run_job(job) {
        Ok(rewrite) => {
            let stored = reply_from_output(&rewrite).encode_bin();
            cache.put(&key, &e9cache::Entry::Ok(stored));
            Ok((
                rewrite,
                CacheOutcome {
                    disposition: e9proto::CacheDisposition::Miss,
                    digest,
                },
            ))
        }
        Err(FrontError::Rewrite(e)) => {
            // Rewrite failures are deterministic — cache them as negative
            // entries so the next attempt replays the typed error.
            cache.put(
                &key,
                &e9cache::Entry::Negative {
                    code: e9proto::msg::code::REWRITE,
                    message: e.to_string(),
                },
            );
            Err(FrontError::Rewrite(e))
        }
        Err(other) => Err(other),
    }
}

/// Stream a job's shared inputs — protocol handshake, rewriter options,
/// binary (with its pre-computed tree digest) and disassembly info — to a
/// backend. Patch-batch delivery is the caller's: explicit
/// `reserve`/`patch` streaming ([`run_job_via_backend`]) or server-side
/// planning (the `hook` command).
fn send_job_inputs(
    client: &mut e9proto::ProtoClient,
    binary: &[u8],
    disasm: &[Insn],
    cfg: &RewriteConfig,
) -> Result<(), FrontError> {
    client.negotiate()?;
    let bool_str = |b: bool| if b { "true" } else { "false" };
    client.option("t1", bool_str(cfg.tactics.t1))?;
    client.option("t2", bool_str(cfg.tactics.t2))?;
    client.option("t3", bool_str(cfg.tactics.t3))?;
    client.option("b0", bool_str(cfg.b0_fallback))?;
    client.option("grouping", bool_str(cfg.grouping))?;
    client.option("granularity", &cfg.granularity.to_string())?;
    client.option(
        "alloc",
        match cfg.alloc_policy {
            e9patch::AllocPolicy::FirstFitLow => "low",
            e9patch::AllocPolicy::FirstFitHigh => "high",
        },
    )?;
    if let Some(n) = cfg.jobs {
        client.option("jobs", &n.to_string())?;
    }
    // Digest-once: hash the input here (with the planner's worker count),
    // send it alongside the bytes, and the server verifies it at intake
    // instead of re-hashing at every emit.
    let bin_digest = e9cache::tree::tree_digest(binary, cfg.jobs.unwrap_or(1));
    client.binary_with_digest(binary, &bin_digest)?;
    for i in disasm {
        client.instruction(i.addr, i.bytes())?;
    }
    Ok(())
}

/// Execute a job through a protocol backend. The plan, wire round trip
/// and server-side re-decode preserve every input bit, so the output is
/// byte-identical to [`run_job`] for the same job.
///
/// # Errors
///
/// Any transport or in-band backend failure.
pub fn run_job_via_backend(
    job: &Job,
    client: &mut e9proto::ProtoClient,
) -> Result<(RewriteOutput, Option<CacheOutcome>), FrontError> {
    send_job_inputs(client, job.binary, job.disasm, &job.config)?;
    for seg in job.extra {
        client.reserve(seg)?;
    }
    for r in job.requests {
        client.patch(r.addr, r.template.clone())?;
    }
    let reply = client.emit()?;
    let cache = CacheOutcome::from_reply(&reply);
    Ok((output_from_reply(reply), cache))
}

/// Select sites and build the payload runtime for `binary`, without
/// running the rewrite.
///
/// # Errors
///
/// Fails on unparseable ELF input.
pub fn plan(binary: &[u8], disasm: &[Insn], opts: &Options) -> Result<Plan, FrontError> {
    let elf = Elf::parse(binary).map_err(|e| FrontError::Input(e.to_string()))?;
    let sites = select_sites(disasm, opts.app);

    let mut extra: Vec<ExtraSegment> = Vec::new();
    let mut violations_addr = None;
    let mut counter_addr = None;
    let mut trace_addr = None;
    let mut per_site: Option<Vec<Template>> = None;
    let template = match opts.payload {
        Payload::Empty => Template::Empty,
        Payload::Counter => {
            let (_, data_vaddr) = runtime_vaddrs(&elf);
            extra.push(ExtraSegment {
                vaddr: data_vaddr,
                bytes: vec![0u8; 4096],
                exec: false,
                write: true,
            });
            counter_addr = Some(data_vaddr);
            Template::Counter {
                counter_addr: data_vaddr,
            }
        }
        Payload::LowFat => {
            let (code_vaddr, data_vaddr) = runtime_vaddrs(&elf);
            let rt = e9lowfat::runtime::build(code_vaddr, data_vaddr);
            violations_addr = Some(rt.violations_addr);
            extra.push(ExtraSegment {
                vaddr: rt.code_vaddr,
                bytes: rt.code,
                exec: true,
                write: false,
            });
            extra.push(ExtraSegment {
                vaddr: rt.data_vaddr,
                bytes: rt.data,
                exec: false,
                write: true,
            });
            Template::CheckCall {
                func_addr: rt.check_fn,
            }
        }
        Payload::CounterPerSite => {
            // One 64-bit counter per site, in site order — readable back
            // through `counter_addr + 8*site_index`.
            let (_, data_vaddr) = runtime_vaddrs(&elf);
            let table_bytes = (sites.len().max(1) * 8).next_multiple_of(4096);
            extra.push(ExtraSegment {
                vaddr: data_vaddr,
                bytes: vec![0u8; table_bytes],
                exec: false,
                write: true,
            });
            counter_addr = Some(data_vaddr);
            per_site = Some(
                (0..sites.len())
                    .map(|k| Template::Counter {
                        counter_addr: data_vaddr + k as u64 * 8,
                    })
                    .collect(),
            );
            Template::Empty // unused; per_site takes precedence
        }
        Payload::Trace => {
            let (code_vaddr, data_vaddr) = runtime_vaddrs(&elf);
            let rt = trace::build(code_vaddr, data_vaddr, 4096);
            trace_addr = Some(rt.data_addr);
            extra.push(ExtraSegment {
                vaddr: rt.code_vaddr,
                bytes: rt.code,
                exec: true,
                write: false,
            });
            extra.push(ExtraSegment {
                vaddr: rt.data_vaddr,
                bytes: rt.data,
                exec: false,
                write: true,
            });
            Template::HookCall {
                func_addr: rt.hook_fn,
            }
        }
    };

    let requests: Vec<PatchRequest> = match per_site {
        Some(templates) => sites
            .iter()
            .zip(templates)
            .map(|(&addr, template)| PatchRequest { addr, template })
            .collect(),
        None => sites
            .iter()
            .map(|&addr| PatchRequest {
                addr,
                template: template.clone(),
            })
            .collect(),
    };

    Ok(Plan {
        sites,
        requests,
        extra,
        violations_addr,
        counter_addr,
        trace_addr,
    })
}

/// [`instrument_with_disasm`], but driving the rewrite through a protocol
/// backend (the paper's frontend/backend split) instead of calling
/// [`Rewriter`] in-process. The plan, wire round trip and server-side
/// re-decode preserve every input bit, so the output is byte-identical to
/// the in-process path for the same binary, options and seed.
///
/// # Errors
///
/// Planning errors, plus any transport or in-band backend failure.
pub fn instrument_via_backend(
    binary: &[u8],
    disasm: &[Insn],
    opts: &Options,
    client: &mut e9proto::ProtoClient,
) -> Result<Instrumented, FrontError> {
    let p = plan(binary, disasm, opts)?;
    let (rewrite, cache) = run_job_via_backend(
        &Job {
            binary,
            disasm,
            requests: &p.requests,
            extra: &p.extra,
            config: opts.config,
        },
        client,
    )?;
    Ok(Instrumented {
        rewrite,
        sites: p.sites.len(),
        violations_addr: p.violations_addr,
        counter_addr: p.counter_addr,
        trace_addr: p.trace_addr,
        cache,
    })
}

/// Convert a wire [`e9proto::EmitReply`] back into the in-process
/// [`RewriteOutput`] shape (shared by the backend and cached paths).
pub fn output_from_reply(reply: e9proto::EmitReply) -> RewriteOutput {
    RewriteOutput {
        binary: reply.binary,
        stats: reply.stats,
        size: reply.size,
        loader_addr: reply.loader_addr,
        trap_count: reply.trap_count as usize,
        reports: reply.reports,
        mappings: reply
            .mappings
            .iter()
            .map(|m| e9patch::loader::Mapping {
                vaddr: m.vaddr,
                file_off: m.file_off,
                len: m.len,
            })
            .collect(),
    }
}

/// Inverse of [`output_from_reply`]: the canonical reply form of a cold
/// rewrite, which is what the cache stores.
fn reply_from_output(out: &RewriteOutput) -> e9proto::EmitReply {
    e9proto::EmitReply {
        binary: out.binary.clone(),
        stats: out.stats,
        size: out.size,
        loader_addr: out.loader_addr,
        trap_count: out.trap_count as u64,
        reports: out.reports.clone(),
        mappings: out
            .mappings
            .iter()
            .map(|m| e9proto::msg::WireMapping {
                vaddr: m.vaddr,
                file_off: m.file_off,
                len: m.len,
            })
            .collect(),
        cache: e9proto::CacheDisposition::Off,
        digest: None,
    }
}

/// How the cache participated in an instrumentation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Hit, miss or bypass (never `Off` — absence is modelled by
    /// `Instrumented::cache == None`).
    pub disposition: e9proto::CacheDisposition,
    /// Hex cache key of the job. `None` for bypassed runs, which are
    /// never keyed (keying is the cost the bypass avoids).
    pub digest: Option<String>,
}

impl CacheOutcome {
    fn from_reply(reply: &e9proto::EmitReply) -> Option<CacheOutcome> {
        match reply.cache {
            e9proto::CacheDisposition::Off => None,
            d => Some(CacheOutcome {
                disposition: d,
                digest: reply.digest.clone(),
            }),
        }
    }
}

/// [`instrument_with_disasm`] through a rewrite cache: the job key is
/// derived exactly as an `e9patchd` session would derive it (same codec,
/// same config encoding), so the in-process path and a daemon with the
/// same `--cache-dir` share artifacts.
///
/// A hit returns bytes identical to a cold rewrite — guaranteed by the
/// pipeline's determinism and re-checked end-to-end in the integration
/// suite. Corrupt or unreadable entries degrade to a cold rewrite.
///
/// # Errors
///
/// As [`instrument_with_disasm`], plus [`FrontError::CachedFailure`] when
/// a negative entry short-circuits a known-failing job.
pub fn instrument_cached(
    binary: &[u8],
    disasm: &[Insn],
    opts: &Options,
    cache: &e9cache::Cache,
) -> Result<Instrumented, FrontError> {
    let p = plan(binary, disasm, opts)?;
    let (rewrite, outcome) = run_job_cached(
        &Job {
            binary,
            disasm,
            requests: &p.requests,
            extra: &p.extra,
            config: opts.config,
        },
        cache,
    )?;
    Ok(Instrumented {
        rewrite,
        sites: p.sites.len(),
        violations_addr: p.violations_addr,
        counter_addr: p.counter_addr,
        trace_addr: p.trace_addr,
        cache: Some(outcome),
    })
}

// ---- hooking driver ------------------------------------------------------

/// Result of the hooking drivers ([`hook_functions`] and friends).
#[derive(Debug)]
pub struct Hooked {
    /// Rewriting output (hooked binary + statistics).
    pub rewrite: RewriteOutput,
    /// One record per installed hook, in function-address order — the
    /// same records the binary's manifest segment carries.
    pub hooks: Vec<e9hook::HookRecord>,
    /// Base of the per-hook counter table (counter payloads only); hook
    /// `i`'s cell is at `counters_addr + 8*i`.
    pub counters_addr: Option<u64>,
    /// Address of the in-binary hook manifest.
    pub manifest_addr: u64,
    /// How the rewrite cache participated (`None` = no cache in play).
    pub cache: Option<CacheOutcome>,
}

/// Hook functions in `binary` per `spec`: disassemble, resolve symbols,
/// plan trampolines and rewrite in-process. Uses the `.text` frontend
/// with the executable-segment fallback for section-stripped binaries
/// (where [`e9hook::HookSpec::addrs`] is the expected targeting mode).
///
/// # Errors
///
/// Disassembly, hook-planning and rewriting failures.
pub fn hook_functions(
    binary: &[u8],
    spec: &e9hook::HookSpec,
    config: RewriteConfig,
) -> Result<Hooked, FrontError> {
    let disasm = match disassemble_text(binary) {
        Ok(d) => d,
        Err(_) => disassemble_exec_segments(binary)?,
    };
    hook_with_disasm(binary, &disasm, spec, config)
}

/// [`hook_functions`] with caller-provided disassembly info.
///
/// # Errors
///
/// As [`hook_functions`].
pub fn hook_with_disasm(
    binary: &[u8],
    disasm: &[Insn],
    spec: &e9hook::HookSpec,
    config: RewriteConfig,
) -> Result<Hooked, FrontError> {
    let plan = e9hook::plan_hooks(binary, disasm, spec)?;
    let rewrite = run_job(&Job {
        binary,
        disasm,
        requests: &plan.requests,
        extra: &plan.extra,
        config,
    })?;
    Ok(Hooked {
        rewrite,
        hooks: plan.hooks,
        counters_addr: plan.counters_addr,
        manifest_addr: plan.manifest_addr,
        cache: None,
    })
}

/// [`hook_with_disasm`] through a rewrite cache. Hook planning is
/// deterministic, so the lowered batch — and therefore the cache key —
/// is identical for identical (binary, spec, config), and a warm hit
/// returns bytes identical to the cold rewrite.
///
/// # Errors
///
/// As [`hook_with_disasm`], plus [`FrontError::CachedFailure`].
pub fn hook_cached(
    binary: &[u8],
    disasm: &[Insn],
    spec: &e9hook::HookSpec,
    config: RewriteConfig,
    cache: &e9cache::Cache,
) -> Result<Hooked, FrontError> {
    let plan = e9hook::plan_hooks(binary, disasm, spec)?;
    let (rewrite, outcome) = run_job_cached(
        &Job {
            binary,
            disasm,
            requests: &plan.requests,
            extra: &plan.extra,
            config,
        },
        cache,
    )?;
    Ok(Hooked {
        rewrite,
        hooks: plan.hooks,
        counters_addr: plan.counters_addr,
        manifest_addr: plan.manifest_addr,
        cache: Some(outcome),
    })
}

/// [`hook_with_disasm`] through a protocol backend: the spec travels
/// over the wire as one `hook` command and the *server* plans it against
/// its copy of the binary and disassembly. Server-side planning buffers
/// the same batch a local plan would have streamed, so the emitted
/// binary — and the daemon's cache key for it — is byte-identical to
/// every other path.
///
/// # Errors
///
/// Planning errors (returned in-band by the server), plus any transport
/// or backend failure.
pub fn hook_via_backend(
    binary: &[u8],
    disasm: &[Insn],
    spec: &e9hook::HookSpec,
    config: RewriteConfig,
    client: &mut e9proto::ProtoClient,
) -> Result<Hooked, FrontError> {
    send_job_inputs(client, binary, disasm, &config)?;
    let planned = client.hook(spec)?;
    let reply = client.emit()?;
    let cache = CacheOutcome::from_reply(&reply);
    Ok(Hooked {
        rewrite: output_from_reply(reply),
        hooks: planned.hooks,
        counters_addr: planned.counters_addr,
        manifest_addr: planned.manifest_addr,
        cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use e9synth::{generate, Profile};

    fn sample() -> e9synth::SynthBinary {
        generate(&Profile::tiny("fronttest", false))
    }

    #[test]
    fn text_disassembly_matches_synth() {
        // With the .note.e9code marker honoured, the .text frontend's
        // output is exactly the generator's own disassembly info.
        let sb = sample();
        let d = disassemble_text(&sb.binary).unwrap();
        assert_eq!(d, sb.disasm);
    }

    #[test]
    fn exec_segment_fallback_covers_at_least_text() {
        let sb = sample();
        let a = disassemble_text(&sb.binary).unwrap();
        let b = disassemble_exec_segments(&sb.binary).unwrap();
        // The raw segment sweep has no marker and also decodes the
        // jump-table tail.
        assert!(b.len() >= a.len());
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn site_selectors() {
        let sb = sample();
        let a1 = select_sites(&sb.disasm, Application::A1Jumps);
        let a2 = select_sites(&sb.disasm, Application::A2HeapWrites);
        let all = select_sites(&sb.disasm, Application::AllInstructions);
        assert!(!a1.is_empty());
        assert!(!a2.is_empty());
        assert_eq!(all.len(), sb.disasm.len());
        // A1 and A2 are disjoint: jumps don't write memory.
        assert!(a1.iter().all(|a| !a2.contains(a)));
    }

    #[test]
    fn instrument_a1_empty_preserves_behaviour() {
        let sb = sample();
        let orig = e9vm::run_binary(&sb.binary, 50_000_000).unwrap();
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options::new(Application::A1Jumps, Payload::Empty),
        )
        .unwrap();
        let patched = e9vm::run_binary(&out.rewrite.binary, 100_000_000).unwrap();
        assert_eq!(patched.output, orig.output);
        assert_eq!(patched.exit_code, orig.exit_code);
        assert!(patched.insns > orig.insns);
    }

    #[test]
    fn instrument_counter_counts() {
        let sb = sample();
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options::new(Application::A1Jumps, Payload::Counter),
        )
        .unwrap();
        let counter = out.counter_addr.unwrap();
        let mut vm = e9vm::Vm::new();
        e9vm::load_elf(&mut vm, &out.rewrite.binary).unwrap();
        vm.run(100_000_000).unwrap();
        assert!(vm.mem.read_le(counter, 8).unwrap() > 0);
    }

    #[test]
    fn data_in_text_frontend_skips_blobs() {
        // The §6.2 Chrome wrinkle: .text interleaves data blobs. The
        // note-guided frontend must match the generator's disasm exactly
        // and the instrumented binary must still behave.
        let mut p = Profile::tiny("mixtext", false);
        p.data_in_text = true;
        p.funcs = 24;
        let sb = generate(&p);
        let d = disassemble_text(&sb.binary).unwrap();
        assert_eq!(d, sb.disasm);
        // There must actually be gaps (blobs) between ranges.
        let has_gap = d.windows(2).any(|w| w[1].addr > w[0].end());
        assert!(has_gap, "expected interleaved data blobs");
        let orig = e9vm::run_binary(&sb.binary, 50_000_000).unwrap();
        let out = instrument(
            &sb.binary,
            &Options::new(Application::A1Jumps, Payload::Empty),
        )
        .unwrap();
        let patched = e9vm::run_binary(&out.rewrite.binary, 100_000_000).unwrap();
        assert_eq!(patched.output, orig.output);
    }

    #[test]
    fn instrument_trace_records_sites() {
        let sb = sample();
        let orig = e9vm::run_binary(&sb.binary, 50_000_000).unwrap();
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options::new(Application::A1Jumps, Payload::Trace),
        )
        .unwrap();
        let hdr = out.trace_addr.unwrap();
        let mut vm = e9vm::Vm::new();
        e9vm::load_elf(&mut vm, &out.rewrite.binary).unwrap();
        let patched = vm.run(200_000_000).unwrap();
        assert_eq!(patched.output, orig.output);
        let events = vm.mem.read_le(hdr, 8).unwrap();
        let cap = vm.mem.read_le(hdr + 8, 8).unwrap();
        assert!(events > 0, "trace recorded nothing");
        // Every recorded address must be one of the patched sites.
        let sites: std::collections::HashSet<u64> = select_sites(&sb.disasm, Application::A1Jumps)
            .into_iter()
            .collect();
        for i in 0..events.min(cap) {
            let site = vm.mem.read_le(hdr + 16 + i * 8, 8).unwrap();
            assert!(sites.contains(&site), "bogus trace entry {site:#x}");
        }
    }

    #[test]
    fn instrument_per_site_counters() {
        let sb = sample();
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options::new(Application::A1Jumps, Payload::CounterPerSite),
        )
        .unwrap();
        let base = out.counter_addr.unwrap();
        let mut vm = e9vm::Vm::new();
        e9vm::load_elf(&mut vm, &out.rewrite.binary).unwrap();
        let patched = vm.run(200_000_000).unwrap();
        let orig = e9vm::run_binary(&sb.binary, 100_000_000).unwrap();
        assert_eq!(patched.output, orig.output);
        // Per-site counts sum to the total of executed patched jumps, and
        // at least one site was hot.
        let total: u64 = (0..out.sites)
            .map(|k| vm.mem.read_le(base + k as u64 * 8, 8).unwrap())
            .sum();
        assert!(total > 0);
        let max = (0..out.sites)
            .map(|k| vm.mem.read_le(base + k as u64 * 8, 8).unwrap())
            .max()
            .unwrap();
        assert!(max > 1, "expected a hot site, max={max}");
    }

    #[test]
    fn a3_selects_calls() {
        let sb = sample();
        let calls = select_sites(&sb.disasm, Application::A3Calls);
        assert!(!calls.is_empty());
        let orig = e9vm::run_binary(&sb.binary, 100_000_000).unwrap();
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options::new(Application::A3Calls, Payload::Empty),
        )
        .unwrap();
        assert_eq!(out.sites, calls.len());
        let patched = e9vm::run_binary(&out.rewrite.binary, 200_000_000).unwrap();
        assert_eq!(patched.output, orig.output);
    }

    #[test]
    fn instrument_lowfat_no_false_positives() {
        // A correct program with the low-fat heap must report zero
        // violations.
        let sb = sample();
        let orig = e9vm::run_binary(&sb.binary, 50_000_000).unwrap();
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options::new(Application::A2HeapWrites, Payload::LowFat),
        )
        .unwrap();
        let mut vm = e9vm::Vm::new();
        vm.set_heap(Box::new(e9lowfat::LowFatAllocator::new()));
        e9vm::load_elf(&mut vm, &out.rewrite.binary).unwrap();
        let patched = vm.run(200_000_000).unwrap();
        assert_eq!(patched.exit_code, orig.exit_code);
        let v = vm.mem.read_le(out.violations_addr.unwrap(), 8).unwrap();
        assert_eq!(v, 0, "false-positive redzone violations");
    }

    #[cfg(unix)]
    #[test]
    fn backend_path_matches_in_process() {
        // The protocol round trip must not perturb the rewrite: same
        // binary, same options → byte-identical output, stats and runtime
        // addresses.
        let sb = sample();
        let opts = Options::new(Application::A1Jumps, Payload::Counter);
        let direct = instrument_with_disasm(&sb.binary, &sb.disasm, &opts).unwrap();
        let mut client = e9proto::ProtoClient::in_process().unwrap();
        let via = instrument_via_backend(&sb.binary, &sb.disasm, &opts, &mut client).unwrap();
        assert_eq!(via.rewrite.binary, direct.rewrite.binary);
        assert_eq!(via.rewrite.stats, direct.rewrite.stats);
        assert_eq!(via.rewrite.loader_addr, direct.rewrite.loader_addr);
        assert_eq!(via.sites, direct.sites);
        assert_eq!(via.counter_addr, direct.counter_addr);
    }

    #[test]
    fn cached_path_hits_and_matches_cold() {
        let sb = sample();
        let opts = Options::new(Application::A1Jumps, Payload::Counter);
        // The sample is tiny — disable the size bypass so the cache
        // mechanics (miss, then hit) are actually exercised.
        let cache = e9cache::Cache::in_memory_no_bypass();
        let cold = instrument_cached(&sb.binary, &sb.disasm, &opts, &cache).unwrap();
        let cold_outcome = cold.cache.as_ref().expect("cache in play");
        assert_eq!(cold_outcome.disposition, e9proto::CacheDisposition::Miss);
        let warm = instrument_cached(&sb.binary, &sb.disasm, &opts, &cache).unwrap();
        let warm_outcome = warm.cache.as_ref().expect("cache in play");
        assert_eq!(warm_outcome.disposition, e9proto::CacheDisposition::Hit);
        assert_eq!(warm_outcome.digest, cold_outcome.digest);
        // The hit invariant: byte-identical to the cold run...
        assert_eq!(warm.rewrite.binary, cold.rewrite.binary);
        assert_eq!(warm.rewrite.stats, cold.rewrite.stats);
        assert_eq!(warm.rewrite.reports, cold.rewrite.reports);
        assert_eq!(warm.counter_addr, cold.counter_addr);
        // ...and to the plain uncached path.
        let direct = instrument_with_disasm(&sb.binary, &sb.disasm, &opts).unwrap();
        assert_eq!(warm.rewrite.binary, direct.rewrite.binary);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn hook_counter_counts_and_preserves_output() {
        let sb = sample();
        let orig = e9vm::run_binary(&sb.binary, 50_000_000).unwrap();
        let spec = e9hook::HookSpec::counters(&["f*"]);
        let out =
            hook_with_disasm(&sb.binary, &sb.disasm, &spec, RewriteConfig::default()).unwrap();
        assert!(!out.hooks.is_empty());
        let mut vm = e9vm::Vm::new();
        e9vm::load_elf(&mut vm, &out.rewrite.binary).unwrap();
        let hooked = vm.run(200_000_000).unwrap();
        assert_eq!(hooked.output, orig.output);
        assert_eq!(hooked.exit_code, orig.exit_code);
        // At least one hooked function actually ran and was counted.
        let total: u64 = out
            .hooks
            .iter()
            .map(|h| vm.mem.read_le(h.counter_addr, 8).unwrap())
            .sum();
        assert!(total > 0, "no hook fired");
        // The manifest embedded in the output names the same hooks.
        let elf = Elf::parse(&out.rewrite.binary).unwrap();
        let recs = e9hook::manifest::find_in_elf(&elf).unwrap().unwrap();
        assert_eq!(recs, out.hooks);
    }

    #[cfg(unix)]
    #[test]
    fn hook_paths_are_byte_identical() {
        let sb = sample();
        let spec = e9hook::HookSpec::counters(&["f*"]);
        let cfg = RewriteConfig::default();
        let direct = hook_with_disasm(&sb.binary, &sb.disasm, &spec, cfg).unwrap();

        // Cached: cold miss then warm hit, both identical to direct.
        let cache = e9cache::Cache::in_memory_no_bypass();
        let cold = hook_cached(&sb.binary, &sb.disasm, &spec, cfg, &cache).unwrap();
        let warm = hook_cached(&sb.binary, &sb.disasm, &spec, cfg, &cache).unwrap();
        assert_eq!(
            cold.cache.as_ref().unwrap().disposition,
            e9proto::CacheDisposition::Miss
        );
        assert_eq!(
            warm.cache.as_ref().unwrap().disposition,
            e9proto::CacheDisposition::Hit
        );
        assert_eq!(cold.rewrite.binary, direct.rewrite.binary);
        assert_eq!(warm.rewrite.binary, direct.rewrite.binary);

        // Daemon: the server plans the spec itself; same bytes, same
        // records.
        let mut client = e9proto::ProtoClient::in_process().unwrap();
        let via = hook_via_backend(&sb.binary, &sb.disasm, &spec, cfg, &mut client).unwrap();
        assert_eq!(via.rewrite.binary, direct.rewrite.binary);
        assert_eq!(via.hooks, direct.hooks);
        assert_eq!(via.counters_addr, direct.counters_addr);
        assert_eq!(via.manifest_addr, direct.manifest_addr);
    }

    #[test]
    fn full_text_frontend_instruments_real_elf() {
        // End to end through `instrument` (which does its own .text
        // disassembly) rather than the generator's disasm info.
        let sb = sample();
        let orig = e9vm::run_binary(&sb.binary, 50_000_000).unwrap();
        let out = instrument(
            &sb.binary,
            &Options::new(Application::A1Jumps, Payload::Empty),
        )
        .unwrap();
        let patched = e9vm::run_binary(&out.rewrite.binary, 100_000_000).unwrap();
        assert_eq!(patched.output, orig.output);
    }
}
