//! `e9tool` — file-based command-line driver for the E9Patch
//! reproduction, mirroring the companion tool of the original project.
//!
//! ```console
//! $ e9tool gen --tiny demo -o demo.elf          # make a workload binary
//! $ e9tool info demo.elf                        # inspect it
//! $ e9tool disasm demo.elf | head               # linear-sweep listing
//! $ e9tool patch demo.elf -o demo.e9 --app a1   # rewrite all jumps
//! $ e9tool run demo.elf && e9tool run demo.e9   # identical behaviour
//! ```

use e9front::{instrument, Application, Options, Payload};
use e9patch::{RewriteConfig, Tactics};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "e9tool — static binary rewriting without control flow recovery

USAGE:
  e9tool gen  (--tiny NAME | --profile NAME) [--pie] [--scale N] -o OUT
  e9tool info BINARY
  e9tool disasm BINARY [--limit N]
  e9tool patch BINARY -o OUT [--app a1|a2|a3|all] [--payload empty|counter|counters|lowfat|trace]
              [--no-t1] [--no-t2] [--no-t3] [--b0] [--granularity M] [--no-grouping]
              [--jobs N] [--report] [--verify]
              [--backend stdio|/path/to.sock|tcp:ADDR:PORT]
              [--cache-dir DIR | --no-cache] [--cache-bypass-bytes N]
  e9tool hook BINARY -o OUT (--func NAME[,NAME..] | --addr ADDR[,ADDR..])
              [--payload counter|nop] [--call-original]
              [--no-t1] [--no-t2] [--no-t3] [--b0] [--granularity M] [--no-grouping]
              [--jobs N] [--backend stdio|/path/to.sock|tcp:ADDR:PORT]
              [--cache-dir DIR | --no-cache] [--cache-bypass-bytes N]
  e9tool run  BINARY [--lowfat] [--max-steps N] [--hex-output] [--hook-counters]
  e9tool health --backend /path/to.sock|tcp:ADDR:PORT|stdio [--json]

`gen --profile` accepts any Table 1 row name (perlbench, gcc, chrome, ...).
`patch --backend` drives the rewrite through an e9patchd backend over the
wire protocol instead of in-process: `stdio` spawns a daemon child
($E9PATCHD, an e9patchd next to e9tool, or $PATH), a path connects to a
daemon's Unix socket, and `tcp:ADDR:PORT` connects to a daemon started
with --listen-tcp. Output is byte-identical to the in-process path.
`patch --cache-dir DIR` reuses finished rewrites from a content-addressed
cache at DIR ($E9CACHE_DIR provides a default; --no-cache disables both).
A hit is byte-identical to a cold rewrite. Inputs below the bypass
threshold (--cache-bypass-bytes N or $E9CACHE_BYPASS_BYTES, default
131072; 0 caches every size) skip the cache entirely — for tiny binaries
the rewrite is cheaper than keying it.
`hook` installs register-preserving function hooks at symbol-resolved
entry points: --func takes exact names or shell globs (resolved against
.symtab, falling back to .dynsym), --addr takes explicit entry addresses
for stripped binaries. The default counter payload keeps one 64-bit
call counter per hook, readable back with `run --hook-counters`;
--call-original additionally relocates each displaced prologue
instruction into an executable thunk the payload can call. Every hook
job is recorded in a manifest segment inside the output binary.
`health` asks a live daemon for its health surface — serving mode, cache
tier state (including the disk circuit breaker), overload-shed counters
and fault-injection status. It needs no version handshake, so it works
against any daemon the protocol can reach; --json prints the raw reply."
    );
    ExitCode::from(2)
}

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                let takes_value = matches!(
                    name,
                    "tiny" | "profile" | "scale" | "app" | "payload" | "granularity"
                        | "jobs" | "max-steps" | "limit" | "backend" | "cache-dir"
                        | "cache-bypass-bytes" | "func" | "addr"
                );
                if takes_value && i + 1 < argv.len() {
                    flags.insert(name.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(name.to_string(), String::new());
                    i += 1;
                }
            } else if a == "-o" && i + 1 < argv.len() {
                flags.insert("out".into(), argv[i + 1].clone());
                i += 2;
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Reject any flag not in `allowed` ("out" stands for `-o`). A typo'd
    /// flag must be a hard error, not a silently ignored no-op.
    fn check_flags(&self, allowed: &[&str]) -> Result<(), String> {
        let mut unknown: Vec<&str> = self
            .flags
            .keys()
            .map(|k| k.as_str())
            .filter(|k| !allowed.contains(k))
            .collect();
        unknown.sort_unstable();
        match unknown.as_slice() {
            [] => Ok(()),
            [one] => Err(format!("unknown flag --{one} (see `e9tool` for usage)")),
            many => Err(format!(
                "unknown flags: {} (see `e9tool` for usage)",
                many.iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        }
    }
}

/// Read an input binary with diagnostics a user can act on: directories,
/// empty files and unreadable paths each get a specific message (and a
/// nonzero exit) instead of a confusing downstream parse error.
fn read_input(path: &str) -> Result<Vec<u8>, String> {
    let meta =
        std::fs::metadata(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if meta.is_dir() {
        return Err(format!("{path} is a directory, not an ELF binary"));
    }
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.is_empty() {
        return Err(format!("{path} is empty (zero bytes), not an ELF binary"));
    }
    Ok(bytes)
}

/// Parse with the file name in the message ("demo.txt: bad magic ..."
/// beats a bare "bad magic").
fn parse_input(path: &str, bytes: &[u8]) -> Result<e9elf::Elf, String> {
    e9elf::Elf::parse(bytes).map_err(|e| format!("{path}: not a valid ELF binary: {e}"))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    args.check_flags(&["tiny", "profile", "pie", "scale", "out"])?;
    let out = args.value("out").ok_or("gen requires -o OUT")?;
    let mut profile = if let Some(name) = args.value("tiny") {
        e9synth::Profile::tiny(name, args.flag("pie"))
    } else if let Some(name) = args.value("profile") {
        let scale: u64 = args
            .value("scale")
            .map(|s| s.parse().map_err(|_| "bad --scale"))
            .transpose()?
            .unwrap_or(e9synth::DEFAULT_SCALE);
        e9synth::all_profiles(scale)
            .into_iter()
            .find(|p| p.name == name)
            .ok_or_else(|| format!("unknown profile {name}; try perlbench, gcc, chrome ..."))?
    } else {
        return Err("gen requires --tiny NAME or --profile NAME".into());
    };
    // E9_SEED pins the generator stream irrespective of the profile name —
    // the hermetic-reproduction hook (two runs with the same seed must
    // produce byte-identical binaries).
    if let Ok(seed) = std::env::var("E9_SEED") {
        profile.seed = seed
            .trim()
            .parse()
            .map_err(|_| format!("bad E9_SEED {seed:?} (want a u64)"))?;
    }
    let sb = e9synth::generate(&profile);
    e9front::output::write_atomic(std::path::Path::new(out), &sb.binary)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: {} bytes, entry {:#x}, {} instructions, seed {}",
        sb.binary.len(),
        sb.entry,
        sb.disasm.len(),
        profile.seed
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    args.check_flags(&[])?;
    let path = args.positional.first().ok_or("info requires BINARY")?;
    let bytes = read_input(path)?;
    let elf = parse_input(path, &bytes)?;
    println!("{path}: {} bytes", bytes.len());
    println!(
        "  type:  {}",
        if elf.is_pie() { "ET_DYN (PIE/shared object)" } else { "ET_EXEC" }
    );
    println!("  entry: {:#x}", elf.entry());
    println!("  segments:");
    for p in &elf.phdrs {
        let kind = match p.p_type {
            e9elf::types::PT_LOAD => "LOAD",
            e9elf::types::PT_NOTE => "NOTE",
            _ => "OTHER",
        };
        println!(
            "    {kind:<6} vaddr {:#012x} filesz {:#8x} memsz {:#8x} flags {}{}{}",
            p.p_vaddr,
            p.p_filesz,
            p.p_memsz,
            if p.p_flags & e9elf::types::PF_R != 0 { "r" } else { "-" },
            if p.p_flags & e9elf::types::PF_W != 0 { "w" } else { "-" },
            if p.p_flags & e9elf::types::PF_X != 0 { "x" } else { "-" },
        );
    }
    if !elf.sections.is_empty() {
        println!("  sections:");
        for s in elf.sections.iter().filter(|s| !s.name.is_empty()) {
            println!("    {:<16} addr {:#012x} size {:#x}", s.name, s.sh_addr, s.sh_size);
        }
    }
    Ok(())
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    args.check_flags(&["limit"])?;
    let path = args.positional.first().ok_or("disasm requires BINARY")?;
    let bytes = read_input(path)?;
    // Parse first so a non-ELF file is diagnosed by name, then sweep.
    let elf = parse_input(path, &bytes)?;
    let disasm = e9front::disassemble_text(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let limit: usize = args
        .value("limit")
        .map(|s| s.parse().map_err(|_| "bad --limit"))
        .transpose()?
        .unwrap_or(usize::MAX);
    // Annotate function starts with their symbols when present.
    let symbols = e9elf::symbols::parse(&elf);
    let by_addr: std::collections::HashMap<u64, &str> =
        symbols.iter().map(|s| (s.value, s.name.as_str())).collect();
    for i in disasm.iter().take(limit) {
        if let Some(name) = by_addr.get(&i.addr) {
            println!("\n{:012x} <{}>:", i.addr, name);
        }
        println!("{}", e9x86::fmt::format_listing_line(i));
    }
    let a1 = disasm.iter().filter(|i| i.kind.is_jump()).count();
    let a2 = disasm.iter().filter(|i| i.is_heap_write()).count();
    eprintln!(
        "{} instructions ({a1} jump sites, {a2} heap-write sites)",
        disasm.len()
    );
    Ok(())
}

/// Resolve the rewrite-cache directory for `patch` from flags and the
/// environment. `--cache-dir DIR` wins; otherwise `$E9CACHE_DIR` provides
/// an ambient default. `--no-cache` disables both. Contradictory spellings
/// are hard errors (exit 1), not silent precedence rules.
fn resolve_cache_dir(args: &Args) -> Result<Option<std::path::PathBuf>, String> {
    resolve_cache_dir_from(args, std::env::var_os("E9CACHE_DIR"))
}

fn resolve_cache_dir_from(
    args: &Args,
    env_dir: Option<std::ffi::OsString>,
) -> Result<Option<std::path::PathBuf>, String> {
    let explicit = args.flag("cache-dir");
    if args.flag("no-cache") && explicit {
        return Err(
            "--no-cache contradicts --cache-dir: pick one (see `e9tool` for usage)".into(),
        );
    }
    if explicit && args.flag("backend") {
        return Err(
            "--cache-dir applies to the in-process path; cache behind --backend \
             with `e9patchd --cache-dir` instead"
                .into(),
        );
    }
    if args.flag("no-cache") {
        return Ok(None);
    }
    if explicit {
        let dir = args.value("cache-dir").unwrap_or("");
        if dir.is_empty() {
            return Err("--cache-dir requires a DIR argument".into());
        }
        return Ok(Some(std::path::PathBuf::from(dir)));
    }
    if args.flag("backend") {
        // An ambient E9CACHE_DIR describes this process's cache; a remote
        // daemon has its own (--cache-dir on e9patchd). Ignore, don't error.
        return Ok(None);
    }
    Ok(env_dir.map(std::path::PathBuf::from))
}

/// Resolve the cache bypass threshold: `--cache-bypass-bytes N` wins,
/// else `$E9CACHE_BYPASS_BYTES`, else the library default (128 KiB).
/// `0` disables the bypass (every size is cached). A modifier only — it
/// never enables the cache by itself.
fn resolve_bypass_bytes(args: &Args) -> Result<Option<u64>, String> {
    if let Some(v) = args.value("cache-bypass-bytes") {
        return v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| "bad --cache-bypass-bytes (want a byte count)".into());
    }
    match std::env::var("E9CACHE_BYPASS_BYTES") {
        Ok(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("bad E9CACHE_BYPASS_BYTES {v:?} (want a byte count)")),
        Err(_) => Ok(None),
    }
}

/// Validate the address part of a `--backend tcp:ADDR:PORT` spec.
///
/// The check is purely syntactic (host non-empty, numeric port) so a
/// malformed spec fails fast with a named diagnostic instead of a
/// connect timeout against a nonsense address.
fn check_tcp_backend(rest: &str) -> Result<(), String> {
    let malformed = || {
        Err(format!(
            "--backend tcp: wants ADDR:PORT (e.g. tcp:127.0.0.1:9990), got tcp:{rest}"
        ))
    };
    // rsplit: the host part may itself contain colons ([::1]:9990).
    match rest.rsplit_once(':') {
        Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => Ok(()),
        _ => malformed(),
    }
}

/// Open the protocol backend named by `--backend`: `stdio` spawns the
/// default daemon as a child, `tcp:ADDR:PORT` connects to a TCP daemon;
/// anything else is a Unix socket path.
fn backend_client(spec: &str) -> Result<e9proto::ProtoClient, String> {
    if spec == "stdio" {
        return e9proto::ProtoClient::spawn_default().map_err(|e| e.to_string());
    }
    if let Some(rest) = spec.strip_prefix("tcp:") {
        check_tcp_backend(rest)?;
        return e9proto::ProtoClient::connect_tcp_retry(rest, 4)
            .map_err(|e| format!("cannot connect to backend tcp:{rest}: {e}"));
    }
    #[cfg(unix)]
    {
        e9proto::ProtoClient::connect_unix(std::path::Path::new(spec)).map_err(|e| e.to_string())
    }
    #[cfg(not(unix))]
    {
        Err(format!("socket backends are unix-only, cannot use {spec}"))
    }
}

/// Build the rewriter configuration from the shared tactic/size/jobs
/// flags (`patch` and `hook` accept the same set).
fn rewrite_config_from(args: &Args) -> Result<RewriteConfig, String> {
    Ok(RewriteConfig {
        tactics: Tactics {
            t1: !args.flag("no-t1"),
            t2: !args.flag("no-t2"),
            t3: !args.flag("no-t3"),
        },
        b0_fallback: args.flag("b0"),
        grouping: !args.flag("no-grouping"),
        granularity: args
            .value("granularity")
            .map(|s| s.parse().map_err(|_| "bad --granularity"))
            .transpose()?
            .unwrap_or(1),
        jobs: args
            .value("jobs")
            .map(|s| match s.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err("bad --jobs (want an integer >= 1)"),
            })
            .transpose()?,
        ..RewriteConfig::default()
    })
}

fn cmd_patch(args: &Args) -> Result<(), String> {
    args.check_flags(&[
        "out",
        "app",
        "payload",
        "no-t1",
        "no-t2",
        "no-t3",
        "b0",
        "granularity",
        "jobs",
        "no-grouping",
        "report",
        "verify",
        "backend",
        "cache-dir",
        "no-cache",
        "cache-bypass-bytes",
    ])?;
    let cache_dir = resolve_cache_dir(args)?;
    let bypass_bytes = resolve_bypass_bytes(args)?;
    let path = args.positional.first().ok_or("patch requires BINARY")?;
    let out_path = args.value("out").ok_or("patch requires -o OUT")?;
    let bytes = read_input(path)?;
    // Fail on a non-ELF input before any backend/daemon work starts.
    parse_input(path, &bytes)?;

    let app = match args.value("app").unwrap_or("a1") {
        "a1" => Application::A1Jumps,
        "a2" => Application::A2HeapWrites,
        "a3" => Application::A3Calls,
        "all" => Application::AllInstructions,
        other => return Err(format!("unknown --app {other}")),
    };
    let payload = match args.value("payload").unwrap_or("empty") {
        "empty" => Payload::Empty,
        "counter" => Payload::Counter,
        "counters" => Payload::CounterPerSite,
        "lowfat" => Payload::LowFat,
        "trace" => Payload::Trace,
        other => return Err(format!("unknown --payload {other}")),
    };
    let config = rewrite_config_from(args)?;

    let opts = Options { app, payload, config };
    let mut cache_summary = None;
    let res = match args.value("backend") {
        None => match &cache_dir {
            None => instrument(&bytes, &opts).map_err(|e| e.to_string())?,
            Some(dir) => {
                let cache = e9cache::Cache::open(&e9cache::CacheConfig {
                    dir: Some(dir.clone()),
                    bypass_bytes,
                    ..e9cache::CacheConfig::default()
                })
                .map_err(|e| format!("cannot open cache {}: {e}", dir.display()))?;
                let disasm = e9front::disassemble_text(&bytes).map_err(|e| e.to_string())?;
                let res = e9front::instrument_cached(&bytes, &disasm, &opts, &cache)
                    .map_err(|e| e.to_string())?;
                cache_summary = Some(cache.stats().summary());
                res
            }
        },
        Some(spec) => {
            let disasm = e9front::disassemble_text(&bytes).map_err(|e| e.to_string())?;
            let mut client = backend_client(spec)?;
            e9front::instrument_via_backend(&bytes, &disasm, &opts, &mut client)
                .map_err(|e| e.to_string())?
        }
    };
    if let Some(c) = &res.cache {
        let digest = c.digest.as_deref().unwrap_or("");
        match c.disposition {
            e9proto::CacheDisposition::Hit => println!("cache: hit {digest}"),
            e9proto::CacheDisposition::Bypass => {
                println!("cache: bypass (input below threshold, not keyed)");
            }
            _ => println!("cache: miss — stored {digest}"),
        }
    }
    if let Some(summary) = cache_summary {
        println!("{summary}");
    }
    e9front::output::write_atomic(std::path::Path::new(out_path), &res.rewrite.binary)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    if args.flag("verify") {
        let orig = parse_input(path, &bytes)?;
        let patched = e9elf::Elf::parse(&res.rewrite.binary).map_err(|e| e.to_string())?;
        let disasm = e9front::disassemble_text(&bytes).map_err(|e| e.to_string())?;
        match e9patch::verify::verify(
            &orig,
            &patched,
            &disasm,
            &res.rewrite.mappings,
            &res.rewrite.reports,
        ) {
            Ok(rep) => println!(
                "verify: OK — {} preserved, {} diverted instruction starts",
                rep.preserved, rep.diverted
            ),
            Err(violations) => {
                for v in &violations {
                    eprintln!("verify: {v}");
                }
                return Err(format!("{} verification violations", violations.len()));
            }
        }
    }
    if args.flag("report") {
        println!("site report (processing order, highest address first):");
        for r in &res.rewrite.reports {
            match (r.tactic, r.trampoline) {
                (Some(t), Some(tr)) => {
                    println!("  {:#012x} len {:>2} → {:<3} trampoline {:#x}", r.addr, r.insn_len, t.to_string(), tr)
                }
                (Some(t), None) => {
                    println!("  {:#012x} len {:>2} → {}", r.addr, r.insn_len, t)
                }
                _ => println!("  {:#012x} len {:>2} → FAILED", r.addr, r.insn_len),
            }
        }
    }
    let s = res.rewrite.stats;
    println!(
        "patched {}/{} sites (B1 {} | B2 {} | T1 {} | T2 {} | T3 {} | B0 {} | failed {})",
        s.succeeded() + s.b0,
        s.total(),
        s.b1,
        s.b2,
        s.t1,
        s.t2,
        s.t3,
        s.b0,
        s.failed
    );
    println!(
        "output {}: {} bytes ({:.1}% of input), {} mappings, granularity M={}",
        out_path,
        res.rewrite.binary.len(),
        res.rewrite.size.size_pct(),
        res.rewrite.size.mappings,
        res.rewrite.size.granularity
    );
    Ok(())
}

/// Parse one address: decimal or `0x`-prefixed hex.
fn parse_addr(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let parsed = match t.strip_prefix("0x") {
        Some(h) => u64::from_str_radix(h, 16),
        None => t.parse(),
    };
    parsed.map_err(|_| format!("bad address {t:?} (want decimal or 0x-prefixed hex)"))
}

fn cmd_hook(args: &Args) -> Result<(), String> {
    args.check_flags(&[
        "out",
        "func",
        "addr",
        "payload",
        "call-original",
        "no-t1",
        "no-t2",
        "no-t3",
        "b0",
        "granularity",
        "jobs",
        "no-grouping",
        "backend",
        "cache-dir",
        "no-cache",
        "cache-bypass-bytes",
    ])?;
    let cache_dir = resolve_cache_dir(args)?;
    let bypass_bytes = resolve_bypass_bytes(args)?;
    let path = args.positional.first().ok_or("hook requires BINARY")?;
    let out_path = args.value("out").ok_or("hook requires -o OUT")?;
    let bytes = read_input(path)?;
    parse_input(path, &bytes)?;

    let funcs: Vec<String> = args
        .value("func")
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    let addrs: Vec<u64> = args
        .value("addr")
        .map(|v| {
            v.split(',')
                .filter(|s| !s.trim().is_empty())
                .map(parse_addr)
                .collect::<Result<Vec<_>, _>>()
        })
        .transpose()?
        .unwrap_or_default();
    if funcs.is_empty() && addrs.is_empty() {
        return Err("hook requires --func NAME[,NAME..] or --addr ADDR[,ADDR..]".into());
    }
    let payload = match args.value("payload").unwrap_or("counter") {
        "counter" => e9hook::PayloadKind::Counter,
        "nop" => e9hook::PayloadKind::Nop,
        other => return Err(format!("unknown --payload {other} (hook wants counter|nop)")),
    };
    let spec = e9hook::HookSpec {
        funcs,
        addrs,
        call_original: args.flag("call-original"),
        payload,
    };
    let config = rewrite_config_from(args)?;

    // Text frontend with the executable-segment fallback: stripped
    // binaries (the --addr targeting mode) often have no .text section.
    let disasm = match e9front::disassemble_text(&bytes) {
        Ok(d) => d,
        Err(_) => e9front::disassemble_exec_segments(&bytes).map_err(|e| e.to_string())?,
    };
    let mut cache_summary = None;
    let res = match args.value("backend") {
        None => match &cache_dir {
            None => e9front::hook_with_disasm(&bytes, &disasm, &spec, config)
                .map_err(|e| e.to_string())?,
            Some(dir) => {
                let cache = e9cache::Cache::open(&e9cache::CacheConfig {
                    dir: Some(dir.clone()),
                    bypass_bytes,
                    ..e9cache::CacheConfig::default()
                })
                .map_err(|e| format!("cannot open cache {}: {e}", dir.display()))?;
                let res = e9front::hook_cached(&bytes, &disasm, &spec, config, &cache)
                    .map_err(|e| e.to_string())?;
                cache_summary = Some(cache.stats().summary());
                res
            }
        },
        Some(backend) => {
            let mut client = backend_client(backend)?;
            e9front::hook_via_backend(&bytes, &disasm, &spec, config, &mut client)
                .map_err(|e| e.to_string())?
        }
    };
    if let Some(c) = &res.cache {
        let digest = c.digest.as_deref().unwrap_or("");
        match c.disposition {
            e9proto::CacheDisposition::Hit => println!("cache: hit {digest}"),
            e9proto::CacheDisposition::Bypass => {
                println!("cache: bypass (input below threshold, not keyed)");
            }
            _ => println!("cache: miss — stored {digest}"),
        }
    }
    if let Some(summary) = cache_summary {
        println!("{summary}");
    }
    e9front::output::write_atomic(std::path::Path::new(out_path), &res.rewrite.binary)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    for h in &res.hooks {
        println!(
            "  hook {:>3} {:<24} {:#012x} payload {:#x}{}",
            h.id,
            h.name,
            h.func_addr,
            h.payload_addr,
            if h.is_call_original() {
                format!(" thunk {:#x}", h.thunk_addr)
            } else {
                String::new()
            }
        );
    }
    let s = res.rewrite.stats;
    println!(
        "hooked {}/{} function(s) (manifest {:#x}{})",
        s.succeeded() + s.b0,
        res.hooks.len(),
        res.manifest_addr,
        match res.counters_addr {
            Some(a) => format!(", counters {a:#x}"),
            None => String::new(),
        }
    );
    println!(
        "output {}: {} bytes ({:.1}% of input)",
        out_path,
        res.rewrite.binary.len(),
        res.rewrite.size.size_pct(),
    );
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    args.check_flags(&["lowfat", "max-steps", "hex-output", "hook-counters"])?;
    let path = args.positional.first().ok_or("run requires BINARY")?;
    let bytes = read_input(path)?;
    let max_steps: u64 = args
        .value("max-steps")
        .map(|s| s.parse().map_err(|_| "bad --max-steps"))
        .transpose()?
        .unwrap_or(2_000_000_000);
    let mut vm = e9vm::Vm::new();
    if args.flag("lowfat") {
        vm.set_heap(Box::new(e9lowfat::LowFatAllocator::new()));
    }
    e9vm::load_elf(&mut vm, &bytes).map_err(|e| format!("{path}: {e}"))?;
    let r = vm.run(max_steps).map_err(|e| e.to_string())?;
    if args.flag("hex-output") {
        println!("output: {:02x?}", r.output);
    } else if !r.output.is_empty() {
        use std::io::Write;
        std::io::stdout().write_all(&r.output).ok();
    }
    eprintln!(
        "exit {} | {} instructions retired | cost {}",
        r.exit_code, r.insns, r.steps
    );
    if args.flag("hook-counters") {
        // Read the per-hook call counters back through the binary's own
        // manifest. Reported on stderr (like the exit line) so stdout
        // stays byte-comparable program output.
        let elf = parse_input(path, &bytes)?;
        match e9hook::manifest::find_in_elf(&elf).map_err(|e| format!("{path}: {e}"))? {
            None => eprintln!("{path}: no hook manifest"),
            Some(recs) => {
                for h in &recs {
                    let calls = if h.counter_addr != 0 {
                        vm.mem.read_le(h.counter_addr, 8).unwrap_or(0)
                    } else {
                        0
                    };
                    eprintln!(
                        "hook {:>3} {:<24} {:#012x} calls {}",
                        h.id, h.name, h.func_addr, calls
                    );
                }
            }
        }
    }
    Ok(())
}

fn cmd_health(args: &Args) -> Result<(), String> {
    args.check_flags(&["backend", "json"])?;
    let spec = args
        .value("backend")
        .ok_or("health wants --backend (socket path, tcp:ADDR:PORT or stdio)")?;
    let mut client = backend_client(spec)?;
    let reply = client.health().map_err(|e| e.to_string())?;
    if args.flag("json") {
        println!("{}", reply.to_json().serialize());
        return Ok(());
    }
    println!("{}", reply.summary());
    println!("  serving mode:  {}", reply.serving_mode);
    println!(
        "  shed:          {} at admission, {} busy replies",
        reply.shed_admission, reply.shed_busy
    );
    if reply.faults_enabled {
        println!(
            "  faults:        enabled, {} injected, spec {:?}",
            reply.faults_injected, reply.fault_spec
        );
    } else {
        println!("  faults:        disabled");
    }
    if reply.cache.enabled {
        let s = &reply.cache.stats;
        println!(
            "  cache:         enabled, disk tier {}",
            if reply.cache.disk { "on" } else { "off" }
        );
        println!(
            "  cache breaker: {} ({} trips, {} recoveries, {} fast-fails, {} probes)",
            if s.disk_breaker_open {
                "OPEN — memory-only degraded mode"
            } else {
                "closed"
            },
            s.disk_breaker_trips,
            s.disk_breaker_recoveries,
            s.disk_breaker_fast_fails,
            s.disk_breaker_probes,
        );
    } else {
        println!("  cache:         disabled");
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().map(|s| s.as_str()) else {
        return usage();
    };
    let args = Args::parse(&argv[1..]);
    let result = match cmd {
        "gen" => cmd_gen(&args),
        "info" => cmd_info(&args),
        "disasm" => cmd_disasm(&args),
        "patch" => cmd_patch(&args),
        "hook" => cmd_hook(&args),
        "run" => cmd_run(&args),
        "health" => cmd_health(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("e9tool {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn check_flags_accepts_known_rejects_unknown() {
        let args = parse(&["demo.elf", "-o", "out.e9", "--b0", "--granularity", "4"]);
        assert!(args.check_flags(&["out", "b0", "granularity"]).is_ok());
        let err = args.check_flags(&["out", "b0"]).unwrap_err();
        assert!(err.contains("--granularity"), "{err}");
        // Several unknowns are all listed, deterministically sorted.
        let args = parse(&["x", "--zeta", "--alpha"]);
        let err = args.check_flags(&[]).unwrap_err();
        assert!(err.contains("--alpha, --zeta"), "{err}");
    }

    #[test]
    fn typo_of_a_value_flag_is_rejected_not_ignored() {
        // A user typing --granularty 4 must get an error, not a silent
        // default-granularity rewrite.
        let args = parse(&["demo.elf", "-o", "o.e9", "--granularty", "4"]);
        assert!(args.check_flags(&["out", "granularity"]).is_err());
    }

    #[test]
    fn backend_takes_a_value() {
        let args = parse(&["demo.elf", "-o", "o.e9", "--backend", "/tmp/e9.sock"]);
        assert_eq!(args.value("backend"), Some("/tmp/e9.sock"));
        assert_eq!(args.positional, vec!["demo.elf".to_string()]);
    }

    #[test]
    fn no_cache_with_cache_dir_is_a_named_conflict() {
        let args = parse(&["x", "-o", "o", "--no-cache", "--cache-dir", "/tmp/c"]);
        let err = resolve_cache_dir_from(&args, None).unwrap_err();
        assert!(err.contains("--no-cache"), "{err}");
        assert!(err.contains("--cache-dir"), "{err}");
    }

    #[test]
    fn cache_dir_with_backend_is_rejected_with_guidance() {
        let args = parse(&["x", "-o", "o", "--backend", "stdio", "--cache-dir", "/tmp/c"]);
        let err = resolve_cache_dir_from(&args, None).unwrap_err();
        assert!(err.contains("e9patchd --cache-dir"), "{err}");
    }

    #[test]
    fn cache_dir_flag_wins_over_environment() {
        let args = parse(&["x", "-o", "o", "--cache-dir", "/flag"]);
        let dir = resolve_cache_dir_from(&args, Some("/env".into())).unwrap();
        assert_eq!(dir, Some(std::path::PathBuf::from("/flag")));
    }

    #[test]
    fn environment_provides_a_default_and_no_cache_disables_it() {
        let plain = parse(&["x", "-o", "o"]);
        let dir = resolve_cache_dir_from(&plain, Some("/env".into())).unwrap();
        assert_eq!(dir, Some(std::path::PathBuf::from("/env")));
        let off = parse(&["x", "-o", "o", "--no-cache"]);
        assert_eq!(resolve_cache_dir_from(&off, Some("/env".into())).unwrap(), None);
    }

    #[test]
    fn ambient_cache_dir_is_ignored_behind_a_backend() {
        // env var + --backend silently caches nothing (the daemon owns its
        // cache); only the explicit flag spelling is a hard error.
        let args = parse(&["x", "-o", "o", "--backend", "stdio"]);
        assert_eq!(resolve_cache_dir_from(&args, Some("/env".into())).unwrap(), None);
    }

    #[test]
    fn cache_dir_requires_an_argument() {
        let args = parse(&["x", "-o", "o", "--cache-dir"]);
        let err = resolve_cache_dir_from(&args, None).unwrap_err();
        assert!(err.contains("DIR"), "{err}");
    }

    #[test]
    fn tcp_backend_accepts_well_formed_addresses() {
        assert!(check_tcp_backend("127.0.0.1:9990").is_ok());
        assert!(check_tcp_backend("localhost:1").is_ok());
        assert!(check_tcp_backend("[::1]:9990").is_ok());
    }

    #[test]
    fn malformed_tcp_backend_is_a_named_diagnostic() {
        // Missing port, empty host, non-numeric or out-of-range port:
        // each names the flag and the offending spec.
        for bad in ["", "127.0.0.1", ":9990", "host:", "host:http", "host:99999"] {
            let err = check_tcp_backend(bad).unwrap_err();
            assert!(err.contains("--backend tcp:"), "{err}");
            assert!(err.contains("ADDR:PORT"), "{err}");
            assert!(err.contains(&format!("tcp:{bad}")), "{err}");
        }
    }
}
