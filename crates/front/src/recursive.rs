//! Recursive-descent disassembly frontend.
//!
//! E9Patch's design treats disassembly info as an input so that different
//! techniques can feed it (paper §2.2: "partial, linear, recursive,
//! superset, probabilistic"). This module provides the classic
//! *recursive traversal* alternative to the linear sweep: start from the
//! entry point (and any extra roots), follow direct control-flow edges,
//! and decode only what is provably reachable.
//!
//! Recursive descent is *sound for code* (everything it returns is real,
//! reachable code — never data) but *incomplete*: targets of indirect
//! jumps/calls (jump tables, virtual dispatch) are invisible, so functions
//! reached only indirectly are missed. That trade-off is exactly why the
//! paper's coverage numbers depend on the frontend, not the rewriter.

use e9elf::Elf;
use e9x86::decode::decode;
use e9x86::insn::{Insn, Kind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Recursive-descent disassembly from `roots` over the executable
/// segments of `elf`.
///
/// Returns instructions in address order. Unreachable (or indirectly
/// reached) code is absent — compare with
/// [`crate::disassemble_text`].
pub fn recursive_sweep(elf: &Elf, roots: &[u64]) -> Vec<Insn> {
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut out: BTreeMap<u64, Insn> = BTreeMap::new();
    let mut work: VecDeque<u64> = roots.iter().copied().collect();

    let exec_ranges: Vec<(u64, u64)> = elf
        .load_segments()
        .filter(|p| p.p_flags & e9elf::types::PF_X != 0)
        .map(|p| (p.p_vaddr, p.p_vaddr + p.p_filesz))
        .collect();
    let in_exec = |a: u64| exec_ranges.iter().any(|&(lo, hi)| a >= lo && a < hi);

    while let Some(start) = work.pop_front() {
        let mut addr = start;
        // Walk a basic-block chain until an unconditional transfer or a
        // previously decoded address.
        while in_exec(addr) && seen.insert(addr) {
            let Ok(bytes) = elf.slice_at(addr, 16.min((exec_end(&exec_ranges, addr) - addr) as usize))
            else {
                break;
            };
            let Ok(insn) = decode(bytes, addr) else { break };
            out.insert(addr, insn);
            match insn.kind {
                Kind::JmpRel8 | Kind::JmpRel32 => {
                    if let Some(t) = insn.branch_target() {
                        work.push_back(t);
                    }
                    break; // no fallthrough
                }
                Kind::JccRel8(_) | Kind::JccRel32(_) | Kind::LoopRel8 => {
                    if let Some(t) = insn.branch_target() {
                        work.push_back(t);
                    }
                    addr = insn.end(); // fallthrough edge
                }
                Kind::CallRel32 => {
                    if let Some(t) = insn.branch_target() {
                        work.push_back(t);
                    }
                    addr = insn.end(); // call returns
                }
                Kind::Ret | Kind::JmpInd => break, // end of chain; indirect invisible
                Kind::Int3 => break,
                _ => addr = insn.end(),
            }
        }
    }
    out.into_values().collect()
}

/// Recursive descent rooted at the entry point *and every function
/// symbol* — the "partial disassembly with symbols" middle ground between
/// pure recursion and a linear sweep. Indirectly-reached code that carries
/// a symbol becomes visible.
pub fn recursive_sweep_with_symbols(elf: &Elf) -> Vec<Insn> {
    let mut roots = vec![elf.entry()];
    roots.extend(e9elf::symbols::parse(elf).iter().map(|s| s.value));
    recursive_sweep(elf, &roots)
}

fn exec_end(ranges: &[(u64, u64)], addr: u64) -> u64 {
    ranges
        .iter()
        .find(|&&(lo, hi)| addr >= lo && addr < hi)
        .map(|&(_, hi)| hi)
        .unwrap_or(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use e9synth::{generate, Profile};
    use e9x86::asm::Asm;
    use e9x86::insn::Cond;
    use e9x86::reg::{Reg, Width};

    #[test]
    fn follows_direct_edges_only() {
        // main: jcc over a block, call f, ret; g is never referenced
        // directly (dead or address-taken) → invisible to recursion.
        let mut a = Asm::new(0x401000);
        let f = a.fresh_label();
        let g = a.fresh_label();
        let skip = a.fresh_label();
        a.cmp_ri(Width::Q, Reg::Rax, 0);
        a.jcc(Cond::E, skip);
        a.add_ri(Width::Q, Reg::Rax, 1);
        a.bind(skip);
        a.call(f);
        a.ret();
        a.bind(f);
        a.add_ri(Width::Q, Reg::Rax, 2);
        a.ret();
        a.bind(g);
        a.add_ri(Width::Q, Reg::Rax, 3); // unreachable directly
        a.ret();
        let code = a.finish().unwrap();
        let g_off = code.len() - 5; // add(4) + ret(1)

        let mut b = e9elf::build::ElfBuilder::exec(0x400000);
        b.text(code, 0x401000);
        b.entry(0x401000);
        let elf = Elf::parse(&b.build()).unwrap();

        let insns = recursive_sweep(&elf, &[0x401000]);
        let addrs: Vec<u64> = insns.iter().map(|i| i.addr).collect();
        assert!(addrs.contains(&0x401000));
        // f's body reached through the call:
        assert!(insns.iter().any(|i| i.addr > 0x401000 && i.kind == Kind::Ret));
        // g unreached:
        assert!(
            !addrs.contains(&(0x401000 + g_off as u64)),
            "indirectly-unreferenced code should be invisible"
        );
    }

    #[test]
    fn subset_of_linear_sweep_and_misses_jump_table_targets() {
        let mut p = Profile::tiny("recurse", false);
        p.switch_pct = 100; // guarantee jump tables
        p.funcs = 6;
        let sb = generate(&p);
        let elf = Elf::parse(&sb.binary).unwrap();
        let rec = recursive_sweep(&elf, &[sb.entry]);
        let lin: std::collections::BTreeSet<u64> = sb.disasm.iter().map(|i| i.addr).collect();
        // Soundness: every recursively found instruction is in the linear
        // sweep of real code.
        for i in &rec {
            assert!(lin.contains(&i.addr), "{:#x} not real code", i.addr);
        }
        // Incompleteness: the generator's switch cases are reached only
        // through indirect jumps, so recursion finds strictly less.
        assert!(
            rec.len() < sb.disasm.len(),
            "recursive {} vs linear {}",
            rec.len(),
            sb.disasm.len()
        );
    }

    #[test]
    fn symbol_roots_recover_indirect_targets() {
        let mut p = Profile::tiny("recsym", false);
        p.switch_pct = 100;
        p.funcs = 6;
        let sb = generate(&p);
        let elf = Elf::parse(&sb.binary).unwrap();
        let plain = recursive_sweep(&elf, &[sb.entry]);
        let with_syms = recursive_sweep_with_symbols(&elf);
        // Symbols reveal every function body even when only indirectly
        // called; switch-case interiors remain invisible to both.
        assert!(
            with_syms.len() > plain.len(),
            "symbols should widen coverage: {} vs {}",
            with_syms.len(),
            plain.len()
        );
        let lin: std::collections::BTreeSet<u64> = sb.disasm.iter().map(|i| i.addr).collect();
        for i in &with_syms {
            assert!(lin.contains(&i.addr), "{:#x} not real code", i.addr);
        }
    }

    #[test]
    fn rewriting_with_recursive_frontend_preserves_behaviour() {
        let p = Profile::tiny("recurse2", false);
        let sb = generate(&p);
        let elf = Elf::parse(&sb.binary).unwrap();
        let rec = recursive_sweep(&elf, &[sb.entry]);
        let orig = e9vm::run_binary(&sb.binary, 50_000_000).unwrap();
        let out = crate::instrument_with_disasm(
            &sb.binary,
            &rec,
            &crate::Options::new(crate::Application::A1Jumps, crate::Payload::Empty),
        )
        .unwrap();
        let patched = e9vm::run_binary(&out.rewrite.binary, 100_000_000).unwrap();
        assert_eq!(patched.output, orig.output);
    }
}
