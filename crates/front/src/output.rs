//! Crash-safe output writing.
//!
//! A rewriter that dies mid-write must not leave a truncated binary at
//! the output path — a half-written executable is worse than no output,
//! because it can look valid enough to ship. [`write_atomic`] gives the
//! emit path the standard temp-file + fsync + rename discipline: at every
//! instant the output path either does not exist, still holds its
//! previous contents, or holds the complete new contents.
//!
//! The operation is split into *stage* (write and flush a temporary file
//! in the destination directory) and *commit* (atomic rename over the
//! destination), so the failure window can be tested: killing the process
//! between the two steps leaves only a `.e9tmp` droppings file, never a
//! damaged destination.

use e9failpt::retry::{retry_interrupted, EINTR_BUDGET};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Name of the staging file for `path`: same directory (renames must not
/// cross filesystems), process-id suffixed so concurrent writers to
/// different outputs in one directory cannot collide.
fn stage_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    path.with_file_name(format!(".{name}.{}.e9tmp", std::process::id()))
}

/// Stage `bytes` for `path`: write them to a temporary file in the same
/// directory and flush them to stable storage. Returns the staging path.
///
/// # Errors
///
/// Creation, write or sync failures; on failure the staging file is
/// removed again.
pub fn stage(path: &Path, bytes: &[u8]) -> io::Result<PathBuf> {
    let tmp = stage_path(path);
    let result = (|| {
        e9failpt::fail_io("front.output.stage")?;
        let mut f = retry_interrupted(EINTR_BUDGET, || fs::File::create(&tmp))?;
        write_all_resilient(&mut f, bytes)?;
        retry_interrupted(EINTR_BUDGET, || f.sync_all())
    })();
    match result {
        Ok(()) => Ok(tmp),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// `write_all` with explicit short-write handling and a bounded EINTR
/// retry budget, so a signal-heavy environment (profilers, debuggers,
/// container runtimes delivering SIGCHLD storms) cannot fail a finished
/// rewrite. Short writes only ever shrink the remaining slice, so the
/// loop makes ≥ 1 byte of progress per iteration and terminates.
fn write_all_resilient(f: &mut fs::File, mut bytes: &[u8]) -> io::Result<()> {
    while !bytes.is_empty() {
        let want = bytes.len();
        let n = retry_interrupted(EINTR_BUDGET, || {
            let admitted = e9failpt::write_len("front.output.write", want)?;
            f.write(&bytes[..admitted])
        })?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "file write made no progress",
            ));
        }
        bytes = &bytes[n..];
    }
    Ok(())
}

/// Commit a staged file over `path` (atomic rename), then best-effort
/// flush the directory entry.
///
/// # Errors
///
/// Rename failures; on failure the staging file is removed again and the
/// previous contents of `path` (if any) are untouched.
pub fn commit(tmp: &Path, path: &Path) -> io::Result<()> {
    if let Err(e) = e9failpt::fail_io("front.output.commit").and_then(|()| fs::rename(tmp, path)) {
        let _ = fs::remove_file(tmp);
        return Err(e);
    }
    // The rename is durable only once the directory is synced; failure
    // here costs durability-on-power-loss, not consistency, so it is
    // best-effort.
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Write `bytes` to `path` crash-safely: stage + fsync + atomic rename.
/// An interrupted write leaves `path` absent or fully intact (old or new
/// contents), never truncated.
///
/// # Errors
///
/// Staging or rename failures; `path` is untouched on error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = stage(path, bytes)?;
    commit(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("e9front-output-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_fresh_file_and_leaves_no_droppings() {
        let d = tmpdir("fresh");
        let out = d.join("a.bin");
        write_atomic(&out, b"hello").unwrap();
        assert_eq!(fs::read(&out).unwrap(), b"hello");
        let others: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "a.bin")
            .collect();
        assert!(others.is_empty(), "staging droppings left: {others:?}");
    }

    #[test]
    fn replaces_existing_file_completely() {
        let d = tmpdir("replace");
        let out = d.join("a.bin");
        fs::write(&out, vec![0xAA; 4096]).unwrap();
        write_atomic(&out, b"short").unwrap();
        assert_eq!(fs::read(&out).unwrap(), b"short");
    }

    #[test]
    fn staged_but_uncommitted_leaves_destination_alone() {
        // The crash window: a process dying after stage() but before
        // commit() must leave the old output intact.
        let d = tmpdir("window");
        let out = d.join("a.bin");
        fs::write(&out, b"previous").unwrap();
        let tmp = stage(&out, b"next").unwrap();
        assert_eq!(fs::read(&out).unwrap(), b"previous");
        commit(&tmp, &out).unwrap();
        assert_eq!(fs::read(&out).unwrap(), b"next");
    }

    #[test]
    fn failed_stage_removes_droppings_and_keeps_destination() {
        let d = tmpdir("fail");
        let out = d.join("no-such-dir").join("a.bin");
        assert!(write_atomic(&out, b"x").is_err());
        assert!(!out.exists());
    }
}
