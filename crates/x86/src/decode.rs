//! x86_64 instruction decoder.
//!
//! A table-driven length decoder with enough operand extraction for the
//! rewriter (branch kinds, displacement/immediate offsets, pun geometry) and
//! the emulator (ModRM operands, immediates). It covers the full one-byte
//! map, the `0F` two-byte map, the `0F 38`/`0F 3A` three-byte maps and VEX
//! (`C4`/`C5`) length decoding.
//!
//! The decoder is deliberately *local*: it decodes one instruction from a
//! byte slice at a given virtual address and never consults global state —
//! mirroring E9Patch's design where disassembly information is an input, not
//! something the rewriter recovers.

use crate::insn::{Cond, Insn, Kind, MemOperand, ModRm, Opcode};
use crate::prefix::{self, Prefixes};
use crate::reg::{Reg, Width};
use crate::MAX_INSN_LEN;
use std::fmt;

/// Errors produced by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte slice ended before the instruction was complete.
    Truncated,
    /// The opcode is invalid in 64-bit mode.
    Invalid(u8),
    /// The instruction would exceed the 15-byte architectural limit.
    TooLong,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction truncated"),
            DecodeError::Invalid(b) => write!(f, "invalid opcode {b:#04x} in 64-bit mode"),
            DecodeError::TooLong => write!(f, "instruction exceeds 15 bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode attribute flags.
const MODRM: u16 = 1 << 0;
const I8: u16 = 1 << 1;
const I16: u16 = 1 << 2;
const IZ: u16 = 1 << 3; // 2 or 4 bytes by operand size
const IV: u16 = 1 << 4; // 2, 4 or 8 bytes (B8..BF only)
const REL8: u16 = 1 << 5;
const RELZ: u16 = 1 << 6; // always 4 in 64-bit mode
const MOFFS: u16 = 1 << 7; // address-size immediate (8, or 4 with 0x67)
const ENTER: u16 = 1 << 8; // imm16 + imm8
const INV: u16 = 1 << 9; // invalid in 64-bit mode
const GRPIMM: u16 = 1 << 10; // F6/F7: imm present iff modrm.reg is 0 or 1

const fn attr_one(op: u8) -> u16 {
    match op {
        // ALU r/m forms: add, or, adc, sbb, and, sub, xor, cmp.
        0x00..=0x03 | 0x08..=0x0B | 0x10..=0x13 | 0x18..=0x1B | 0x20..=0x23 | 0x28..=0x2B
        | 0x30..=0x33 | 0x38..=0x3B => MODRM,
        // ALU accumulator-immediate forms.
        0x04 | 0x0C | 0x14 | 0x1C | 0x24 | 0x2C | 0x34 | 0x3C => I8,
        0x05 | 0x0D | 0x15 | 0x1D | 0x25 | 0x2D | 0x35 | 0x3D => IZ,
        // Legacy segment push/pop, BCD adjust, pusha/popa, bound, far call,
        // les/lds (reused as VEX, handled before the table), salc, etc.
        0x06 | 0x07 | 0x0E | 0x16 | 0x17 | 0x1E | 0x1F | 0x27 | 0x2F | 0x37 | 0x3F | 0x60
        | 0x61 | 0x62 | 0x82 | 0x9A | 0xC4 | 0xC5 | 0xD4 | 0xD5 | 0xD6 | 0xEA => INV,
        // 0x0F two-byte escape and prefixes are consumed before table lookup;
        // mark them invalid here so stray lookups are caught.
        0x0F | 0x26 | 0x2E | 0x36 | 0x3E | 0x40..=0x4F | 0x64..=0x67 | 0xF0 | 0xF2 | 0xF3 => INV,
        0x50..=0x5F => 0, // push/pop r64
        0x63 => MODRM,    // movsxd
        0x68 => IZ,       // push imm
        0x69 => MODRM | IZ,
        0x6A => I8, // push imm8
        0x6B => MODRM | I8,
        0x6C..=0x6F => 0,   // ins/outs
        0x70..=0x7F => REL8, // jcc rel8
        0x80 => MODRM | I8,
        0x81 => MODRM | IZ,
        0x83 => MODRM | I8,
        0x84..=0x8F => MODRM, // test/xchg/mov/lea/mov-seg/pop r/m
        0x90..=0x99 => 0,     // nop/xchg/cwde/cdq
        0x9B..=0x9F => 0,     // wait/pushf/popf/sahf/lahf
        0xA0..=0xA3 => MOFFS, // mov moffs
        0xA4..=0xA7 => 0,     // movs/cmps
        0xA8 => I8,
        0xA9 => IZ,
        0xAA..=0xAF => 0,   // stos/lods/scas
        0xB0..=0xB7 => I8,  // mov r8, imm8
        0xB8..=0xBF => IV,  // mov r, imm
        0xC0 | 0xC1 => MODRM | I8,
        0xC2 => I16, // ret imm16
        0xC3 => 0,
        0xC6 => MODRM | I8,
        0xC7 => MODRM | IZ,
        0xC8 => ENTER,
        0xC9 => 0,
        0xCA => I16,
        0xCB..=0xCC => 0,
        0xCD => I8,
        0xCE => INV,
        0xCF => 0,
        0xD0..=0xD3 => MODRM, // shift groups
        0xD7 => 0,            // xlat
        0xD8..=0xDF => MODRM, // x87
        0xE0..=0xE3 => REL8,  // loop/jrcxz
        0xE4..=0xE7 => I8,    // in/out imm8
        0xE8 | 0xE9 => RELZ,
        0xEB => REL8,
        0xEC..=0xEF => 0, // in/out dx
        0xF1 | 0xF4 | 0xF5 => 0,
        0xF6 | 0xF7 => MODRM | GRPIMM,
        0xF8..=0xFD => 0,
        0xFE | 0xFF => MODRM,
    }
}

const fn attr_two(op: u8) -> u16 {
    match op {
        0x00..=0x03 => MODRM, // group 6/7, lar, lsl
        0x05..=0x09 => 0,     // syscall, clts, sysret, invd, wbinvd
        0x0B => 0,            // ud2
        0x0D => MODRM,        // prefetch
        0x0E => 0,            // femms
        0x0F => MODRM | I8,   // 3DNow!
        0x10..=0x17 => MODRM,
        0x18..=0x1F => MODRM, // hint-NOP space (incl. the canonical 0F 1F /0)
        0x20..=0x23 => MODRM, // mov cr/dr
        0x28..=0x2F => MODRM,
        0x30..=0x37 => 0, // wrmsr/rdtsc/rdmsr/rdpmc/sysenter/sysexit/getsec
        0x40..=0x4F => MODRM, // cmovcc
        0x50..=0x6F => MODRM,
        0x70..=0x73 => MODRM | I8, // pshuf / shift groups
        0x74..=0x76 => MODRM,
        0x77 => 0, // emms
        0x78 | 0x79 => MODRM,
        0x7C..=0x7F => MODRM,
        0x80..=0x8F => RELZ,  // jcc rel32
        0x90..=0x9F => MODRM, // setcc
        0xA0..=0xA2 => 0,     // push/pop fs, cpuid
        0xA3 => MODRM,        // bt
        0xA4 => MODRM | I8,   // shld imm8
        0xA5 => MODRM,
        0xA8..=0xAA => 0, // push/pop gs, rsm
        0xAB => MODRM,
        0xAC => MODRM | I8, // shrd imm8
        0xAD..=0xAF => MODRM,
        0xB0..=0xB7 => MODRM,
        0xB8 | 0xB9 => MODRM, // popcnt (F3), ud1/group10
        0xBA => MODRM | I8,   // group 8
        0xBB..=0xBF => MODRM,
        0xC0 | 0xC1 => MODRM, // xadd
        0xC2 => MODRM | I8,
        0xC3 => MODRM,             // movnti
        0xC4..=0xC6 => MODRM | I8, // pinsrw/pextrw/shufps
        0xC7 => MODRM,             // group 9 (cmpxchg8b/16b)
        0xC8..=0xCF => 0,          // bswap
        0xD0..=0xFF => MODRM,      // MMX/SSE arithmetic
        _ => INV,
    }
}

static TABLE_ONE: [u16; 256] = {
    let mut t = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = attr_one(i as u8);
        i += 1;
    }
    t
};

static TABLE_TWO: [u16; 256] = {
    let mut t = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = attr_two(i as u8);
        i += 1;
    }
    t
};

/// Opcodes in the one-byte map whose operands are 8-bit.
const fn is_byte_op_one(op: u8) -> bool {
    matches!(
        op,
        0x00 | 0x02 | 0x04 | 0x08 | 0x0A | 0x0C | 0x10 | 0x12 | 0x14 | 0x18 | 0x1A | 0x1C
            | 0x20 | 0x22 | 0x24 | 0x28 | 0x2A | 0x2C | 0x30 | 0x32 | 0x34 | 0x38 | 0x3A
            | 0x3C | 0x80 | 0x84 | 0x86 | 0x88 | 0x8A | 0xA0 | 0xA2 | 0xA4 | 0xA6 | 0xA8
            | 0xAA | 0xAC | 0xAE | 0xB0..=0xB7 | 0xC0 | 0xC6 | 0xCC | 0xD0 | 0xD2 | 0xE4
            | 0xE6 | 0xEC | 0xEE | 0xF6 | 0xFE
    )
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Result<u8, DecodeError> {
        self.bytes.get(self.pos).copied().ok_or(DecodeError::Truncated)
    }

    fn next(&mut self) -> Result<u8, DecodeError> {
        let b = self.peek()?;
        self.pos += 1;
        if self.pos > MAX_INSN_LEN {
            return Err(DecodeError::TooLong);
        }
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        if self.pos + n > MAX_INSN_LEN {
            return Err(DecodeError::TooLong);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

fn read_signed(bytes: &[u8]) -> i64 {
    let mut v: u64 = 0;
    for (i, b) in bytes.iter().enumerate() {
        v |= (*b as u64) << (8 * i);
    }
    let bits = bytes.len() as u32 * 8;
    if bits == 0 || bits == 64 {
        v as i64
    } else {
        let sh = 64 - bits;
        ((v << sh) as i64) >> sh
    }
}

/// Decode one instruction from the start of `bytes`, assumed to reside at
/// virtual address `addr`.
///
/// At most [`MAX_INSN_LEN`] bytes are consumed. The slice may be longer than
/// the instruction.
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] if `bytes` ends mid-instruction,
/// [`DecodeError::Invalid`] for opcodes that do not exist in 64-bit mode and
/// [`DecodeError::TooLong`] if prefixes push the instruction past 15 bytes.
pub fn decode(bytes: &[u8], addr: u64) -> Result<Insn, DecodeError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let mut pfx = Prefixes::default();

    // Prefix scan: legacy prefixes in any order; a REX byte only takes
    // effect if it immediately precedes the opcode (hardware ignores earlier
    // ones).
    loop {
        let b = cur.peek()?;
        if prefix::is_legacy_prefix(b) {
            cur.next()?;
            pfx.count += 1;
            pfx.rex = None; // a legacy prefix after REX voids the REX
            match b {
                prefix::LOCK => pfx.lock = true,
                prefix::REP => pfx.rep = true,
                prefix::REPNE => pfx.repne = true,
                prefix::OPSIZE => pfx.opsize = true,
                prefix::ADDRSIZE => pfx.addrsize = true,
                _ => pfx.segment = Some(b),
            }
        } else if prefix::is_rex(b) {
            cur.next()?;
            pfx.count += 1;
            pfx.rex = Some(b);
        } else {
            break;
        }
        if pfx.count as usize >= MAX_INSN_LEN {
            return Err(DecodeError::TooLong);
        }
    }

    // Opcode dispatch.
    let b0 = cur.next()?;
    let (opcode, attrs) = match b0 {
        0x0F => {
            let b1 = cur.next()?;
            match b1 {
                0x38 => {
                    let b2 = cur.next()?;
                    (Opcode::ThreeOf38(b2), MODRM)
                }
                0x3A => {
                    let b2 = cur.next()?;
                    (Opcode::ThreeOf3A(b2), MODRM | I8)
                }
                _ => {
                    let a = TABLE_TWO[b1 as usize];
                    if a & INV != 0 {
                        return Err(DecodeError::Invalid(b1));
                    }
                    (Opcode::TwoOf(b1), a)
                }
            }
        }
        // VEX (C4 = 3-byte, C5 = 2-byte). LES/LDS do not exist in 64-bit
        // mode so these bytes are always VEX.
        0xC4 => {
            let v1 = cur.next()?;
            let _v2 = cur.next()?;
            let op = cur.next()?;
            let map = v1 & 0x1F;
            let a = match map {
                1 => TABLE_TWO[op as usize] & (MODRM | I8),
                2 => MODRM,
                3 => MODRM | I8,
                _ => return Err(DecodeError::Invalid(0xC4)),
            };
            (Opcode::Vex(map, op), a)
        }
        0xC5 => {
            let _v1 = cur.next()?;
            let op = cur.next()?;
            let a = TABLE_TWO[op as usize] & (MODRM | I8);
            (Opcode::Vex(1, op), a)
        }
        _ => {
            let a = TABLE_ONE[b0 as usize];
            if a & INV != 0 {
                return Err(DecodeError::Invalid(b0));
            }
            (Opcode::One(b0), a)
        }
    };

    // ModRM / SIB / displacement.
    let mut modrm = None;
    if attrs & MODRM != 0 {
        let m = cur.next()?;
        let md = m >> 6;
        let reg = ((m >> 3) & 7) | if pfx.rex_r() { 8 } else { 0 };
        let rm3 = m & 7;
        let rm = rm3 | if pfx.rex_b() { 8 } else { 0 };
        let mut info = ModRm {
            byte: m,
            reg,
            rm,
            mem: None,
            disp_offset: 0,
            disp_len: 0,
        };
        if md != 3 {
            let mut mem = MemOperand {
                base: None,
                index: None,
                disp: 0,
                rip_relative: false,
            };
            let mut disp_len: u8 = match md {
                0 => 0,
                1 => 1,
                _ => 4,
            };
            if rm3 == 4 {
                // SIB byte.
                let sib = cur.next()?;
                let scale = 1u8 << (sib >> 6);
                let idx3 = (sib >> 3) & 7;
                let base3 = sib & 7;
                let index = idx3 | if pfx.rex_x() { 8 } else { 0 };
                if index != 4 {
                    mem.index = Some((Reg::from_num(index), scale));
                }
                if base3 == 5 && md == 0 {
                    disp_len = 4; // no base, disp32
                } else {
                    mem.base = Some(Reg::from_num(base3 | if pfx.rex_b() { 8 } else { 0 }));
                }
            } else if rm3 == 5 && md == 0 {
                // RIP-relative in 64-bit mode.
                mem.rip_relative = true;
                disp_len = 4;
            } else {
                mem.base = Some(Reg::from_num(rm));
            }
            if disp_len > 0 {
                info.disp_offset = cur.pos as u8;
                info.disp_len = disp_len;
                let d = cur.take(disp_len as usize)?;
                mem.disp = read_signed(d) as i32;
            }
            info.mem = Some(mem);
        }
        modrm = Some(info);
    }

    // Immediate.
    let imm_size: usize = if attrs & I8 != 0 {
        1
    } else if attrs & I16 != 0 {
        2
    } else if attrs & IZ != 0 {
        if pfx.opsize {
            2
        } else {
            4
        }
    } else if attrs & IV != 0 {
        if pfx.rex_w() {
            8
        } else if pfx.opsize {
            2
        } else {
            4
        }
    } else if attrs & REL8 != 0 {
        1
    } else if attrs & RELZ != 0 {
        // Near-branch displacements stay 32-bit in 64-bit mode.
        4
    } else if attrs & MOFFS != 0 {
        if pfx.addrsize {
            4
        } else {
            8
        }
    } else if attrs & ENTER != 0 {
        3
    } else if attrs & GRPIMM != 0 {
        // F6/F7 group 3: test takes an immediate (reg field 0 or 1).
        match modrm.map(|m| m.reg & 7) {
            Some(0) | Some(1) => {
                if b0 == 0xF6 {
                    1
                } else if pfx.opsize {
                    2
                } else {
                    4
                }
            }
            _ => 0,
        }
    } else {
        0
    };

    let imm_offset = cur.pos as u8;
    let imm = if imm_size > 0 {
        read_signed(cur.take(imm_size)?)
    } else {
        0
    };

    let len = cur.pos;
    let raw = &bytes[..len];

    // Effective operand width.
    let byte_op = match opcode {
        Opcode::One(op) => is_byte_op_one(op),
        // setcc, cmpxchg8, xadd8 are byte ops; movzx/movsx are NOT — their
        // destination takes the full operand size.
        Opcode::TwoOf(op) => matches!(op, 0x90..=0x9F | 0xB0 | 0xC0),
        _ => false,
    };
    let width = if byte_op {
        Width::B
    } else if pfx.rex_w() {
        Width::Q
    } else if pfx.opsize {
        Width::W
    } else {
        Width::D
    };

    // Classification.
    let kind = match opcode {
        Opcode::One(0xEB) => Kind::JmpRel8,
        Opcode::One(0xE9) => Kind::JmpRel32,
        Opcode::One(op @ 0x70..=0x7F) => Kind::JccRel8(Cond::from_nibble(op & 0x0F)),
        Opcode::TwoOf(op @ 0x80..=0x8F) => Kind::JccRel32(Cond::from_nibble(op & 0x0F)),
        Opcode::One(0xE8) => Kind::CallRel32,
        Opcode::One(0xE0..=0xE3) => Kind::LoopRel8,
        Opcode::One(0xFF) => match modrm.map(|m| m.reg & 7) {
            Some(2) | Some(3) => Kind::CallInd,
            Some(4) | Some(5) => Kind::JmpInd,
            _ => Kind::Other,
        },
        Opcode::One(0xC2 | 0xC3 | 0xCA | 0xCB) => Kind::Ret,
        Opcode::One(0xCC) => Kind::Int3,
        Opcode::TwoOf(0x05) => Kind::Syscall,
        _ => Kind::Other,
    };

    Ok(Insn::from_parts(
        addr,
        raw,
        pfx,
        opcode,
        modrm,
        imm,
        imm_offset,
        imm_size as u8,
        kind,
        width,
    ))
}

/// Linearly disassemble `code` starting at `vaddr`, returning the decoded
/// instructions.
///
/// Undecodable bytes are skipped one byte at a time (recorded as gaps by the
/// caller if needed) — this mirrors the paper's tolerant linear-disassembly
/// frontend.
pub fn linear_sweep(code: &[u8], vaddr: u64) -> Vec<Insn> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < code.len() {
        match decode(&code[off..], vaddr + off as u64) {
            Ok(i) => {
                let l = i.len();
                out.push(i);
                off += l;
            }
            Err(_) => off += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Kind;

    fn dec(bytes: &[u8]) -> Insn {
        decode(bytes, 0x400000).expect("decode failed")
    }

    #[test]
    fn paper_example_mov() {
        // mov %rax,(%rbx): 48 89 03 — the §2.1.3 patch instruction.
        let i = dec(&[0x48, 0x89, 0x03]);
        assert_eq!(i.len(), 3);
        assert!(i.writes_memory());
        assert!(i.is_heap_write());
        assert_eq!(i.kind, Kind::Other);
    }

    #[test]
    fn paper_example_add_imm() {
        // add $32,%rax: 48 83 c0 20.
        let i = dec(&[0x48, 0x83, 0xC0, 0x20]);
        assert_eq!(i.len(), 4);
        assert_eq!(i.imm, 32);
        assert!(!i.writes_memory()); // register destination
    }

    #[test]
    fn paper_example_xor() {
        // xor %rax,%rcx: 48 31 c1.
        let i = dec(&[0x48, 0x31, 0xC1]);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn paper_example_cmpl() {
        // cmpl $77,-4(%rbx): 83 7b fc 4d.
        let i = dec(&[0x83, 0x7B, 0xFC, 0x4D]);
        assert_eq!(i.len(), 4);
        assert_eq!(i.imm, 77);
        let m = i.modrm.unwrap().mem.unwrap();
        assert_eq!(m.disp, -4);
        assert!(!i.writes_memory()); // /7 = cmp
    }

    #[test]
    fn paper_example_testb() {
        // testb $0x2,0x18(%rbx): f6 43 18 02 (Figure 2 victim).
        let i = dec(&[0xF6, 0x43, 0x18, 0x02]);
        assert_eq!(i.len(), 4);
        assert_eq!(i.imm, 2);
        assert!(!i.writes_memory());
    }

    #[test]
    fn jmp_rel32() {
        // e9 be fc ff ff: jmpq 422726 from Figure 2(b) at 422a63.
        let i = decode(&[0xE9, 0xBE, 0xFC, 0xFF, 0xFF], 0x422a63).unwrap();
        assert_eq!(i.kind, Kind::JmpRel32);
        assert_eq!(i.branch_target(), Some(0x422726));
    }

    #[test]
    fn jmp_rel8() {
        // eb 70: jmp 422ad3 from 422a61.
        let i = decode(&[0xEB, 0x70], 0x422a61).unwrap();
        assert_eq!(i.kind, Kind::JmpRel8);
        assert_eq!(i.branch_target(), Some(0x422ad3));
    }

    #[test]
    fn jcc_rel8_and_rel32() {
        let i = decode(&[0x74, 0x27], 0x422ad5).unwrap();
        assert_eq!(i.kind, Kind::JccRel8(Cond::E));
        assert_eq!(i.branch_target(), Some(0x422afe));
        let i = dec(&[0x0F, 0x84, 0x10, 0x00, 0x00, 0x00]);
        assert_eq!(i.kind, Kind::JccRel32(Cond::E));
        assert_eq!(i.len(), 6);
    }

    #[test]
    fn call_and_indirect() {
        let i = dec(&[0xE8, 0x00, 0x00, 0x00, 0x00]);
        assert_eq!(i.kind, Kind::CallRel32);
        // callq *0x2a2a6f(%rip): ff 15 6f 2a 2a 00 (Figure 2(b)).
        let i = dec(&[0xFF, 0x15, 0x6F, 0x2A, 0x2A, 0x00]);
        assert_eq!(i.kind, Kind::CallInd);
        assert!(i.modrm.unwrap().mem.unwrap().rip_relative);
        // jmpq *%rax: ff e0.
        let i = dec(&[0xFF, 0xE0]);
        assert_eq!(i.kind, Kind::JmpInd);
        assert!(i.modrm.unwrap().is_reg_direct());
        // jmpq *(%rax,%rbx,8): ff 24 d8.
        let i = dec(&[0xFF, 0x24, 0xD8]);
        assert_eq!(i.kind, Kind::JmpInd);
        let mem = i.modrm.unwrap().mem.unwrap();
        assert_eq!(mem.base, Some(Reg::Rax));
        assert_eq!(mem.index, Some((Reg::Rbx, 8)));
    }

    #[test]
    fn ret_int3_syscall() {
        assert_eq!(dec(&[0xC3]).kind, Kind::Ret);
        assert_eq!(dec(&[0xC2, 0x08, 0x00]).kind, Kind::Ret);
        assert_eq!(dec(&[0xCC]).kind, Kind::Int3);
        assert_eq!(dec(&[0x0F, 0x05]).kind, Kind::Syscall);
    }

    #[test]
    fn mov_imm64() {
        // movabs $0x1122334455667788,%rax: 48 b8 ...
        let i = dec(&[0x48, 0xB8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]);
        assert_eq!(i.len(), 10);
        assert_eq!(i.imm, 0x1122334455667788);
    }

    #[test]
    fn mov_imm32_sizes() {
        let i = dec(&[0xB8, 0x01, 0x00, 0x00, 0x00]); // mov $1,%eax
        assert_eq!(i.len(), 5);
        let i = dec(&[0x66, 0xB8, 0x01, 0x00]); // mov $1,%ax
        assert_eq!(i.len(), 4);
    }

    #[test]
    fn sib_forms() {
        // mov %rax,(%rsp): 48 89 04 24.
        let i = dec(&[0x48, 0x89, 0x04, 0x24]);
        assert_eq!(i.len(), 4);
        assert_eq!(i.modrm.unwrap().mem.unwrap().base, Some(Reg::Rsp));
        assert!(!i.is_heap_write()); // rsp-based excluded from A2
        // mov %rax,0x10(%rbp,%rcx,4): 48 89 44 8d 10.
        let i = dec(&[0x48, 0x89, 0x44, 0x8D, 0x10]);
        assert_eq!(i.len(), 5);
        let m = i.modrm.unwrap().mem.unwrap();
        assert_eq!(m.base, Some(Reg::Rbp));
        assert_eq!(m.index, Some((Reg::Rcx, 4)));
        assert_eq!(m.disp, 0x10);
        assert!(i.is_heap_write());
        // Absolute disp32 (SIB base=101, mod=0): mov %eax,0x1000: 89 04 25 00 10 00 00.
        let i = dec(&[0x89, 0x04, 0x25, 0x00, 0x10, 0x00, 0x00]);
        assert_eq!(i.len(), 7);
        let m = i.modrm.unwrap().mem.unwrap();
        assert_eq!(m.base, None);
        assert_eq!(m.disp, 0x1000);
    }

    #[test]
    fn rip_relative() {
        // mov %rax,0x200000(%rip): 48 89 05 00 00 20 00.
        let i = dec(&[0x48, 0x89, 0x05, 0x00, 0x00, 0x20, 0x00]);
        let m = i.modrm.unwrap();
        assert!(m.mem.unwrap().rip_relative);
        assert_eq!(m.disp_offset, 3);
        assert_eq!(m.disp_len, 4);
        assert!(i.writes_memory());
        assert!(!i.is_heap_write()); // rip-relative excluded from A2
    }

    #[test]
    fn r13_and_rbp_disp0_still_need_disp8() {
        // mov %rax,(%rbp) must encode as disp8=0: 48 89 45 00.
        let i = dec(&[0x48, 0x89, 0x45, 0x00]);
        assert_eq!(i.len(), 4);
        assert_eq!(i.modrm.unwrap().mem.unwrap().base, Some(Reg::Rbp));
        // mov %rax,(%r13): 49 89 45 00.
        let i = dec(&[0x49, 0x89, 0x45, 0x00]);
        assert_eq!(i.modrm.unwrap().mem.unwrap().base, Some(Reg::R13));
    }

    #[test]
    fn group3_test_has_immediate() {
        // testq $0x7,(%rax): 48 f7 00 07 00 00 00.
        let i = dec(&[0x48, 0xF7, 0x00, 0x07, 0x00, 0x00, 0x00]);
        assert_eq!(i.len(), 7);
        assert_eq!(i.imm, 7);
        // negq (%rax): 48 f7 18 — no immediate, writes memory.
        let i = dec(&[0x48, 0xF7, 0x18]);
        assert_eq!(i.len(), 3);
        assert!(i.writes_memory());
    }

    #[test]
    fn push_pop_and_nop() {
        assert_eq!(dec(&[0x50]).len(), 1); // push %rax
        assert_eq!(dec(&[0x41, 0x57]).len(), 2); // push %r15
        assert_eq!(dec(&[0x90]).len(), 1);
        // Canonical multi-byte nop: 0f 1f 44 00 00.
        assert_eq!(dec(&[0x0F, 0x1F, 0x44, 0x00, 0x00]).len(), 5);
        // 66 0f 1f 84 00 00 00 00 00 (9-byte nop).
        assert_eq!(
            dec(&[0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00]).len(),
            9
        );
    }

    #[test]
    fn movzx_movsx() {
        // movzbl (%rdi),%eax: 0f b6 07.
        let i = dec(&[0x0F, 0xB6, 0x07]);
        assert_eq!(i.len(), 3);
        assert!(!i.writes_memory());
        // movsxd %edi,%rax (63 /r with REX.W): 48 63 c7.
        assert_eq!(dec(&[0x48, 0x63, 0xC7]).len(), 3);
    }

    #[test]
    fn lea_is_not_memory_access() {
        // lea 0x8(%rbx),%rax: 48 8d 43 08.
        let i = dec(&[0x48, 0x8D, 0x43, 0x08]);
        assert!(!i.writes_memory());
        assert!(!i.is_heap_write());
    }

    #[test]
    fn string_ops() {
        // stosb: aa; rep stosq: f3 48 ab.
        assert!(dec(&[0xAA]).writes_memory());
        let i = dec(&[0xF3, 0x48, 0xAB]);
        assert_eq!(i.len(), 3);
        assert!(i.prefixes.rep);
        assert!(i.writes_memory());
    }

    #[test]
    fn invalid_in_64bit() {
        for b in [0x06u8, 0x27, 0x60, 0x61, 0x9A, 0xD4, 0xEA, 0xCE] {
            assert_eq!(decode(&[b, 0, 0, 0, 0, 0, 0], 0), Err(DecodeError::Invalid(b)));
        }
    }

    #[test]
    fn truncation() {
        assert_eq!(decode(&[0xE9, 0x00], 0), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x48], 0), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x48, 0x89], 0), Err(DecodeError::Truncated));
    }

    #[test]
    fn too_long_prefix_run() {
        let bytes = [0x66u8; 16];
        assert_eq!(decode(&bytes, 0), Err(DecodeError::TooLong));
    }

    #[test]
    fn redundant_prefix_padded_jump_decodes() {
        // T1(a)-style padded jump: 48 e9 d7 c0 83 20 — REX.W + jmpq.
        let i = dec(&[0x48, 0xE9, 0xD7, 0xC0, 0x83, 0x20]);
        assert_eq!(i.kind, Kind::JmpRel32);
        assert_eq!(i.len(), 6);
        // T1(b)-style: 48 26 e9 ... — REX voided by later legacy prefix.
        let i = dec(&[0x48, 0x26, 0xE9, 0x48, 0x83, 0xC0, 0x20]);
        assert_eq!(i.kind, Kind::JmpRel32);
        assert_eq!(i.len(), 7);
        assert!(i.prefixes.rex.is_none());
        assert_eq!(i.prefixes.segment, Some(0x26));
    }

    #[test]
    fn moffs_width() {
        // movabs 0x1122334455667788,%al: a0 + 8-byte address.
        let i = dec(&[0xA0, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(i.len(), 9);
        // With 0x67 the address is 4 bytes.
        let i = dec(&[0x67, 0xA0, 1, 2, 3, 4]);
        assert_eq!(i.len(), 6);
    }

    #[test]
    fn vex_lengths() {
        // vzeroupper: c5 f8 77.
        assert_eq!(dec(&[0xC5, 0xF8, 0x77]).len(), 3);
        // vmovdqu (%rax),%ymm0: c5 fe 6f 00.
        assert_eq!(dec(&[0xC5, 0xFE, 0x6F, 0x00]).len(), 4);
        // vpblendd $3,%ymm1,%ymm2,%ymm3 (map 3, imm8): c4 e3 6d 02 d9 03.
        assert_eq!(dec(&[0xC4, 0xE3, 0x6D, 0x02, 0xD9, 0x03]).len(), 6);
    }

    #[test]
    fn enter_and_ret_imm() {
        assert_eq!(dec(&[0xC8, 0x10, 0x00, 0x00]).len(), 4);
        assert_eq!(dec(&[0xC2, 0x10, 0x00]).len(), 3);
    }

    #[test]
    fn linear_sweep_figure1() {
        // The paper's Figure 1 original sequence:
        // 48 89 03 | 48 83 c0 20 | 48 31 c1 | 83 7b fc 4d
        let code = [
            0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0x48, 0x31, 0xC1, 0x83, 0x7B, 0xFC, 0x4D,
        ];
        let insns = linear_sweep(&code, 0x1000);
        assert_eq!(insns.len(), 4);
        assert_eq!(
            insns.iter().map(|i| i.len()).collect::<Vec<_>>(),
            vec![3, 4, 3, 4]
        );
        assert_eq!(insns[1].addr, 0x1003);
        assert_eq!(insns[3].addr, 0x100A);
    }

    #[test]
    fn decode_never_reads_past_len() {
        // A decoded instruction's reported length must cover every byte the
        // decoder consumed: re-decoding from a slice truncated to len()
        // must succeed with the same result.
        let samples: &[&[u8]] = &[
            &[0x48, 0x89, 0x03, 0xAA, 0xBB],
            &[0xE9, 1, 2, 3, 4, 9, 9],
            &[0x0F, 0x84, 1, 2, 3, 4, 0xCC],
        ];
        for s in samples {
            let a = decode(s, 0x1000).unwrap();
            let b = decode(&s[..a.len()], 0x1000).unwrap();
            assert_eq!(a, b);
        }
    }
}
