//! Mini-assembler: emits x86_64 machine code for the workload generator,
//! trampoline builder and loader stub.
//!
//! The assembler is deliberately small — it supports exactly the subset of
//! instructions the reproduction's synthetic binaries, trampolines and
//! loader need — but emits *real* machine code that round-trips through the
//! decoder (property-tested in this module).
//!
//! # Example
//!
//! ```
//! use e9x86::asm::{Asm, Mem};
//! use e9x86::reg::{Reg, Width};
//!
//! let mut a = Asm::new(0x401000);
//! let top = a.fresh_label();
//! a.mov_ri64(Reg::Rcx, 10);
//! a.bind(top);
//! a.add_ri(Width::Q, Reg::Rax, 3);
//! a.sub_ri(Width::Q, Reg::Rcx, 1);
//! a.jcc(e9x86::Cond::Ne, top);
//! a.ret();
//! let code = a.finish().unwrap();
//! assert!(!code.is_empty());
//! ```

use crate::insn::Cond;
use crate::reg::{Reg, Width};
use std::collections::HashMap;
use std::fmt;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// A memory operand for the assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mem {
    /// Base register.
    pub base: Option<Reg>,
    /// Index register with scale (1, 2, 4 or 8).
    pub index: Option<(Reg, u8)>,
    /// Displacement.
    pub disp: i32,
    /// RIP-relative target label (`lea label(%rip), r` style). When set,
    /// `base`/`index` must be `None`.
    pub rip_label: Option<Label>,
}

impl Mem {
    /// `(%base)`
    pub fn base(base: Reg) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp: 0,
            rip_label: None,
        }
    }

    /// `disp(%base)`
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp,
            rip_label: None,
        }
    }

    /// `disp(%base,%index,scale)`
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i32) -> Mem {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "bad scale {scale}");
        Mem {
            base: Some(base),
            index: Some((index, scale)),
            disp,
            rip_label: None,
        }
    }

    /// `(,%index,scale)` with absolute displacement.
    pub fn index_disp(index: Reg, scale: u8, disp: i32) -> Mem {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "bad scale {scale}");
        Mem {
            base: None,
            index: Some((index, scale)),
            disp,
            rip_label: None,
        }
    }

    /// `label(%rip)` — resolved at [`Asm::finish`] time.
    pub fn rip(label: Label) -> Mem {
        Mem {
            base: None,
            index: None,
            disp: 0,
            rip_label: Some(label),
        }
    }
}

/// Assembly error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(Label),
    /// A relative displacement does not fit its field.
    DispOutOfRange { from: u64, to: u64 },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
            AsmError::DispOutOfRange { from, to } => {
                write!(f, "displacement from {from:#x} to {to:#x} out of range")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum FixKind {
    Rel8,
    Rel32,
    /// 64-bit absolute address of a label (for jump tables).
    Abs64,
}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    at: usize,
    label: Label,
    kind: FixKind,
}

/// The assembler: an append-only code buffer with label fixups.
#[derive(Debug)]
pub struct Asm {
    base: u64,
    code: Vec<u8>,
    labels: HashMap<Label, usize>,
    fixups: Vec<Fixup>,
    next_label: u32,
}

impl Asm {
    /// New assembler whose first byte will live at virtual address `base`.
    pub fn new(base: u64) -> Asm {
        Asm {
            base,
            code: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            next_label: 0,
        }
    }

    /// Virtual address of the next emitted byte.
    pub fn here(&self) -> u64 {
        self.base + self.code.len() as u64
    }

    /// Current code size in bytes.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether any code has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Allocate a fresh, unbound label.
    pub fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let prev = self.labels.insert(label, self.code.len());
        assert!(prev.is_none(), "label bound twice");
    }

    /// Resolve all fixups and return the code bytes.
    ///
    /// # Errors
    ///
    /// Fails if a referenced label is unbound or a displacement overflows.
    pub fn finish(mut self) -> Result<Vec<u8>, AsmError> {
        for f in std::mem::take(&mut self.fixups) {
            let &target_off = self.labels.get(&f.label).ok_or(AsmError::UnboundLabel(f.label))?;
            let target = self.base + target_off as u64;
            match f.kind {
                FixKind::Rel8 => {
                    let from = self.base + f.at as u64 + 1;
                    let d = target.wrapping_sub(from) as i64;
                    let d8 = i8::try_from(d).map_err(|_| AsmError::DispOutOfRange {
                        from,
                        to: target,
                    })?;
                    self.code[f.at] = d8 as u8;
                }
                FixKind::Rel32 => {
                    let from = self.base + f.at as u64 + 4;
                    let d = target.wrapping_sub(from) as i64;
                    let d32 = i32::try_from(d).map_err(|_| AsmError::DispOutOfRange {
                        from,
                        to: target,
                    })?;
                    self.code[f.at..f.at + 4].copy_from_slice(&d32.to_le_bytes());
                }
                FixKind::Abs64 => {
                    self.code[f.at..f.at + 8].copy_from_slice(&target.to_le_bytes());
                }
            }
        }
        Ok(self.code)
    }

    // ---- low-level emission -------------------------------------------

    /// Append raw bytes.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.code.extend_from_slice(bytes);
    }

    fn u8(&mut self, b: u8) {
        self.code.push(b);
    }

    fn i32le(&mut self, v: i32) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// Emit a REX prefix if any bit (or `force`, for 64-bit ops) requires it.
    fn rex(&mut self, w: bool, r: u8, x: u8, b: u8) {
        let byte = 0x40
            | (w as u8) << 3
            | ((r >> 3) & 1) << 2
            | ((x >> 3) & 1) << 1
            | ((b >> 3) & 1);
        if byte != 0x40 {
            self.u8(byte);
        }
    }

    fn op_prefix(&mut self, width: Width, r: u8, x: u8, b: u8) {
        if width == Width::W {
            self.u8(0x66);
        }
        self.rex(width == Width::Q, r, x, b);
    }

    /// Emit ModRM (+SIB +disp) for register `reg_field` and memory operand
    /// `mem`. REX bits must already have been emitted by the caller (use
    /// [`Self::mem_rex_xb`]).
    fn modrm_mem(&mut self, reg_field: u8, mem: Mem) {
        let reg3 = reg_field & 7;
        if let Some(lbl) = mem.rip_label {
            // RIP-relative: mod=00 rm=101 disp32 (fixup).
            self.u8(reg3 << 3 | 0b101);
            let at = self.code.len();
            self.i32le(0);
            self.fixups.push(Fixup {
                at,
                label: lbl,
                kind: FixKind::Rel32,
            });
            return;
        }
        match (mem.base, mem.index) {
            (Some(base), None) if base.low3() != 4 => {
                // Simple base (+disp). rbp/r13 with mod=00 means RIP-rel, so
                // force disp8.
                let needs_disp8 = base.low3() == 5;
                if mem.disp == 0 && !needs_disp8 {
                    self.u8(reg3 << 3 | base.low3());
                } else if let Ok(d8) = i8::try_from(mem.disp) {
                    self.u8(0x40 | reg3 << 3 | base.low3());
                    self.u8(d8 as u8);
                } else {
                    self.u8(0x80 | reg3 << 3 | base.low3());
                    self.i32le(mem.disp);
                }
            }
            (Some(base), None) => {
                // rsp/r12 base requires a SIB byte.
                if mem.disp == 0 && base.low3() != 5 {
                    self.u8(reg3 << 3 | 0b100);
                    self.u8(0x24 | (base.low3() & 7)); // scale=0 index=100 base
                } else if let Ok(d8) = i8::try_from(mem.disp) {
                    self.u8(0x40 | reg3 << 3 | 0b100);
                    self.u8(0x20 | base.low3());
                    self.u8(d8 as u8);
                } else {
                    self.u8(0x80 | reg3 << 3 | 0b100);
                    self.u8(0x20 | base.low3());
                    self.i32le(mem.disp);
                }
            }
            (base, Some((index, scale))) => {
                assert!(index.low3() != 4 || index.needs_rex(), "rsp cannot be an index");
                let ss: u8 = match scale {
                    1 => 0,
                    2 => 1,
                    4 => 2,
                    8 => 3,
                    _ => unreachable!(),
                };
                match base {
                    Some(b) => {
                        let needs_disp8 = b.low3() == 5;
                        if mem.disp == 0 && !needs_disp8 {
                            self.u8(reg3 << 3 | 0b100);
                            self.u8(ss << 6 | index.low3() << 3 | b.low3());
                        } else if let Ok(d8) = i8::try_from(mem.disp) {
                            self.u8(0x40 | reg3 << 3 | 0b100);
                            self.u8(ss << 6 | index.low3() << 3 | b.low3());
                            self.u8(d8 as u8);
                        } else {
                            self.u8(0x80 | reg3 << 3 | 0b100);
                            self.u8(ss << 6 | index.low3() << 3 | b.low3());
                            self.i32le(mem.disp);
                        }
                    }
                    None => {
                        // mod=00, base=101: disp32, no base.
                        self.u8(reg3 << 3 | 0b100);
                        self.u8(ss << 6 | index.low3() << 3 | 0b101);
                        self.i32le(mem.disp);
                    }
                }
            }
            (None, None) => {
                // Absolute disp32 via SIB with no base/index.
                self.u8(reg3 << 3 | 0b100);
                self.u8(0x25);
                self.i32le(mem.disp);
            }
        }
    }

    fn mem_xb(mem: Mem) -> (u8, u8) {
        let x = mem.index.map_or(0, |(r, _)| r.num());
        let b = mem.base.map_or(0, |r| r.num());
        (x, b)
    }

    fn modrm_rr(&mut self, reg_field: u8, rm: u8) {
        self.u8(0xC0 | (reg_field & 7) << 3 | (rm & 7));
    }

    // ---- data definition ----------------------------------------------

    /// Emit a 64-bit little-endian constant.
    pub fn dq(&mut self, v: u64) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// Emit the 64-bit absolute address of `label` (resolved at finish).
    pub fn dq_label(&mut self, label: Label) {
        let at = self.code.len();
        self.dq(0);
        self.fixups.push(Fixup {
            at,
            label,
            kind: FixKind::Abs64,
        });
    }

    // ---- moves ----------------------------------------------------------

    /// `movabs $imm, %r64` (10-byte form) — also used for label addresses.
    pub fn mov_ri64(&mut self, dst: Reg, imm: i64) {
        self.rex(true, 0, 0, dst.num());
        self.u8(0xB8 + dst.low3());
        self.code.extend_from_slice(&imm.to_le_bytes());
    }

    /// `movabs $label, %r64` — the label's absolute address.
    pub fn mov_rlabel(&mut self, dst: Reg, label: Label) {
        self.rex(true, 0, 0, dst.num());
        self.u8(0xB8 + dst.low3());
        let at = self.code.len();
        self.dq(0);
        self.fixups.push(Fixup {
            at,
            label,
            kind: FixKind::Abs64,
        });
    }

    /// `mov $imm32, %r32` (zero-extends into the 64-bit register).
    pub fn mov_ri32(&mut self, dst: Reg, imm: u32) {
        self.rex(false, 0, 0, dst.num());
        self.u8(0xB8 + dst.low3());
        self.code.extend_from_slice(&imm.to_le_bytes());
    }

    /// `mov %src, %dst` at the given width.
    pub fn mov_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        self.op_prefix(w, src.num(), 0, dst.num());
        self.u8(if w == Width::B { 0x88 } else { 0x89 });
        self.modrm_rr(src.num(), dst.num());
    }

    /// Load: `mov mem, %dst`.
    pub fn mov_rm(&mut self, w: Width, dst: Reg, mem: Mem) {
        let (x, b) = Self::mem_xb(mem);
        self.op_prefix(w, dst.num(), x, b);
        self.u8(if w == Width::B { 0x8A } else { 0x8B });
        self.modrm_mem(dst.num(), mem);
    }

    /// Store: `mov %src, mem`.
    pub fn mov_mr(&mut self, w: Width, mem: Mem, src: Reg) {
        let (x, b) = Self::mem_xb(mem);
        self.op_prefix(w, src.num(), x, b);
        self.u8(if w == Width::B { 0x88 } else { 0x89 });
        self.modrm_mem(src.num(), mem);
    }

    /// Store immediate: `mov{b,l,q} $imm, mem` (C6/C7 /0; imm is 8 or 32
    /// bits).
    pub fn mov_mi(&mut self, w: Width, mem: Mem, imm: i32) {
        let (x, b) = Self::mem_xb(mem);
        self.op_prefix(w, 0, x, b);
        self.u8(if w == Width::B { 0xC6 } else { 0xC7 });
        self.modrm_mem(0, mem);
        if w == Width::B {
            self.u8(imm as u8);
        } else if w == Width::W {
            self.code.extend_from_slice(&(imm as i16).to_le_bytes());
        } else {
            self.i32le(imm);
        }
    }

    /// `movzbl mem, %dst` (zero-extending byte load).
    pub fn movzx_b(&mut self, dst: Reg, mem: Mem) {
        let (x, b) = Self::mem_xb(mem);
        self.rex(false, dst.num(), x, b);
        self.raw(&[0x0F, 0xB6]);
        self.modrm_mem(dst.num(), mem);
    }

    /// `lea mem, %dst` (64-bit).
    pub fn lea(&mut self, dst: Reg, mem: Mem) {
        let (x, b) = Self::mem_xb(mem);
        self.rex(true, dst.num(), x, b);
        self.u8(0x8D);
        self.modrm_mem(dst.num(), mem);
    }

    // ---- ALU ------------------------------------------------------------

    fn alu_rr(&mut self, opc: u8, w: Width, dst: Reg, src: Reg) {
        self.op_prefix(w, src.num(), 0, dst.num());
        self.u8(if w == Width::B { opc } else { opc + 1 });
        self.modrm_rr(src.num(), dst.num());
    }

    fn alu_ri(&mut self, ext: u8, w: Width, dst: Reg, imm: i32) {
        self.op_prefix(w, 0, 0, dst.num());
        if w != Width::B {
            if let Ok(i8v) = i8::try_from(imm) {
                self.u8(0x83);
                self.modrm_rr(ext, dst.num());
                self.u8(i8v as u8);
                return;
            }
        }
        self.u8(if w == Width::B { 0x80 } else { 0x81 });
        self.modrm_rr(ext, dst.num());
        if w == Width::B {
            self.u8(imm as u8);
        } else if w == Width::W {
            self.code.extend_from_slice(&(imm as i16).to_le_bytes());
        } else {
            self.i32le(imm);
        }
    }

    fn alu_rm(&mut self, opc: u8, w: Width, dst: Reg, mem: Mem) {
        let (x, b) = Self::mem_xb(mem);
        self.op_prefix(w, dst.num(), x, b);
        self.u8(if w == Width::B { opc + 2 } else { opc + 3 });
        self.modrm_mem(dst.num(), mem);
    }

    fn alu_mr(&mut self, opc: u8, w: Width, mem: Mem, src: Reg) {
        let (x, b) = Self::mem_xb(mem);
        self.op_prefix(w, src.num(), x, b);
        self.u8(if w == Width::B { opc } else { opc + 1 });
        self.modrm_mem(src.num(), mem);
    }

    /// `add %src, %dst`.
    pub fn add_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        self.alu_rr(0x00, w, dst, src);
    }
    /// `add $imm, %dst`.
    pub fn add_ri(&mut self, w: Width, dst: Reg, imm: i32) {
        self.alu_ri(0, w, dst, imm);
    }
    /// `add mem, %dst`.
    pub fn add_rm(&mut self, w: Width, dst: Reg, mem: Mem) {
        self.alu_rm(0x00, w, dst, mem);
    }
    /// `add %src, mem` (read-modify-write heap op).
    pub fn add_mr(&mut self, w: Width, mem: Mem, src: Reg) {
        self.alu_mr(0x00, w, mem, src);
    }
    /// `sub %src, %dst`.
    pub fn sub_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        self.alu_rr(0x28, w, dst, src);
    }
    /// `sub $imm, %dst`.
    pub fn sub_ri(&mut self, w: Width, dst: Reg, imm: i32) {
        self.alu_ri(5, w, dst, imm);
    }
    /// `and %src, %dst`.
    pub fn and_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        self.alu_rr(0x20, w, dst, src);
    }
    /// `and $imm, %dst`.
    pub fn and_ri(&mut self, w: Width, dst: Reg, imm: i32) {
        self.alu_ri(4, w, dst, imm);
    }
    /// `or %src, %dst`.
    pub fn or_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        self.alu_rr(0x08, w, dst, src);
    }
    /// `xor %src, %dst`.
    pub fn xor_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        self.alu_rr(0x30, w, dst, src);
    }
    /// `xor %src, mem`.
    pub fn xor_mr(&mut self, w: Width, mem: Mem, src: Reg) {
        self.alu_mr(0x30, w, mem, src);
    }
    /// `cmp %src, %dst` (dst compared with src; sets flags).
    pub fn cmp_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        self.alu_rr(0x38, w, dst, src);
    }
    /// `cmp $imm, %dst`.
    pub fn cmp_ri(&mut self, w: Width, dst: Reg, imm: i32) {
        self.alu_ri(7, w, dst, imm);
    }
    /// `test %a, %b`.
    pub fn test_rr(&mut self, w: Width, a: Reg, b: Reg) {
        self.op_prefix(w, b.num(), 0, a.num());
        self.u8(if w == Width::B { 0x84 } else { 0x85 });
        self.modrm_rr(b.num(), a.num());
    }

    /// `imul %src, %dst` (two-operand form).
    pub fn imul_rr(&mut self, w: Width, dst: Reg, src: Reg) {
        assert!(w != Width::B);
        self.op_prefix(w, dst.num(), 0, src.num());
        self.raw(&[0x0F, 0xAF]);
        self.modrm_rr(dst.num(), src.num());
    }

    /// `shl $imm, %dst`.
    pub fn shl_ri(&mut self, w: Width, dst: Reg, imm: u8) {
        self.op_prefix(w, 0, 0, dst.num());
        self.u8(0xC1);
        self.modrm_rr(4, dst.num());
        self.u8(imm);
    }

    /// `shr $imm, %dst`.
    pub fn shr_ri(&mut self, w: Width, dst: Reg, imm: u8) {
        self.op_prefix(w, 0, 0, dst.num());
        self.u8(0xC1);
        self.modrm_rr(5, dst.num());
        self.u8(imm);
    }

    /// `inc mem` (FF /0) — a memory-writing instruction used by A2
    /// workloads.
    pub fn inc_m(&mut self, w: Width, mem: Mem) {
        let (x, b) = Self::mem_xb(mem);
        self.op_prefix(w, 0, x, b);
        self.u8(if w == Width::B { 0xFE } else { 0xFF });
        self.modrm_mem(0, mem);
    }

    // ---- stack ----------------------------------------------------------

    /// `push %r`.
    pub fn push_r(&mut self, r: Reg) {
        self.rex(false, 0, 0, r.num());
        self.u8(0x50 + r.low3());
    }

    /// `pop %r`.
    pub fn pop_r(&mut self, r: Reg) {
        self.rex(false, 0, 0, r.num());
        self.u8(0x58 + r.low3());
    }

    /// `pushfq` — save RFLAGS (trampolines bracket flag-clobbering
    /// instrumentation with pushfq/popfq).
    pub fn pushfq(&mut self) {
        self.u8(0x9C);
    }

    /// `popfq` — restore RFLAGS.
    pub fn popfq(&mut self) {
        self.u8(0x9D);
    }

    // ---- control flow ---------------------------------------------------

    /// `jmp label` (always the 5-byte rel32 form so sizes are predictable).
    pub fn jmp(&mut self, label: Label) {
        self.u8(0xE9);
        let at = self.code.len();
        self.i32le(0);
        self.fixups.push(Fixup {
            at,
            label,
            kind: FixKind::Rel32,
        });
    }

    /// `jmp label` using the 2-byte rel8 form.
    pub fn jmp_short(&mut self, label: Label) {
        self.u8(0xEB);
        let at = self.code.len();
        self.u8(0);
        self.fixups.push(Fixup {
            at,
            label,
            kind: FixKind::Rel8,
        });
    }

    /// `jcc label` (6-byte rel32 form).
    pub fn jcc(&mut self, cond: Cond, label: Label) {
        self.u8(0x0F);
        self.u8(0x80 + cond as u8);
        let at = self.code.len();
        self.i32le(0);
        self.fixups.push(Fixup {
            at,
            label,
            kind: FixKind::Rel32,
        });
    }

    /// `jcc label` (2-byte rel8 form).
    pub fn jcc_short(&mut self, cond: Cond, label: Label) {
        self.u8(0x70 + cond as u8);
        let at = self.code.len();
        self.u8(0);
        self.fixups.push(Fixup {
            at,
            label,
            kind: FixKind::Rel8,
        });
    }

    /// `call label`.
    pub fn call(&mut self, label: Label) {
        self.u8(0xE8);
        let at = self.code.len();
        self.i32le(0);
        self.fixups.push(Fixup {
            at,
            label,
            kind: FixKind::Rel32,
        });
    }

    /// `call` to an absolute address (must be within rel32 range of the call
    /// site).
    pub fn call_abs(&mut self, target: u64) -> Result<(), AsmError> {
        let from = self.here() + 5;
        let d = target.wrapping_sub(from) as i64;
        let d32 = i32::try_from(d).map_err(|_| AsmError::DispOutOfRange { from, to: target })?;
        self.u8(0xE8);
        self.i32le(d32);
        Ok(())
    }

    /// `jmp` to an absolute address (rel32 form).
    pub fn jmp_abs(&mut self, target: u64) -> Result<(), AsmError> {
        let from = self.here() + 5;
        let d = target.wrapping_sub(from) as i64;
        let d32 = i32::try_from(d).map_err(|_| AsmError::DispOutOfRange { from, to: target })?;
        self.u8(0xE9);
        self.i32le(d32);
        Ok(())
    }

    /// `jmp *%r` (indirect through register).
    pub fn jmp_ind_r(&mut self, r: Reg) {
        self.rex(false, 0, 0, r.num());
        self.u8(0xFF);
        self.modrm_rr(4, r.num());
    }

    /// `jmp *mem` (indirect through memory — jump tables).
    pub fn jmp_ind_m(&mut self, mem: Mem) {
        let (x, b) = Self::mem_xb(mem);
        self.rex(false, 4, x, b);
        self.u8(0xFF);
        self.modrm_mem(4, mem);
    }

    /// `call *%r`.
    pub fn call_ind_r(&mut self, r: Reg) {
        self.rex(false, 0, 0, r.num());
        self.u8(0xFF);
        self.modrm_rr(2, r.num());
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.u8(0xC3);
    }

    /// `syscall`.
    pub fn syscall(&mut self) {
        self.raw(&[0x0F, 0x05]);
    }

    /// `int3`.
    pub fn int3(&mut self) {
        self.u8(0xCC);
    }

    /// `ud2` (guaranteed-invalid; used as a canary after `jmp`).
    pub fn ud2(&mut self) {
        self.raw(&[0x0F, 0x0B]);
    }

    /// Emit `n` bytes of (possibly multi-byte) NOP padding.
    pub fn nops(&mut self, mut n: usize) {
        const NOP9: [u8; 9] = [0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00];
        while n >= 9 {
            self.raw(&NOP9);
            n -= 9;
        }
        const BY_LEN: [&[u8]; 9] = [
            &[],
            &[0x90],
            &[0x66, 0x90],
            &[0x0F, 0x1F, 0x00],
            &[0x0F, 0x1F, 0x40, 0x00],
            &[0x0F, 0x1F, 0x44, 0x00, 0x00],
            &[0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00],
            &[0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00],
            &[0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00],
        ];
        self.raw(BY_LEN[n]);
    }
}

/// Encode a bare `jmpq rel32` (the paper's fundamental `E9` instruction).
pub fn encode_jmp_rel32(rel: i32) -> [u8; 5] {
    let d = rel.to_le_bytes();
    [0xE9, d[0], d[1], d[2], d[3]]
}

/// Encode a bare `jmp rel8`.
pub fn encode_jmp_rel8(rel: i8) -> [u8; 2] {
    [0xEB, rel as u8]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::insn::Kind;

    fn roundtrip(bytes: &[u8]) {
        let mut off = 0;
        let mut addr = 0x1000u64;
        while off < bytes.len() {
            let i = decode(&bytes[off..], addr).unwrap_or_else(|e| {
                panic!("decode failed at offset {off}: {e} (bytes {:02x?})", &bytes[off..])
            });
            off += i.len();
            addr += i.len() as u64;
        }
        assert_eq!(off, bytes.len(), "tail bytes undecodable");
    }

    #[test]
    fn known_encodings() {
        let mut a = Asm::new(0);
        a.mov_rr(Width::Q, Reg::Rbx, Reg::Rax); // 48 89 c3
        a.mov_mr(Width::Q, Mem::base(Reg::Rbx), Reg::Rax); // 48 89 03
        a.add_ri(Width::Q, Reg::Rax, 32); // 48 83 c0 20
        a.xor_rr(Width::Q, Reg::Rcx, Reg::Rax); // 48 31 c1
        let code = a.finish().unwrap();
        assert_eq!(
            code,
            vec![
                0x48, 0x89, 0xC3, 0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0x48, 0x31, 0xC1
            ]
        );
    }

    #[test]
    fn labels_and_branches() {
        let mut a = Asm::new(0x400000);
        let end = a.fresh_label();
        a.jmp(end);
        a.nops(3);
        a.bind(end);
        a.ret();
        let code = a.finish().unwrap();
        let i = decode(&code, 0x400000).unwrap();
        assert_eq!(i.kind, Kind::JmpRel32);
        assert_eq!(i.branch_target(), Some(0x400008));
    }

    #[test]
    fn backward_short_branch() {
        let mut a = Asm::new(0);
        let top = a.fresh_label();
        a.bind(top);
        a.add_ri(Width::Q, Reg::Rax, 1);
        a.jcc_short(Cond::Ne, top);
        let code = a.finish().unwrap();
        // jne rel8 back over both instructions: -6.
        assert_eq!(code[code.len() - 2..], [0x75, 0xFA]);
    }

    #[test]
    fn rel8_overflow_detected() {
        let mut a = Asm::new(0);
        let end = a.fresh_label();
        a.jmp_short(end);
        a.nops(300);
        a.bind(end);
        assert!(matches!(
            a.finish(),
            Err(AsmError::DispOutOfRange { .. })
        ));
    }

    #[test]
    fn unbound_label_detected() {
        let mut a = Asm::new(0);
        let l = a.fresh_label();
        a.jmp(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn rsp_rbp_r12_r13_memory_forms() {
        let mut a = Asm::new(0);
        a.mov_mr(Width::Q, Mem::base(Reg::Rsp), Reg::Rax);
        a.mov_mr(Width::Q, Mem::base(Reg::Rbp), Reg::Rax);
        a.mov_mr(Width::Q, Mem::base(Reg::R12), Reg::Rax);
        a.mov_mr(Width::Q, Mem::base(Reg::R13), Reg::Rax);
        a.mov_mr(Width::Q, Mem::base_disp(Reg::Rsp, 0x100), Reg::Rax);
        a.mov_rm(Width::Q, Reg::Rdx, Mem::base_index(Reg::Rbp, Reg::Rcx, 4, 0));
        a.mov_rm(Width::Q, Reg::Rdx, Mem::index_disp(Reg::Rcx, 8, 0x40));
        let code = a.finish().unwrap();
        roundtrip(&code);
    }

    #[test]
    fn decoder_agrees_on_operands() {
        let mut a = Asm::new(0x1000);
        a.mov_mr(Width::Q, Mem::base_disp(Reg::Rbx, -8), Reg::Rcx);
        let code = a.finish().unwrap();
        let i = decode(&code, 0x1000).unwrap();
        assert!(i.writes_memory());
        let m = i.modrm.unwrap().mem.unwrap();
        assert_eq!(m.base, Some(Reg::Rbx));
        assert_eq!(m.disp, -8);
    }

    #[test]
    fn rip_relative_lea() {
        let mut a = Asm::new(0x2000);
        let data = a.fresh_label();
        a.lea(Reg::Rax, Mem::rip(data));
        a.ret();
        a.bind(data);
        a.dq(0xDEAD);
        let code = a.finish().unwrap();
        let i = decode(&code, 0x2000).unwrap();
        let m = i.modrm.unwrap();
        assert!(m.mem.unwrap().rip_relative);
        // lea is 7 bytes, ret 1 — data at 0x2008, disp = 0x2008 - 0x2007 = 1.
        assert_eq!(m.mem.unwrap().disp, 1);
    }

    #[test]
    fn jump_table_sequence_decodes() {
        // The canonical indirect-jump pattern synth uses for switch.
        let mut a = Asm::new(0x3000);
        let table = a.fresh_label();
        let c0 = a.fresh_label();
        a.mov_rlabel(Reg::R11, table);
        a.jmp_ind_m(Mem::base_index(Reg::R11, Reg::Rax, 8, 0));
        a.bind(c0);
        a.ret();
        a.bind(table);
        a.dq_label(c0);
        let code = a.finish().unwrap();
        // Check the absolute table entry resolved to c0's address.
        let entry = u64::from_le_bytes(code[code.len() - 8..].try_into().unwrap());
        assert_eq!(entry, 0x3000 + (code.len() as u64 - 9));
        roundtrip(&code[..code.len() - 8]);
    }

    #[test]
    fn everything_roundtrips_through_decoder() {
        let mut a = Asm::new(0x10000);
        let l = a.fresh_label();
        for (i, &r) in Reg::ALL.iter().enumerate() {
            a.mov_ri64(r, i as i64 * 0x1111);
            a.mov_ri32(r, i as u32);
            a.push_r(r);
            a.pop_r(r);
            for &s in &[Reg::Rax, Reg::R9] {
                a.mov_rr(Width::Q, r, s);
                a.mov_rr(Width::D, r, s);
                a.add_rr(Width::Q, r, s);
                a.sub_rr(Width::Q, r, s);
                a.xor_rr(Width::Q, r, s);
                a.and_rr(Width::Q, r, s);
                a.or_rr(Width::Q, r, s);
                a.cmp_rr(Width::Q, r, s);
                a.test_rr(Width::Q, r, s);
                a.imul_rr(Width::Q, r, s);
            }
            a.add_ri(Width::Q, r, 127);
            a.add_ri(Width::Q, r, 1000);
            a.sub_ri(Width::D, r, 5);
            a.cmp_ri(Width::Q, r, 99);
            a.and_ri(Width::Q, r, 0xFF);
            a.shl_ri(Width::Q, r, 3);
            a.shr_ri(Width::Q, r, 2);
        }
        for &b in &[Reg::Rax, Reg::Rbp, Reg::Rsp, Reg::R12, Reg::R13, Reg::R15] {
            for disp in [0i32, 8, -8, 0x200, -0x200] {
                a.mov_mr(Width::Q, Mem::base_disp(b, disp), Reg::Rdx);
                a.mov_rm(Width::D, Reg::Rdx, Mem::base_disp(b, disp));
                a.mov_mi(Width::D, Mem::base_disp(b, disp), 42);
                a.mov_mi(Width::B, Mem::base_disp(b, disp), 7);
                a.add_mr(Width::Q, Mem::base_disp(b, disp), Reg::Rsi);
                a.xor_mr(Width::D, Mem::base_disp(b, disp), Reg::Rsi);
                a.inc_m(Width::Q, Mem::base_disp(b, disp));
                a.movzx_b(Reg::Rcx, Mem::base_disp(b, disp));
                a.lea(Reg::Rcx, Mem::base_disp(b, disp));
            }
        }
        a.bind(l);
        a.jmp(l);
        a.jmp_short(l);
        a.jcc(Cond::E, l);
        a.jcc_short(Cond::A, l);
        a.call(l);
        a.jmp_ind_r(Reg::Rax);
        a.jmp_ind_r(Reg::R10);
        a.call_ind_r(Reg::Rbx);
        a.jmp_ind_m(Mem::base_index(Reg::R11, Reg::Rax, 8, 0));
        a.syscall();
        a.int3();
        a.ud2();
        for n in 0..=20 {
            a.nops(n);
        }
        a.ret();
        let code = a.finish().unwrap();
        roundtrip(&code);
    }
}
