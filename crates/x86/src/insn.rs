//! Decoded instruction representation and classification.

use crate::prefix::Prefixes;
use crate::reg::{Reg, Width};
use crate::MAX_INSN_LEN;
use std::fmt;

/// Condition codes for `jcc`, `setcc` and `cmovcc` (the low nibble of the
/// opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Cond {
    O = 0x0,
    No = 0x1,
    B = 0x2,
    Ae = 0x3,
    E = 0x4,
    Ne = 0x5,
    Be = 0x6,
    A = 0x7,
    S = 0x8,
    Ns = 0x9,
    P = 0xA,
    Np = 0xB,
    L = 0xC,
    Ge = 0xD,
    Le = 0xE,
    G = 0xF,
}

impl Cond {
    /// Condition from the low opcode nibble.
    #[inline]
    pub fn from_nibble(n: u8) -> Cond {
        // Safety: all 16 nibble values are covered by the enum.
        unsafe { std::mem::transmute(n & 0x0F) }
    }

    /// Logical negation of the condition (flips the low bit).
    #[inline]
    pub fn negate(self) -> Cond {
        Cond::from_nibble(self as u8 ^ 1)
    }
}

/// The opcode map an instruction was decoded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// One-byte opcode map.
    One(u8),
    /// `0F xx` two-byte map.
    TwoOf(u8),
    /// `0F 38 xx` three-byte map.
    ThreeOf38(u8),
    /// `0F 3A xx` three-byte map.
    ThreeOf3A(u8),
    /// VEX-encoded instruction (map 1–3); the payload is the final opcode
    /// byte. Only length and coarse classification are supported.
    Vex(u8, u8),
}

/// Addressing form of a decoded ModRM memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOperand {
    /// Base register, if any. `None` for absolute/RIP-relative forms.
    pub base: Option<Reg>,
    /// Index register and scale (1, 2, 4, 8), if any.
    pub index: Option<(Reg, u8)>,
    /// Sign-extended displacement.
    pub disp: i32,
    /// RIP-relative addressing (`[rip + disp32]`).
    pub rip_relative: bool,
}

/// Decoded ModRM (and optional SIB) information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModRm {
    /// The raw ModRM byte.
    pub byte: u8,
    /// `reg` field with REX.R folded in (register operand or opcode
    /// extension, depending on the instruction).
    pub reg: u8,
    /// `rm` field with REX.B folded in (meaningful for register-direct
    /// forms).
    pub rm: u8,
    /// Memory operand if `mod != 3`.
    pub mem: Option<MemOperand>,
    /// Byte offset of the displacement field within the instruction, if any.
    pub disp_offset: u8,
    /// Size of the displacement field in bytes (0, 1 or 4).
    pub disp_len: u8,
}

impl ModRm {
    /// `mod == 3`: the `rm` operand is a register, not memory.
    #[inline]
    pub fn is_reg_direct(&self) -> bool {
        self.mem.is_none()
    }
}

/// Coarse instruction classification used by the rewriter and emulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// `jmp rel8` (`EB`).
    JmpRel8,
    /// `jmpq rel32` (`E9`).
    JmpRel32,
    /// `jcc rel8` (`70+cc`).
    JccRel8(Cond),
    /// `jcc rel32` (`0F 80+cc`).
    JccRel32(Cond),
    /// `callq rel32` (`E8`).
    CallRel32,
    /// Indirect jump (`FF /4`) through register or memory.
    JmpInd,
    /// Indirect call (`FF /2`).
    CallInd,
    /// `ret` / `ret imm16`.
    Ret,
    /// `int3` trap.
    Int3,
    /// `syscall`.
    Syscall,
    /// `loop`/`loope`/`loopne`/`jrcxz` (`E0..E3`, rel8).
    LoopRel8,
    /// Anything else.
    Other,
}

impl Kind {
    /// Is this any flavour of relative branch (the displacement must be
    /// re-encoded when the instruction moves)?
    #[inline]
    pub fn is_relative_branch(self) -> bool {
        matches!(
            self,
            Kind::JmpRel8
                | Kind::JmpRel32
                | Kind::JccRel8(_)
                | Kind::JccRel32(_)
                | Kind::CallRel32
                | Kind::LoopRel8
        )
    }

    /// Is this a `jmp`/`jcc` instruction (the paper's application **A1**)?
    /// Calls and returns are excluded, matching the paper's
    /// "all jmp/jcc jump instructions".
    #[inline]
    pub fn is_jump(self) -> bool {
        matches!(
            self,
            Kind::JmpRel8 | Kind::JmpRel32 | Kind::JccRel8(_) | Kind::JccRel32(_) | Kind::JmpInd
        )
    }
}

/// A fully decoded instruction.
///
/// Produced by [`crate::decode::decode`]. The byte image is retained so the
/// rewriter can reason about pun windows without re-reading the binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Insn {
    /// Virtual address the instruction was decoded at.
    pub addr: u64,
    bytes: [u8; MAX_INSN_LEN],
    len: u8,
    /// Decoded prefix state.
    pub prefixes: Prefixes,
    /// Opcode map + byte.
    pub opcode: Opcode,
    /// ModRM/SIB information, if the opcode takes one.
    pub modrm: Option<ModRm>,
    /// Sign-extended immediate value, if any.
    pub imm: i64,
    /// Byte offset of the immediate within the instruction.
    pub imm_offset: u8,
    /// Size of the immediate in bytes (0 if none).
    pub imm_len: u8,
    /// Coarse classification.
    pub kind: Kind,
    /// Effective operand width (8/16/32/64) after prefixes.
    pub width: Width,
}

impl Insn {
    /// Construct from raw parts (used by the decoder).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        addr: u64,
        raw: &[u8],
        prefixes: Prefixes,
        opcode: Opcode,
        modrm: Option<ModRm>,
        imm: i64,
        imm_offset: u8,
        imm_len: u8,
        kind: Kind,
        width: Width,
    ) -> Insn {
        let mut bytes = [0u8; MAX_INSN_LEN];
        bytes[..raw.len()].copy_from_slice(raw);
        Insn {
            addr,
            bytes,
            len: raw.len() as u8,
            prefixes,
            opcode,
            modrm,
            imm,
            imm_offset,
            imm_len,
            kind,
            width,
        }
    }

    /// Instruction length in bytes (1..=15).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Never true: a decoded instruction has at least one byte.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The instruction's machine-code bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Address of the next instruction (`addr + len`).
    #[inline]
    pub fn end(&self) -> u64 {
        self.addr + self.len as u64
    }

    /// For relative branches: the target address (`end + imm`).
    ///
    /// Returns `None` for non-relative-branch instructions.
    #[inline]
    pub fn branch_target(&self) -> Option<u64> {
        if self.kind.is_relative_branch() {
            Some(self.end().wrapping_add(self.imm as u64))
        } else {
            None
        }
    }

    /// Does this instruction read or write memory through its ModRM operand?
    #[inline]
    pub fn has_mem_operand(&self) -> bool {
        self.modrm.is_some_and(|m| m.mem.is_some())
    }

    /// Does the instruction **write** to memory?
    ///
    /// This is the per-opcode store classification used by the paper's
    /// application **A2** ("all instructions that may write to heap
    /// pointers"); `lea` and pure loads return `false`, `cmp`/`test` return
    /// `false`, read-modify-write instructions return `true`. `push` writes
    /// through `%rsp` and is classified as a memory write here; A2 filtering
    /// of stack/global writes happens in [`Insn::is_heap_write`].
    pub fn writes_memory(&self) -> bool {
        let Some(m) = self.modrm else {
            // Only string stores and push write memory without ModRM; pushes
            // and string ops write through rsp/rdi which A2 excludes anyway,
            // but report stos/movs truthfully.
            return matches!(
                self.opcode,
                Opcode::One(0xAA) | Opcode::One(0xAB) | Opcode::One(0xA4) | Opcode::One(0xA5)
            );
        };
        if m.mem.is_none() {
            return false;
        }
        match self.opcode {
            // add/or/adc/sbb/and/sub/xor with r/m destination (even opcodes
            // 00/01, 08/09, ...); 38/39 is cmp (no write).
            Opcode::One(op @ (0x00 | 0x01 | 0x08 | 0x09 | 0x10 | 0x11 | 0x18 | 0x19 | 0x20
            | 0x21 | 0x28 | 0x29 | 0x30 | 0x31)) => {
                debug_assert!(op & 2 == 0);
                true
            }
            // Immediate group 1: 80/81/83; /7 is cmp.
            Opcode::One(0x80 | 0x81 | 0x83) => m.reg & 7 != 7,
            // xchg always writes both operands.
            Opcode::One(0x86 | 0x87) => true,
            // mov r/m, r and mov r/m, imm.
            Opcode::One(0x88 | 0x89) => true,
            Opcode::One(0xC6 | 0xC7) => true,
            // pop r/m64.
            Opcode::One(0x8F) => true,
            // Shift groups C0/C1/D0-D3 write their r/m operand.
            Opcode::One(0xC0 | 0xC1 | 0xD0 | 0xD1 | 0xD2 | 0xD3) => true,
            // Group 3 (F6/F7): not (/2) and neg (/3) write; test/mul/div do
            // not write memory.
            Opcode::One(0xF6 | 0xF7) => matches!(m.reg & 7, 2 | 3),
            // Group 4/5: inc (/0) and dec (/1) write.
            Opcode::One(0xFE | 0xFF) => matches!(m.reg & 7, 0 | 1),
            // movzx/movsx/lea/loads never write; cmp/test never write.
            Opcode::One(_) => false,
            // setcc writes a byte.
            Opcode::TwoOf(op @ 0x90..=0x9F) => {
                let _ = op;
                true
            }
            // cmpxchg, xadd.
            Opcode::TwoOf(0xB0 | 0xB1 | 0xC0 | 0xC1) => true,
            // bts/btr/btc with memory operand write; bt (A3) does not.
            Opcode::TwoOf(0xAB | 0xB3 | 0xBB) => true,
            // Group 8 (BA): /4 bt is read-only, /5-/7 write.
            Opcode::TwoOf(0xBA) => m.reg & 7 >= 5,
            // shld/shrd.
            Opcode::TwoOf(0xA4 | 0xA5 | 0xAC | 0xAD) => true,
            // SSE/MMX stores: mov{u,a}ps/pd with memory destination, movnti,
            // movdq{a,u} store forms, movq store.
            Opcode::TwoOf(0x11 | 0x13 | 0x17 | 0x29 | 0x2B | 0x7E | 0x7F | 0xC3 | 0xD6 | 0xE7) => {
                true
            }
            Opcode::TwoOf(_) => false,
            Opcode::ThreeOf38(_) | Opcode::ThreeOf3A(_) | Opcode::Vex(_, _) => false,
        }
    }

    /// Application **A2** site filter: writes memory through a pointer that
    /// is neither `%rsp`-based (stack) nor RIP-relative (globals).
    pub fn is_heap_write(&self) -> bool {
        if !self.writes_memory() {
            return false;
        }
        let Some(m) = self.modrm else { return false };
        let Some(mem) = m.mem else { return false };
        if mem.rip_relative {
            return false;
        }
        if mem.base == Some(Reg::Rsp) {
            return false;
        }
        true
    }

    /// Byte offset of the relative-branch displacement field within the
    /// instruction, if this is a relative branch.
    #[inline]
    pub fn branch_disp_offset(&self) -> Option<(u8, u8)> {
        if self.kind.is_relative_branch() {
            Some((self.imm_offset, self.imm_len))
        } else {
            None
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}:", self.addr)?;
        for b in self.bytes() {
            write!(f, " {b:02x}")?;
        }
        write!(f, " ({:?})", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negation() {
        assert_eq!(Cond::E.negate(), Cond::Ne);
        assert_eq!(Cond::L.negate(), Cond::Ge);
        assert_eq!(Cond::O.negate(), Cond::No);
        for n in 0..16 {
            let c = Cond::from_nibble(n);
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn kind_predicates() {
        assert!(Kind::JmpRel8.is_relative_branch());
        assert!(Kind::CallRel32.is_relative_branch());
        assert!(!Kind::JmpInd.is_relative_branch());
        assert!(Kind::JmpInd.is_jump());
        assert!(!Kind::CallRel32.is_jump());
        assert!(!Kind::Ret.is_jump());
    }
}
