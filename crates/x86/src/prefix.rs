//! Instruction prefixes.
//!
//! E9Patch's tactic **T1 (padded jumps)** pads a `jmpq rel32` with redundant
//! prefixes so the `rel32` window slides over different successor bytes; the
//! set of prefixes that are *semantically redundant* on a near jump is
//! defined here ([`REDUNDANT_JMP_PREFIXES`]).

/// Legacy group-1 prefixes (lock / repeat).
pub const LOCK: u8 = 0xF0;
/// `repne`/`repnz` prefix.
pub const REPNE: u8 = 0xF2;
/// `rep`/`repe` prefix.
pub const REP: u8 = 0xF3;

/// Segment-override prefixes (group 2). In 64-bit mode `cs`/`ss`/`ds`/`es`
/// overrides are silently ignored, and `fs`/`gs` are ignored for
/// non-memory-accessing instructions such as jumps.
pub const SEG_ES: u8 = 0x26;
/// `%cs` segment override (also "branch not taken" hint).
pub const SEG_CS: u8 = 0x2E;
/// `%ss` segment override.
pub const SEG_SS: u8 = 0x36;
/// `%ds` segment override (also "branch taken" hint).
pub const SEG_DS: u8 = 0x3E;
/// `%fs` segment override.
pub const SEG_FS: u8 = 0x64;
/// `%gs` segment override.
pub const SEG_GS: u8 = 0x65;

/// Operand-size override (group 3).
pub const OPSIZE: u8 = 0x66;
/// Address-size override (group 4).
pub const ADDRSIZE: u8 = 0x67;

/// Is `b` one of the legacy (non-REX) prefixes?
#[inline]
pub fn is_legacy_prefix(b: u8) -> bool {
    matches!(
        b,
        LOCK | REPNE | REP | SEG_ES | SEG_CS | SEG_SS | SEG_DS | SEG_FS | SEG_GS | OPSIZE
            | ADDRSIZE
    )
}

/// Is `b` a REX prefix byte (64-bit mode only)?
#[inline]
pub fn is_rex(b: u8) -> bool {
    (b & 0xF0) == 0x40
}

/// Prefixes that do not change the semantics of a `jmpq rel32` instruction
/// and can therefore pad a punned jump (tactic T1).
///
/// REX prefixes (`0x40..=0x4F`) are redundant on `E9` as well; they are
/// handled separately because *any* of the sixteen values works, whereas the
/// bytes listed here are the segment overrides. The operand-size (`0x66`) and
/// address-size (`0x67`) prefixes are deliberately **excluded**: `0x66` may
/// truncate the instruction pointer on some implementations and `0x67` is
/// meaningless but reserved, so a conservative rewriter avoids both (E9Patch
/// does the same).
pub const REDUNDANT_JMP_PREFIXES: [u8; 6] = [SEG_CS, SEG_SS, SEG_DS, SEG_ES, SEG_FS, SEG_GS];

/// The canonical single-byte padding used first by tactic T1: `REX.W`
/// (`0x48`), as in the paper's Figure 1 line T1(a).
pub const REX_W: u8 = 0x48;

/// Is `b` usable as T1 jump padding (redundant on a near jump)?
#[inline]
pub fn is_redundant_jmp_prefix(b: u8) -> bool {
    is_rex(b) || REDUNDANT_JMP_PREFIXES.contains(&b)
}

/// Decoded prefix state accumulated by the decoder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Prefixes {
    /// Raw REX byte if present (`0x40..=0x4F`).
    pub rex: Option<u8>,
    /// `lock` prefix present.
    pub lock: bool,
    /// `rep`/`repe` prefix present.
    pub rep: bool,
    /// `repne` prefix present.
    pub repne: bool,
    /// Operand-size override (`0x66`) present.
    pub opsize: bool,
    /// Address-size override (`0x67`) present.
    pub addrsize: bool,
    /// Last segment-override prefix, if any.
    pub segment: Option<u8>,
    /// Total number of prefix bytes consumed (legacy + REX).
    pub count: u8,
}

impl Prefixes {
    /// REX.W bit: promotes the operand size to 64 bits.
    #[inline]
    pub fn rex_w(&self) -> bool {
        self.rex.is_some_and(|r| r & 0x08 != 0)
    }

    /// REX.R bit: extends the ModRM `reg` field.
    #[inline]
    pub fn rex_r(&self) -> bool {
        self.rex.is_some_and(|r| r & 0x04 != 0)
    }

    /// REX.X bit: extends the SIB `index` field.
    #[inline]
    pub fn rex_x(&self) -> bool {
        self.rex.is_some_and(|r| r & 0x02 != 0)
    }

    /// REX.B bit: extends the ModRM `rm` / SIB `base` / opcode register
    /// field.
    #[inline]
    pub fn rex_b(&self) -> bool {
        self.rex.is_some_and(|r| r & 0x01 != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_prefix_set() {
        for b in [0xF0, 0xF2, 0xF3, 0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65, 0x66, 0x67] {
            assert!(is_legacy_prefix(b), "{b:#x} should be a legacy prefix");
        }
        assert!(!is_legacy_prefix(0x90));
        assert!(!is_legacy_prefix(0x48)); // REX is not "legacy"
    }

    #[test]
    fn rex_range() {
        for b in 0x40..=0x4F {
            assert!(is_rex(b));
        }
        assert!(!is_rex(0x3F));
        assert!(!is_rex(0x50));
    }

    #[test]
    fn t1_padding_bytes_are_redundant() {
        // The paper's Figure 1 uses 0x48 (REX.W) and 0x26 (es override).
        assert!(is_redundant_jmp_prefix(0x48));
        assert!(is_redundant_jmp_prefix(0x26));
        // 0x66/0x67 are conservatively rejected.
        assert!(!is_redundant_jmp_prefix(0x66));
        assert!(!is_redundant_jmp_prefix(0x67));
        assert!(!is_redundant_jmp_prefix(0xF0));
    }

    #[test]
    fn rex_bit_accessors() {
        let p = Prefixes {
            rex: Some(0x4D), // W=1 R=1 X=0 B=1
            ..Prefixes::default()
        };
        assert!(p.rex_w());
        assert!(p.rex_r());
        assert!(!p.rex_x());
        assert!(p.rex_b());
    }
}
