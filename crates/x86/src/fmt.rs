//! AT&T-syntax instruction formatter.
//!
//! Produces objdump-style listings for the instruction subset the
//! reproduction generates and patches. Instructions the formatter does not
//! know by name fall back to a byte listing with the decoded
//! classification, so output is always total.
//!
//! ```
//! use e9x86::{decode, fmt::format_insn};
//! let insn = decode(&[0x48, 0x89, 0x03], 0x401000).unwrap();
//! assert_eq!(format_insn(&insn), "mov %rax,(%rbx)");
//! ```

use crate::insn::{Cond, Insn, Kind, MemOperand, ModRm, Opcode};
use crate::reg::{Reg, Width};

fn cond_suffix(c: Cond) -> &'static str {
    match c {
        Cond::O => "o",
        Cond::No => "no",
        Cond::B => "b",
        Cond::Ae => "ae",
        Cond::E => "e",
        Cond::Ne => "ne",
        Cond::Be => "be",
        Cond::A => "a",
        Cond::S => "s",
        Cond::Ns => "ns",
        Cond::P => "p",
        Cond::Np => "np",
        Cond::L => "l",
        Cond::Ge => "ge",
        Cond::Le => "le",
        Cond::G => "g",
    }
}

fn fmt_mem(insn: &Insn, m: &MemOperand) -> String {
    if m.rip_relative {
        let target = insn.end().wrapping_add(m.disp as i64 as u64);
        return format!("{:#x}(%rip)", target);
    }
    let disp = if m.disp != 0 {
        if m.disp < 0 {
            format!("-{:#x}", -(m.disp as i64))
        } else {
            format!("{:#x}", m.disp)
        }
    } else {
        String::new()
    };
    match (m.base, m.index) {
        (Some(b), None) => format!("{disp}(%{})", b.name64()),
        (Some(b), Some((i, s))) => format!("{disp}(%{},%{},{s})", b.name64(), i.name64()),
        (None, Some((i, s))) => format!("{disp}(,%{},{s})", i.name64()),
        (None, None) => format!("{:#x}", m.disp),
    }
}

fn reg_name(insn: &Insn, num: u8, w: Width) -> String {
    format!("%{}", Reg::from_num(num).name_w(w, insn.prefixes.rex.is_some()))
}

fn rm_str(insn: &Insn, m: &ModRm, w: Width) -> String {
    match &m.mem {
        Some(mem) => fmt_mem(insn, mem),
        None => reg_name(insn, m.rm, w),
    }
}

fn reg_str(insn: &Insn, m: &ModRm, w: Width) -> String {
    reg_name(insn, m.reg, w)
}

fn imm_str(insn: &Insn) -> String {
    if insn.imm < 0 {
        format!("$-{:#x}", -(insn.imm as i128))
    } else {
        format!("${:#x}", insn.imm)
    }
}

fn width_suffix(w: Width) -> &'static str {
    match w {
        Width::B => "b",
        Width::W => "w",
        Width::D => "l",
        Width::Q => "q",
    }
}

const ALU_NAMES: [&str; 8] = ["add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"];
const SHIFT_NAMES: [&str; 8] = ["rol", "ror", "rcl", "rcr", "shl", "shr", "sal", "sar"];
const GRP3_NAMES: [&str; 8] = ["test", "test", "not", "neg", "mul", "imul", "div", "idiv"];

fn fallback(insn: &Insn) -> String {
    let bytes: Vec<String> = insn.bytes().iter().map(|b| format!("{b:02x}")).collect();
    format!("(bytes {})", bytes.join(" "))
}

/// Render `insn` in AT&T syntax.
pub fn format_insn(insn: &Insn) -> String {
    let w = insn.width;
    // Branches first (their targets need the address).
    match insn.kind {
        Kind::JmpRel8 | Kind::JmpRel32 => {
            return format!("jmp {:#x}", insn.branch_target().unwrap());
        }
        Kind::JccRel8(c) | Kind::JccRel32(c) => {
            return format!("j{} {:#x}", cond_suffix(c), insn.branch_target().unwrap());
        }
        Kind::CallRel32 => {
            return format!("call {:#x}", insn.branch_target().unwrap());
        }
        Kind::JmpInd => {
            let m = insn.modrm.unwrap();
            return format!("jmp *{}", rm_str(insn, &m, Width::Q));
        }
        Kind::CallInd => {
            let m = insn.modrm.unwrap();
            return format!("call *{}", rm_str(insn, &m, Width::Q));
        }
        Kind::Ret => {
            return if insn.imm != 0 {
                format!("ret {}", imm_str(insn))
            } else {
                "ret".to_string()
            };
        }
        Kind::Int3 => return "int3".to_string(),
        Kind::Syscall => return "syscall".to_string(),
        Kind::LoopRel8 => {
            let name = match insn.opcode {
                Opcode::One(0xE0) => "loopne",
                Opcode::One(0xE1) => "loope",
                Opcode::One(0xE2) => "loop",
                _ => "jrcxz",
            };
            return format!("{name} {:#x}", insn.branch_target().unwrap());
        }
        Kind::Other => {}
    }

    match insn.opcode {
        // ALU family.
        Opcode::One(op) if op < 0x40 && !matches!(op & 7, 6 | 7) => {
            let name = ALU_NAMES[(op >> 3) as usize];
            let m = insn.modrm;
            match op & 7 {
                0 | 1 => {
                    let m = m.unwrap();
                    format!("{name} {},{}", reg_str(insn, &m, w), rm_str(insn, &m, w))
                }
                2 | 3 => {
                    let m = m.unwrap();
                    format!("{name} {},{}", rm_str(insn, &m, w), reg_str(insn, &m, w))
                }
                _ => format!("{name} {},{}", imm_str(insn), reg_name(insn, 0, w)),
            }
        }
        Opcode::One(op @ (0x80 | 0x81 | 0x83)) => {
            let _ = op;
            let m = insn.modrm.unwrap();
            let name = ALU_NAMES[(m.reg & 7) as usize];
            format!(
                "{name}{} {},{}",
                if m.mem.is_some() { width_suffix(w) } else { "" },
                imm_str(insn),
                rm_str(insn, &m, w)
            )
        }
        Opcode::One(0x84 | 0x85) => {
            let m = insn.modrm.unwrap();
            format!("test {},{}", reg_str(insn, &m, w), rm_str(insn, &m, w))
        }
        Opcode::One(0x86 | 0x87) => {
            let m = insn.modrm.unwrap();
            format!("xchg {},{}", reg_str(insn, &m, w), rm_str(insn, &m, w))
        }
        Opcode::One(0x88 | 0x89) => {
            let m = insn.modrm.unwrap();
            format!("mov {},{}", reg_str(insn, &m, w), rm_str(insn, &m, w))
        }
        Opcode::One(0x8A | 0x8B) => {
            let m = insn.modrm.unwrap();
            format!("mov {},{}", rm_str(insn, &m, w), reg_str(insn, &m, w))
        }
        Opcode::One(0x8D) => {
            let m = insn.modrm.unwrap();
            format!("lea {},{}", rm_str(insn, &m, w), reg_str(insn, &m, w))
        }
        Opcode::One(0x8F) => {
            let m = insn.modrm.unwrap();
            format!("pop {}", rm_str(insn, &m, Width::Q))
        }
        Opcode::One(0x63) => {
            let m = insn.modrm.unwrap();
            format!(
                "movsxd {},{}",
                rm_str(insn, &m, Width::D),
                reg_str(insn, &m, w)
            )
        }
        Opcode::One(op @ 0x50..=0x57) => {
            let r = (op & 7) | if insn.prefixes.rex_b() { 8 } else { 0 };
            format!("push {}", reg_name(insn, r, Width::Q))
        }
        Opcode::One(op @ 0x58..=0x5F) => {
            let r = (op & 7) | if insn.prefixes.rex_b() { 8 } else { 0 };
            format!("pop {}", reg_name(insn, r, Width::Q))
        }
        Opcode::One(0x68 | 0x6A) => format!("push {}", imm_str(insn)),
        Opcode::One(0x69 | 0x6B) => {
            let m = insn.modrm.unwrap();
            format!(
                "imul {},{},{}",
                imm_str(insn),
                rm_str(insn, &m, w),
                reg_str(insn, &m, w)
            )
        }
        Opcode::One(0x90) if !insn.prefixes.rex_b() => "nop".to_string(),
        Opcode::One(op @ 0x90..=0x97) => {
            let r = (op & 7) | if insn.prefixes.rex_b() { 8 } else { 0 };
            format!("xchg {},{}", reg_name(insn, 0, w), reg_name(insn, r, w))
        }
        Opcode::One(0x98) => if w == Width::Q { "cdqe" } else { "cwde" }.to_string(),
        Opcode::One(0x99) => if w == Width::Q { "cqo" } else { "cdq" }.to_string(),
        Opcode::One(0x9C) => "pushfq".to_string(),
        Opcode::One(0x9D) => "popfq".to_string(),
        Opcode::One(0xA8 | 0xA9) => {
            format!("test {},{}", imm_str(insn), reg_name(insn, 0, w))
        }
        Opcode::One(op @ 0xB0..=0xBF) => {
            let r = (op & 7) | if insn.prefixes.rex_b() { 8 } else { 0 };
            let aw = if op < 0xB8 { Width::B } else { w };
            format!("mov {},{}", imm_str(insn), reg_name(insn, r, aw))
        }
        Opcode::One(op @ (0xC0 | 0xC1 | 0xD0 | 0xD1 | 0xD2 | 0xD3)) => {
            let m = insn.modrm.unwrap();
            let name = SHIFT_NAMES[(m.reg & 7) as usize];
            let count = match op {
                0xC0 | 0xC1 => imm_str(insn),
                0xD0 | 0xD1 => "$1".to_string(),
                _ => "%cl".to_string(),
            };
            format!("{name} {count},{}", rm_str(insn, &m, w))
        }
        Opcode::One(0xC6 | 0xC7) => {
            let m = insn.modrm.unwrap();
            format!(
                "mov{} {},{}",
                if m.mem.is_some() { width_suffix(w) } else { "" },
                imm_str(insn),
                rm_str(insn, &m, w)
            )
        }
        Opcode::One(0xC9) => "leave".to_string(),
        Opcode::One(0xF6 | 0xF7) => {
            let m = insn.modrm.unwrap();
            let name = GRP3_NAMES[(m.reg & 7) as usize];
            if m.reg & 7 <= 1 {
                format!("{name} {},{}", imm_str(insn), rm_str(insn, &m, w))
            } else {
                format!("{name}{} {}", width_suffix(w), rm_str(insn, &m, w))
            }
        }
        Opcode::One(0xFE | 0xFF) => {
            let m = insn.modrm.unwrap();
            match m.reg & 7 {
                0 => format!("inc{} {}", width_suffix(w), rm_str(insn, &m, w)),
                1 => format!("dec{} {}", width_suffix(w), rm_str(insn, &m, w)),
                6 => format!("push {}", rm_str(insn, &m, Width::Q)),
                _ => fallback(insn),
            }
        }
        Opcode::TwoOf(0x1F) => "nop".to_string(),
        Opcode::TwoOf(op @ 0x40..=0x4F) => {
            let m = insn.modrm.unwrap();
            format!(
                "cmov{} {},{}",
                cond_suffix(Cond::from_nibble(op & 0xF)),
                rm_str(insn, &m, w),
                reg_str(insn, &m, w)
            )
        }
        Opcode::TwoOf(op @ 0x90..=0x9F) => {
            let m = insn.modrm.unwrap();
            format!(
                "set{} {}",
                cond_suffix(Cond::from_nibble(op & 0xF)),
                rm_str(insn, &m, Width::B)
            )
        }
        Opcode::TwoOf(0xAF) => {
            let m = insn.modrm.unwrap();
            format!("imul {},{}", rm_str(insn, &m, w), reg_str(insn, &m, w))
        }
        Opcode::TwoOf(op @ (0xB6 | 0xB7 | 0xBE | 0xBF)) => {
            let m = insn.modrm.unwrap();
            let name = if op < 0xBE { "movzx" } else { "movsx" };
            let src_w = if op & 1 == 0 { Width::B } else { Width::W };
            format!(
                "{name} {},{}",
                rm_str(insn, &m, src_w),
                reg_str(insn, &m, w)
            )
        }
        Opcode::TwoOf(0x0B) => "ud2".to_string(),
        Opcode::TwoOf(0xA2) => "cpuid".to_string(),
        Opcode::TwoOf(0x31) => "rdtsc".to_string(),
        Opcode::TwoOf(op @ 0xC8..=0xCF) => {
            let r = (op & 7) | if insn.prefixes.rex_b() { 8 } else { 0 };
            format!("bswap {}", reg_name(insn, r, w))
        }
        _ => fallback(insn),
    }
}

/// Render an objdump-style line: address, bytes, mnemonic.
pub fn format_listing_line(insn: &Insn) -> String {
    let bytes: Vec<String> = insn.bytes().iter().map(|b| format!("{b:02x}")).collect();
    format!("{:>12x}: {:<30} {}", insn.addr, bytes.join(" "), format_insn(insn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn fmt(bytes: &[u8]) -> String {
        format_insn(&decode(bytes, 0x401000).unwrap())
    }

    #[test]
    fn paper_figure1_sequence() {
        assert_eq!(fmt(&[0x48, 0x89, 0x03]), "mov %rax,(%rbx)");
        assert_eq!(fmt(&[0x48, 0x83, 0xC0, 0x20]), "add $0x20,%rax");
        assert_eq!(fmt(&[0x48, 0x31, 0xC1]), "xor %rax,%rcx");
        assert_eq!(fmt(&[0x83, 0x7B, 0xFC, 0x4D]), "cmpl $0x4d,-0x4(%rbx)");
    }

    #[test]
    fn figure2_instructions() {
        assert_eq!(fmt(&[0x89, 0xDD]), "mov %ebx,%ebp");
        assert_eq!(fmt(&[0xF6, 0x43, 0x18, 0x02]), "test $0x2,0x18(%rbx)");
        let i = decode(&[0xEB, 0x70], 0x422A61).unwrap();
        assert_eq!(format_insn(&i), "jmp 0x422ad3");
        let i = decode(&[0xE9, 0xBE, 0xFC, 0xFF, 0xFF], 0x422A63).unwrap();
        assert_eq!(format_insn(&i), "jmp 0x422726");
        let i = decode(&[0x74, 0x27], 0x422AD5).unwrap();
        assert_eq!(format_insn(&i), "je 0x422afe");
        assert_eq!(
            fmt(&[0xFF, 0x15, 0x6F, 0x2A, 0x2A, 0x00]),
            format!("call *{:#x}(%rip)", 0x401006 + 0x2A2A6F)
        );
    }

    #[test]
    fn branches_and_calls() {
        let i = decode(&[0xE8, 0x10, 0x00, 0x00, 0x00], 0x401000).unwrap();
        assert_eq!(format_insn(&i), "call 0x401015");
        assert_eq!(fmt(&[0xFF, 0xE0]), "jmp *%rax");
        assert_eq!(fmt(&[0xFF, 0x24, 0xD8]), "jmp *(%rax,%rbx,8)");
        assert_eq!(fmt(&[0xC3]), "ret");
        assert_eq!(fmt(&[0xC2, 0x10, 0x00]), "ret $0x10");
    }

    #[test]
    fn stack_and_moves() {
        assert_eq!(fmt(&[0x50]), "push %rax");
        assert_eq!(fmt(&[0x41, 0x57]), "push %r15");
        assert_eq!(fmt(&[0x58]), "pop %rax");
        assert_eq!(fmt(&[0x6A, 0x2A]), "push $0x2a");
        assert_eq!(fmt(&[0xB8, 0x05, 0, 0, 0]), "mov $0x5,%eax");
        assert_eq!(
            fmt(&[0x48, 0xB8, 1, 0, 0, 0, 0, 0, 0, 0]),
            "mov $0x1,%rax"
        );
        assert_eq!(fmt(&[0xB0, 0x07]), "mov $0x7,%al");
        assert_eq!(fmt(&[0x9C]), "pushfq");
        assert_eq!(fmt(&[0x9D]), "popfq");
    }

    #[test]
    fn widths_and_registers() {
        assert_eq!(fmt(&[0x89, 0xD8]), "mov %ebx,%eax");
        assert_eq!(fmt(&[0x66, 0x89, 0xD8]), "mov %bx,%ax");
        assert_eq!(fmt(&[0x88, 0xD8]), "mov %bl,%al");
        assert_eq!(fmt(&[0x88, 0xF8]), "mov %bh,%al"); // no REX → high byte
        assert_eq!(fmt(&[0x40, 0x88, 0xF8]), "mov %dil,%al"); // REX → dil
        assert_eq!(fmt(&[0x45, 0x89, 0xC7]), "mov %r8d,%r15d");
    }

    #[test]
    fn memory_forms() {
        assert_eq!(fmt(&[0x48, 0x8B, 0x04, 0x24]), "mov (%rsp),%rax");
        assert_eq!(
            fmt(&[0x48, 0x89, 0x44, 0x8D, 0x10]),
            "mov %rax,0x10(%rbp,%rcx,4)"
        );
        assert_eq!(
            fmt(&[0x89, 0x04, 0x25, 0x00, 0x10, 0x00, 0x00]),
            "mov %eax,0x1000"
        );
        assert_eq!(
            fmt(&[0x48, 0x8D, 0x04, 0x8D, 0x00, 0x00, 0x00, 0x00]),
            "lea (,%rcx,4),%rax"
        );
    }

    #[test]
    fn group_instructions() {
        assert_eq!(fmt(&[0x48, 0xF7, 0xD8]), "negq %rax");
        assert_eq!(fmt(&[0x48, 0xF7, 0xD0]), "notq %rax");
        assert_eq!(fmt(&[0x48, 0xF7, 0xE1]), "mulq %rcx");
        assert_eq!(fmt(&[0x48, 0xF7, 0xF6]), "divq %rsi");
        assert_eq!(fmt(&[0x48, 0xFF, 0xC0]), "incq %rax");
        assert_eq!(fmt(&[0xFE, 0x0B]), "decb (%rbx)");
        assert_eq!(fmt(&[0x48, 0xC1, 0xE0, 0x03]), "shl $0x3,%rax");
        assert_eq!(fmt(&[0x48, 0xD3, 0xE7]), "shl %cl,%rdi");
    }

    #[test]
    fn extended_forms() {
        assert_eq!(fmt(&[0x0F, 0xB6, 0x07]), "movzx (%rdi),%eax");
        assert_eq!(fmt(&[0x48, 0x0F, 0xBE, 0x13]), "movsx (%rbx),%rdx");
        assert_eq!(fmt(&[0x48, 0x0F, 0xAF, 0xC1]), "imul %rcx,%rax");
        assert_eq!(fmt(&[0x0F, 0x94, 0xC0]), "sete %al");
        assert_eq!(fmt(&[0x48, 0x0F, 0x4C, 0xD9]), "cmovl %rcx,%rbx");
        assert_eq!(fmt(&[0x0F, 0xC8]), "bswap %eax");
        assert_eq!(fmt(&[0xCC]), "int3");
        assert_eq!(fmt(&[0x0F, 0x05]), "syscall");
        assert_eq!(fmt(&[0x0F, 0x0B]), "ud2");
        assert_eq!(fmt(&[0x90]), "nop");
        assert_eq!(fmt(&[0x0F, 0x1F, 0x44, 0x00, 0x00]), "nop");
    }

    #[test]
    fn fallback_is_total() {
        // An SSE instruction we don't name still formats.
        let s = fmt(&[0x0F, 0x58, 0xC1]); // addps
        assert!(s.starts_with("(bytes"), "{s}");
    }

    #[test]
    fn listing_line_shape() {
        let i = decode(&[0x48, 0x89, 0x03], 0x401000).unwrap();
        let line = format_listing_line(&i);
        assert!(line.contains("401000:"));
        assert!(line.contains("48 89 03"));
        assert!(line.ends_with("mov %rax,(%rbx)"));
    }

    #[test]
    fn negative_immediates() {
        assert_eq!(fmt(&[0x48, 0x83, 0xC0, 0xFF]), "add $-0x1,%rax");
        assert_eq!(fmt(&[0x48, 0x8B, 0x43, 0xF8]), "mov -0x8(%rbx),%rax");
    }
}
