//! Instruction relocation: re-encode a decoded instruction so it executes
//! correctly at a different address.
//!
//! Trampolines execute *displaced* copies of patched (or evicted)
//! instructions. Position-dependent instructions — relative branches and
//! RIP-relative memory operands — must have their displacement re-encoded
//! for the trampoline's address; everything else is copied verbatim.

use crate::insn::{Insn, Kind};
use std::fmt;

/// Relocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocError {
    /// New displacement does not fit in 32 bits.
    DispOutOfRange {
        /// Address the instruction was being moved to.
        new_addr: u64,
        /// The (unreachable) original target.
        target: u64,
    },
    /// `loop`/`jrcxz` have no rel32 form and no flag-preserving emulation
    /// within a trampoline; E9Patch-style rewriters simply fail the patch.
    UnsupportedLoop,
}

impl fmt::Display for RelocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelocError::DispOutOfRange { new_addr, target } => write!(
                f,
                "relocated displacement from {new_addr:#x} to {target:#x} exceeds rel32"
            ),
            RelocError::UnsupportedLoop => {
                write!(f, "loop/jrcxz cannot be relocated to a trampoline")
            }
        }
    }
}

impl std::error::Error for RelocError {}

fn rel32_to(target: u64, end_of_insn: u64, new_addr: u64) -> Result<i32, RelocError> {
    let d = target.wrapping_sub(end_of_insn) as i64;
    i32::try_from(d).map_err(|_| RelocError::DispOutOfRange { new_addr, target })
}

/// Re-encode `insn` (originally at `insn.addr`) for execution at `new_addr`.
///
/// Relative branches are widened to their rel32 forms; RIP-relative memory
/// displacements are adjusted. The returned byte vector may be longer than
/// the original instruction (rel8 → rel32 widening).
///
/// # Errors
///
/// Fails when the original target leaves the ±2 GiB rel32 range from the new
/// location, or for `loop`/`jrcxz` (no rel32 form exists).
pub fn relocate(insn: &Insn, new_addr: u64) -> Result<Vec<u8>, RelocError> {
    match insn.kind {
        Kind::JmpRel8 | Kind::JmpRel32 => {
            let target = insn.branch_target().expect("relative branch");
            let rel = rel32_to(target, new_addr + 5, new_addr)?;
            let mut v = Vec::with_capacity(5);
            v.push(0xE9);
            v.extend_from_slice(&rel.to_le_bytes());
            Ok(v)
        }
        Kind::JccRel8(c) | Kind::JccRel32(c) => {
            let target = insn.branch_target().expect("relative branch");
            let rel = rel32_to(target, new_addr + 6, new_addr)?;
            let mut v = Vec::with_capacity(6);
            v.push(0x0F);
            v.push(0x80 + c as u8);
            v.extend_from_slice(&rel.to_le_bytes());
            Ok(v)
        }
        Kind::CallRel32 => {
            let target = insn.branch_target().expect("relative branch");
            let rel = rel32_to(target, new_addr + 5, new_addr)?;
            let mut v = Vec::with_capacity(5);
            v.push(0xE8);
            v.extend_from_slice(&rel.to_le_bytes());
            Ok(v)
        }
        Kind::LoopRel8 => Err(RelocError::UnsupportedLoop),
        _ => {
            let mut v = insn.bytes().to_vec();
            if let Some(m) = insn.modrm {
                if let Some(mem) = m.mem {
                    if mem.rip_relative {
                        // target = old_end + disp; new_disp = target - new_end.
                        let target = insn.end().wrapping_add(mem.disp as i64 as u64);
                        let new_end = new_addr + insn.len() as u64;
                        let nd = target.wrapping_sub(new_end) as i64;
                        let nd32 = i32::try_from(nd).map_err(|_| RelocError::DispOutOfRange {
                            new_addr,
                            target,
                        })?;
                        let off = m.disp_offset as usize;
                        v[off..off + 4].copy_from_slice(&nd32.to_le_bytes());
                    }
                }
            }
            Ok(v)
        }
    }
}

/// Worst-case size in bytes of the relocated form of `insn` (used by the
/// trampoline planner to budget space before final encoding).
pub fn relocated_size_upper_bound(insn: &Insn) -> usize {
    match insn.kind {
        Kind::JmpRel8 | Kind::JmpRel32 | Kind::CallRel32 => 5,
        Kind::JccRel8(_) | Kind::JccRel32(_) => 6,
        _ => insn.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn plain_instruction_copies_verbatim() {
        let i = decode(&[0x48, 0x89, 0x03], 0x400000).unwrap();
        let v = relocate(&i, 0x70000000).unwrap();
        assert_eq!(v, vec![0x48, 0x89, 0x03]);
    }

    #[test]
    fn rel8_jump_widens() {
        // jmp +0x10 at 0x1000 → target 0x1012.
        let i = decode(&[0xEB, 0x10], 0x1000).unwrap();
        let v = relocate(&i, 0x2000).unwrap();
        let r = decode(&v, 0x2000).unwrap();
        assert_eq!(r.branch_target(), Some(0x1012));
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn jcc_rel8_widens_preserving_condition() {
        let i = decode(&[0x74, 0x27], 0x422ad5).unwrap(); // je 0x422afe
        let v = relocate(&i, 0x744513d6).unwrap();
        let r = decode(&v, 0x744513d6).unwrap();
        assert_eq!(r.branch_target(), Some(0x422afe));
        assert_eq!(r.kind, crate::insn::Kind::JccRel32(crate::Cond::E));
    }

    #[test]
    fn figure2_evictee_trampoline_jump() {
        // Figure 2(d): the evictee trampoline at 744513da jumps back to
        // 422ad5 with rel32 8bfd16f6.
        let i = decode(&[0xEB, 0x00], 0x422ad3).unwrap(); // placeholder jmp to 0x422ad5
        let v = relocate(&i, 0x744513da).unwrap();
        assert_eq!(v, vec![0xE9, 0xF6, 0x16, 0xFD, 0x8B]);
    }

    #[test]
    fn call_rel32_retargets() {
        let i = decode(&[0xE8, 0x00, 0x01, 0x00, 0x00], 0x400000).unwrap();
        let target = i.branch_target().unwrap();
        let v = relocate(&i, 0x500000).unwrap();
        let r = decode(&v, 0x500000).unwrap();
        assert_eq!(r.branch_target(), Some(target));
    }

    #[test]
    fn rip_relative_disp_adjusts() {
        // mov %rax,0x2000(%rip) at 0x400000 → target 0x402007.
        let i = decode(&[0x48, 0x89, 0x05, 0x00, 0x20, 0x00, 0x00], 0x400000).unwrap();
        let v = relocate(&i, 0x400100).unwrap();
        let r = decode(&v, 0x400100).unwrap();
        let m = r.modrm.unwrap().mem.unwrap();
        let target = r.end().wrapping_add(m.disp as i64 as u64);
        assert_eq!(target, 0x400000 + 7 + 0x2000);
    }

    #[test]
    fn out_of_range_rejected() {
        let i = decode(&[0xEB, 0x10], 0x1000).unwrap();
        let err = relocate(&i, 0x4000_0000_0000).unwrap_err();
        assert!(matches!(err, RelocError::DispOutOfRange { .. }));
    }

    #[test]
    fn loop_unsupported() {
        let i = decode(&[0xE2, 0xFE], 0x1000).unwrap();
        assert_eq!(relocate(&i, 0x2000), Err(RelocError::UnsupportedLoop));
    }

    #[test]
    fn size_upper_bound_holds() {
        for bytes in [
            &[0xEB, 0x10][..],
            &[0x74, 0x27][..],
            &[0xE9, 0, 0, 0, 0][..],
            &[0xE8, 0, 0, 0, 0][..],
            &[0x48, 0x89, 0x05, 0, 0x20, 0, 0][..],
            &[0x48, 0x89, 0x03][..],
        ] {
            let i = decode(bytes, 0x400000).unwrap();
            let v = relocate(&i, 0x500000).unwrap();
            assert!(v.len() <= relocated_size_upper_bound(&i));
        }
    }
}
