//! General-purpose register model.

use std::fmt;

/// A 64-bit general-purpose register.
///
/// The numeric value is the hardware encoding (0–15) used in ModRM/SIB and
/// opcode-embedded register fields (with the REX extension bit folded in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// All sixteen general-purpose registers in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Hardware encoding (0–15).
    #[inline]
    pub fn num(self) -> u8 {
        self as u8
    }

    /// Low three encoding bits (the ModRM field without the REX extension).
    #[inline]
    pub fn low3(self) -> u8 {
        self.num() & 7
    }

    /// Whether encoding this register requires a REX extension bit.
    #[inline]
    pub fn needs_rex(self) -> bool {
        self.num() >= 8
    }

    /// Register from its hardware encoding.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    #[inline]
    pub fn from_num(n: u8) -> Reg {
        Reg::ALL[n as usize]
    }

    /// AT&T-style name of the 64-bit register.
    pub fn name64(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ];
        NAMES[self.num() as usize]
    }

    /// Register name at a given operand width. For byte width,
    /// `rex_present` selects between the uniform low-byte names
    /// (`spl`/`sil`/…) and the legacy high-byte names (`ah`/`ch`/…) for
    /// encodings 4–7.
    pub fn name_w(self, w: Width, rex_present: bool) -> &'static str {
        const N32: [&str; 16] = [
            "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi", "r8d", "r9d", "r10d",
            "r11d", "r12d", "r13d", "r14d", "r15d",
        ];
        const N16: [&str; 16] = [
            "ax", "cx", "dx", "bx", "sp", "bp", "si", "di", "r8w", "r9w", "r10w", "r11w",
            "r12w", "r13w", "r14w", "r15w",
        ];
        const N8: [&str; 16] = [
            "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil", "r8b", "r9b", "r10b", "r11b",
            "r12b", "r13b", "r14b", "r15b",
        ];
        const N8_LEGACY_HIGH: [&str; 4] = ["ah", "ch", "dh", "bh"];
        let i = self.num() as usize;
        match w {
            Width::Q => self.name64(),
            Width::D => N32[i],
            Width::W => N16[i],
            Width::B => {
                if !rex_present && (4..8).contains(&i) {
                    N8_LEGACY_HIGH[i - 4]
                } else {
                    N8[i]
                }
            }
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.name64())
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.num()
    }
}

/// Operand width for instructions that come in several sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 8-bit operands.
    B,
    /// 16-bit operands (operand-size prefix `0x66`).
    W,
    /// 32-bit operands (the 64-bit-mode default).
    D,
    /// 64-bit operands (`REX.W`).
    Q,
}

impl Width {
    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u8 {
        match self {
            Width::B => 1,
            Width::W => 2,
            Width::D => 4,
            Width::Q => 8,
        }
    }

    /// Width in bits.
    #[inline]
    pub fn bits(self) -> u32 {
        self.bytes() as u32 * 8
    }

    /// Mask selecting the low `bits()` of a 64-bit value.
    #[inline]
    pub fn mask(self) -> u64 {
        match self {
            Width::Q => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// Sign-extend the low `bits()` of `v` to 64 bits.
    #[inline]
    pub fn sext(self, v: u64) -> i64 {
        let sh = 64 - self.bits();
        ((v << sh) as i64) >> sh
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Width::B => 'b',
            Width::W => 'w',
            Width::D => 'l',
            Width::Q => 'q',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        for n in 0..16 {
            assert_eq!(Reg::from_num(n).num(), n);
        }
    }

    #[test]
    fn rex_extension_split() {
        assert!(!Reg::Rdi.needs_rex());
        assert!(Reg::R8.needs_rex());
        assert_eq!(Reg::R13.low3(), Reg::Rbp.low3());
    }

    #[test]
    fn width_masks() {
        assert_eq!(Width::B.mask(), 0xFF);
        assert_eq!(Width::W.mask(), 0xFFFF);
        assert_eq!(Width::D.mask(), 0xFFFF_FFFF);
        assert_eq!(Width::Q.mask(), u64::MAX);
    }

    #[test]
    fn width_sign_extension() {
        assert_eq!(Width::B.sext(0x80), -128);
        assert_eq!(Width::B.sext(0x7F), 127);
        assert_eq!(Width::D.sext(0xFFFF_FFFF), -1);
        assert_eq!(Width::Q.sext(u64::MAX), -1);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::Rax.to_string(), "%rax");
        assert_eq!(Reg::R15.to_string(), "%r15");
    }
}
