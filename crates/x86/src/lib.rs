//! # e9x86 — x86_64 machine-code substrate
//!
//! A from-scratch x86_64 instruction **decoder**, **classifier**,
//! **encoder/mini-assembler**, and **relocator**, built for the E9Patch
//! reproduction (PLDI 2020, *Binary Rewriting without Control Flow
//! Recovery*).
//!
//! The rewriter core (`e9patch`) only needs instruction *locations and
//! sizes* plus a few byte-level facts (branch kinds, pun windows); the
//! emulator (`e9vm`) additionally interprets the decoded operands. Both are
//! served by [`decode::decode`], which produces an [`insn::Insn`] carrying
//! prefixes, opcode, ModRM/SIB, displacement and immediate fields.
//!
//! ```
//! use e9x86::decode::decode;
//!
//! // mov %rax,(%rbx) — the paper's §2.1.3 example patch instruction.
//! let insn = decode(&[0x48, 0x89, 0x03], 0x400000).unwrap();
//! assert_eq!(insn.len(), 3);
//! assert!(insn.writes_memory());
//! ```

pub mod asm;
pub mod decode;
pub mod fmt;
pub mod insn;
pub mod prefix;
pub mod reg;
pub mod reloc;

pub use decode::{decode, DecodeError};
pub use insn::{Cond, Insn, Kind};
pub use reg::Reg;

/// Maximum legal x86_64 instruction length in bytes.
pub const MAX_INSN_LEN: usize = 15;

/// Opcode byte of the 32-bit relative near jump (`jmpq rel32`) — the "E9" in
/// E9Patch.
pub const JMP_REL32_OPCODE: u8 = 0xE9;

/// Opcode byte of the 8-bit relative short jump (`jmp rel8`).
pub const JMP_REL8_OPCODE: u8 = 0xEB;

/// Opcode byte of `int3` (baseline B0 trap patching).
pub const INT3_OPCODE: u8 = 0xCC;
