//! Extended decoder coverage: exotic encodings a production length
//! decoder must get right — multi-prefix soup, three-byte maps, string
//! ops, x87, group encodings, and boundary conditions.

use e9x86::decode::{decode, DecodeError};
use e9x86::insn::{Kind, Opcode};
use e9x86::reg::Width;

fn len_of(bytes: &[u8]) -> usize {
    decode(bytes, 0x400000).expect("decode").len()
}

#[test]
fn three_byte_maps() {
    // 0F 38: pshufb %xmm1,%xmm0 → 66 0f 38 00 c1.
    assert_eq!(len_of(&[0x66, 0x0F, 0x38, 0x00, 0xC1]), 5);
    // 0F 3A always carries imm8: palignr $5,%xmm1,%xmm0.
    assert_eq!(len_of(&[0x66, 0x0F, 0x3A, 0x0F, 0xC1, 0x05]), 6);
    // With a memory operand + disp32.
    assert_eq!(
        len_of(&[0x66, 0x0F, 0x3A, 0x0F, 0x81, 0x00, 0x01, 0x00, 0x00, 0x07]),
        10
    );
    let i = decode(&[0x66, 0x0F, 0x38, 0x00, 0xC1], 0).unwrap();
    assert!(matches!(i.opcode, Opcode::ThreeOf38(0x00)));
}

#[test]
fn sse_with_mandatory_prefixes() {
    // movsd (%rax),%xmm0: f2 0f 10 00.
    assert_eq!(len_of(&[0xF2, 0x0F, 0x10, 0x00]), 4);
    // movss store: f3 0f 11 00 — classified as a memory write.
    let i = decode(&[0xF3, 0x0F, 0x11, 0x00], 0).unwrap();
    assert!(i.writes_memory());
    // movdqa load is not a write: 66 0f 6f 00.
    let i = decode(&[0x66, 0x0F, 0x6F, 0x00], 0).unwrap();
    assert!(!i.writes_memory());
    // movdqa store is: 66 0f 7f 00.
    let i = decode(&[0x66, 0x0F, 0x7F, 0x00], 0).unwrap();
    assert!(i.writes_memory());
}

#[test]
fn x87_instructions() {
    // fldl (%rax): dd 00; fstpl 8(%rax): dd 58 08; faddp: de c1.
    assert_eq!(len_of(&[0xDD, 0x00]), 2);
    assert_eq!(len_of(&[0xDD, 0x58, 0x08]), 3);
    assert_eq!(len_of(&[0xDE, 0xC1]), 2);
}

#[test]
fn string_ops_with_rep() {
    assert_eq!(len_of(&[0xF3, 0xA4]), 2); // rep movsb
    assert_eq!(len_of(&[0xF3, 0x48, 0xA5]), 3); // rep movsq
    assert_eq!(len_of(&[0xF2, 0xAE]), 2); // repne scasb
    let i = decode(&[0xF3, 0x48, 0xAB], 0).unwrap(); // rep stosq
    assert!(i.writes_memory());
}

#[test]
fn lock_prefixed_rmw() {
    // lock add %rax,(%rbx): f0 48 01 03.
    let i = decode(&[0xF0, 0x48, 0x01, 0x03], 0).unwrap();
    assert_eq!(i.len(), 4);
    assert!(i.prefixes.lock);
    assert!(i.writes_memory());
    // lock cmpxchg %rcx,(%rdx): f0 48 0f b1 0a.
    let i = decode(&[0xF0, 0x48, 0x0F, 0xB1, 0x0A], 0).unwrap();
    assert_eq!(i.len(), 5);
    assert!(i.writes_memory());
}

#[test]
fn segment_prefixed_memory_access() {
    // mov %fs:0x28,%rax: 64 48 8b 04 25 28 00 00 00.
    let i = decode(&[0x64, 0x48, 0x8B, 0x04, 0x25, 0x28, 0, 0, 0], 0).unwrap();
    assert_eq!(i.len(), 9);
    assert_eq!(i.prefixes.segment, Some(0x64));
    let m = i.modrm.unwrap().mem.unwrap();
    assert_eq!(m.base, None);
    assert_eq!(m.disp, 0x28);
}

#[test]
fn sixteen_bit_operand_forms() {
    // mov %ax,(%rbx): 66 89 03.
    let i = decode(&[0x66, 0x89, 0x03], 0).unwrap();
    assert_eq!(i.len(), 3);
    assert_eq!(i.width, Width::W);
    // add $0x1234,%ax: 66 05 34 12.
    let i = decode(&[0x66, 0x05, 0x34, 0x12], 0).unwrap();
    assert_eq!(i.len(), 4);
    assert_eq!(i.imm, 0x1234);
    // imul $imm16: 66 69 c0 34 12.
    assert_eq!(len_of(&[0x66, 0x69, 0xC0, 0x34, 0x12]), 5);
}

#[test]
fn group8_bit_tests() {
    // bt $5,%rax: 48 0f ba e0 05 (read-only).
    let i = decode(&[0x48, 0x0F, 0xBA, 0xE0, 0x05], 0).unwrap();
    assert_eq!(i.len(), 5);
    // bts $5,(%rax): 48 0f ba 28 05 (writes).
    let i = decode(&[0x48, 0x0F, 0xBA, 0x28, 0x05], 0).unwrap();
    assert!(i.writes_memory());
    // bt $5,(%rax): 48 0f ba 20 05 (does not write).
    let i = decode(&[0x48, 0x0F, 0xBA, 0x20, 0x05], 0).unwrap();
    assert!(!i.writes_memory());
}

#[test]
fn cmpxchg_and_xadd_write() {
    let i = decode(&[0x48, 0x0F, 0xB1, 0x0B], 0).unwrap(); // cmpxchg %rcx,(%rbx)
    assert!(i.writes_memory());
    let i = decode(&[0x48, 0x0F, 0xC1, 0x0B], 0).unwrap(); // xadd %rcx,(%rbx)
    assert!(i.writes_memory());
}

#[test]
fn setcc_writes_byte() {
    let i = decode(&[0x0F, 0x94, 0x03], 0).unwrap(); // sete (%rbx)
    assert!(i.writes_memory());
    assert!(i.is_heap_write());
    let i = decode(&[0x0F, 0x94, 0xC0], 0).unwrap(); // sete %al
    assert!(!i.writes_memory());
}

#[test]
fn max_length_instruction() {
    // A 15-byte instruction: prefixes + add with SIB + disp32 + imm32.
    // 66 2e 3e 26 64 65 36 f0? lock+add... build: 4 seg prefixes + 66 +
    // REX + 81 /0 with SIB+disp32 + imm16 (66 makes Iz=2).
    let bytes = [
        0x2E, 0x3E, 0x26, 0x64, 0x66, 0x48, 0x81, 0x84, 0x88, 0x11, 0x22, 0x33, 0x44, 0x55,
        0x66,
    ];
    let i = decode(&bytes, 0).unwrap();
    assert_eq!(i.len(), 15);
    // One more prefix pushes it over the architectural limit.
    let mut long = vec![0x65];
    long.extend_from_slice(&bytes);
    assert_eq!(decode(&long, 0), Err(DecodeError::TooLong));
}

#[test]
fn too_many_prefixes_rejected() {
    let bytes = [0x2E; 20];
    assert_eq!(decode(&bytes, 0), Err(DecodeError::TooLong));
}

#[test]
fn call_far_and_unused_opcodes_invalid() {
    for b in [0x06u8, 0x07, 0x0E, 0x16, 0x17, 0x1E, 0x1F, 0x27, 0x2F, 0x37, 0x3F, 0x60, 0x61,
        0x62, 0x82, 0x9A, 0xC4 /* as VEX it needs more bytes */, 0xD4, 0xD5, 0xD6, 0xEA, 0xCE]
    {
        let r = decode(&[b, 0, 0, 0, 0, 0, 0, 0], 0);
        if b == 0xC4 {
            // VEX: consumed as a prefix; may decode or fail, but not as les.
            continue;
        }
        assert!(
            matches!(r, Err(DecodeError::Invalid(_))),
            "{b:#04x} should be invalid, got {r:?}"
        );
    }
}

#[test]
fn in_out_and_misc_singletons() {
    assert_eq!(len_of(&[0xE4, 0x60]), 2); // in $0x60,%al
    assert_eq!(len_of(&[0xEE]), 1); // out %al,(%dx)
    assert_eq!(len_of(&[0xF4]), 1); // hlt
    assert_eq!(len_of(&[0xF5]), 1); // cmc
    assert_eq!(len_of(&[0x98]), 1); // cwde
    assert_eq!(len_of(&[0x9B]), 1); // fwait
    assert_eq!(len_of(&[0xD7]), 1); // xlat
    assert_eq!(len_of(&[0xCF]), 1); // iretq
    assert_eq!(len_of(&[0x0F, 0xA2]), 2); // cpuid
    assert_eq!(len_of(&[0x0F, 0x31]), 2); // rdtsc
    assert_eq!(len_of(&[0x0F, 0x0B]), 2); // ud2
    assert_eq!(len_of(&[0x0F, 0xC8]), 2); // bswap %eax
    assert_eq!(len_of(&[0x48, 0x0F, 0xC8]), 3); // bswap %rax
}

#[test]
fn loop_family() {
    for b in [0xE0u8, 0xE1, 0xE2, 0xE3] {
        let i = decode(&[b, 0x10], 0x1000).unwrap();
        assert_eq!(i.kind, Kind::LoopRel8);
        assert_eq!(i.branch_target(), Some(0x1012));
    }
}

#[test]
fn indirect_forms_with_all_mod_values() {
    // jmp *(%rax), jmp *0x10(%rax), jmp *0x12345678(%rax), jmp *%rax.
    assert_eq!(len_of(&[0xFF, 0x20]), 2);
    assert_eq!(len_of(&[0xFF, 0x60, 0x10]), 3);
    assert_eq!(len_of(&[0xFF, 0xA0, 0x78, 0x56, 0x34, 0x12]), 6);
    assert_eq!(len_of(&[0xFF, 0xE0]), 2);
    for bytes in [&[0xFF, 0x20][..], &[0xFF, 0xE0][..]] {
        assert_eq!(decode(bytes, 0).unwrap().kind, Kind::JmpInd);
    }
}

#[test]
fn mov_seg_and_pop_rm() {
    assert_eq!(len_of(&[0x8C, 0xD8]), 2); // mov %ds,%eax
    assert_eq!(len_of(&[0x8E, 0xD8]), 2); // mov %eax,%ds
    assert_eq!(len_of(&[0x8F, 0x00]), 2); // pop (%rax)
    let i = decode(&[0x8F, 0x00], 0).unwrap();
    assert!(i.writes_memory());
}
