//! Property-based tests for the decoder, assembler and relocator.

use e9x86::asm::{Asm, Mem};
use e9x86::decode::{decode, linear_sweep, DecodeError};
use e9x86::insn::Cond;
use e9x86::reg::{Reg, Width};
use e9x86::reloc::relocate;
use e9qcheck::prelude::*;

props! {
    /// The decoder must never panic and never report a length longer than
    /// its input or the 15-byte architectural limit.
    #[test]
    fn decode_total_and_bounded(bytes in vec(any::<u8>(), 0..24)) {
        match decode(&bytes, 0x400000) {
            Ok(insn) => {
                prop_assert!(insn.len() <= 15);
                prop_assert!(insn.len() <= bytes.len());
                // Decoding the exact instruction bytes must reproduce it.
                let again = decode(&bytes[..insn.len()], 0x400000).unwrap();
                prop_assert_eq!(insn, again);
            }
            Err(DecodeError::Truncated | DecodeError::Invalid(_) | DecodeError::TooLong) => {}
        }
    }

    /// Linear sweep over arbitrary bytes terminates and makes progress.
    #[test]
    fn linear_sweep_terminates(bytes in vec(any::<u8>(), 0..256)) {
        let insns = linear_sweep(&bytes, 0x1000);
        let mut last_end = 0x1000u64;
        for i in &insns {
            prop_assert!(i.addr >= last_end);
            last_end = i.end();
        }
        prop_assert!(last_end <= 0x1000 + bytes.len() as u64);
    }

    /// Everything the assembler emits must round-trip through the decoder
    /// with matching instruction boundaries.
    #[test]
    fn assembler_decoder_roundtrip(
        ops in vec(0u8..14, 1..40),
        regs in vec(0u8..16, 40),
        imms in vec(any::<i32>(), 40),
    ) {
        let mut a = Asm::new(0x401000);
        for (i, op) in ops.iter().enumerate() {
            let r = Reg::from_num(regs[i]);
            let s = Reg::from_num(regs[(i + 7) % regs.len()]);
            let imm = imms[i];
            match op {
                0 => a.mov_rr(Width::Q, r, s),
                1 => a.mov_ri64(r, imm as i64),
                2 => a.add_ri(Width::Q, r, imm),
                3 => a.xor_rr(Width::D, r, s),
                4 => a.push_r(r),
                5 => a.pop_r(r),
                6 => a.lea(r, Mem::base_disp(s, imm % 4096)),
                7 => a.mov_mr(Width::Q, Mem::base_disp(s, imm % 4096), r),
                8 => a.mov_rm(Width::D, r, Mem::base_disp(s, imm % 4096)),
                9 => a.cmp_ri(Width::Q, r, imm),
                10 => a.test_rr(Width::Q, r, s),
                11 => a.imul_rr(Width::Q, r, s),
                12 => a.mov_mi(Width::B, Mem::base(s), imm & 0x7F),
                _ => a.nops((*op as usize) % 9),
            }
        }
        a.ret();
        let code = a.finish().unwrap();
        // Whole stream decodes with no gaps.
        let insns = linear_sweep(&code, 0x401000);
        let total: usize = insns.iter().map(|i| i.len()).sum();
        prop_assert_eq!(total, code.len());
    }

    /// Relocated relative branches preserve their absolute target.
    #[test]
    fn relocation_preserves_target(
        disp in -120i8..120,
        old_addr in 0x40_0000u64..0x50_0000,
        delta in -0x10_0000i64..0x10_0000,
    ) {
        let bytes = [0xEBu8, disp as u8];
        let insn = decode(&bytes, old_addr).unwrap();
        let target = insn.branch_target().unwrap();
        let new_addr = old_addr.wrapping_add(delta as u64);
        let out = relocate(&insn, new_addr).unwrap();
        let moved = decode(&out, new_addr).unwrap();
        prop_assert_eq!(moved.branch_target(), Some(target));
    }

    /// Conditional branches keep their condition across rel8→rel32
    /// widening.
    #[test]
    fn jcc_widening_preserves_condition(cc in 0u8..16, disp in any::<i8>()) {
        let bytes = [0x70 + cc, disp as u8];
        let insn = decode(&bytes, 0x401000).unwrap();
        let out = relocate(&insn, 0x40200000).unwrap();
        let moved = decode(&out, 0x40200000).unwrap();
        let c = Cond::from_nibble(cc);
        prop_assert_eq!(moved.kind, e9x86::Kind::JccRel32(c));
        prop_assert_eq!(moved.branch_target(), insn.branch_target());
    }

    /// `writes_memory` never claims register-direct forms write memory.
    #[test]
    fn register_forms_never_write_memory(op in 0u8..0x40, modbits in 0xC0u8..=0xFF) {
        // ALU family with mod=11 (register-direct).
        let opc = (op & 0x3F) & !0x04; // keep to r/m forms
        let bytes = [0x48, opc, modbits, 0, 0, 0, 0, 0];
        if let Ok(insn) = decode(&bytes, 0x1000) {
            if insn.modrm.is_some_and(|m| m.is_reg_direct()) {
                prop_assert!(!insn.writes_memory());
                prop_assert!(!insn.is_heap_write());
            }
        }
    }
}
