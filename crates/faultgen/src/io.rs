//! Environmental I/O faults against a *live, healthy* system.
//!
//! The other surfaces feed the rewriter hostile bytes; this one keeps
//! every byte honest and makes the **operating system** hostile instead:
//! disk writes that hit ENOSPC, reads that come back EIO, syscalls cut
//! by EINTR, short writes, failed renames — injected deterministically
//! through the `e9failpt` failpoint registry at the exact sites
//! production code crosses into the kernel.
//!
//! Each case picks one scenario, seeds a failpoint schedule, and drives
//! a **full rewrite job** end to end while the faults fire:
//!
//! * **disk-cache faults** — a real reactor daemon with a disk-backed
//!   cache serves rewrites while its CAS directory fails; every emit
//!   must stay byte-identical to a fault-free rewrite (degraded to
//!   memory-only, never wrong), and the disk circuit breaker's
//!   trip/recovery walk is checked over the wire `health` command;
//! * **client transport faults** — connect/read/write on the protocol
//!   client fail with EINTR (absorbed transparently) or EIO (a typed
//!   [`ClientError`], after which the same client still works);
//! * **output-file faults** — `write_atomic` under ENOSPC / short
//!   writes / EINTR storms / failed renames: either a typed error with
//!   the destination untouched, or a byte-exact file — never a torn
//!   one, never stage-file droppings;
//! * **threaded-server faults** — the accept/read/write path of the
//!   thread-per-connection server under EINTR and EIO: interrupts are
//!   invisible, hard errors cost at most that one connection and the
//!   daemon keeps serving fresh ones.
//!
//! The contract, shared by all four: every injected fault surfaces as a
//! typed error or a degraded-but-correct result — never a panic, never
//! corrupt output, never a wedged daemon.

use crate::Outcome;
use e9cache::{Cache, CacheConfig};
use e9proto::reactor::{serve_reactor, Listener, ReactorOptions};
use e9proto::server::{unix::serve_unix_with, ServeConfig};
use e9proto::{ClientError, ProtoClient};
use e9rng::StdRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Workload generator: the baseline tiny binary with one immediate byte
/// varied, so variant `i` has a distinct content digest (distinct cache
/// key) while staying a valid, rewritable program.
fn variant_binary(i: u8) -> (Vec<u8>, Vec<u8>) {
    let code = vec![
        0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x08 + i, 0xC3, //
        0x0F, 0x1F, 0x44, 0x00, 0x00, 0x0F, 0x1F, 0x44, 0x00, 0x00,
    ];
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code.clone(), 0x401000);
    b.entry(0x401000);
    (b.build(), code)
}

/// Drive one full rewrite job (version → binary → instructions → patch
/// → emit) over `client`, returning the emitted binary.
fn drive_job(client: &mut ProtoClient, bin: &[u8], code: &[u8]) -> Result<Vec<u8>, ClientError> {
    client.negotiate()?;
    client.binary(bin)?;
    for insn in &e9x86::decode::linear_sweep(code, 0x401000) {
        client.instruction(insn.addr, insn.bytes())?;
    }
    client.patch(0x401000, e9patch::Template::Empty)?;
    Ok(client.emit()?.binary)
}

/// The fault-free expected output for variant `i`, computed through an
/// in-process loopback (no cache attached, so `cache.disk.*` failpoint
/// specs cannot touch it even while active).
fn expected_output(i: u8) -> Option<Vec<u8>> {
    let (bin, code) = variant_binary(i);
    let mut client = ProtoClient::in_process().ok()?;
    drive_job(&mut client, &bin, &code).ok()
}

/// Scenario A: a reactor daemon with a disk-backed cache whose CAS
/// directory fails underneath it. Emits must stay byte-identical
/// (degraded to memory-only, never wrong); the breaker walk is observed
/// through the wire `health` command.
fn disk_cache_case(rng: &mut StdRng, root: &Path) -> Option<Outcome> {
    let cas = root.join("cas");
    let sock = root.join("d.sock");
    let cache = Arc::new(
        Cache::open(&CacheConfig {
            dir: Some(cas),
            mem_bytes: None,
            disk_bytes: None,
            bypass_bytes: Some(0), // tiny inputs must engage the cache
        })
        .ok()?,
    );
    let config = ServeConfig {
        cache: Some(Arc::clone(&cache)),
        serving_mode: "reactor",
        io_timeout: Some(Duration::from_secs(10)),
        ..ServeConfig::default()
    };
    let _ = std::fs::remove_file(&sock);
    let listener = std::os::unix::net::UnixListener::bind(&sock).ok()?;
    let opts = ReactorOptions::default();
    let server =
        std::thread::spawn(move || serve_reactor(vec![Listener::Unix(listener)], &config, &opts));

    // One failpoint term against one disk-tier site. Write-side faults
    // walk the breaker; read-side faults are absorbed as misses and must
    // NOT walk it (each failed read is followed by a successful store,
    // which closes the error streak).
    let write_side = rng.gen_bool(0.67);
    let point = if write_side {
        if rng.gen_bool(0.5) { "cache.disk.stage" } else { "cache.disk.publish" }
    } else {
        "cache.disk.read"
    };
    let fault = if rng.gen_bool(0.5) { "enospc" } else { "eio" };
    let first_n = rng.gen_range(3..=6u32);
    let spec = format!("{point}={fault}@first:{first_n}");
    let before = e9failpt::injected_total();
    let guard = e9failpt::activate_scoped(&spec, rng.next_u64()).ok()?;

    let mut ok = true;
    for i in 0..10u8 {
        let Some(expected) = expected_output(i) else {
            ok = false;
            break;
        };
        let (bin, code) = variant_binary(i);
        let Ok(mut client) = ProtoClient::connect_unix_retry(&sock, 6) else {
            ok = false;
            break;
        };
        match drive_job(&mut client, &bin, &code) {
            // The cache contract: disk faults degrade, they never fail a
            // rewrite and never change its bytes.
            Ok(got) => ok &= got == expected,
            Err(_) => ok = false,
        }
    }

    // The health surface must answer over the wire mid-degradation, and
    // the breaker walk must match the schedule.
    let health = ProtoClient::connect_unix_retry(&sock, 6)
        .ok()
        .and_then(|mut c| c.health().ok());
    match health {
        Some(h) => {
            let s = &h.cache.stats;
            ok &= s.disk_breaker_trips
                == s.disk_breaker_recoveries + u64::from(s.disk_breaker_open);
            if write_side {
                // first:N with N>=3 guarantees 3 consecutive put failures.
                ok &= s.disk_breaker_trips >= 1;
                if first_n == 3 {
                    // Schedule exhausted before the first probe: the probe
                    // succeeds and the breaker closes again.
                    ok &= s.disk_breaker_recoveries >= 1 && !s.disk_breaker_open;
                }
            } else {
                // Read faults interleave with successful stores: the
                // error streak never reaches the trip threshold.
                ok &= s.disk_breaker_trips == 0;
            }
        }
        None => ok = false,
    }
    let injected = e9failpt::injected_total() - before;
    drop(guard);

    // In-band shutdown; a wedged daemon fails the join below.
    if let Ok(mut c) = ProtoClient::connect_unix_retry(&sock, 6) {
        let _ = c.negotiate();
        let _ = c.shutdown();
    }
    let served = server.join();
    let _ = std::fs::remove_file(&sock);
    ok &= matches!(served, Ok(Ok(_)));

    Some(judge(ok, injected))
}

/// Retry `f` once if (and only if) it failed with a transport-level
/// I/O error, counting the error. Sound only for faults injected
/// *before* the request is written: nothing was sent, so a clean resend
/// cannot desync request/reply ids.
fn once_retried<F>(client: &mut ProtoClient, io_errors: &mut u32, mut f: F) -> bool
where
    F: FnMut(&mut ProtoClient) -> Result<(), ClientError>,
{
    match f(client) {
        Ok(()) => true,
        Err(ClientError::Io(_)) => {
            *io_errors += 1;
            f(client).is_ok()
        }
        Err(_) => false,
    }
}

/// Scenario B: protocol-client transport faults over an in-process
/// loopback. EINTR storms are absorbed inside the client; hard EIO is a
/// typed error after which the *same* client still completes the job.
fn client_transport_case(rng: &mut StdRng) -> Option<Outcome> {
    let mode = rng.gen_range(0..3u32);
    let (bin, code) = variant_binary(0);
    let expected = expected_output(0)?;
    let before = e9failpt::injected_total();

    let ok = match mode {
        // A burst of interrupts below the retry budget: invisible.
        0 => {
            let point = if rng.gen_bool(0.5) { "proto.client.write" } else { "proto.client.read" };
            let k = rng.gen_range(1..=8u32);
            let spec = format!("{point}=eintr@first:{k}");
            let _guard = e9failpt::activate_scoped(&spec, rng.next_u64()).ok()?;
            let mut client = ProtoClient::in_process().ok()?;
            matches!(drive_job(&mut client, &bin, &code), Ok(got) if got == expected)
        }
        // One hard EIO on the write side: exactly one operation fails
        // with a typed error; resending that request completes the job
        // byte-identically. (Write-side only: the fault fires before any
        // bytes move, so the resend cannot desync ids. A failed *read*
        // strands the reply in the stream — reconnecting, not resending,
        // is the recovery there, which mode 2 covers as a typed error.)
        1 => {
            let spec = "proto.client.write=eio@once".to_string();
            let _guard = e9failpt::activate_scoped(&spec, rng.next_u64()).ok()?;
            let mut client = ProtoClient::in_process().ok()?;
            let mut io_errors = 0u32;
            let mut ok = once_retried(&mut client, &mut io_errors, |c| c.negotiate())
                && once_retried(&mut client, &mut io_errors, |c| c.binary(&bin));
            if ok {
                for insn in &e9x86::decode::linear_sweep(&code, 0x401000) {
                    ok &= once_retried(&mut client, &mut io_errors, |c| {
                        c.instruction(insn.addr, insn.bytes())
                    });
                    if !ok {
                        break;
                    }
                }
            }
            ok = ok
                && once_retried(&mut client, &mut io_errors, |c| {
                    c.patch(0x401000, e9patch::Template::Empty)
                });
            if ok {
                let got = match client.emit() {
                    Ok(r) => Some(r.binary),
                    Err(ClientError::Io(_)) => {
                        io_errors += 1;
                        client.emit().ok().map(|r| r.binary)
                    }
                    Err(_) => None,
                };
                ok = got.as_deref() == Some(&expected[..]);
            }
            ok && io_errors <= 1
        }
        // An interrupt storm past the retry budget: the client gives up
        // with a *typed* Interrupted error, not a hang and not a panic.
        _ => {
            let point = if rng.gen_bool(0.5) { "proto.client.write" } else { "proto.client.read" };
            let spec = format!("{point}=eintr@always");
            let _guard = e9failpt::activate_scoped(&spec, rng.next_u64()).ok()?;
            let mut client = ProtoClient::in_process().ok()?;
            match client.negotiate() {
                Err(ClientError::Io(e)) => e.kind() == std::io::ErrorKind::Interrupted,
                _ => false,
            }
        }
    };
    let injected = e9failpt::injected_total() - before;
    Some(judge(ok, injected))
}

/// Scenario C: `write_atomic` (the stage → fsync → rename output path)
/// under disk faults. Either a typed error with the destination
/// untouched, or a byte-exact file — never a torn write, never
/// stage-file droppings.
fn output_file_case(rng: &mut StdRng, root: &Path) -> Option<Outcome> {
    let dir = root.join("out");
    std::fs::create_dir_all(&dir).ok()?;
    let dest = dir.join("artifact.bin");
    let old: Option<Vec<u8>> = if rng.gen_bool(0.5) {
        let prior = vec![0xA5u8; rng.gen_range(1..512usize)];
        std::fs::write(&dest, &prior).ok()?;
        Some(prior)
    } else {
        None
    };
    let len = rng.gen_range(1..8192usize);
    let mut payload = vec![0u8; len];
    for b in &mut payload {
        *b = (rng.next_u32() & 0xFF) as u8;
    }

    let mode = rng.gen_range(0..4u32);
    let spec = match mode {
        0 => "front.output.write=partial@always".to_string(),
        1 => format!("front.output.write=eintr@first:{}", rng.gen_range(1..=8u32)),
        2 => "front.output.stage=enospc@once".to_string(),
        _ => "front.output.commit=rename@once".to_string(),
    };
    let before = e9failpt::injected_total();
    let guard = e9failpt::activate_scoped(&spec, rng.next_u64()).ok()?;
    let first = e9front::output::write_atomic(&dest, &payload);
    let mut ok = match mode {
        // Short writes and interrupt bursts are absorbed: one call, a
        // byte-exact file.
        0 | 1 => first.is_ok() && std::fs::read(&dest).ok()? == payload,
        // ENOSPC at stage / EXDEV at commit: a typed error, the old
        // destination intact; once the fault clears, a retry lands.
        _ => {
            let errno_ok = match &first {
                Err(e) => {
                    let want = if mode == 2 { 28 } else { 18 }; // ENOSPC / EXDEV
                    e.raw_os_error() == Some(want)
                }
                Ok(()) => false,
            };
            let preserved = match &old {
                Some(prior) => std::fs::read(&dest).ok().as_deref() == Some(&prior[..]),
                None => !dest.exists(),
            };
            let retried = e9front::output::write_atomic(&dest, &payload).is_ok()
                && std::fs::read(&dest).ok()? == payload;
            errno_ok && preserved && retried
        }
    };
    // No stage-file droppings whatever happened.
    let stray = std::fs::read_dir(&dir)
        .ok()?
        .flatten()
        .filter(|e| e.file_name() != "artifact.bin")
        .count();
    ok &= stray == 0;
    let injected = e9failpt::injected_total() - before;
    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
    Some(judge(ok, injected))
}

/// Scenario D: the thread-per-connection Unix server under accept /
/// read / write faults. Interrupts are invisible; a hard read error
/// costs at most that one connection and the daemon keeps serving.
fn threaded_server_case(rng: &mut StdRng, root: &Path) -> Option<Outcome> {
    let sock = root.join("t.sock");
    let mode = rng.gen_range(0..3u32);
    // Baseline first: the in-process loopback shares the server-side
    // failpoint sites, so it must run before the spec goes live.
    let (bin, code) = variant_binary(0);
    let expected = expected_output(0)?;
    let spec = match mode {
        0 => format!("proto.server.accept=eintr@first:{}", rng.gen_range(1..=6u32)),
        1 => {
            let point = if rng.gen_bool(0.5) { "proto.server.read" } else { "proto.server.write" };
            format!("{point}=eintr@first:{}", rng.gen_range(1..=8u32))
        }
        _ => "proto.server.read=eio@once".to_string(),
    };
    let before = e9failpt::injected_total();
    let guard = e9failpt::activate_scoped(&spec, rng.next_u64()).ok()?;

    let config = ServeConfig {
        io_timeout: Some(Duration::from_secs(10)),
        serving_mode: "threaded",
        ..ServeConfig::default()
    };
    let spath = sock.clone();
    let server = std::thread::spawn(move || serve_unix_with(&spath, None, &config));

    let mut ok = true;
    if mode == 2 {
        // The poisoned connection dies with a transport-level error (or
        // absorbs nothing if the fault fired on another syscall first);
        // either way it must not take the daemon with it.
        let mut victim = ProtoClient::connect_unix_retry(&sock, 8).ok()?;
        let _ = drive_job(&mut victim, &bin, &code);
    }
    // The (next) healthy connection completes a byte-identical job.
    match ProtoClient::connect_unix_retry(&sock, 8) {
        Ok(mut client) => match drive_job(&mut client, &bin, &code) {
            Ok(got) => ok &= got == expected,
            Err(_) => ok = false,
        },
        Err(_) => ok = false,
    }
    let injected = e9failpt::injected_total() - before;
    drop(guard);

    if let Ok(mut c) = ProtoClient::connect_unix_retry(&sock, 6) {
        let _ = c.negotiate();
        let _ = c.shutdown();
    }
    ok &= matches!(server.join(), Ok(Ok(())));
    let _ = std::fs::remove_file(&sock);
    Some(judge(ok, injected))
}

/// Map a scenario's verdict to the campaign outcome vocabulary:
/// contract held + faults fired → `Rejected` (the fault was handled);
/// contract held + schedule never triggered → `Accepted`; contract
/// broken → `Panicked` (same failure class as an unwind, for this
/// surface).
fn judge(ok: bool, injected: u64) -> Outcome {
    if !ok {
        Outcome::Panicked
    } else if injected > 0 {
        Outcome::Rejected
    } else {
        Outcome::Accepted
    }
}

/// Run one seeded environmental-I/O case in `root` (scratch space owned
/// by the case).
///
/// Panics anywhere in the scenario — including inside server threads
/// joined by it — and every broken contract (wrong bytes, missing typed
/// error, wedged daemon, torn file) are reported as
/// [`Outcome::Panicked`].
pub fn io_case(rng: &mut StdRng, root: &Path) -> Outcome {
    let _ = std::fs::create_dir_all(root);
    let scenario = rng.gen_range(0..4u32);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let out = match scenario {
            0 => disk_cache_case(rng, root),
            1 => client_transport_case(rng),
            2 => output_file_case(rng, root),
            _ => threaded_server_case(rng, root),
        };
        // Setup failures (bind, scratch dir, loopback spawn) mean the
        // case could not deliver its verdict: fail loudly rather than
        // report a hollow pass.
        out.unwrap_or(Outcome::Panicked)
    }));
    let _ = std::fs::remove_dir_all(root);
    result.unwrap_or(Outcome::Panicked)
}
