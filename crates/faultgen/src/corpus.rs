//! A small, named corpus of malformed ELF images.
//!
//! Each entry is a deterministic transformation of the campaign baseline,
//! one per historical parser-panic class. The files are checked in under
//! `tests/corpus/` and the `hostile_elf` integration test both replays
//! them against the parser/loader and asserts the checked-in bytes match
//! this generator — so the corpus cannot silently rot as the builder
//! evolves. Regenerate with `e9fault --write-corpus <dir>`.

use crate::elf::baseline_elf;
use e9elf::types::{EHDR_SIZE, PHDR_SIZE, PT_NOTE};

const EH_PHOFF: usize = 32;
const EH_PHNUM: usize = 56;
const EH_SHNUM: usize = 60;
const EH_SHSTRNDX: usize = 62;
const PH_TYPE: usize = 0;
const PH_OFFSET: usize = 8;
const PH_VADDR: usize = 16;
const PH_FILESZ: usize = 32;
const PH_MEMSZ: usize = 40;

/// Names of every corpus entry, in generation order.
pub const NAMES: [&str; 10] = [
    "trunc-ehdr",
    "trunc-phdrs",
    "phnum-bomb",
    "shnum-bomb",
    "overlap-phdrs",
    "vaddr-wrap",
    "offset-oob",
    "memsz-bomb",
    "shstrndx-oob",
    "note-wrap",
];

fn put16(bytes: &mut [u8], off: usize, v: u16) {
    bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn put32(bytes: &mut [u8], off: usize, v: u32) {
    bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn put64(bytes: &mut [u8], off: usize, v: u64) {
    bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn read64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

fn read16(bytes: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(bytes[off..off + 2].try_into().unwrap())
}

fn phdr(bytes: &[u8], i: u16) -> usize {
    read64(bytes, EH_PHOFF) as usize + usize::from(i) * PHDR_SIZE
}

/// Generate the corpus entry `name`, or `None` for an unknown name.
pub fn generate(name: &str) -> Option<Vec<u8>> {
    let base = baseline_elf();
    let phnum = read16(&base, EH_PHNUM);
    let mut b = base.clone();
    match name {
        // File header cut mid-way: every header field read must bounds-check.
        "trunc-ehdr" => b.truncate(45),
        // Table truncated mid-entry: phnum promises more than the file holds.
        "trunc-phdrs" => b.truncate(EHDR_SIZE + PHDR_SIZE + PHDR_SIZE / 2),
        // 65535 program headers in a file a few KiB long.
        "phnum-bomb" => put16(&mut b, EH_PHNUM, 0xFFFF),
        // Same bomb on the section-header table.
        "shnum-bomb" => put16(&mut b, EH_SHNUM, 0xFFFF),
        // Second PT_LOAD remapped on top of the first, off by one page.
        "overlap-phdrs" => {
            if phnum >= 2 {
                let src = phdr(&b, 0);
                let dst = phdr(&b, 1);
                let copy = b[src..src + PHDR_SIZE].to_vec();
                b[dst..dst + PHDR_SIZE].copy_from_slice(&copy);
                let v = read64(&b, dst + PH_VADDR);
                put64(&mut b, dst + PH_VADDR, v + 0x1000);
            }
        }
        // Load address at the top of the address space: vaddr + memsz wraps.
        "vaddr-wrap" => {
            let off = phdr(&b, 0);
            put64(&mut b, off + PH_VADDR, u64::MAX - 0xFFF);
        }
        // Segment file range entirely past EOF.
        "offset-oob" => {
            let off = phdr(&b, 0);
            put64(&mut b, off + PH_OFFSET, 0xFFFF_FFFF);
        }
        // Near-2^63 memory size: page-table and allocation bomb.
        "memsz-bomb" => {
            let off = phdr(&b, 0);
            put64(&mut b, off + PH_MEMSZ, u64::MAX / 2);
        }
        // String-table index pointing at a section that does not exist.
        "shstrndx-oob" => put16(&mut b, EH_SHSTRNDX, 0xFFFF),
        // PT_NOTE whose file range wraps u64.
        "note-wrap" => {
            let off = phdr(&b, phnum - 1);
            put32(&mut b, off + PH_TYPE, PT_NOTE);
            put64(&mut b, off + PH_OFFSET, u64::MAX - 4);
            put64(&mut b, off + PH_FILESZ, 64);
        }
        _ => return None,
    }
    Some(b)
}

/// Every corpus entry as `(name, bytes)`.
pub fn all() -> Vec<(&'static str, Vec<u8>)> {
    NAMES
        .iter()
        .map(|n| (*n, generate(n).expect("known name")))
        .collect()
}

/// Corpus entries that a correct parser/loader **must reject** (the rest
/// may degrade gracefully — e.g. a bad `e_shstrndx` only costs section
/// names).
pub const MUST_REJECT: [&str; 6] = [
    "trunc-ehdr",
    "trunc-phdrs",
    "phnum-bomb",
    "vaddr-wrap",
    "offset-oob",
    "memsz-bomb",
];
