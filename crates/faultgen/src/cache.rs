//! Structured mutations for the on-disk rewrite-cache surface, and the
//! recovery check each mutant is judged by.
//!
//! The cache directory is the third place untrusted bytes enter the
//! system: anything — a crashed writer, a disk error, another tool — may
//! have scribbled on `objects/` or the `index` journal between runs. The
//! contract under test (see `e9cache`): a damaged entry is refused with a
//! typed error and quarantined, **never** a panic and never wrong bytes;
//! the store stays serviceable (a cold re-put of the same key works and
//! is read back verbatim); and an unrelated damaged file cannot poison
//! other keys.
//!
//! A case primes a fresh store with known entries, applies 1–3 seeded
//! mutations (truncation, byte flips, zero-length clobber) to the object
//! files and/or the index, then re-reads everything through both the raw
//! `DiskStore` API (asserting typed errors + quarantine) and a fresh
//! two-tier `Cache` (asserting the cold-path fallback re-populates the
//! damaged keys byte-identically).

use crate::Outcome;
use e9cache::disk::DiskStore;
use e9cache::{digest, Cache, CacheConfig, CacheError, Digest, Entry};
use e9rng::StdRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// The known-good entries every case's store is primed with: three
/// positive payloads of seed-dependent size and one negative (cached
/// rewrite failure), so mutation damage lands on realistic shapes.
pub fn baseline_entries(rng: &mut StdRng) -> Vec<(Digest, Entry)> {
    let mut entries = Vec::new();
    for i in 0..3u32 {
        let len = rng.gen_range(64..4096u32) as usize;
        let mut payload = Vec::with_capacity(len);
        for j in 0..len {
            payload.push((rng.next_u32() as u8) ^ (j as u8));
        }
        entries.push((digest(format!("job-{i}").as_bytes()), Entry::Ok(payload)));
    }
    entries.push((
        digest(b"job-negative"),
        Entry::Negative {
            code: -2,
            message: "no tactic admits site 0x401000".into(),
        },
    ));
    entries
}

/// Every file a mutation may target, in deterministic (sorted) order:
/// all CAS object files plus the access-order index journal.
fn target_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let objects = root.join("objects");
    if let Ok(fanout) = std::fs::read_dir(&objects) {
        for shard in fanout.flatten() {
            if let Ok(inner) = std::fs::read_dir(shard.path()) {
                for f in inner.flatten() {
                    files.push(f.path());
                }
            }
        }
    }
    let index = root.join("index");
    if index.is_file() {
        files.push(index);
    }
    files.sort();
    files
}

/// Apply one seeded mutation to `path`: truncate at a random offset,
/// flip 1–16 random bytes, or clobber to zero length.
fn mutate_file(rng: &mut StdRng, path: &Path) {
    let Ok(mut bytes) = std::fs::read(path) else {
        return;
    };
    match rng.gen_range(0..3u32) {
        0 => {
            // Truncation: a writer that died mid-entry (the atomic
            // publish protocol makes this unreachable in-process, but a
            // disk can still lose tail pages).
            let cut = if bytes.is_empty() { 0 } else { rng.gen_range(0..bytes.len()) };
            bytes.truncate(cut);
        }
        1 => {
            // Byte flips: silent media corruption.
            if !bytes.is_empty() {
                let n = rng.gen_range(1..=16u32);
                for _ in 0..n {
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] ^= ((rng.next_u32() % 255) + 1) as u8;
                }
            }
        }
        _ => bytes.clear(), // zero-length clobber
    }
    let _ = std::fs::write(path, &bytes);
}

/// Run one cache-surface case rooted at `root` (created fresh, removed on
/// exit). See the module docs for the phases; any unwind *or any contract
/// violation* (wrong bytes served, quarantine evidence missing, store not
/// serviceable after damage) is reported as [`Outcome::Panicked`].
pub fn cache_case(rng: &mut StdRng, root: &Path) -> Outcome {
    let _ = std::fs::remove_dir_all(root);
    let outcome = catch_unwind(AssertUnwindSafe(|| cache_case_inner(rng, root)))
        .unwrap_or(Outcome::Panicked);
    let _ = std::fs::remove_dir_all(root);
    outcome
}

fn cache_case_inner(rng: &mut StdRng, root: &Path) -> Outcome {
    // Phase 1: prime a healthy store.
    let entries = baseline_entries(rng);
    {
        let cache = Cache::open(&CacheConfig {
            dir: Some(root.to_path_buf()),
            ..CacheConfig::default()
        })
        .expect("prime: cache must open on a fresh directory");
        for (key, entry) in &entries {
            cache.put(key, entry);
        }
        for (key, _) in &entries {
            assert!(cache.lookup(key).is_some(), "prime: entry must be readable");
        }
    }

    // Phase 2: damage 1-3 files (object entries and/or the index).
    let files = target_files(root);
    assert!(!files.is_empty(), "prime must have produced files");
    let moves = rng.gen_range(1..=3u32);
    for _ in 0..moves {
        let i = rng.gen_range(0..files.len());
        mutate_file(rng, &files[i]);
    }

    // Phase 3: raw-store read-back. Every damaged entry must surface as a
    // typed error (with quarantine evidence) or a clean miss — and an
    // intact one must come back byte-identical. Wrong bytes are a
    // contract violation of the same severity as a panic.
    let store = DiskStore::open(root, None).expect("store must reopen after damage");
    let mut damaged = 0u32;
    for (key, entry) in &entries {
        match store.get(key) {
            Ok(Some(payload)) => {
                if payload[..] != entry.encode()[..] {
                    return Outcome::Panicked; // digest check failed us: wrong bytes served
                }
            }
            Ok(None) => damaged += 1, // e.g. index damage redirected nothing; entry vanished
            Err(CacheError::Corrupt { quarantined, .. }) => {
                damaged += 1;
                let hex = e9cache::sha256::hex(key);
                let object = root.join("objects").join(&hex[..2]).join(&hex[2..]);
                if object.exists() {
                    return Outcome::Panicked; // refused entry left in place
                }
                if quarantined && !root.join("corrupt").join(&hex).is_file() {
                    return Outcome::Panicked; // claimed quarantine, no evidence
                }
            }
            Err(CacheError::Io { .. }) => damaged += 1,
        }
    }

    // Phase 4: serviceability probe — the cold path must be able to
    // re-populate every damaged key, and a fresh two-tier cache over the
    // same directory must then serve all of them verbatim.
    let cache = Cache::open(&CacheConfig {
        dir: Some(root.to_path_buf()),
        ..CacheConfig::default()
    })
    .expect("probe: cache must reopen after damage");
    for (key, entry) in &entries {
        match cache.lookup_entry(key) {
            Some(found) => {
                if found != *entry {
                    return Outcome::Panicked;
                }
            }
            None => {
                // Cold-path fallback: recompute (simulated) and store.
                cache.put(key, entry);
                if cache.lookup_entry(key).as_ref() != Some(entry) {
                    return Outcome::Panicked; // store died: not serviceable
                }
            }
        }
    }
    let probe_key = digest(b"post-damage probe");
    cache.put(&probe_key, &Entry::Ok(b"probe".to_vec()));
    if !matches!(cache.lookup_entry(&probe_key), Some(Entry::Ok(p)) if p == b"probe") {
        return Outcome::Panicked;
    }

    if damaged == 0 {
        Outcome::Accepted
    } else {
        Outcome::Rejected
    }
}
