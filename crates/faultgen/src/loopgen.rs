//! Hostile *client behaviors* against the reactor serving loop.
//!
//! The other surfaces mutate bytes; this one mutates **timing and
//! socket discipline**. Each case starts a real reactor (the same
//! `e9proto::reactor` glue `e9patchd` serves with, small budgets so the
//! shedding paths are reachable) and runs seeded hostile clients
//! against it:
//!
//! * **slow-loris** — a valid transcript delivered one byte per write,
//!   so every poll tick sees a partial line;
//! * **partial line + disconnect** — half a request, no newline, gone;
//! * **mid-poll disconnect** — complete requests, then the client dies
//!   without reading any reply;
//! * **never-reading client** — pipelines requests and never drains
//!   replies, filling its write queue until the loop sheds it;
//! * **oversized line** — a request past `max_line_bytes`;
//! * **garbage flood** — non-protocol noise, one line per write.
//!
//! The contract: the reactor never panics, hostile connections are
//! answered with typed errors or shed, and — judged *while* hostile
//! connections are still parked — a healthy client on the same loop
//! completes a well-formed round trip.

use crate::Outcome;
use e9proto::msg::{Command, Request};
use e9proto::reactor::{serve_reactor, Listener, ReactorOptions};
use e9proto::server::ServeConfig;
use e9rng::StdRng;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Duration;

/// Reactor budgets for campaign runs: small enough that every shedding
/// path (line cap, per-connection queue, admission) is reachable by a
/// hostile client in milliseconds.
fn campaign_config() -> (ServeConfig, ReactorOptions) {
    let config = ServeConfig {
        max_line_bytes: 2048,
        io_timeout: Some(Duration::from_secs(10)),
        ..ServeConfig::default()
    };
    let opts = ReactorOptions {
        max_clients: 32,
        pending_budget_bytes: 1 << 20,
        conn_queue_bytes: 4096,
        drain_timeout: Duration::from_secs(5),
        ..ReactorOptions::default()
    };
    (config, opts)
}

fn connect(sock: &Path) -> Option<UnixStream> {
    let stream = UnixStream::connect(sock).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    stream
        .set_write_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    Some(stream)
}

fn version_line(id: u64) -> Vec<u8> {
    let mut out = Request {
        id,
        cmd: Command::Version { version: 1 },
    }
    .encode()
    .into_bytes();
    out.push(b'\n');
    out
}

fn stats_line(id: u64) -> Vec<u8> {
    let mut out = Request {
        id,
        cmd: Command::Cache {
            action: e9proto::CacheAction::Stats,
        },
    }
    .encode()
    .into_bytes();
    out.push(b'\n');
    out
}

/// What one hostile behavior observed. `saw_typed_error` means the
/// reactor answered or cut it in a *controlled* way (typed error line,
/// shed, clean EOF on our misbehavior).
struct Hostility {
    saw_typed_error: bool,
    /// Connections deliberately kept open so the healthy probe runs
    /// *while* they are still parked on the loop.
    parked: Vec<UnixStream>,
}

/// A valid transcript delivered one byte per write: every poll tick sees
/// a partial line. The reactor must buffer patiently and answer each
/// completed request; activity keeps the idle timer at bay by design.
fn slow_loris(rng: &mut StdRng, sock: &Path) -> Option<Hostility> {
    let mut stream = connect(sock)?;
    let mut bytes = version_line(1);
    bytes.extend_from_slice(&stats_line(2));
    for chunk in bytes.chunks(1) {
        if stream.write_all(chunk).is_err() {
            break;
        }
        if rng.gen_bool(0.125) {
            std::thread::sleep(Duration::from_micros(u64::from(rng.gen_range(1..200u32))));
        }
    }
    // Both replies must arrive despite the drip-feed.
    let mut reader = BufReader::new(stream);
    let mut ok = true;
    for _ in 0..2 {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => ok &= line.contains("result"),
            _ => ok = false,
        }
    }
    Some(Hostility {
        saw_typed_error: !ok,
        parked: Vec::new(),
    })
}

/// A prefix of a request line — cut at a seeded byte, no newline — then
/// the client vanishes. The reactor must reap the connection without
/// dispatching the fragment.
fn partial_line_disconnect(rng: &mut StdRng, sock: &Path) -> Option<Hostility> {
    let mut stream = connect(sock)?;
    let line = version_line(1);
    let cut = rng.gen_range(1..line.len());
    let _ = stream.write_all(&line[..cut]);
    drop(stream); // mid-line disconnect
    Some(Hostility {
        saw_typed_error: true,
        parked: Vec::new(),
    })
}

/// Complete pipelined requests, then death without reading one reply:
/// the loop is left holding queued responses for a gone peer.
fn mid_poll_disconnect(rng: &mut StdRng, sock: &Path) -> Option<Hostility> {
    let mut stream = connect(sock)?;
    let n = rng.gen_range(1..=16u64);
    let mut blob = version_line(1);
    for id in 2..=n {
        blob.extend_from_slice(&stats_line(id));
    }
    let _ = stream.write_all(&blob);
    drop(stream);
    Some(Hostility {
        saw_typed_error: true,
        parked: Vec::new(),
    })
}

/// Pipelines replies it never reads. With the campaign's 4 KiB
/// per-connection queue cap the loop must shed it (EPIPE/ECONNRESET on
/// our side) rather than queue without bound — while other connections
/// stay serviceable.
fn never_reading(rng: &mut StdRng, sock: &Path) -> Option<Hostility> {
    let mut stream = connect(sock)?;
    let _ = stream.write_all(&version_line(1));
    let mut shed = false;
    // Enough reply volume to overflow kernel buffers + the 4 KiB cap.
    let rounds = rng.gen_range(2_000..4_000u32);
    for id in 0..rounds {
        if stream.write_all(&stats_line(u64::from(id) + 2)).is_err() {
            shed = true;
            break;
        }
    }
    if shed {
        Some(Hostility {
            saw_typed_error: true,
            parked: Vec::new(),
        })
    } else {
        // All requests fit in flight; park the connection unread so the
        // healthy probe must coexist with the backlog.
        Some(Hostility {
            saw_typed_error: false,
            parked: vec![stream],
        })
    }
}

/// One request line past `max_line_bytes`: drained and answered with a
/// typed LIMIT error, connection intact.
fn oversized_line(rng: &mut StdRng, sock: &Path) -> Option<Hostility> {
    let mut stream = connect(sock)?;
    let len = rng.gen_range(3000..8000usize);
    let mut line = vec![b'x'; len];
    line.push(b'\n');
    let _ = stream.write_all(&line);
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let typed = matches!(reader.read_line(&mut reply), Ok(n) if n > 0)
        && reply.contains("error");
    Some(Hostility {
        saw_typed_error: typed,
        parked: Vec::new(),
    })
}

/// Seeded non-protocol noise, one line per write: every line must come
/// back as a typed PARSE error, never kill the loop.
fn garbage_flood(rng: &mut StdRng, sock: &Path) -> Option<Hostility> {
    let mut stream = connect(sock)?;
    let lines = rng.gen_range(1..=8u32);
    for _ in 0..lines {
        let len = rng.gen_range(1..=128usize);
        let mut garbage = Vec::with_capacity(len + 1);
        for _ in 0..len {
            let mut b = (rng.next_u32() & 0xFF) as u8;
            if b == b'\n' {
                b = b' ';
            }
            garbage.push(b);
        }
        garbage.push(b'\n');
        if stream.write_all(&garbage).is_err() {
            break;
        }
    }
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let typed = matches!(reader.read_line(&mut reply), Ok(n) if n > 0)
        && reply.contains("error");
    Some(Hostility {
        saw_typed_error: typed,
        parked: Vec::new(),
    })
}

/// Run one seeded campaign case against a fresh reactor bound at `sock`.
///
/// Starts the loop, launches one to three hostile behaviors, then — with
/// any parked hostile connections still open — runs the healthy probe
/// (a full version round trip) and an in-band shutdown. Outcomes:
///
/// * [`Outcome::Panicked`] — the reactor thread unwound, or the healthy
///   probe could not complete (the loop is dead or stalled: the same
///   failure class as a panic for this surface);
/// * [`Outcome::Rejected`] — at least one hostile behavior was answered
///   with a typed error or shed (the expected result);
/// * [`Outcome::Accepted`] — every behavior happened to stay within
///   protocol bounds.
pub fn loop_case(rng: &mut StdRng, sock: &Path) -> Outcome {
    let _ = std::fs::remove_file(sock);
    let Ok(listener) = UnixListener::bind(sock) else {
        return Outcome::Panicked;
    };
    let (config, opts) = campaign_config();
    let server = std::thread::spawn(move || {
        serve_reactor(vec![Listener::Unix(listener)], &config, &opts)
    });

    let mut any_typed = false;
    let mut parked = Vec::new();
    let moves = rng.gen_range(1..=3u32);
    for _ in 0..moves {
        let hostility = match rng.gen_range(0..6u32) {
            0 => slow_loris(rng, sock),
            1 => partial_line_disconnect(rng, sock),
            2 => mid_poll_disconnect(rng, sock),
            3 => never_reading(rng, sock),
            4 => oversized_line(rng, sock),
            _ => garbage_flood(rng, sock),
        };
        match hostility {
            Some(h) => {
                any_typed |= h.saw_typed_error;
                parked.extend(h.parked);
            }
            None => {
                // Even failing to connect means the loop shed us.
                any_typed = true;
            }
        }
    }

    // Healthy probe *while* hostile connections are still parked: a
    // fresh well-formed session must complete.
    let healthy = (|| -> Option<bool> {
        let mut stream = connect(sock)?;
        stream.write_all(&version_line(1)).ok()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        Some(reader.read_line(&mut line).ok()? > 0 && line.contains("result"))
    })()
    .unwrap_or(false);

    // Release parked connections *before* the in-band shutdown so the
    // drain has nothing idle to wait out.
    drop(parked);
    let mut shutdown_sent = false;
    for _ in 0..3 {
        shutdown_sent = (|| -> Option<bool> {
            let mut stream = connect(sock)?;
            let mut blob = version_line(1);
            let mut shut = Request {
                id: 2,
                cmd: Command::Shutdown,
            }
            .encode()
            .into_bytes();
            shut.push(b'\n');
            blob.extend_from_slice(&shut);
            stream.write_all(&blob).ok()?;
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let _ = reader.read_line(&mut line); // version reply
            line.clear();
            Some(reader.read_line(&mut line).ok()? > 0)
        })()
        .unwrap_or(false);
        if shutdown_sent {
            break;
        }
    }
    if !shutdown_sent {
        // The loop is not answering at all: that is the failure this
        // surface exists to catch. Leak the server thread (joining
        // would hang the campaign) and report the dead loop.
        let _ = std::fs::remove_file(sock);
        return Outcome::Panicked;
    }
    let served = server.join();
    let _ = std::fs::remove_file(sock);
    match served {
        Err(_) => Outcome::Panicked, // the loop itself unwound
        Ok(Err(_)) => Outcome::Panicked, // fatal reactor error: same class
        Ok(Ok(_)) if !healthy => Outcome::Panicked, // loop stalled a healthy client
        Ok(Ok(_)) if any_typed => Outcome::Rejected,
        Ok(Ok(_)) => Outcome::Accepted,
    }
}
