//! Structured mutations for ELF images.
//!
//! The grammar targets the places a naive parser panics: header-table
//! counts and offsets (slice OOB / allocation bombs), segment size fields
//! (`usize` wrap, page-table bombs), truncation (partial reads) and
//! overlap (inconsistent tables), plus symbol-table damage (overflowing
//! `st_name`, bogus `st_value`, truncated string tables) aimed at the
//! hook planner's resolver. Raw byte flips catch whatever the structured
//! moves miss.

use e9elf::symbols::{Symbol, SYM_SIZE};
use e9elf::types::{EHDR_SIZE, PHDR_SIZE};
use e9rng::StdRng;

// ELF64 file-header field offsets (bytes).
const EH_ENTRY: usize = 24;
const EH_PHOFF: usize = 32;
const EH_SHOFF: usize = 40;
const EH_PHNUM: usize = 56;
const EH_SHNUM: usize = 60;
const EH_SHSTRNDX: usize = 62;

// Program-header field offsets relative to the header's start.
const PH_TYPE: usize = 0;
const PH_OFFSET: usize = 8;
const PH_VADDR: usize = 16;
const PH_FILESZ: usize = 32;
const PH_MEMSZ: usize = 40;

/// Values chosen to sit on overflow/limit boundaries. Deliberately avoids
/// sizes in the "accepted but huge" range (just under the loader's 1 GiB
/// segment cap) so a campaign case never costs a gigabyte allocation.
const BOMBS64: [u64; 8] = [
    u64::MAX,
    u64::MAX - 1,
    u64::MAX / 2,
    1 << 63,
    1 << 48,
    1 << 32,
    0xFFFF_FFFF,
    0x8000_0000,
];

/// A small, well-formed ET_EXEC image: the campaign baseline. Mutants are
/// derived from a *valid* file so mutations explore the boundary between
/// accept and reject instead of drowning in trivially-bad magic.
pub fn baseline_elf() -> Vec<u8> {
    let code = vec![
        0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0xC3, //
        0x0F, 0x1F, 0x44, 0x00, 0x00, 0x0F, 0x1F, 0x44, 0x00, 0x00,
    ];
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.entry(0x401000);
    b.build()
}

/// The baseline plus a symbol table naming its two functions. Campaigns
/// mutate *this* image: the symbol-table moves need real
/// `.symtab`/`.strtab` bytes to damage, and the hook-planning probe in
/// `elf_case` needs names to resolve. The checked-in hostile corpus stays
/// derived from [`baseline_elf`] so its bytes remain stable.
pub fn baseline_elf_with_symbols() -> Vec<u8> {
    let code = vec![
        0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0xC3, //
        0x0F, 0x1F, 0x44, 0x00, 0x00, 0x0F, 0x1F, 0x44, 0x00, 0x00,
    ];
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    let symbols = [
        Symbol {
            name: "store".into(),
            value: 0x401000,
            size: 3,
        },
        Symbol {
            name: "bump".into(),
            value: 0x401003,
            size: 5,
        },
    ];
    let (symtab, strtab) = e9elf::symbols::encode(&symbols);
    b.note(".symtab", symtab);
    b.note(".strtab", strtab);
    b.entry(0x401000);
    b.build()
}

fn put16(bytes: &mut [u8], off: usize, v: u16) {
    if let Some(dst) = bytes.get_mut(off..off + 2) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
}

fn put32(bytes: &mut [u8], off: usize, v: u32) {
    if let Some(dst) = bytes.get_mut(off..off + 4) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
}

fn put64(bytes: &mut [u8], off: usize, v: u64) {
    if let Some(dst) = bytes.get_mut(off..off + 8) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
}

fn read64(bytes: &[u8], off: usize) -> u64 {
    bytes
        .get(off..off + 8)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
        .unwrap_or(0)
}

fn read16(bytes: &[u8], off: usize) -> u16 {
    bytes
        .get(off..off + 2)
        .and_then(|b| b.try_into().ok())
        .map(u16::from_le_bytes)
        .unwrap_or(0)
}

/// Byte offset of program header `i`, if fully inside the image.
fn phdr_at(bytes: &[u8], i: u16) -> Option<usize> {
    let phoff = usize::try_from(read64(bytes, EH_PHOFF)).ok()?;
    let off = phoff.checked_add(usize::from(i).checked_mul(PHDR_SIZE)?)?;
    (off.checked_add(PHDR_SIZE)? <= bytes.len()).then_some(off)
}

/// Apply one to three structured mutations (plus occasional raw flips) to
/// a copy of `base`. Deterministic in `rng`.
pub fn mutate(rng: &mut StdRng, base: &[u8]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    let moves = rng.gen_range(1..=3u32);
    for _ in 0..moves {
        match rng.gen_range(0..11u32) {
            0 => truncate(rng, &mut bytes),
            1 => flip_bytes(rng, &mut bytes),
            2 => inflate_counts(rng, &mut bytes),
            3 => inflate_offsets(rng, &mut bytes),
            4 => inflate_sizes(rng, &mut bytes),
            5 => inject_overlap(rng, &mut bytes),
            6 => wrap_vaddr(rng, &mut bytes),
            7 => scramble_header(rng, &mut bytes),
            8 => sym_name_bomb(rng, &mut bytes),
            9 => sym_value_bomb(rng, &mut bytes),
            _ => strtab_damage(rng, &mut bytes),
        }
    }
    bytes
}

/// Cut the file at a random point; biased toward structurally interesting
/// prefixes (inside the file header, inside the header tables).
fn truncate(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    let cut = match rng.gen_range(0..3u32) {
        0 => rng.gen_range(0..EHDR_SIZE.min(bytes.len())),
        1 => rng.gen_range(0..(EHDR_SIZE + 4 * PHDR_SIZE).min(bytes.len())),
        _ => rng.gen_range(0..bytes.len()),
    };
    bytes.truncate(cut);
}

/// XOR up to 64 random bytes with random masks.
fn flip_bytes(rng: &mut StdRng, bytes: &mut [u8]) {
    if bytes.is_empty() {
        return;
    }
    let n = rng.gen_range(1..=64u32);
    for _ in 0..n {
        let i = rng.gen_range(0..bytes.len());
        // Non-zero mask so every flip actually changes the byte.
        bytes[i] ^= ((rng.next_u32() % 255) + 1) as u8;
    }
}

/// Header-count bombs: `e_phnum` / `e_shnum` / `e_shstrndx` far beyond
/// the tables actually present.
fn inflate_counts(rng: &mut StdRng, bytes: &mut [u8]) {
    let v = *rng.choose(&[0xFFFFu16, 0x8000, 0x7FFF, 1000]).unwrap();
    match rng.gen_range(0..3u32) {
        0 => put16(bytes, EH_PHNUM, v),
        1 => put16(bytes, EH_SHNUM, v),
        _ => put16(bytes, EH_SHSTRNDX, v),
    }
}

/// Table/entry offset bombs: `e_phoff` / `e_shoff` / `p_offset` set past
/// EOF or near `u64::MAX` (wrap bait).
fn inflate_offsets(rng: &mut StdRng, bytes: &mut [u8]) {
    let v = *rng.choose(&BOMBS64).unwrap();
    match rng.gen_range(0..3u32) {
        0 => put64(bytes, EH_PHOFF, v),
        1 => put64(bytes, EH_SHOFF, v),
        _ => {
            let phnum = read16(bytes, EH_PHNUM);
            if phnum > 0 {
                let i = (rng.gen_range(0..u32::from(phnum)) & 0xFFFF) as u16;
                if let Some(off) = phdr_at(bytes, i) {
                    put64(bytes, off + PH_OFFSET, v);
                }
            }
        }
    }
}

/// Segment-size bombs: `p_filesz` / `p_memsz` boundary values.
fn inflate_sizes(rng: &mut StdRng, bytes: &mut [u8]) {
    let phnum = read16(bytes, EH_PHNUM);
    if phnum == 0 {
        return;
    }
    let i = (rng.gen_range(0..u32::from(phnum)) & 0xFFFF) as u16;
    if let Some(off) = phdr_at(bytes, i) {
        let v = *rng.choose(&BOMBS64).unwrap();
        if rng.gen_bool(0.5) {
            put64(bytes, off + PH_FILESZ, v);
        } else {
            put64(bytes, off + PH_MEMSZ, v);
        }
    }
}

/// Copy one program header over another, then nudge the copy's `p_vaddr`
/// into the victim's range: two PT_LOADs claiming the same pages.
fn inject_overlap(rng: &mut StdRng, bytes: &mut [u8]) {
    let phnum = read16(bytes, EH_PHNUM);
    if phnum < 2 {
        return;
    }
    let a = (rng.gen_range(0..u32::from(phnum)) & 0xFFFF) as u16;
    let b = (rng.gen_range(0..u32::from(phnum)) & 0xFFFF) as u16;
    if a == b {
        return;
    }
    if let (Some(src), Some(dst)) = (phdr_at(bytes, a), phdr_at(bytes, b)) {
        let copy: Vec<u8> = bytes[src..src + PHDR_SIZE].to_vec();
        bytes[dst..dst + PHDR_SIZE].copy_from_slice(&copy);
        let vaddr = read64(bytes, dst + PH_VADDR);
        let nudge = rng.gen_range(0..0x2000u64);
        put64(bytes, dst + PH_VADDR, vaddr.wrapping_add(nudge));
    }
}

/// Load addresses near the top of the address space: `vaddr + memsz` (and
/// the loader's page-rounding) would wrap in unchecked arithmetic.
fn wrap_vaddr(rng: &mut StdRng, bytes: &mut [u8]) {
    let phnum = read16(bytes, EH_PHNUM);
    if phnum == 0 {
        return;
    }
    let i = (rng.gen_range(0..u32::from(phnum)) & 0xFFFF) as u16;
    if let Some(off) = phdr_at(bytes, i) {
        let high = u64::MAX - rng.gen_range(0..0x10_000u64);
        put64(bytes, off + PH_VADDR, high & !0xFFF);
    }
}

/// File-offset span of a named section, if the image still parses and the
/// span sits fully inside the file. Symbol moves become no-ops once an
/// earlier move has destroyed the section headers — the mutant is already
/// hostile enough.
fn section_span(bytes: &[u8], name: &str) -> Option<(usize, usize)> {
    let elf = e9elf::image::Elf::parse(bytes).ok()?;
    let s = elf.section(name)?;
    let off = usize::try_from(s.sh_offset).ok()?;
    let len = usize::try_from(s.sh_size).ok()?;
    (off.checked_add(len)? <= bytes.len()).then_some((off, len))
}

/// `st_name` bombs: point a random symbol's name offset far past the end
/// of the string table. The resolver must answer "no such symbol" (or
/// skip the record), never index out of bounds.
fn sym_name_bomb(rng: &mut StdRng, bytes: &mut [u8]) {
    const NAME_BOMBS: [u32; 5] = [u32::MAX, u32::MAX - 1, 0x8000_0000, 0x7FFF_FFFF, 1000];
    let Some((off, len)) = section_span(bytes, ".symtab") else {
        return;
    };
    let n = len / SYM_SIZE;
    if n == 0 {
        return;
    }
    let i = rng.gen_range(0..n);
    put32(bytes, off + i * SYM_SIZE, *rng.choose(&NAME_BOMBS).unwrap());
}

/// `st_value` bombs: a symbol whose address sits on an overflow boundary.
/// The hook planner lowers `st_value` into trampoline math (displaced
/// ranges, `vaddr + size` extents); every step must be checked.
fn sym_value_bomb(rng: &mut StdRng, bytes: &mut [u8]) {
    let Some((off, len)) = section_span(bytes, ".symtab") else {
        return;
    };
    let n = len / SYM_SIZE;
    if n == 0 {
        return;
    }
    let i = rng.gen_range(0..n);
    put64(bytes, off + i * SYM_SIZE + 8, *rng.choose(&BOMBS64).unwrap());
}

/// String-table damage: either cut the file mid-`.strtab` (names run off
/// the end of the file) or overwrite the NUL terminators (names become
/// unterminated). Both bait unbounded `strlen`-style scans.
fn strtab_damage(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    let Some((off, len)) = section_span(bytes, ".strtab") else {
        return;
    };
    if len == 0 {
        return;
    }
    if rng.gen_bool(0.5) {
        bytes.truncate(off + rng.gen_range(0..len));
    } else {
        for b in &mut bytes[off..off + len] {
            if *b == 0 {
                *b = 0xFF;
            }
        }
    }
}

/// Random damage across the file header (magic, class, type, entry,
/// phdr self-description) — the "is this even an ELF" tier.
fn scramble_header(rng: &mut StdRng, bytes: &mut [u8]) {
    match rng.gen_range(0..4u32) {
        0 => {
            // Corrupt the identification bytes.
            let i = rng.gen_range(0..16usize.min(bytes.len().max(1)));
            if let Some(b) = bytes.get_mut(i) {
                *b ^= 1 + (rng.next_u32() & 0x7F) as u8;
            }
        }
        1 => put64(bytes, EH_ENTRY, *rng.choose(&BOMBS64).unwrap()),
        2 => {
            // Bogus phentsize/shentsize.
            let v = (rng.next_u32() & 0xFFFF) as u16;
            put16(bytes, if rng.gen_bool(0.5) { 54 } else { 58 }, v);
        }
        _ => {
            // PT_LOAD → random type or vice versa on a random phdr.
            let phnum = read16(bytes, EH_PHNUM);
            if phnum > 0 {
                let i = (rng.gen_range(0..u32::from(phnum)) & 0xFFFF) as u16;
                if let Some(off) = phdr_at(bytes, i) {
                    let v = rng.next_u32();
                    if let Some(dst) = bytes.get_mut(off + PH_TYPE..off + PH_TYPE + 4) {
                        dst.copy_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
    }
}
