//! Structured mutations for wire-protocol byte streams, and the
//! session-survival check each mutant is judged by.
//!
//! A "case" is a full client transcript (version → binary → instructions
//! → patch → emit) with damage applied: truncation mid-line (a client
//! dying mid-batch), byte flips, numeric inflation, line reordering /
//! duplication / deletion (state-machine abuse) and injected garbage
//! lines. The contract under test: every line gets a response or a clean
//! cut — never a panic — and the session still answers a well-formed
//! request afterwards.

use crate::Outcome;
use e9proto::msg::{Command, Request};
use e9proto::server::dispatch_line;
use e9proto::Session;
use e9rng::StdRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A valid full-session transcript used as the mutation baseline.
pub fn baseline_script() -> Vec<u8> {
    baseline_script_with_jobs(None)
}

/// [`baseline_script`] with an explicit `option jobs=<n>` line, so the
/// campaign can damage transcripts that exercise the parallel sharded
/// planner instead of the sequential one.
pub fn baseline_script_with_jobs(jobs: Option<usize>) -> Vec<u8> {
    let bin = crate::elf::baseline_elf();
    let code = vec![
        0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0xC3, //
        0x0F, 0x1F, 0x44, 0x00, 0x00, 0x0F, 0x1F, 0x44, 0x00, 0x00,
    ];
    let disasm = e9x86::decode::linear_sweep(&code, 0x401000);

    let mut out = String::new();
    let mut id = 0u64;
    let mut push = |cmd: Command, out: &mut String| {
        id += 1;
        out.push_str(&Request { id, cmd }.encode());
        out.push('\n');
    };
    push(Command::Version { version: 1 }, &mut out);
    if let Some(n) = jobs {
        push(
            Command::Option {
                name: "jobs".into(),
                value: n.to_string(),
            },
            &mut out,
        );
    }
    push(Command::Binary { bytes: bin, digest: None }, &mut out);
    for i in &disasm {
        push(
            Command::Instruction {
                addr: i.addr,
                bytes: i.bytes().to_vec(),
            },
            &mut out,
        );
    }
    push(
        Command::Patch {
            addr: 0x401000,
            template: e9patch::Template::Empty,
        },
        &mut out,
    );
    push(Command::Emit, &mut out);
    out.into_bytes()
}

/// Apply one to three structured mutations to a copy of `base`.
/// Deterministic in `rng`.
pub fn mutate(rng: &mut StdRng, base: &[u8]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    let moves = rng.gen_range(1..=3u32);
    for _ in 0..moves {
        match rng.gen_range(0..6u32) {
            0 => cut_stream(rng, &mut bytes),
            1 => flip_bytes(rng, &mut bytes),
            2 => inflate_numbers(rng, &mut bytes),
            3 => shuffle_lines(rng, &mut bytes),
            4 => inject_garbage_line(rng, &mut bytes),
            _ => splice_line(rng, &mut bytes),
        }
    }
    bytes
}

/// Mid-stream disconnect: the client dies at an arbitrary byte, usually
/// mid-line.
fn cut_stream(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    let cut = rng.gen_range(0..bytes.len());
    bytes.truncate(cut);
}

/// XOR up to 32 random bytes (newlines excluded half the time, so both
/// "corrupt JSON" and "broken framing" are explored).
fn flip_bytes(rng: &mut StdRng, bytes: &mut [u8]) {
    if bytes.is_empty() {
        return;
    }
    let keep_framing = rng.gen_bool(0.5);
    let n = rng.gen_range(1..=32u32);
    for _ in 0..n {
        let i = rng.gen_range(0..bytes.len());
        if keep_framing && bytes[i] == b'\n' {
            continue;
        }
        let mut m = ((rng.next_u32() % 255) + 1) as u8;
        if keep_framing && bytes[i] ^ m == b'\n' {
            m ^= 0x80;
        }
        bytes[i] ^= m;
    }
}

/// Replace one run of ASCII digits with a much longer one: ids, addrs,
/// counts and version numbers all inflate past `u64`.
fn inflate_numbers(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    let digits: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|(_, b)| b.is_ascii_digit())
        .map(|(i, _)| i)
        .collect();
    let Some(&start) = rng.choose(&digits) else {
        return;
    };
    let end = bytes[start..]
        .iter()
        .position(|b| !b.is_ascii_digit())
        .map_or(bytes.len(), |n| start + n);
    let bomb: &[u8] = match rng.gen_range(0..3u32) {
        0 => b"18446744073709551616",                    // u64::MAX + 1
        1 => b"99999999999999999999999999999999999999",  // way past u64
        _ => b"340282366920938463463374607431768211456", // 2^128
    };
    bytes.splice(start..end, bomb.iter().copied());
}

/// Reorder, duplicate or drop whole lines: protocol state-machine abuse
/// with individually well-formed requests.
fn shuffle_lines(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    let mut lines: Vec<Vec<u8>> = bytes
        .split_inclusive(|&b| b == b'\n')
        .map(<[u8]>::to_vec)
        .collect();
    if lines.len() < 2 {
        return;
    }
    match rng.gen_range(0..3u32) {
        0 => rng.shuffle(&mut lines),
        1 => {
            let i = rng.gen_range(0..lines.len());
            let dup = lines[i].clone();
            lines.insert(i, dup);
        }
        _ => {
            let i = rng.gen_range(0..lines.len());
            lines.remove(i);
        }
    }
    *bytes = lines.concat();
}

/// Insert one line of random bytes (newline-free, so framing survives).
fn inject_garbage_line(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    let len = rng.gen_range(1..=256usize);
    let mut garbage = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let mut b = (rng.next_u32() & 0xFF) as u8;
        if b == b'\n' {
            b = b' ';
        }
        garbage.push(b);
    }
    garbage.push(b'\n');
    let lines: Vec<usize> = std::iter::once(0)
        .chain(
            bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let at = *rng.choose(&lines).unwrap_or(&0);
    bytes.splice(at..at, garbage);
}

/// Glue two adjacent lines together (drop one newline): two JSON objects
/// on one line.
fn splice_line(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    let newlines: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i)
        .collect();
    if let Some(&i) = rng.choose(&newlines) {
        bytes.remove(i);
    }
}

/// Execute one wire case: feed every line of `stream` through a fresh
/// session's `dispatch_line`, then probe serviceability with a valid
/// request. Unwinds and a dead session both count as failures.
pub fn wire_case(stream: &[u8]) -> Outcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut session = Session::new();
        let mut any_error = false;
        for line in stream.split(|&b| b == b'\n') {
            if line.iter().all(|b| b.is_ascii_whitespace()) {
                continue;
            }
            let resp = dispatch_line(&mut session, line);
            if resp.body.is_err() {
                any_error = true;
            }
            if session.shutdown_requested() {
                break;
            }
        }
        // Serviceability probe: the session must still answer a
        // well-formed request (with success or a typed state error).
        if !session.shutdown_requested() {
            let probe = Request {
                id: 999_999,
                cmd: Command::Version { version: 1 },
            }
            .encode();
            let _ = dispatch_line(&mut session, probe.as_bytes());
        }
        any_error
    }));
    match result {
        Err(_) => Outcome::Panicked,
        Ok(true) => Outcome::Rejected,
        Ok(false) => Outcome::Accepted,
    }
}
