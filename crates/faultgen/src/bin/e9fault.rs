//! `e9fault` — run the deterministic fault-injection campaigns.
//!
//! ```console
//! $ e9fault                                  # both surfaces, default sizes
//! $ E9FAULT_SEED=7 e9fault --elf-cases 1000  # bigger ELF campaign
//! $ e9fault --surface elf --case 123         # replay one mutant
//! $ e9fault --write-corpus tests/corpus      # regenerate the hostile corpus
//! ```
//!
//! Exit code 0 means zero panics across every executed case; 1 means at
//! least one case unwound, and a replay line (`E9FAULT_SEED=… --case N`)
//! has been printed for each.

use e9faultgen::{
    cache, case_rng, corpus, elf, seed_from_env, wire, CampaignReport, Outcome, Surface, ENV_SEED,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "e9fault — deterministic fault-injection campaigns

USAGE:
  e9fault [--seed N] [--elf-cases N] [--wire-cases N] [--cache-cases N]
          [--loop-cases N] [--io-cases N] [--jobs N]
  e9fault --surface elf|wire|cache|loop|io --case N [--seed N] [--jobs N]
                                                   replay one case
  e9fault --write-corpus DIR                       regenerate hostile ELFs

--jobs N makes the wire baseline select the parallel sharded planner
(option jobs=N), so mutants exercise the worker-pool path.
The cache surface damages on-disk rewrite-cache entries and the index
journal, asserting typed errors, quarantine and cold-path recovery.
The loop surface runs hostile client behaviors (slow-loris, partial
lines, mid-poll disconnects, never-reading queue-fillers) against a real
reactor, asserting it never panics and healthy connections stay served.
The io surface injects environmental faults (ENOSPC, EIO, EINTR, short
writes, failed renames) at real syscall sites through e9failpt while
full rewrite jobs run against live daemons: every fault must surface as
a typed error or a byte-identical degraded result.
The seed defaults to ${ENV_SEED} (then 42). Exit 1 if any case panics."
    );
    ExitCode::from(2)
}

fn replay(seed: u64, surface: Surface, case: u32, jobs: Option<usize>) -> ExitCode {
    let mut rng = case_rng(seed, surface, case);
    let outcome = match surface {
        Surface::Elf => {
            let mutant = elf::mutate(&mut rng, &elf::baseline_elf_with_symbols());
            eprintln!("e9fault: replaying elf case {case} ({} bytes)", mutant.len());
            e9faultgen::elf_case(&mutant)
        }
        Surface::Wire => {
            let mutant = wire::mutate(&mut rng, &wire::baseline_script_with_jobs(jobs));
            eprintln!(
                "e9fault: replaying wire case {case} ({} bytes)",
                mutant.len()
            );
            wire::wire_case(&mutant)
        }
        Surface::Cache => {
            let root = std::env::temp_dir().join(format!(
                "e9fault-cache-replay-{}-{case}",
                std::process::id()
            ));
            eprintln!("e9fault: replaying cache case {case} in {}", root.display());
            cache::cache_case(&mut rng, &root)
        }
        #[cfg(target_os = "linux")]
        Surface::Loop => {
            let sock = std::env::temp_dir().join(format!(
                "e9fault-loop-replay-{}-{case}.sock",
                std::process::id()
            ));
            eprintln!("e9fault: replaying loop case {case} on {}", sock.display());
            e9faultgen::loopgen::loop_case(&mut rng, &sock)
        }
        #[cfg(not(target_os = "linux"))]
        Surface::Loop => {
            eprintln!("e9fault: the loop surface needs Linux (epoll reactor)");
            return ExitCode::from(2);
        }
        #[cfg(target_os = "linux")]
        Surface::Io => {
            let root = std::env::temp_dir().join(format!(
                "e9fault-io-replay-{}-{case}",
                std::process::id()
            ));
            eprintln!("e9fault: replaying io case {case} in {}", root.display());
            e9faultgen::io::io_case(&mut rng, &root)
        }
        #[cfg(not(target_os = "linux"))]
        Surface::Io => {
            eprintln!("e9fault: the io surface needs Linux (epoll reactor)");
            return ExitCode::from(2);
        }
    };
    println!("{ENV_SEED}={seed} surface={} case={case}: {outcome:?}", surface.name());
    if outcome == Outcome::Panicked {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn write_corpus(dir: &str) -> ExitCode {
    let dir = std::path::Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("e9fault: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for (name, bytes) in corpus::all() {
        let path = dir.join(format!("{name}.bin"));
        if let Err(e) = std::fs::write(&path, &bytes) {
            eprintln!("e9fault: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} bytes)", path.display(), bytes.len());
    }
    ExitCode::SUCCESS
}

fn finish(reports: &[CampaignReport]) -> ExitCode {
    let mut clean = true;
    for r in reports {
        println!("{}", r.summary());
        if !r.is_clean() {
            clean = false;
            eprint!("{}", r.replay_lines());
        }
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = seed_from_env();
    let mut elf_cases = 320u32;
    let mut wire_cases = 200u32;
    let mut cache_cases = 120u32;
    // Each loop case boots a real reactor + hostile clients, so the
    // default stays modest to bound campaign wall time.
    let mut loop_cases = 24u32;
    // Io cases boot real daemons and drive whole rewrite jobs; same
    // wall-time reasoning.
    let mut io_cases = 24u32;
    let mut surface: Option<Surface> = None;
    let mut case: Option<u32> = None;
    let mut corpus_dir: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| argv.get(i + 1).cloned();
        match argv[i].as_str() {
            "--seed" => match take(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    seed = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--elf-cases" => match take(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    elf_cases = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--wire-cases" => match take(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    wire_cases = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--cache-cases" => match take(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    cache_cases = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--loop-cases" => match take(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    loop_cases = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--io-cases" => match take(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    io_cases = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--surface" => match take(i).as_deref() {
                Some("elf") => {
                    surface = Some(Surface::Elf);
                    i += 2;
                }
                Some("wire") => {
                    surface = Some(Surface::Wire);
                    i += 2;
                }
                Some("cache") => {
                    surface = Some(Surface::Cache);
                    i += 2;
                }
                Some("loop") => {
                    surface = Some(Surface::Loop);
                    i += 2;
                }
                Some("io") => {
                    surface = Some(Surface::Io);
                    i += 2;
                }
                _ => return usage(),
            },
            "--case" => match take(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    case = Some(v);
                    i += 2;
                }
                None => return usage(),
            },
            "--jobs" => match take(i).and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => {
                    jobs = Some(v);
                    i += 2;
                }
                _ => return usage(),
            },
            "--write-corpus" => match take(i) {
                Some(d) => {
                    corpus_dir = Some(d);
                    i += 2;
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    if let Some(dir) = corpus_dir {
        return write_corpus(&dir);
    }
    if let Some(case) = case {
        let Some(surface) = surface else {
            return usage();
        };
        return replay(seed, surface, case, jobs);
    }

    let mut reports = Vec::new();
    match surface {
        Some(Surface::Elf) => reports.push(e9faultgen::run_elf_campaign(seed, elf_cases)),
        Some(Surface::Wire) => {
            reports.push(e9faultgen::run_wire_campaign_with_jobs(seed, wire_cases, jobs));
        }
        Some(Surface::Cache) => reports.push(e9faultgen::run_cache_campaign(seed, cache_cases)),
        #[cfg(target_os = "linux")]
        Some(Surface::Loop) => reports.push(e9faultgen::run_loop_campaign(seed, loop_cases)),
        #[cfg(target_os = "linux")]
        Some(Surface::Io) => reports.push(e9faultgen::run_io_campaign(seed, io_cases)),
        #[cfg(not(target_os = "linux"))]
        Some(Surface::Loop | Surface::Io) => {
            eprintln!("e9fault: the loop and io surfaces need Linux (epoll reactor)");
            return ExitCode::from(2);
        }
        None => {
            reports.push(e9faultgen::run_elf_campaign(seed, elf_cases));
            reports.push(e9faultgen::run_wire_campaign_with_jobs(seed, wire_cases, jobs));
            reports.push(e9faultgen::run_cache_campaign(seed, cache_cases));
            #[cfg(target_os = "linux")]
            {
                reports.push(e9faultgen::run_loop_campaign(seed, loop_cases));
                reports.push(e9faultgen::run_io_campaign(seed, io_cases));
            }
            #[cfg(not(target_os = "linux"))]
            let _ = (loop_cases, io_cases);
        }
    }
    finish(&reports)
}
