//! # e9faultgen — deterministic fault injection for the untrusted surfaces
//!
//! The rewriter has exactly two places where bytes it does not control
//! enter the system:
//!
//! 1. **ELF images** — `e9elf::image::Elf::parse` and the VM loader
//!    (`e9vm::load::load_elf`), reached from `e9tool` file arguments and
//!    from the wire protocol's `binary` command;
//! 2. **wire-protocol streams** — request lines entering
//!    `e9proto::server::dispatch_line` (JSON parse → envelope decode →
//!    session state machine).
//!
//! This crate throws seeded, structured garbage at both and asserts the
//! contract the rest of the workspace relies on: *typed errors, never
//! panics*, and a session that keeps answering after arbitrary bad input.
//!
//! Everything is replayable. A campaign is a pure function of
//! `(seed, case index)`: per-case generators are derived with SplitMix64
//! so case `i` can be regenerated without running cases `0..i`. On
//! failure the report prints an `E9FAULT_SEED=… --case N` line; running
//! `e9fault` with those values reproduces the exact mutant. The seed
//! comes from the `E9FAULT_SEED` environment variable (default 42) so CI
//! logs are sufficient to reproduce a red run.
//!
//! The mutation grammar is deliberately structured rather than uniform
//! random: truncation, byte flips, length/count inflation, overlap
//! injection and mid-stream disconnects correspond one-to-one to the
//! historical panic classes in naive parsers (slice OOB, `usize` wrap,
//! allocation bombs, inconsistent tables, partial reads).

pub mod cache;
pub mod corpus;
pub mod elf;
#[cfg(target_os = "linux")]
pub mod io;
#[cfg(target_os = "linux")]
pub mod loopgen;
pub mod wire;

use e9rng::{SplitMix64, StdRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Environment variable naming the campaign seed (default 42).
pub const ENV_SEED: &str = "E9FAULT_SEED";

/// Read the campaign seed from [`ENV_SEED`], defaulting to 42.
pub fn seed_from_env() -> u64 {
    std::env::var(ENV_SEED)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Which untrusted surface a campaign targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// ELF images into `Elf::parse` + `load_elf`.
    Elf,
    /// Wire-protocol byte streams into `dispatch_line`.
    Wire,
    /// On-disk rewrite-cache entries and index into `e9cache`.
    Cache,
    /// Hostile client behaviors (timing + socket discipline) against the
    /// reactor serving loop.
    Loop,
    /// Environmental I/O faults (ENOSPC, EIO, EINTR, short writes,
    /// failed renames) injected through the `e9failpt` registry while
    /// full rewrite jobs run against live daemons.
    Io,
}

impl Surface {
    fn tag(self) -> u64 {
        match self {
            Surface::Elf => 0x454C_465F_5355_5246, // "ELF_SURF"
            Surface::Wire => 0x5749_5245_5355_5246, // "WIRESURF"
            Surface::Cache => 0x4341_4348_4553_5246, // "CACHESRF"
            Surface::Loop => 0x4C4F_4F50_5355_5246, // "LOOPSURF"
            Surface::Io => 0x0049_4F5F_5355_5246, // "IO_SURF"
        }
    }

    /// Command-line name (`elf` / `wire` / `cache` / `loop` / `io`).
    pub fn name(self) -> &'static str {
        match self {
            Surface::Elf => "elf",
            Surface::Wire => "wire",
            Surface::Cache => "cache",
            Surface::Loop => "loop",
            Surface::Io => "io",
        }
    }
}

/// Derive the RNG for one case. Pure in `(seed, surface, index)`: replay
/// of case `i` never needs cases `0..i`.
pub fn case_rng(seed: u64, surface: Surface, index: u32) -> StdRng {
    let mut sm = SplitMix64::new(seed ^ surface.tag());
    let a = sm.next_u64();
    let b = sm.next_u64();
    StdRng::seed_from_u64(a ^ u64::from(index).wrapping_mul(b | 1))
}

/// How one fault case ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The mutant was still acceptable input (parsed / all requests ok).
    Accepted,
    /// The mutant was refused with a typed error — the desired outcome.
    Rejected,
    /// The target panicked. Always a bug.
    Panicked,
}

/// Result of one campaign over one surface.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Surface the campaign ran against.
    pub surface: Surface,
    /// Seed the campaign ran with.
    pub seed: u64,
    /// Number of cases executed.
    pub cases: u32,
    /// Mutants that were still valid input.
    pub accepted: u32,
    /// Mutants refused with typed errors.
    pub rejected: u32,
    /// Case indices whose execution panicked (should be empty).
    pub panicked: Vec<u32>,
}

impl CampaignReport {
    /// True when no case panicked.
    pub fn is_clean(&self) -> bool {
        self.panicked.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "fault[{}]: seed={} cases={} accepted={} rejected={} panics={}",
            self.surface.name(),
            self.seed,
            self.cases,
            self.accepted,
            self.rejected,
            self.panicked.len()
        )
    }

    /// Replay instructions for every panicking case (empty string when
    /// clean).
    pub fn replay_lines(&self) -> String {
        let mut out = String::new();
        for &i in &self.panicked {
            out.push_str(&format!(
                "{}={} e9fault --surface {} --case {}   # replays the panic\n",
                ENV_SEED,
                self.seed,
                self.surface.name(),
                i
            ));
        }
        out
    }
}

fn run_campaign<F>(surface: Surface, seed: u64, cases: u32, mut one: F) -> CampaignReport
where
    F: FnMut(&mut StdRng) -> Outcome,
{
    let mut report = CampaignReport {
        surface,
        seed,
        cases,
        accepted: 0,
        rejected: 0,
        panicked: Vec::new(),
    };
    for i in 0..cases {
        let mut rng = case_rng(seed, surface, i);
        match one(&mut rng) {
            Outcome::Accepted => report.accepted += 1,
            Outcome::Rejected => report.rejected += 1,
            Outcome::Panicked => report.panicked.push(i),
        }
    }
    report
}

/// Run `cases` seeded mutants against the ELF surface: each case mutates
/// the symbol-bearing baseline image and feeds it to `Elf::parse`, then
/// (if it still parses) through the hook-planning path and the VM loader.
/// Any unwind is recorded as a panic.
pub fn run_elf_campaign(seed: u64, cases: u32) -> CampaignReport {
    let base = elf::baseline_elf_with_symbols();
    run_campaign(Surface::Elf, seed, cases, |rng| {
        let mutant = elf::mutate(rng, &base);
        elf_case(&mutant)
    })
}

/// Execute one ELF case (also used by corpus replay): parse, probe the
/// hook planner, and load into a fresh VM when parsing succeeds.
pub fn elf_case(bytes: &[u8]) -> Outcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        match e9elf::image::Elf::parse(bytes) {
            Err(_) => Outcome::Rejected,
            Ok(elf) => {
                hook_probe(bytes, &elf);
                let mut vm = e9vm::Vm::new();
                match e9vm::load_elf(&mut vm, bytes) {
                    Ok(()) => Outcome::Accepted,
                    Err(_) => Outcome::Rejected,
                }
            }
        }
    }));
    result.unwrap_or(Outcome::Panicked)
}

/// Drive the hook-planning path over an untrusted image. The planner
/// resolves names out of the (possibly damaged) symbol tables and the
/// manifest scanner reads load segments from the same hostile bytes; both
/// must fail with typed errors, never unwind. Results are discarded — the
/// surrounding `catch_unwind` in [`elf_case`] is the assertion.
fn hook_probe(bytes: &[u8], elf: &e9elf::image::Elf) {
    // Bounded sweep: enough decoded instructions for the planner to
    // inspect prologues without letting an inflated segment size turn one
    // case into a multi-megabyte disassembly.
    const SWEEP_CAP: usize = 4096;
    let mut disasm = Vec::new();
    for ph in elf.load_segments() {
        if ph.p_flags & e9elf::types::PF_X == 0 {
            continue;
        }
        let len = usize::try_from(ph.p_filesz).unwrap_or(usize::MAX).min(SWEEP_CAP);
        if let Ok(code) = elf.slice_at(ph.p_vaddr, len) {
            disasm = e9x86::decode::linear_sweep(code, ph.p_vaddr);
            break;
        }
    }
    // Plain and call-original plans: the latter additionally pulls entry
    // instructions through the relocation engine.
    let _ = e9hook::plan_hooks(bytes, &disasm, &e9hook::HookSpec::counters(&["*"]));
    let co = e9hook::HookSpec {
        call_original: true,
        ..e9hook::HookSpec::counters(&["*"])
    };
    let _ = e9hook::plan_hooks(bytes, &disasm, &co);
    let _ = e9hook::manifest::find_in_elf(elf);
}

/// Run `cases` seeded mutants against the wire surface: each case mutates
/// a valid session transcript, feeds every line through a fresh session's
/// `dispatch_line`, then probes that the session still answers a
/// well-formed request. Any unwind — and any post-mutation
/// unserviceability — is recorded as a panic-class failure.
pub fn run_wire_campaign(seed: u64, cases: u32) -> CampaignReport {
    run_wire_campaign_with_jobs(seed, cases, None)
}

/// [`run_wire_campaign`] over a baseline transcript that selects the
/// parallel sharded planner (`option jobs=<n>`), so mutants exercise the
/// worker-pool path — shard cut, lane planning, merge — under damage.
pub fn run_wire_campaign_with_jobs(seed: u64, cases: u32, jobs: Option<usize>) -> CampaignReport {
    let script = wire::baseline_script_with_jobs(jobs);
    run_campaign(Surface::Wire, seed, cases, |rng| {
        let mutant = wire::mutate(rng, &script);
        wire::wire_case(&mutant)
    })
}

/// Run `cases` seeded mutants against the rewrite-cache surface: each
/// case primes a fresh on-disk store, damages object files and/or the
/// index journal, then asserts typed-error + quarantine on read-back and
/// that the cold path re-populates every damaged key byte-identically
/// (see [`cache::cache_case`]). Campaign scratch space lives under the
/// system temp dir and is removed per case.
pub fn run_cache_campaign(seed: u64, cases: u32) -> CampaignReport {
    let base = std::env::temp_dir().join(format!(
        "e9fault-cache-{}-{seed:x}",
        std::process::id()
    ));
    let mut case_no = 0u32;
    let report = run_campaign(Surface::Cache, seed, cases, |rng| {
        let root = base.join(format!("case{case_no}"));
        case_no += 1;
        cache::cache_case(rng, &root)
    });
    let _ = std::fs::remove_dir_all(&base);
    report
}

/// Run `cases` seeded hostile-client campaigns against the reactor
/// serving loop: each case boots a real reactor on a scratch Unix
/// socket, runs slow-loris / partial-line / mid-poll-disconnect /
/// never-reading / oversized / garbage behaviors against it, and asserts
/// the loop neither panics nor stops serving a healthy connection (see
/// [`loopgen::loop_case`]).
#[cfg(target_os = "linux")]
pub fn run_loop_campaign(seed: u64, cases: u32) -> CampaignReport {
    let base = std::env::temp_dir().join(format!(
        "e9fault-loop-{}-{seed:x}",
        std::process::id()
    ));
    let _ = std::fs::create_dir_all(&base);
    let mut case_no = 0u32;
    let report = run_campaign(Surface::Loop, seed, cases, |rng| {
        let sock = base.join(format!("case{case_no}.sock"));
        case_no += 1;
        loopgen::loop_case(rng, &sock)
    });
    let _ = std::fs::remove_dir_all(&base);
    report
}

/// Run `cases` seeded environmental-I/O campaigns: each case activates
/// a seeded failpoint schedule (ENOSPC / EIO / EINTR / short writes /
/// failed renames at real syscall sites) and drives full rewrite jobs
/// against live daemons, asserting typed errors or byte-identical
/// degraded results — never a panic, torn file or wedged daemon (see
/// [`io::io_case`]). Failpoints are process-global, so cases run
/// strictly one at a time behind the `e9failpt` scope gate.
#[cfg(target_os = "linux")]
pub fn run_io_campaign(seed: u64, cases: u32) -> CampaignReport {
    let base = std::env::temp_dir().join(format!(
        "e9fault-io-{}-{seed:x}",
        std::process::id()
    ));
    let _ = std::fs::create_dir_all(&base);
    let mut case_no = 0u32;
    let report = run_campaign(Surface::Io, seed, cases, |rng| {
        let root = base.join(format!("case{case_no}"));
        case_no += 1;
        io::io_case(rng, &root)
    });
    let _ = std::fs::remove_dir_all(&base);
    report
}
