//! Campaign smoke: a bounded seeded run of both fault surfaces must be
//! panic-free and bit-for-bit reproducible.
//!
//! The seed is taken from `E9FAULT_SEED` (default 42) so a CI failure log
//! carries everything needed to replay it locally:
//!
//! ```console
//! $ E9FAULT_SEED=<seed> cargo run -p e9faultgen --bin e9fault -- \
//!       --surface <elf|wire> --case <index>
//! ```

use e9faultgen::{case_rng, elf, seed_from_env, wire, Surface};

#[test]
fn elf_campaign_is_panic_free() {
    let seed = seed_from_env();
    let report = e9faultgen::run_elf_campaign(seed, 300);
    assert!(
        report.is_clean(),
        "elf campaign panicked; replay with:\n{}",
        report.replay_lines()
    );
    // A campaign that rejects nothing is not exercising the error paths.
    assert!(report.rejected > 0, "no mutant was rejected: {}", report.summary());
}

#[test]
fn wire_campaign_is_panic_free() {
    let seed = seed_from_env();
    let report = e9faultgen::run_wire_campaign(seed, 200);
    assert!(
        report.is_clean(),
        "wire campaign panicked; replay with:\n{}",
        report.replay_lines()
    );
    assert!(report.rejected > 0, "no mutant was rejected: {}", report.summary());
}

#[test]
fn wire_campaign_over_parallel_planner_is_panic_free() {
    // Same contract as the sequential wire campaign, but the baseline
    // transcript selects the sharded worker-pool planner (option jobs=4):
    // damaged streams must surface as typed errors, and a worker panic
    // must never escape the session.
    let seed = seed_from_env();
    let report = e9faultgen::run_wire_campaign_with_jobs(seed, 200, Some(4));
    assert!(
        report.is_clean(),
        "parallel wire campaign panicked; replay with --jobs 4:\n{}",
        report.replay_lines()
    );
    assert!(report.rejected > 0, "no mutant was rejected: {}", report.summary());
}

#[test]
fn cache_campaign_is_panic_free() {
    // Damaged on-disk cache entries must be refused with typed errors,
    // quarantined, and recoverable through the cold path — never served
    // as wrong bytes and never a panic (cache_case folds contract
    // violations into the panic count).
    let seed = seed_from_env();
    let report = e9faultgen::run_cache_campaign(seed, 80);
    assert!(
        report.is_clean(),
        "cache campaign panicked; replay with:\n{}",
        report.replay_lines()
    );
    assert!(report.rejected > 0, "no mutant was rejected: {}", report.summary());
}

#[cfg(target_os = "linux")]
#[test]
fn loop_campaign_is_panic_free() {
    // Hostile client *behaviors* (slow-loris, partial lines, mid-poll
    // disconnects, never-reading queue-fillers) against a live reactor:
    // the loop must never panic and must keep serving a healthy
    // connection while hostile ones are parked or shed. loop_case folds
    // a stalled healthy probe into the panic count.
    let seed = seed_from_env();
    let report = e9faultgen::run_loop_campaign(seed, 8);
    assert!(
        report.is_clean(),
        "loop campaign panicked; replay with:\n{}",
        report.replay_lines()
    );
    assert!(
        report.rejected > 0,
        "no behavior was shed or answered with a typed error: {}",
        report.summary()
    );
}

#[test]
fn cache_campaign_is_deterministic() {
    let a = e9faultgen::run_cache_campaign(9, 30);
    let b = e9faultgen::run_cache_campaign(9, 30);
    assert_eq!((a.accepted, a.rejected), (b.accepted, b.rejected));
    assert!(a.is_clean() && b.is_clean());
}

#[test]
fn campaigns_are_deterministic() {
    let a = e9faultgen::run_elf_campaign(7, 40);
    let b = e9faultgen::run_elf_campaign(7, 40);
    assert_eq!((a.accepted, a.rejected), (b.accepted, b.rejected));
    let a = e9faultgen::run_wire_campaign(7, 40);
    let b = e9faultgen::run_wire_campaign(7, 40);
    assert_eq!((a.accepted, a.rejected), (b.accepted, b.rejected));
}

#[test]
fn case_generation_is_index_addressable() {
    // Case i regenerated in isolation must equal case i from a sweep:
    // that's what makes `--case N` replay trustworthy.
    let base = elf::baseline_elf();
    let sweep: Vec<Vec<u8>> = (0..10)
        .map(|i| elf::mutate(&mut case_rng(42, Surface::Elf, i), &base))
        .collect();
    let replayed = elf::mutate(&mut case_rng(42, Surface::Elf, 7), &base);
    assert_eq!(sweep[7], replayed);

    let script = wire::baseline_script();
    let sweep: Vec<Vec<u8>> = (0..10)
        .map(|i| wire::mutate(&mut case_rng(42, Surface::Wire, i), &script))
        .collect();
    let replayed = wire::mutate(&mut case_rng(42, Surface::Wire, 3), &script);
    assert_eq!(sweep[3], replayed);
}

#[test]
fn mutants_actually_differ_from_baseline() {
    // Mutation must not be the identity function, or the campaign is a
    // very expensive no-op. (A rare fixed-point for one index is fine;
    // all-identical would mean a broken generator.)
    let base = elf::baseline_elf();
    let changed = (0..20)
        .filter(|&i| elf::mutate(&mut case_rng(1, Surface::Elf, i), &base) != base)
        .count();
    assert!(changed >= 15, "only {changed}/20 elf mutants differed");

    let script = wire::baseline_script();
    let changed = (0..20)
        .filter(|&i| wire::mutate(&mut case_rng(1, Surface::Wire, i), &script) != script)
        .count();
    assert!(changed >= 15, "only {changed}/20 wire mutants differed");
}
