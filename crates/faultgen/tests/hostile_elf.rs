//! Replay the checked-in hostile-ELF corpus against the parser and the
//! VM loader: typed errors or graceful degradation, never a panic.
//!
//! Each corpus file is a deterministic transformation of the campaign
//! baseline (see `e9faultgen::corpus`); the test also asserts the
//! checked-in bytes still match the generator, so the corpus and the
//! builder cannot drift apart silently. Regenerate after intentional
//! builder changes with:
//!
//! ```console
//! $ cargo run -p e9faultgen --bin e9fault -- --write-corpus crates/faultgen/tests/corpus
//! ```

use e9faultgen::{corpus, elf_case, Outcome};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_is_complete_and_current() {
    for name in corpus::NAMES {
        let path = corpus_dir().join(format!("{name}.bin"));
        let on_disk = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing corpus file {}: {e}", path.display()));
        let generated = corpus::generate(name).expect("known corpus name");
        assert_eq!(
            on_disk,
            generated,
            "{name}.bin is stale; regenerate with e9fault --write-corpus"
        );
    }
}

#[test]
fn corpus_never_panics_parser_or_loader() {
    for name in corpus::NAMES {
        let bytes = std::fs::read(corpus_dir().join(format!("{name}.bin"))).unwrap();
        let outcome = elf_case(&bytes);
        assert_ne!(outcome, Outcome::Panicked, "{name} panicked the parser/loader");
    }
}

#[test]
fn structurally_broken_entries_are_rejected() {
    for name in corpus::MUST_REJECT {
        let bytes = std::fs::read(corpus_dir().join(format!("{name}.bin"))).unwrap();
        assert_eq!(
            elf_case(&bytes),
            Outcome::Rejected,
            "{name} should have been refused with a typed error"
        );
    }
}

#[test]
fn corpus_failures_are_typed_not_stringly() {
    // Spot-check that the rejections surface as the right error types,
    // not via some incidental failure.
    let read = |n: &str| std::fs::read(corpus_dir().join(format!("{n}.bin"))).unwrap();

    match e9elf::Elf::parse(&read("trunc-ehdr")) {
        Err(e9elf::ElfError::Truncated(_)) => {}
        other => panic!("trunc-ehdr: expected Truncated, got {other:?}"),
    }
    match e9elf::Elf::parse(&read("phnum-bomb")) {
        Err(e9elf::ElfError::Truncated(_)) => {}
        other => panic!("phnum-bomb: expected Truncated, got {other:?}"),
    }

    // These parse (the header tables are intact) but must be refused by
    // the loader's segment validation.
    for name in ["vaddr-wrap", "offset-oob", "memsz-bomb"] {
        let bytes = read(name);
        e9elf::Elf::parse(&bytes).unwrap_or_else(|e| panic!("{name} should parse: {e:?}"));
        let mut vm = e9vm::Vm::new();
        assert!(
            e9vm::load_elf(&mut vm, &bytes).is_err(),
            "{name} should be refused by the loader"
        );
    }
}
