//! # e9lowfat — low-fat-pointer heap model and redzone checker
//!
//! The paper's §6.3 hardening application detects heap buffer overflows by
//! encoding bounds information in the **bit representation of the pointer
//! itself** (low-fat pointers, Duck & Yap CC'16): the heap is carved into
//! giant *regions*, one per size class, so `region(p)` determines the
//! allocation size and `base(p)` is a mask away. The E9Patch
//! instrumentation enforces a redzone by checking `p − base(p) ≥ 16` on
//! every heap write.
//!
//! This crate supplies both halves:
//!
//! * [`LowFatAllocator`] — the allocation policy (power-of-two size
//!   classes, per-class regions, 16-byte front redzones), pluggable into
//!   the emulator as its heap backend (replacing the paper's
//!   `LD_PRELOAD`ed `liblowfat.so`);
//! * [`runtime`] — real x86-64 machine code for the redzone check
//!   function called from every A2 trampoline, plus its masks table and
//!   violation counter, packaged as segments for the rewriter.

use e9vm::HeapAllocator;

pub mod runtime;

/// Base virtual address of the low-fat heap regions.
pub const REGION_BASE: u64 = 0x4000_0000_0000;
/// Size of one region (one per size class).
pub const REGION_SIZE: u64 = 1 << 32;
/// Number of size classes: 16 B … 32 MiB.
pub const NUM_CLASSES: usize = 22;
/// Smallest size class.
pub const MIN_CLASS: u64 = 16;
/// Redzone bytes at the start of every allocation slot.
pub const REDZONE: u64 = 16;

/// Size class (allocation slot size) for a request of `size` bytes,
/// including the front redzone. `None` if too large for any class.
pub fn size_class(size: u64) -> Option<u64> {
    let need = size.checked_add(REDZONE)?;
    let class = need.next_power_of_two().max(MIN_CLASS);
    if class > MIN_CLASS << (NUM_CLASSES - 1) {
        None
    } else {
        Some(class)
    }
}

/// Index of a size class within the region table.
pub fn class_index(class: u64) -> usize {
    (class.trailing_zeros() - MIN_CLASS.trailing_zeros()) as usize
}

/// Region index of pointer `p`, if it lies in the low-fat heap.
pub fn region_of(p: u64) -> Option<usize> {
    if p < REGION_BASE {
        return None;
    }
    let idx = ((p - REGION_BASE) / REGION_SIZE) as usize;
    if idx < NUM_CLASSES {
        Some(idx)
    } else {
        None
    }
}

/// Slot size of pointer `p` (`None` for non-low-fat pointers).
pub fn size_of_ptr(p: u64) -> Option<u64> {
    region_of(p).map(|i| MIN_CLASS << i)
}

/// Base address of the allocation slot containing `p` — the low-fat
/// `base(p)` operation: a mask, because slot sizes are powers of two and
/// regions are size-aligned.
pub fn base_of(p: u64) -> Option<u64> {
    let size = size_of_ptr(p)?;
    Some(p & !(size - 1))
}

/// Does a write through `p` violate the redzone property
/// `p − base(p) ≥ 16`? (Non-low-fat pointers never violate.)
pub fn violates_redzone(p: u64) -> bool {
    match base_of(p) {
        Some(b) => p - b < REDZONE,
        None => false,
    }
}

/// The low-fat allocator: per-class bump allocation inside size-aligned
/// slots; `malloc` returns `slot + REDZONE`.
#[derive(Debug)]
pub struct LowFatAllocator {
    next_slot: [u64; NUM_CLASSES],
    /// Allocations served.
    pub allocs: u64,
    /// Frees observed.
    pub frees: u64,
}

impl LowFatAllocator {
    /// Fresh allocator.
    pub fn new() -> LowFatAllocator {
        let mut next_slot = [0u64; NUM_CLASSES];
        for (i, slot) in next_slot.iter_mut().enumerate() {
            *slot = REGION_BASE + i as u64 * REGION_SIZE;
        }
        LowFatAllocator {
            next_slot,
            allocs: 0,
            frees: 0,
        }
    }

    /// The masks-table entry for each region: `size − 1`, used by the x86
    /// check function (`p & mask < 16` ⇒ violation).
    pub fn masks() -> [u64; NUM_CLASSES] {
        let mut m = [0u64; NUM_CLASSES];
        for (i, mask) in m.iter_mut().enumerate() {
            *mask = (MIN_CLASS << i) - 1;
        }
        m
    }
}

impl Default for LowFatAllocator {
    fn default() -> Self {
        LowFatAllocator::new()
    }
}

impl HeapAllocator for LowFatAllocator {
    fn malloc(&mut self, size: u64) -> u64 {
        let Some(class) = size_class(size) else {
            return 0;
        };
        let idx = class_index(class);
        let region_end = REGION_BASE + (idx as u64 + 1) * REGION_SIZE;
        let slot = self.next_slot[idx];
        if slot + class > region_end {
            return 0;
        }
        self.next_slot[idx] += class;
        self.allocs += 1;
        slot + REDZONE
    }

    fn free(&mut self, _ptr: u64) {
        self.frees += 1;
    }

    fn range(&self) -> (u64, u64) {
        (
            REGION_BASE,
            REGION_BASE + NUM_CLASSES as u64 * REGION_SIZE,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes() {
        assert_eq!(size_class(1), Some(32)); // 1 + 16 → 32
        assert_eq!(size_class(16), Some(32));
        assert_eq!(size_class(48), Some(64));
        assert_eq!(size_class(100), Some(128));
        assert_eq!(size_class(u64::MAX), None);
        assert_eq!(class_index(16), 0);
        assert_eq!(class_index(32), 1);
    }

    #[test]
    fn malloc_returns_redzone_offset_pointers() {
        let mut a = LowFatAllocator::new();
        let p = a.malloc(20);
        assert_ne!(p, 0);
        let b = base_of(p).unwrap();
        assert_eq!(p - b, REDZONE);
        assert!(!violates_redzone(p));
        assert!(violates_redzone(p - 1)); // inside the redzone
        assert!(violates_redzone(b));
    }

    #[test]
    fn base_and_size_from_pointer_bits_alone() {
        let mut a = LowFatAllocator::new();
        let p = a.malloc(100); // class 128
        assert_eq!(size_of_ptr(p), Some(128));
        // Interior pointers resolve to the same slot.
        assert_eq!(base_of(p + 50), base_of(p));
        // One past the slot end lands in the next slot.
        let b = base_of(p).unwrap();
        assert_eq!(base_of(b + 128), Some(b + 128));
    }

    #[test]
    fn overflow_into_next_slot_hits_its_redzone() {
        // The detection mechanism: writing past an object's slot end lands
        // in the *next* slot's redzone.
        let mut a = LowFatAllocator::new();
        let p = a.malloc(100); // 128-byte slot, 112 usable
        let slot_end = base_of(p).unwrap() + 128;
        for overflow in 0..REDZONE {
            assert!(
                violates_redzone(slot_end + overflow),
                "overflow byte {overflow} undetected"
            );
        }
    }

    #[test]
    fn distinct_classes_use_distinct_regions() {
        let mut a = LowFatAllocator::new();
        let p32 = a.malloc(10);
        let p128 = a.malloc(100);
        assert_ne!(region_of(p32), region_of(p128));
        assert_eq!(size_of_ptr(p32), Some(32));
        assert_eq!(size_of_ptr(p128), Some(128));
    }

    #[test]
    fn non_lowfat_pointers_never_violate() {
        assert!(!violates_redzone(0));
        assert!(!violates_redzone(0x400000));
        assert!(!violates_redzone(REGION_BASE - 1));
        assert!(!violates_redzone(REGION_BASE + NUM_CLASSES as u64 * REGION_SIZE));
    }

    #[test]
    fn masks_match_sizes() {
        let m = LowFatAllocator::masks();
        assert_eq!(m[0], 15);
        assert_eq!(m[1], 31);
        assert_eq!(m[NUM_CLASSES - 1], (MIN_CLASS << (NUM_CLASSES - 1)) - 1);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = LowFatAllocator::new();
        let mut slots = std::collections::HashSet::new();
        for size in [1u64, 16, 17, 100, 1000, 5000] {
            for _ in 0..10 {
                let p = a.malloc(size);
                assert_ne!(p, 0);
                assert!(slots.insert(base_of(p).unwrap()), "slot reuse");
            }
        }
        assert_eq!(a.allocs, 60);
    }
}
