//! The redzone-check runtime as real x86-64 guest code.
//!
//! Every instrumented heap-write trampoline does
//! `lea <operand>, %rdi; call check_fn` (see
//! `e9patch::Template::CheckCall`). The check function implements
//!
//! ```text
//! if region(p) is a low-fat region and (p & (size-1)) < 16 {
//!     violations += 1;
//! }
//! ```
//!
//! entirely with guest instructions (two table lookups and a mask — no
//! division, because size classes are powers of two). It preserves every
//! register except `%rax`/`%rdi` (saved by the trampoline) and clobbers
//! flags (saved by the trampoline's `pushfq`/`popfq`).

use crate::{LowFatAllocator, NUM_CLASSES, REDZONE, REGION_BASE};
use e9x86::asm::{Asm, Mem};
use e9x86::insn::Cond;
use e9x86::reg::{Reg, Width};

/// The assembled runtime: one executable blob and one writable data blob.
#[derive(Debug, Clone)]
pub struct LowFatRuntime {
    /// Address of the check function (pass to
    /// `e9patch::Template::CheckCall`).
    pub check_fn: u64,
    /// Address of the 64-bit violation counter.
    pub violations_addr: u64,
    /// Executable code (map at `code_vaddr`).
    pub code: Vec<u8>,
    /// Data: masks table then counter (map writable at `data_vaddr`).
    pub data: Vec<u8>,
    /// Where `code` must be mapped.
    pub code_vaddr: u64,
    /// Where `data` must be mapped.
    pub data_vaddr: u64,
}

/// Assemble the runtime for the given load addresses.
pub fn build(code_vaddr: u64, data_vaddr: u64) -> LowFatRuntime {
    let masks_addr = data_vaddr;
    let violations_addr = data_vaddr + (NUM_CLASSES as u64) * 8;

    let mut a = Asm::new(code_vaddr);
    let ok = a.fresh_label();
    // rdi = p (argument). Scratch: rax, rdi free; rcx/rdx callee-saved here.
    a.push_r(Reg::Rcx);
    a.push_r(Reg::Rdx);
    // rcx = (p - REGION_BASE) >> 32  — the region index.
    a.mov_rr(Width::Q, Reg::Rax, Reg::Rdi);
    a.mov_ri64(Reg::Rdx, REGION_BASE as i64);
    a.sub_rr(Width::Q, Reg::Rax, Reg::Rdx);
    a.mov_rr(Width::Q, Reg::Rcx, Reg::Rax);
    a.shr_ri(Width::Q, Reg::Rcx, 32);
    a.cmp_ri(Width::Q, Reg::Rcx, NUM_CLASSES as i32);
    a.jcc(Cond::Ae, ok); // not a low-fat pointer
    // rdx = masks[region]; rax = p & mask (offset within the slot).
    a.mov_ri64(Reg::Rdx, masks_addr as i64);
    a.mov_rm(Width::Q, Reg::Rdx, Mem::base_index(Reg::Rdx, Reg::Rcx, 8, 0));
    a.mov_rr(Width::Q, Reg::Rax, Reg::Rdi);
    a.and_rr(Width::Q, Reg::Rax, Reg::Rdx);
    a.cmp_ri(Width::Q, Reg::Rax, REDZONE as i32);
    a.jcc(Cond::Ae, ok); // p − base(p) ≥ 16: fine
    // Violation: bump the counter.
    a.mov_ri64(Reg::Rdx, violations_addr as i64);
    a.inc_m(Width::Q, Mem::base(Reg::Rdx));
    a.bind(ok);
    a.pop_r(Reg::Rdx);
    a.pop_r(Reg::Rcx);
    a.ret();
    let code = a.finish().expect("runtime assembly");

    let mut data = Vec::with_capacity((NUM_CLASSES + 1) * 8);
    for m in LowFatAllocator::masks() {
        data.extend_from_slice(&m.to_le_bytes());
    }
    data.extend_from_slice(&0u64.to_le_bytes()); // violations counter

    LowFatRuntime {
        check_fn: code_vaddr,
        violations_addr,
        code,
        data,
        code_vaddr,
        data_vaddr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violates_redzone;
    use e9vm::{load_elf, HeapAllocator, Vm};

    /// Drive the real x86 check function in the emulator for pointer `p`
    /// and return the violation count afterwards.
    fn run_check(pointers: &[u64]) -> u64 {
        let code_vaddr = 0x10400000u64;
        let data_vaddr = 0x10500000u64;
        let rt = build(code_vaddr, data_vaddr);

        // Caller: call check for each pointer, then exit(0).
        let mut a = Asm::new(0x401000);
        for &p in pointers {
            a.mov_ri64(Reg::Rdi, p as i64);
            a.mov_ri64(Reg::Rax, rt.check_fn as i64);
            a.call_ind_r(Reg::Rax);
        }
        a.mov_ri32(Reg::Rax, 60);
        a.mov_ri32(Reg::Rdi, 0);
        a.syscall();
        let main = a.finish().unwrap();

        let mut b = e9elf::build::ElfBuilder::exec(0x400000);
        b.text(main, 0x401000);
        b.section(".lfcode", rt.code.clone(), code_vaddr, true, false);
        b.section(".lfdata", rt.data.clone(), data_vaddr, false, true);
        b.entry(0x401000);

        let mut vm = Vm::new();
        load_elf(&mut vm, &b.build()).unwrap();
        vm.run(1_000_000).unwrap();
        vm.mem.read_le(rt.violations_addr, 8).unwrap()
    }

    #[test]
    fn check_passes_clean_pointers() {
        let mut alloc = LowFatAllocator::new();
        let p = alloc.malloc(100);
        assert_eq!(run_check(&[p, p + 50, 0x400000, 0, u64::MAX]), 0);
    }

    #[test]
    fn check_catches_redzone_writes() {
        let mut alloc = LowFatAllocator::new();
        let p = alloc.malloc(100);
        let base = crate::base_of(p).unwrap();
        assert_eq!(run_check(&[base, base + 15, p - 1]), 3);
    }

    #[test]
    fn check_catches_overflow_into_next_slot() {
        let mut alloc = LowFatAllocator::new();
        let p = alloc.malloc(100); // 128-byte slot
        let slot_end = crate::base_of(p).unwrap() + 128;
        assert_eq!(run_check(&[slot_end]), 1);
    }

    #[test]
    fn x86_check_agrees_with_rust_model() {
        // Differential test: the guest code and the Rust oracle must agree
        // across a spread of pointers.
        let mut alloc = LowFatAllocator::new();
        let mut ptrs = vec![0u64, 0x400000, REGION_BASE - 1, u64::MAX];
        for size in [1u64, 20, 100, 1000, 100_000] {
            let p = alloc.malloc(size);
            let b = crate::base_of(p).unwrap();
            ptrs.extend([p, b, b + 1, b + 15, b + 16, p + size]);
        }
        let expected: u64 = ptrs.iter().map(|&p| violates_redzone(p) as u64).sum();
        assert_eq!(run_check(&ptrs), expected);
    }

    #[test]
    fn check_preserves_callee_registers() {
        let code_vaddr = 0x10400000u64;
        let data_vaddr = 0x10500000u64;
        let rt = build(code_vaddr, data_vaddr);
        let mut a = Asm::new(0x401000);
        a.mov_ri64(Reg::Rcx, 0x1111_2222);
        a.mov_ri64(Reg::Rdx, 0x3333_4444);
        a.mov_ri64(Reg::Rdi, REGION_BASE as i64); // a violating pointer
        a.mov_ri64(Reg::Rax, rt.check_fn as i64);
        a.call_ind_r(Reg::Rax);
        // exit(rcx == 0x11112222 && rdx == 0x33334444 ? 7 : 1)
        let bad = a.fresh_label();
        a.cmp_ri(Width::Q, Reg::Rcx, 0x1111_2222);
        a.jcc(Cond::Ne, bad);
        a.cmp_ri(Width::Q, Reg::Rdx, 0x3333_4444);
        a.jcc(Cond::Ne, bad);
        a.mov_ri32(Reg::Rdi, 7);
        a.mov_ri32(Reg::Rax, 60);
        a.syscall();
        a.bind(bad);
        a.mov_ri32(Reg::Rdi, 1);
        a.mov_ri32(Reg::Rax, 60);
        a.syscall();
        let main = a.finish().unwrap();
        let mut b = e9elf::build::ElfBuilder::exec(0x400000);
        b.text(main, 0x401000);
        b.section(".lfcode", rt.code.clone(), code_vaddr, true, false);
        b.section(".lfdata", rt.data.clone(), data_vaddr, false, true);
        b.entry(0x401000);
        let r = e9vm::run_binary(&b.build(), 100_000).unwrap();
        assert_eq!(r.exit_code, 7);
    }
}
