//! Injected loader (§5.1).
//!
//! The patched binary's trampoline blocks are appended to the file but are
//! *not* ordinary `PT_LOAD` segments — one physical block may need to be
//! mapped at many virtual addresses (physical page grouping). E9Patch
//! solves this by replacing the entry point with a small loader that
//! `mmap`s each (virtual base ← file extent) pair before tail-jumping to
//! the real entry point. We emit the same thing: real x86-64 code driving
//! `SYS_mmap` over an embedded mapping table.
//!
//! The file descriptor of the binary itself is assumed to be available as
//! fd [`SELF_FD`] (the emulator pre-opens it; real E9Patch opens
//! `/proc/self/exe` with a handful of extra syscalls — a substitution
//! documented in DESIGN.md).

use e9x86::asm::{Asm, Mem};
use e9x86::insn::Cond;
use e9x86::reg::{Reg, Width};

/// File descriptor the loader uses to map the binary's own file.
pub const SELF_FD: u32 = 100;

/// `SYS_mmap` number on x86-64 Linux.
pub const SYS_MMAP: u32 = 9;

/// `PROT_READ | PROT_EXEC`.
pub const PROT_READ_EXEC: u32 = 0x5;
/// `MAP_PRIVATE | MAP_FIXED`.
pub const MAP_PRIVATE_FIXED: u32 = 0x12;

/// One loader mapping: map `len` bytes of the file at `file_off` to
/// virtual address `vaddr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// Page-aligned virtual destination.
    pub vaddr: u64,
    /// Page-aligned file offset of the (merged) physical block.
    pub file_off: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Emit the loader: mapping loop + embedded table + tail jump to
/// `orig_entry`. The code is assembled for absolute address `base`.
///
/// Register use is unconstrained: the System-V ABI leaves every register
/// except `%rsp` undefined at the ELF entry point.
///
/// # Panics
///
/// Panics on internal assembler failure (label misuse), which would be a
/// bug, not an input condition.
pub fn emit_loader(base: u64, orig_entry: u64, mappings: &[Mapping]) -> Vec<u8> {
    let mut a = Asm::new(base);
    let table = a.fresh_label();
    let top = a.fresh_label();
    let done = a.fresh_label();

    a.lea(Reg::R14, Mem::rip(table));
    a.bind(top);
    a.mov_rm(Width::Q, Reg::Rdi, Mem::base_disp(Reg::R14, 0)); // vaddr
    a.test_rr(Width::Q, Reg::Rdi, Reg::Rdi);
    a.jcc(Cond::E, done);
    a.mov_rm(Width::Q, Reg::Rsi, Mem::base_disp(Reg::R14, 8)); // len
    a.mov_rm(Width::Q, Reg::R9, Mem::base_disp(Reg::R14, 16)); // file offset
    a.mov_ri32(Reg::Rdx, PROT_READ_EXEC);
    a.mov_ri32(Reg::R10, MAP_PRIVATE_FIXED);
    a.mov_ri32(Reg::R8, SELF_FD);
    a.mov_ri32(Reg::Rax, SYS_MMAP);
    a.syscall();
    a.add_ri(Width::Q, Reg::R14, 24);
    a.jmp(top);
    a.bind(done);
    // Transparency: scrub every register the loader touched so the
    // original entry point observes the same (zeroed) state it would in a
    // fresh emulator run. The entry target is parked on the stack and
    // consumed by `ret`, so even the jump register is clean.
    a.mov_ri64(Reg::Rax, orig_entry as i64);
    a.push_r(Reg::Rax);
    for r in [Reg::Rax, Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9, Reg::R10,
        Reg::R11, Reg::R14]
    {
        a.xor_rr(Width::D, r, r);
    }
    // ... and scrub the flags the xors just set (push $2; popfq loads the
    // all-clear RFLAGS image).
    a.raw(&[0x6A, 0x02]);
    a.popfq();
    a.ret();

    // Mapping table: (vaddr, len, file_off) triples, zero-terminated.
    while !a.len().is_multiple_of(8) {
        a.raw(&[0]);
    }
    a.bind(table);
    for m in mappings {
        a.dq(m.vaddr);
        a.dq(m.len);
        a.dq(m.file_off);
    }
    a.dq(0);
    a.dq(0);
    a.dq(0);

    a.finish().expect("loader assembly cannot fail")
}

/// Size in bytes [`emit_loader`] will produce for `n` mappings (needed to
/// reserve address space before the final base is known). The code part is
/// fixed-size; the table is `24 * (n + 1)` plus ≤ 7 bytes of alignment.
pub fn loader_size(n_mappings: usize) -> usize {
    LOADER_CODE_SIZE + 7 + 24 * (n_mappings + 1)
}

/// Fixed size of the loader's code portion (validated by a unit test).
const LOADER_CODE_SIZE: usize = 100;

#[cfg(test)]
mod tests {
    use super::*;
    use e9x86::decode::linear_sweep;

    #[test]
    fn loader_decodes_fully() {
        let maps = [
            Mapping {
                vaddr: 0x70000000,
                file_off: 0x5000,
                len: 0x1000,
            },
            Mapping {
                vaddr: 0x70010000,
                file_off: 0x5000,
                len: 0x1000,
            },
        ];
        let code = emit_loader(0x60000000, 0x401000, &maps);
        // The code part (before the table) must decode as a linear stream.
        let insns = linear_sweep(&code[..LOADER_CODE_SIZE], 0x60000000);
        let decoded: usize = insns.iter().map(|i| i.len()).sum();
        assert_eq!(decoded, LOADER_CODE_SIZE, "loader code has undecodable gaps");
        // It must contain exactly one syscall.
        assert_eq!(
            insns
                .iter()
                .filter(|i| i.kind == e9x86::Kind::Syscall)
                .count(),
            1
        );
    }

    #[test]
    fn code_size_constant_is_accurate() {
        let empty = emit_loader(0x60000000, 0x401000, &[]);
        // code + padding + terminator triple.
        assert!(empty.len() >= LOADER_CODE_SIZE + 24);
        // Table starts 8-aligned right after code: locate the terminator.
        let table_off = (LOADER_CODE_SIZE + 7) & !7;
        assert_eq!(&empty[table_off..table_off + 24], &[0u8; 24]);
    }

    #[test]
    fn size_estimate_is_an_upper_bound() {
        for n in [0usize, 1, 5, 100] {
            let maps: Vec<Mapping> = (0..n)
                .map(|i| Mapping {
                    vaddr: 0x70000000 + i as u64 * 0x1000,
                    file_off: 0x5000,
                    len: 0x1000,
                })
                .collect();
            let code = emit_loader(0x60000000, 0x401000, &maps);
            assert!(code.len() <= loader_size(n), "n={n}");
        }
    }

    #[test]
    fn table_contents() {
        let maps = [Mapping {
            vaddr: 0xAAAA000,
            file_off: 0xBBB000,
            len: 0x2000,
        }];
        let code = emit_loader(0x60000000, 0x401000, &maps);
        let table_off = (LOADER_CODE_SIZE + 7) & !7;
        let q = |i: usize| {
            u64::from_le_bytes(code[table_off + i * 8..table_off + (i + 1) * 8].try_into().unwrap())
        };
        assert_eq!(q(0), 0xAAAA000);
        assert_eq!(q(1), 0x2000);
        assert_eq!(q(2), 0xBBB000);
        assert_eq!(q(3), 0);
    }
}
