//! Virtual-address-space bookkeeping for trampoline placement.
//!
//! Instruction punning constrains where a trampoline may live: the punned
//! `rel32`'s high bytes are fixed by successor-instruction bytes, leaving a
//! window of `256^f` candidate addresses (§2.1.3). The allocator must find
//! free space *inside that window* amongst the binary's own segments, guard
//! regions and previously placed trampolines.
//!
//! The model reserves:
//!
//! * the null/low guard (`0 .. 0x10000`) — jumps that pun to near-zero
//!   offsets are invalid, exactly the failing case in the paper's §2.1.3
//!   example;
//! * everything at and above the 47-bit userspace ceiling — "negative"
//!   punned offsets from a low (non-PIE) text segment wrap below zero and
//!   are likewise invalid;
//! * every `PT_LOAD` segment of the input binary (plus a guard page), which
//!   is how large `.bss` programs (gamess, zeusmp) starve the allocator —
//!   the paper's limitation **L1**.

use std::collections::BTreeMap;

/// Lowest usable address (null-page guard).
pub const MIN_ADDR: u64 = 0x10000;
/// One past the highest usable address (47-bit userspace, minus a guard).
pub const MAX_ADDR: u64 = 0x7FFF_FFFF_E000;

/// An inclusive-exclusive interval of candidate target addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First candidate address.
    pub lo: u64,
    /// One past the last candidate address.
    pub hi: u64,
}

impl Window {
    /// The full usable address space.
    pub fn all() -> Window {
        Window {
            lo: MIN_ADDR,
            hi: MAX_ADDR,
        }
    }

    /// Construct from possibly-out-of-range signed bounds, clamping to the
    /// usable space. Returns `None` if the clamped window is empty.
    pub fn from_i128(lo: i128, hi: i128) -> Option<Window> {
        let lo = lo.max(MIN_ADDR as i128);
        let hi = hi.min(MAX_ADDR as i128);
        if lo >= hi {
            None
        } else {
            Some(Window {
                lo: lo as u64,
                hi: hi as u64,
            })
        }
    }

    /// Intersection of two windows, if non-empty.
    pub fn intersect(self, other: Window) -> Option<Window> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo >= hi {
            None
        } else {
            Some(Window { lo, hi })
        }
    }

    /// Window size in bytes.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether the window is empty (never true for a constructed window).
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// Chunk-ownership mask for parallel planning lanes.
///
/// The address space is divided into `chunk`-sized slices; lane `lane` of
/// `lanes` owns every slice whose index is congruent to `lane` modulo
/// `lanes`. Masked allocations are confined to owned chunks, so planners
/// running concurrently on different lanes can never hand out overlapping
/// trampoline ranges — without sharing any allocator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeMask {
    chunk: u64,
    lane: u64,
    lanes: u64,
}

impl StripeMask {
    /// Mask for `lane` (of `lanes`) with the given chunk size.
    pub fn new(chunk: u64, lane: u64, lanes: u64) -> StripeMask {
        assert!(chunk >= 1 && lanes >= 1 && lane < lanes);
        StripeMask { chunk, lane, lanes }
    }

    /// The stripe chunk size in bytes.
    pub fn chunk(&self) -> u64 {
        self.chunk
    }

    /// Does this lane own the chunk containing `addr`?
    pub fn owns(&self, addr: u64) -> bool {
        (addr / self.chunk) % self.lanes == self.lane
    }

    /// Smallest window length guaranteed to contain a whole owned chunk
    /// (windows at least this wide always succeed under masking whenever
    /// an unmasked allocation into a free region would).
    pub fn wide_min(&self) -> u64 {
        (self.lanes + 1) * self.chunk
    }

    /// End of the chunk containing `addr`.
    fn chunk_end(&self, addr: u64) -> u64 {
        (addr / self.chunk).saturating_add(1).saturating_mul(self.chunk)
    }

    /// Start of the nearest owned chunk strictly after the chunk
    /// containing `addr`.
    fn next_owned_chunk(&self, addr: u64) -> Option<u64> {
        let idx = addr / self.chunk;
        let cur = idx % self.lanes;
        let step = if cur == self.lane {
            self.lanes
        } else {
            (self.lane + self.lanes - cur) % self.lanes
        };
        idx.checked_add(step)?.checked_mul(self.chunk)
    }

    /// Highest start of a `size`-byte range inside the nearest owned chunk
    /// strictly before the chunk containing `addr` (requires
    /// `size <= chunk`; `None` when no owned chunk remains below).
    fn prev_owned_top(&self, addr: u64, size: u64) -> Option<u64> {
        let idx = addr / self.chunk;
        let cur = idx % self.lanes;
        let back = (cur + self.lanes - self.lane) % self.lanes;
        let back = if back == 0 { self.lanes } else { back };
        let owned = idx.checked_sub(back)?;
        (owned.checked_add(1)?.checked_mul(self.chunk)?).checked_sub(size)
    }
}

/// First-fit interval allocator over the userspace address range.
///
/// Occupied intervals are kept coalesced in a `BTreeMap` keyed by start
/// address. Free space is the complement.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    /// start → end of occupied intervals (disjoint, non-adjacent).
    occupied: BTreeMap<u64, u64>,
}

impl AddressSpace {
    /// Empty address space (only the implicit guards are excluded, via
    /// [`Window`] clamping).
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// Mark `[start, end)` occupied (idempotent; merges with neighbours).
    pub fn reserve(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;
        // Absorb any overlapping or adjacent intervals.
        let overlapping: Vec<u64> = self
            .occupied
            .range(..=end)
            .rev()
            .take_while(|(_, &e)| e >= new_start)
            .filter(|(&s, &e)| e >= start && s <= end)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.occupied.remove(&s).unwrap();
            new_start = new_start.min(s);
            new_end = new_end.max(e);
        }
        self.occupied.insert(new_start, new_end);
    }

    /// Release `[start, end)` (used to roll back tentative tactic steps).
    pub fn free(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Collect intervals intersecting [start, end).
        let affected: Vec<(u64, u64)> = self
            .occupied
            .range(..end)
            .rev()
            .take_while(|(_, &e)| e > start)
            .map(|(&s, &e)| (s, e))
            .collect();
        for (s, e) in affected {
            self.occupied.remove(&s);
            if s < start {
                self.occupied.insert(s, start);
            }
            if e > end {
                self.occupied.insert(end, e);
            }
        }
    }

    /// Is `[start, end)` entirely free?
    pub fn is_free(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        // Any interval beginning before `end` that extends past `start`
        // overlaps.
        self.occupied
            .range(..end)
            .next_back()
            .is_none_or(|(_, &e)| e <= start)
    }

    /// Allocate `size` bytes with the given `align`, lowest-address-first,
    /// such that the allocation **starts** inside `window`. The body may
    /// extend past `window.hi` (the window constrains the jump target — the
    /// trampoline's first byte — not its extent).
    pub fn alloc_in(&mut self, window: Window, size: u64, align: u64) -> Option<u64> {
        if size == 0 {
            return None;
        }
        let align = align.max(1);
        // Checked rounding: a window or reservation hugging `u64::MAX`
        // must exhaust the search, not wrap (or panic the debug build).
        let mut cursor = window.lo.checked_next_multiple_of(align)?;
        while cursor < window.hi {
            let end = cursor.checked_add(size)?;
            if end > MAX_ADDR {
                return None;
            }
            // Find the last occupied interval beginning before `end`.
            match self.occupied.range(..end).next_back().map(|(&s, &e)| (s, e)) {
                Some((_, e)) if e > cursor => {
                    // Conflict: skip past it.
                    cursor = e.checked_next_multiple_of(align)?;
                }
                _ => {
                    self.reserve(cursor, end);
                    return Some(cursor);
                }
            }
        }
        None
    }

    /// Like [`AddressSpace::alloc_in`], but highest-address-first —
    /// scatters trampolines toward window tops instead of packing them low
    /// (an ablation knob for the fragmentation experiments).
    pub fn alloc_in_high(&mut self, window: Window, size: u64, align: u64) -> Option<u64> {
        if size == 0 || window.is_empty() {
            return None;
        }
        let align = align.max(1);
        // Highest aligned start strictly inside the window (`hi >= 1`
        // because the window is non-empty).
        let mut cursor = (window.hi - 1) / align * align;
        loop {
            if cursor < window.lo {
                return None;
            }
            let end = cursor.checked_add(size)?;
            if end > MAX_ADDR {
                // Step below the ceiling; `size` larger than the whole
                // space exhausts the search rather than wrapping.
                cursor = MAX_ADDR.checked_sub(size)? / align * align;
                continue;
            }
            match self.occupied.range(..end).next_back().map(|(&s, &e)| (s, e)) {
                Some((s, e)) if e > cursor => {
                    // Conflict: jump below the conflicting interval.
                    let next = s.checked_sub(size)?;
                    let next = next / align * align;
                    if next >= cursor {
                        return None;
                    }
                    cursor = next;
                }
                _ => {
                    self.reserve(cursor, end);
                    return Some(cursor);
                }
            }
        }
    }

    /// Allocate exactly at `addr` (the `f = 0` pun case: a single valid
    /// trampoline location, as in the paper's Figure 1 T1(b)).
    pub fn alloc_at(&mut self, addr: u64, size: u64) -> bool {
        // Checked end arithmetic: `addr + size` near `u64::MAX` must
        // report "does not fit", not wrap (or panic the debug build).
        let Some(end) = addr.checked_add(size) else {
            return false;
        };
        if addr < MIN_ADDR || end > MAX_ADDR || !self.is_free(addr, end) {
            return false;
        }
        self.reserve(addr, end);
        true
    }

    /// Like [`AddressSpace::alloc_in`], but confined to chunks owned by
    /// `mask` (parallel lanes). Requires `size <= mask.chunk()`: a masked
    /// allocation never straddles a chunk boundary, so distinct lanes are
    /// collision-free by construction.
    pub fn alloc_in_masked(
        &mut self,
        window: Window,
        size: u64,
        align: u64,
        mask: &StripeMask,
    ) -> Option<u64> {
        if size == 0 || size > mask.chunk() {
            return None;
        }
        let align = align.max(1);
        let mut cursor = window.lo.checked_next_multiple_of(align)?;
        while cursor < window.hi {
            if !mask.owns(cursor) {
                cursor = mask.next_owned_chunk(cursor)?.checked_next_multiple_of(align)?;
                continue;
            }
            let end = cursor.checked_add(size)?;
            if end > mask.chunk_end(cursor) {
                // No room left in this owned chunk: move to the next one.
                cursor = mask.next_owned_chunk(cursor)?.checked_next_multiple_of(align)?;
                continue;
            }
            if end > MAX_ADDR {
                return None;
            }
            match self.occupied.range(..end).next_back().map(|(&s, &e)| (s, e)) {
                Some((_, e)) if e > cursor => {
                    cursor = e.checked_next_multiple_of(align)?;
                }
                _ => {
                    self.reserve(cursor, end);
                    return Some(cursor);
                }
            }
        }
        None
    }

    /// Like [`AddressSpace::alloc_in_high`], but confined to chunks owned
    /// by `mask` (see [`AddressSpace::alloc_in_masked`]).
    pub fn alloc_in_high_masked(
        &mut self,
        window: Window,
        size: u64,
        align: u64,
        mask: &StripeMask,
    ) -> Option<u64> {
        if size == 0 || size > mask.chunk() || window.is_empty() {
            return None;
        }
        let align = align.max(1);
        let mut cursor = (window.hi - 1) / align * align;
        loop {
            if cursor < window.lo {
                return None;
            }
            if !mask.owns(cursor) {
                cursor = mask.prev_owned_top(cursor, size)? / align * align;
                continue;
            }
            let end = cursor.checked_add(size)?;
            if end > mask.chunk_end(cursor) {
                // Straddles the chunk boundary: slide down inside it
                // (`size <= chunk`, so the new start stays in the chunk or
                // falls through to the ownership check above).
                cursor = (mask.chunk_end(cursor).checked_sub(size)?) / align * align;
                continue;
            }
            if end > MAX_ADDR {
                cursor = MAX_ADDR.checked_sub(size)? / align * align;
                continue;
            }
            match self.occupied.range(..end).next_back().map(|(&s, &e)| (s, e)) {
                Some((s, e)) if e > cursor => {
                    let next = s.checked_sub(size)? / align * align;
                    if next >= cursor {
                        return None;
                    }
                    cursor = next;
                }
                _ => {
                    self.reserve(cursor, end);
                    return Some(cursor);
                }
            }
        }
    }

    /// Total occupied bytes (diagnostics).
    pub fn occupied_bytes(&self) -> u64 {
        self.occupied.iter().map(|(s, e)| e - s).sum()
    }

    /// Number of disjoint occupied intervals (diagnostics).
    pub fn fragment_count(&self) -> usize {
        self.occupied.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_clamps_negative() {
        // A non-PIE punned jump whose MSB is set targets "negative"
        // addresses — the §2.1.3 invalid case.
        assert_eq!(Window::from_i128(-0x8000_0000, -0x1000), None);
        let w = Window::from_i128(-0x1000, 0x20000).unwrap();
        assert_eq!(w.lo, MIN_ADDR);
    }

    #[test]
    fn window_clamps_kernel() {
        let w = Window::from_i128(0x7FFF_FFFF_0000, 0x9000_0000_0000).unwrap();
        assert_eq!(w.hi, MAX_ADDR);
    }

    #[test]
    fn reserve_and_query() {
        let mut a = AddressSpace::new();
        a.reserve(0x1000, 0x2000);
        assert!(!a.is_free(0x1800, 0x1900));
        assert!(a.is_free(0x2000, 0x3000));
        assert!(!a.is_free(0x0FFF, 0x1001));
    }

    #[test]
    fn reserve_merges() {
        let mut a = AddressSpace::new();
        a.reserve(0x1000, 0x2000);
        a.reserve(0x2000, 0x3000);
        a.reserve(0x1800, 0x2800);
        assert_eq!(a.fragment_count(), 1);
        assert_eq!(a.occupied_bytes(), 0x2000);
    }

    #[test]
    fn free_splits() {
        let mut a = AddressSpace::new();
        a.reserve(0x1000, 0x4000);
        a.free(0x2000, 0x3000);
        assert!(a.is_free(0x2000, 0x3000));
        assert!(!a.is_free(0x1FFF, 0x2000));
        assert!(!a.is_free(0x3000, 0x3001));
        assert_eq!(a.fragment_count(), 2);
    }

    #[test]
    fn alloc_first_fit_low() {
        let mut a = AddressSpace::new();
        let w = Window {
            lo: 0x10000,
            hi: 0x20000,
        };
        let x = a.alloc_in(w, 0x100, 1).unwrap();
        assert_eq!(x, 0x10000);
        let y = a.alloc_in(w, 0x100, 1).unwrap();
        assert_eq!(y, 0x10100);
    }

    #[test]
    fn alloc_skips_reservations() {
        let mut a = AddressSpace::new();
        a.reserve(0x10000, 0x18000);
        let w = Window {
            lo: 0x10000,
            hi: 0x20000,
        };
        let x = a.alloc_in(w, 0x100, 1).unwrap();
        assert_eq!(x, 0x18000);
    }

    #[test]
    fn alloc_respects_alignment() {
        let mut a = AddressSpace::new();
        a.reserve(0x10000, 0x10001);
        let w = Window {
            lo: 0x10000,
            hi: 0x20000,
        };
        let x = a.alloc_in(w, 0x10, 0x1000).unwrap();
        assert_eq!(x, 0x11000);
    }

    #[test]
    fn alloc_fails_when_window_full() {
        let mut a = AddressSpace::new();
        a.reserve(0x10000, 0x20000);
        let w = Window {
            lo: 0x10000,
            hi: 0x20000,
        };
        assert_eq!(a.alloc_in(w, 1, 1), None);
    }

    #[test]
    fn alloc_exact_address() {
        let mut a = AddressSpace::new();
        assert!(a.alloc_at(0x30000, 0x20));
        assert!(!a.alloc_at(0x30010, 0x20)); // collides
        assert!(!a.alloc_at(0x1000, 8)); // below guard
    }

    #[test]
    fn rollback_via_free() {
        let mut a = AddressSpace::new();
        let w = Window::all();
        let x = a.alloc_in(w, 64, 1).unwrap();
        a.free(x, x + 64);
        let y = a.alloc_in(w, 64, 1).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn alloc_high_takes_window_top() {
        let mut a = AddressSpace::new();
        let w = Window {
            lo: 0x10000,
            hi: 0x20000,
        };
        let x = a.alloc_in_high(w, 0x100, 1).unwrap();
        assert_eq!(x, 0x1FFFF); // start inside the window, body beyond
        let y = a.alloc_in_high(w, 0x100, 1).unwrap();
        assert!(y < x);
        assert!(a.is_free(0x10000, 0x1000)); // bottom untouched
    }

    #[test]
    fn alloc_high_skips_reservations() {
        let mut a = AddressSpace::new();
        a.reserve(0x18000, 0x20100);
        let w = Window {
            lo: 0x10000,
            hi: 0x20000,
        };
        let x = a.alloc_in_high(w, 0x100, 1).unwrap();
        assert_eq!(x, 0x18000 - 0x100);
    }

    #[test]
    fn alloc_high_exhausts_cleanly() {
        let mut a = AddressSpace::new();
        a.reserve(0x10000, 0x21000);
        let w = Window {
            lo: 0x10000,
            hi: 0x20000,
        };
        assert_eq!(a.alloc_in_high(w, 0x100, 1), None);
    }

    #[test]
    fn alloc_at_near_u64_max_does_not_overflow() {
        // Regression: `addr + size` used to wrap (panic in debug builds).
        let mut a = AddressSpace::new();
        assert!(!a.alloc_at(u64::MAX - 4, 16));
        assert!(!a.alloc_at(u64::MAX, 1));
    }

    #[test]
    fn alloc_in_high_oversized_request_does_not_underflow() {
        // Regression: `MAX_ADDR - size` used to wrap when size exceeded
        // the whole usable space (panic in debug builds).
        let mut a = AddressSpace::new();
        let w = Window {
            lo: MIN_ADDR,
            hi: u64::MAX,
        };
        assert_eq!(a.alloc_in_high(w, MAX_ADDR + 1, 1), None);
    }

    #[test]
    fn alloc_in_high_empty_window() {
        // Regression: `window.hi - 1` used to underflow for `hi == 0`.
        let mut a = AddressSpace::new();
        assert_eq!(a.alloc_in_high(Window { lo: 0, hi: 0 }, 1, 1), None);
    }

    #[test]
    fn stripe_ownership() {
        let m = StripeMask::new(0x1000, 2, 4);
        assert!(m.owns(0x2000));
        assert!(m.owns(0x2FFF));
        assert!(!m.owns(0x3000));
        assert!(m.owns(0x6000)); // chunk 6 ≡ 2 (mod 4)
        assert_eq!(m.wide_min(), 5 * 0x1000);
    }

    #[test]
    fn masked_alloc_stays_in_owned_chunks() {
        let mut a = AddressSpace::new();
        let m = StripeMask::new(0x1000, 1, 4);
        let w = Window {
            lo: 0x10000,
            hi: 0x20000,
        };
        for _ in 0..16 {
            let x = a.alloc_in_masked(w, 0x300, 1, &m).unwrap();
            assert!(m.owns(x) && m.owns(x + 0x2FF), "alloc at {x:#x}");
        }
    }

    #[test]
    fn masked_alloc_never_straddles_chunks() {
        let mut a = AddressSpace::new();
        let m = StripeMask::new(0x1000, 0, 2);
        let w = Window {
            lo: 0x10000,
            hi: 0x40000,
        };
        // 0xF00-byte allocations leave 0x100-byte tails the next
        // allocation must not straddle into the unowned neighbour chunk.
        for _ in 0..8 {
            let x = a.alloc_in_masked(w, 0xF00, 1, &m).unwrap();
            assert_eq!(x / 0x1000, (x + 0xEFF) / 0x1000);
            assert!(m.owns(x));
        }
    }

    #[test]
    fn masked_alloc_rejects_oversized() {
        let mut a = AddressSpace::new();
        let m = StripeMask::new(0x1000, 0, 2);
        assert_eq!(a.alloc_in_masked(Window::all(), 0x1001, 1, &m), None);
    }

    #[test]
    fn masked_lanes_are_disjoint() {
        // Two lanes allocating independently from clones of the same
        // space never produce overlapping ranges.
        let base = AddressSpace::new();
        let w = Window {
            lo: 0x10000,
            hi: 0x80000,
        };
        let mut got: Vec<(u64, u64)> = Vec::new();
        for lane in 0..4u64 {
            let mut a = base.clone();
            let m = StripeMask::new(0x1000, lane, 4);
            for _ in 0..8 {
                let x = a.alloc_in_masked(w, 0x700, 1, &m).unwrap();
                got.push((x, x + 0x700));
            }
        }
        got.sort_unstable();
        for pair in got.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlap: {pair:x?}");
        }
    }

    #[test]
    fn masked_high_takes_owned_top() {
        let mut a = AddressSpace::new();
        let m = StripeMask::new(0x1000, 1, 4);
        let w = Window {
            lo: 0x10000,
            hi: 0x20000,
        };
        let x = a.alloc_in_high_masked(w, 0x100, 1, &m).unwrap();
        assert!(m.owns(x) && m.owns(x + 0xFF));
        let y = a.alloc_in_high_masked(w, 0x100, 1, &m).unwrap();
        assert!(y < x && m.owns(y));
    }

    #[test]
    fn masked_wide_window_always_succeeds() {
        // A free window of at least wide_min() bytes must satisfy any
        // single-chunk-sized request on every lane.
        for lane in 0..8u64 {
            let mut a = AddressSpace::new();
            let m = StripeMask::new(0x1000, lane, 8);
            let w = Window {
                lo: 0x17000,
                hi: 0x17000 + m.wide_min(),
            };
            assert!(a.alloc_in_masked(w, 0x1000, 1, &m).is_some(), "lane {lane}");
            let mut b = AddressSpace::new();
            assert!(b.alloc_in_high_masked(w, 0x1000, 1, &m).is_some(), "lane {lane} (high)");
        }
    }

    #[test]
    fn alloc_tail_of_window() {
        let mut a = AddressSpace::new();
        a.reserve(0x10000, 0x1FF00);
        let w = Window {
            lo: 0x10000,
            hi: 0x20000,
        };
        let x = a.alloc_in(w, 0x100, 1).unwrap();
        assert_eq!(x, 0x1FF00);
        // Window now exactly full.
        assert_eq!(a.alloc_in(w, 1, 1), None);
    }
}
