//! The tactic engine: B1/B2/T1 punned jumps, T2 successor eviction, T3
//! neighbour eviction, with strategy S1 (reverse-order patching over a byte
//! lock map).
//!
//! The planner owns the in-place-patched image and mutates three pieces of
//! state as it commits tactics: the ELF byte image, the [`LockMap`], and
//! the trampoline [`AddressSpace`]. Tentative multi-step tactics (T3) are
//! computed against byte overlays and rolled back cleanly on failure.

use crate::layout::{AddressSpace, StripeMask, Window};
use crate::lock::LockMap;
use crate::pun::PunJump;
use crate::stats::{PatchStats, TacticKind};
use crate::trampoline::{self, BuildError, Template};
use e9elf::{Elf, PAGE_SIZE};
use e9x86::insn::{Insn, Kind};
use std::collections::BTreeMap;

/// A single patch request: divert the instruction at `addr` through a
/// trampoline built from `template`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchRequest {
    /// Address of the patch-location instruction.
    pub addr: u64,
    /// Trampoline payload.
    pub template: Template,
}

/// Which tactics the planner may use (the ablation knob for experiment E5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tactics {
    /// Padded jumps (§3.1).
    pub t1: bool,
    /// Successor eviction (§3.2).
    pub t2: bool,
    /// Neighbour eviction (§3.3).
    pub t3: bool,
}

impl Tactics {
    /// Everything enabled (the paper's default configuration).
    pub fn all() -> Tactics {
        Tactics {
            t1: true,
            t2: true,
            t3: true,
        }
    }

    /// Baseline B1/B2 only.
    pub fn base_only() -> Tactics {
        Tactics {
            t1: false,
            t2: false,
            t3: false,
        }
    }
}

/// Where within a pun window trampolines are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// First fit from the window bottom (packs trampolines densely — the
    /// default, and what E9Patch effectively does).
    #[default]
    FirstFitLow,
    /// First fit from the window top (scatters trampolines — an ablation
    /// for the fragmentation/grouping experiments).
    FirstFitHigh,
}

/// Rewriter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteConfig {
    /// Enabled tactic set.
    pub tactics: Tactics,
    /// Fall back to `int3` trap patching (B0) when every tactic fails.
    pub b0_fallback: bool,
    /// Physical page grouping granularity `M` in pages (§4).
    pub granularity: u64,
    /// Enable physical page grouping (disable for the naïve one-to-one
    /// ablation, experiment E4).
    pub grouping: bool,
    /// Trampoline placement policy within pun windows.
    pub alloc_policy: AllocPolicy,
    /// Parallel planning: `None` runs the sequential legacy planner;
    /// `Some(n)` runs the sharded pipeline (see [`crate::shard`]) with up
    /// to `n` worker threads. For a fixed input the sharded output is
    /// byte-identical for every `n >= 1`.
    pub jobs: Option<usize>,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            tactics: Tactics::all(),
            b0_fallback: false,
            granularity: 1,
            grouping: true,
            alloc_policy: AllocPolicy::default(),
            jobs: None,
        }
    }
}

/// Margin used when constraining trampoline placement so rel32 hops back to
/// the original code always encode (slack below the 2 GiB line covers the
/// trampoline body length).
const REACH: i128 = 0x7FFF_0000;

/// Per-site patching outcome (the structured form of a Table 1 row's
/// provenance; surfaced by `e9tool patch --report`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteReport {
    /// Patch-location address.
    pub addr: u64,
    /// Length of the original instruction.
    pub insn_len: u8,
    /// Tactic that succeeded (`None` = site left unpatched).
    pub tactic: Option<crate::stats::TacticKind>,
    /// Address of the patch trampoline, when one was placed.
    pub trampoline: Option<u64>,
}

/// The planner: processes patch requests highest-address-first.
#[derive(Debug)]
pub struct Planner<'a> {
    elf: Elf,
    insns: &'a BTreeMap<u64, Insn>,
    /// Byte lock state (S1).
    pub locks: LockMap,
    /// Trampoline address-space allocator.
    pub space: AddressSpace,
    /// Placed trampolines: `(vaddr, bytes)`.
    pub trampolines: Vec<(u64, Vec<u8>)>,
    /// Outcome counters.
    pub stats: PatchStats,
    /// B0 trap registrations: `(site, trampoline)`.
    pub traps: Vec<(u64, u64)>,
    /// Per-site outcomes, in processing order.
    pub reports: Vec<SiteReport>,
    cfg: RewriteConfig,
    /// Lane-ownership mask for parallel planning: wide-window allocations
    /// are confined to owned stripe chunks (`None` = unrestricted).
    mask: Option<StripeMask>,
    /// In-place image writes `(addr, bytes)`, recorded when planning a
    /// shard whose writes must later be replayed onto the master image.
    journal: Option<Vec<(u64, Vec<u8>)>>,
}

impl<'a> Planner<'a> {
    /// The address space trampolines may use for `elf`: everything except
    /// the binary's own (guard-padded) load segments and the caller's
    /// extra `reserved` ranges, rounded out to block granularity.
    ///
    /// `reserved` lists extra `[start, end)` virtual ranges trampolines must
    /// avoid (instrumentation runtime segments, etc.).
    pub fn initial_space(elf: &Elf, cfg: &RewriteConfig, reserved: &[(u64, u64)]) -> AddressSpace {
        // Reservations are rounded out to *block* granularity (M pages):
        // the loader later maps whole blocks with MAP_FIXED, so no block
        // containing a trampoline may overlap existing segments.
        let bs = cfg.granularity.max(1) * PAGE_SIZE;
        let block_floor = |v: u64| v / bs * bs;
        let block_ceil = |v: u64| v.div_ceil(bs) * bs;
        let mut space = AddressSpace::new();
        for p in elf.load_segments() {
            let start = block_floor(e9elf::page_floor(p.p_vaddr).saturating_sub(PAGE_SIZE));
            let end = block_ceil(e9elf::page_ceil(p.p_vaddr + p.p_memsz) + PAGE_SIZE);
            space.reserve(start, end);
        }
        for &(s, e) in reserved {
            space.reserve(block_floor(s), block_ceil(e));
        }
        space
    }

    /// Create a planner over a parsed binary.
    ///
    /// `reserved` lists extra `[start, end)` virtual ranges trampolines must
    /// avoid (instrumentation runtime segments, etc.).
    pub fn new(
        elf: Elf,
        insns: &'a BTreeMap<u64, Insn>,
        cfg: RewriteConfig,
        reserved: &[(u64, u64)],
    ) -> Planner<'a> {
        let space = Self::initial_space(&elf, &cfg, reserved);
        Self::with_space(elf, insns, cfg, space, None)
    }

    /// Create a planner over a pre-built address space — the parallel
    /// pipeline's entry point: each shard gets a clone of the initial
    /// space plus its lane's stripe `mask`, and writes are journaled for
    /// replay onto the master image at merge time.
    pub fn with_space(
        elf: Elf,
        insns: &'a BTreeMap<u64, Insn>,
        cfg: RewriteConfig,
        space: AddressSpace,
        mask: Option<StripeMask>,
    ) -> Planner<'a> {
        Planner {
            elf,
            insns,
            locks: LockMap::new(),
            space,
            trampolines: Vec::new(),
            stats: PatchStats::default(),
            traps: Vec::new(),
            reports: Vec::new(),
            cfg,
            mask,
            journal: mask.map(|_| Vec::new()),
        }
    }

    /// Read up to `n` file-backed bytes starting at `addr` (shorter at a
    /// segment boundary).
    fn bytes_at(&self, addr: u64, n: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        for i in 0..n as u64 {
            match self.elf.slice_at(addr + i, 1) {
                Ok(b) => v.push(b[0]),
                Err(_) => break,
            }
        }
        v
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) {
        self.elf
            .write_at(addr, bytes)
            .expect("planner writes stay within file-backed segments");
        if let Some(journal) = &mut self.journal {
            journal.push((addr, bytes.to_vec()));
        }
    }

    /// Allocate trampoline space inside `window` per the configured
    /// placement policy.
    ///
    /// Under a lane mask, windows wide enough to be guaranteed an owned
    /// stripe chunk allocate masked (collision-free across lanes by
    /// construction); narrow windows — T1's `256^f` pun windows and exact
    /// `f = 0` addresses — cannot honour a stripe, so they allocate
    /// unmasked and the rare cross-lane collision is detected and repaired
    /// deterministically at merge time (see [`crate::shard`]).
    fn alloc(&mut self, window: Window, size: u64) -> Option<u64> {
        if let Some(mask) = self.mask {
            if window.len() >= mask.wide_min() && size <= mask.chunk() {
                return match self.cfg.alloc_policy {
                    AllocPolicy::FirstFitLow => {
                        self.space.alloc_in_masked(window, size, 1, &mask)
                    }
                    AllocPolicy::FirstFitHigh => {
                        self.space.alloc_in_high_masked(window, size, 1, &mask)
                    }
                };
            }
        }
        match self.cfg.alloc_policy {
            AllocPolicy::FirstFitLow => self.space.alloc_in(window, size, 1),
            AllocPolicy::FirstFitHigh => self.space.alloc_in_high(window, size, 1),
        }
    }

    /// Window around every address the trampoline must reach with rel32
    /// displacements; `None` if the targets are mutually unreachable.
    fn reach_window(insn: &Insn) -> Option<Window> {
        let mut targets: Vec<u64> = Vec::new();
        if !matches!(insn.kind, Kind::Ret | Kind::JmpRel8 | Kind::JmpRel32 | Kind::JmpInd) {
            targets.push(insn.end());
        }
        if let Some(t) = insn.branch_target() {
            targets.push(t);
        }
        if let Some(m) = insn.modrm {
            if let Some(mem) = m.mem {
                if mem.rip_relative {
                    targets.push(insn.end().wrapping_add(mem.disp as i64 as u64));
                }
            }
        }
        // Structurally panic-free bounds fold: an empty target set means
        // the trampoline is unconstrained (e.g. `ret`), and a non-empty
        // one yields `[max - REACH, min + REACH)` without any `unwrap`.
        let bounds = targets
            .iter()
            .fold(None, |acc: Option<(u64, u64)>, &t| match acc {
                None => Some((t, t)),
                Some((min, max)) => Some((min.min(t), max.max(t))),
            });
        match bounds {
            None => Some(Window::all()),
            Some((min, max)) => Window::from_i128(max as i128 - REACH, min as i128 + REACH),
        }
    }

    /// Try to place a punned jump at `jump_addr` (owning `writable` bytes,
    /// with `padding` prefix bytes) to a freshly allocated trampoline built
    /// by `build`. On success commits bytes + locks + the trampoline and
    /// returns the pun used.
    fn place_pun(
        &mut self,
        jump_addr: u64,
        writable: u8,
        padding: u8,
        size_ub: usize,
        reach: Window,
        build: &dyn Fn(u64) -> Result<Vec<u8>, BuildError>,
    ) -> Option<PunJump> {
        let img = self.bytes_at(jump_addr, padding as usize + 5);
        let pun = PunJump::new(&img, jump_addr, writable, padding)?;
        let (ws, we) = pun.written_range();
        if !self.locks.can_write(ws, we - ws) {
            return None;
        }
        let window = pun.target_window()?.intersect(reach)?;
        let tramp = self.alloc(window, size_ub as u64)?;
        match build(tramp) {
            Ok(bytes) => {
                debug_assert!(bytes.len() <= size_ub);
                // Return the reservation slack.
                self.space
                    .free(tramp + bytes.len() as u64, tramp + size_ub as u64);
                let jmp = pun.encode(tramp).expect("target inside pun window");
                self.write(jump_addr, &jmp);
                self.locks.lock_modified(ws, we - ws);
                let (ps, pe) = pun.punned_range();
                self.locks.lock_punned(ps, pe - ps);
                self.trampolines.push((tramp, bytes));
                Some(pun)
            }
            Err(_) => {
                self.space.free(tramp, tramp + size_ub as u64);
                None
            }
        }
    }

    /// B1/B2/T1 attempts over all paddings.
    fn try_pun_tactics(
        &mut self,
        insn: &Insn,
        template: &Template,
        reach: Window,
        size_ub: usize,
    ) -> Option<TacticKind> {
        let writable = insn.len() as u8;
        let max_pad = if self.cfg.tactics.t1 { writable } else { 1 };
        let template = template.clone();
        let insn_copy = *insn;
        for padding in 0..max_pad {
            if let Some(pun) = self.place_pun(
                insn.addr,
                writable,
                padding,
                size_ub,
                reach,
                &|t| trampoline::build(&template, &insn_copy, t),
            ) {
                return Some(if padding > 0 {
                    TacticKind::T1
                } else if pun.free >= 4 {
                    TacticKind::B1
                } else {
                    TacticKind::B2
                });
            }
        }
        None
    }

    /// T2: evict the successor instruction so the patch site's pun bytes
    /// change, then re-run the pun tactics.
    fn try_t2(
        &mut self,
        insn: &Insn,
        template: &Template,
        reach: Window,
        size_ub: usize,
    ) -> Option<TacticKind> {
        let succ = *self.insns.get(&insn.end())?;
        let s_reach = Self::reach_window(&succ)?;
        let s_ub = trampoline::evictee_max_size(&succ);
        let succ_copy = succ;
        let mut evicted = false;
        for padding in 0..succ.len() as u8 {
            if self
                .place_pun(succ.addr, succ.len() as u8, padding, s_ub, s_reach, &|t| {
                    trampoline::build_evictee(&succ_copy, t)
                })
                .is_some()
            {
                evicted = true;
                break;
            }
        }
        if !evicted {
            return None;
        }
        // The successor's bytes are now a jump; re-pun the patch site.
        self.try_pun_tactics(insn, template, reach, size_ub)
            .map(|_| TacticKind::T2)
    }

    /// T3: neighbour eviction with a `J_short → J_patch → trampoline`
    /// double jump (and `J_victim` to an evictee trampoline).
    fn try_t3(
        &mut self,
        insn: &Insn,
        template: &Template,
        reach: Window,
        size_ub: usize,
    ) -> bool {
        let addr = insn.addr;
        let len = insn.len() as u64;
        // Geometry of the short jump (S1 restricts rel8 to forward
        // offsets; single-byte patch sites get exactly one fixed target —
        // limitation L2).
        let (t_lo, t_hi, short_fixed) = if len >= 2 {
            if !self.locks.can_write(addr, 2) {
                return false;
            }
            (addr + 2, addr + 2 + 127, false)
        } else {
            if !self.locks.can_write(addr, 1) {
                return false;
            }
            let b = self.bytes_at(addr + 1, 1);
            let Some(&rel) = b.first() else { return false };
            if rel >= 0x80 {
                return false; // backward rel8 — disallowed by S1
            }
            let t = addr + 2 + rel as u64;
            (t, t, true)
        };
        let victims: Vec<Insn> = self
            .insns
            .range(addr + len..=t_hi)
            .map(|(_, v)| *v)
            .collect();
        for victim in victims {
            let v_len = victim.len() as u64;
            for j in 1..v_len {
                let t = victim.addr + j;
                if t < t_lo || t > t_hi {
                    continue;
                }
                if self
                    .try_t3_with(insn, template, reach, size_ub, &victim, j, short_fixed)
                    .is_some()
                {
                    return true;
                }
            }
        }
        false
    }

    #[allow(clippy::too_many_arguments)]
    fn try_t3_with(
        &mut self,
        insn: &Insn,
        template: &Template,
        reach: Window,
        size_ub: usize,
        victim: &Insn,
        j: u64,
        short_fixed: bool,
    ) -> Option<()> {
        let addr = insn.addr;
        let v_addr = victim.addr;
        let v_len = victim.len() as u64;
        let t = v_addr + j;

        // J_patch: punned jump written inside the victim at offset j.
        let img_t = self.bytes_at(t, 5);
        let jp = PunJump::new(&img_t, t, (v_len - j) as u8, 0)?;
        let (jp_ws, jp_we) = jp.written_range();
        if !self.locks.can_write(jp_ws, jp_we - jp_ws) {
            return None;
        }
        let jp_window = jp.target_window()?.intersect(reach)?;

        // J_victim: punned jump at the victim's first byte; its free rel32
        // bytes are the victim bytes before J_patch.
        let jv_write_len = 1 + (j - 1).min(4);
        if !self.locks.can_write(v_addr, jv_write_len) {
            return None;
        }
        let v_reach = Self::reach_window(victim)?;
        let v_ub = trampoline::evictee_max_size(victim);

        // Allocate + build the patch trampoline.
        let tramp = self.alloc(jp_window, size_ub as u64)?;
        let tramp_bytes = match trampoline::build(template, insn, tramp) {
            Ok(b) => b,
            Err(_) => {
                self.space.free(tramp, tramp + size_ub as u64);
                return None;
            }
        };
        let jp_bytes = jp.encode(tramp).expect("target inside pun window");

        // Overlay J_patch to compute J_victim's pun window.
        let mut img_v = self.bytes_at(v_addr, (j + 5) as usize);
        let roll_patch = |s: &mut Self| s.space.free(tramp, tramp + size_ub as u64);
        if img_v.len() < 5 {
            roll_patch(self);
            return None;
        }
        for (i, b) in jp_bytes.iter().enumerate() {
            let off = j as usize + i;
            if off < img_v.len() {
                img_v[off] = *b;
            }
        }
        let Some(jv) = PunJump::new(&img_v, v_addr, j.min(255) as u8, 0) else {
            roll_patch(self);
            return None;
        };
        let Some(jv_window) = jv.target_window().and_then(|w| w.intersect(v_reach)) else {
            roll_patch(self);
            return None;
        };
        let Some(evictee) = self.alloc(jv_window, v_ub as u64) else {
            roll_patch(self);
            return None;
        };
        let ev_bytes = match trampoline::build_evictee(victim, evictee) {
            Ok(b) => b,
            Err(_) => {
                self.space.free(evictee, evictee + v_ub as u64);
                roll_patch(self);
                return None;
            }
        };
        let jv_bytes = jv.encode(evictee).expect("target inside pun window");

        // --- Commit ---------------------------------------------------
        self.space
            .free(tramp + tramp_bytes.len() as u64, tramp + size_ub as u64);
        self.space
            .free(evictee + ev_bytes.len() as u64, evictee + v_ub as u64);

        self.write(t, &jp_bytes);
        let (jp_ws, jp_we) = jp.written_range();
        self.locks.lock_modified(jp_ws, jp_we - jp_ws);
        let (jp_ps, jp_pe) = jp.punned_range();
        self.locks.lock_punned(jp_ps, jp_pe - jp_ps);

        self.write(v_addr, &jv_bytes);
        let (jv_ws, jv_we) = jv.written_range();
        self.locks.lock_modified(jv_ws, jv_we - jv_ws);
        let (jv_ps, jv_pe) = jv.punned_range();
        self.locks.lock_punned(jv_ps, jv_pe - jv_ps);

        let rel8 = (t - (addr + 2)) as u8;
        if short_fixed {
            self.write(addr, &[e9x86::JMP_REL8_OPCODE]);
            self.locks.lock_modified(addr, 1);
            self.locks.lock_punned(addr + 1, 1);
        } else {
            self.write(addr, &[e9x86::JMP_REL8_OPCODE, rel8]);
            self.locks.lock_modified(addr, 2);
        }

        self.trampolines.push((tramp, tramp_bytes));
        self.trampolines.push((evictee, ev_bytes));
        Some(())
    }

    /// B0 fallback: `int3` at the site, dispatched by the runtime's trap
    /// handler to the trampoline.
    fn try_b0(&mut self, insn: &Insn, template: &Template, reach: Window, size_ub: usize) -> bool {
        if !self.locks.can_write(insn.addr, 1) {
            return false;
        }
        let Some(tramp) = self.alloc(reach, size_ub as u64) else {
            return false;
        };
        let bytes = match trampoline::build(template, insn, tramp) {
            Ok(b) => b,
            Err(_) => {
                self.space.free(tramp, tramp + size_ub as u64);
                return false;
            }
        };
        self.space
            .free(tramp + bytes.len() as u64, tramp + size_ub as u64);
        self.write(insn.addr, &[e9x86::INT3_OPCODE]);
        self.locks.lock_modified(insn.addr, 1);
        self.traps.push((insn.addr, tramp));
        self.trampolines.push((tramp, bytes));
        true
    }

    /// Patch one site, trying B1/B2 → T1 → T2 → T3 → (optional) B0 in
    /// order. Returns the tactic used, or `None` on failure (the site is
    /// left untouched and counted in the statistics).
    ///
    /// # Errors
    ///
    /// [`crate::Error::NoSuchInstruction`] if `addr` is not in the
    /// disassembly info; [`crate::Error::UnreachableTargets`] if the
    /// instruction's rel32 targets are so far apart that no trampoline
    /// address can reach them all (degenerate disassembly only — real
    /// instructions span well under the ±2 GiB reach).
    pub fn patch_site(
        &mut self,
        addr: u64,
        template: &Template,
    ) -> crate::error::Result<Option<TacticKind>> {
        let insn = *self
            .insns
            .get(&addr)
            .ok_or(crate::error::Error::NoSuchInstruction(addr))?;
        let Some(reach) = Self::reach_window(&insn) else {
            return Err(crate::error::Error::UnreachableTargets(addr));
        };

        let outcome = (|| {
            let size_ub = trampoline::max_size(template, &insn);
            if let Some(k) = self.try_pun_tactics(&insn, template, reach, size_ub) {
                return Some(k);
            }
            if self.cfg.tactics.t2 {
                if let Some(k) = self.try_t2(&insn, template, reach, size_ub) {
                    return Some(k);
                }
            }
            if self.cfg.tactics.t3 && self.try_t3(&insn, template, reach, size_ub) {
                return Some(TacticKind::T3);
            }
            if self.cfg.b0_fallback && self.try_b0(&insn, template, reach, size_ub) {
                return Some(TacticKind::B0);
            }
            None
        })();

        match outcome {
            Some(k) => self.stats.record(k),
            None => self.stats.record_failure(),
        }
        // The patch trampoline is the most recently placed one (T3 pushes
        // patch then evictee; T2 pushes evictee(s) then patch — in both
        // cases the relevant trampoline for the report is the one the site
        // jumps to, which for T3 is second-to-last).
        let trampoline = match outcome {
            None => None,
            Some(TacticKind::T3) => self
                .trampolines
                .len()
                .checked_sub(2)
                .map(|i| self.trampolines[i].0),
            Some(_) => self.trampolines.last().map(|t| t.0),
        };
        self.reports.push(SiteReport {
            addr,
            insn_len: insn.len() as u8,
            tactic: outcome,
            trampoline,
        });
        Ok(outcome)
    }

    /// Process a batch of requests in reverse address order (strategy S1).
    ///
    /// # Errors
    ///
    /// Fails on duplicate or unknown addresses; individual patch *failures*
    /// are recorded in [`Planner::stats`], not returned as errors.
    pub fn patch_all(&mut self, requests: &[PatchRequest]) -> crate::error::Result<()> {
        let mut sorted: Vec<&PatchRequest> = requests.iter().collect();
        sorted.sort_by_key(|r| std::cmp::Reverse(r.addr));
        for w in sorted.windows(2) {
            if w[0].addr == w[1].addr {
                return Err(crate::error::Error::DuplicatePatch(w[0].addr));
            }
        }
        for req in sorted {
            self.patch_site(req.addr, &req.template)?;
        }
        Ok(())
    }

    /// Decompose into the patched image and accumulated outputs.
    pub fn into_parts(self) -> PlannerParts {
        PlannerParts {
            elf: self.elf,
            trampolines: self.trampolines,
            stats: self.stats,
            traps: self.traps,
            space: self.space,
            reports: self.reports,
            journal: self.journal.unwrap_or_default(),
        }
    }
}

/// The planner's outputs (see [`Planner::into_parts`]).
#[derive(Debug)]
pub struct PlannerParts {
    /// In-place patched image.
    pub elf: Elf,
    /// Placed trampolines.
    pub trampolines: Vec<(u64, Vec<u8>)>,
    /// Outcome statistics.
    pub stats: PatchStats,
    /// B0 trap registrations.
    pub traps: Vec<(u64, u64)>,
    /// Remaining address-space state (for loader placement).
    pub space: AddressSpace,
    /// Per-site outcomes.
    pub reports: Vec<SiteReport>,
    /// In-place image writes, in commit order (empty unless the planner
    /// was journaling for a parallel shard; see [`Planner::with_space`]).
    pub journal: Vec<(u64, Vec<u8>)>,
}
