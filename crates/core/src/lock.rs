//! Byte lock state for reverse-order patching (strategy S1, §3.4).
//!
//! Punning "locks in" the byte values of overlapping instructions: once a
//! punned jump depends on a successor's bytes, those bytes must never change
//! again. The strategy tracks, per instruction byte:
//!
//! * **Modified** — the byte value was overwritten by a tactic;
//! * **Punned** — the byte was not overwritten but its value is read by a
//!   punned jump's `rel32` (or `rel8`) field;
//! * **Free** — neither (the default; absent from the map).
//!
//! Tactics may only *write* Free bytes. Punning may *read* bytes in any
//! state (a locked byte's value can no longer change, so reading it is
//! always safe).

use std::collections::HashMap;

/// Lock state of one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockState {
    /// Overwritten by a patch tactic.
    Modified,
    /// Value is load-bearing for a punned jump.
    Punned,
}

/// Sparse per-byte lock map.
#[derive(Debug, Clone, Default)]
pub struct LockMap {
    locks: HashMap<u64, LockState>,
}

impl LockMap {
    /// Empty lock map.
    pub fn new() -> LockMap {
        LockMap::default()
    }

    /// State of the byte at `addr` (`None` = Free).
    pub fn state(&self, addr: u64) -> Option<LockState> {
        self.locks.get(&addr).copied()
    }

    /// May `[addr, addr+len)` be overwritten?
    pub fn can_write(&self, addr: u64, len: u64) -> bool {
        (addr..addr + len).all(|a| !self.locks.contains_key(&a))
    }

    /// Mark `[addr, addr+len)` as Modified.
    ///
    /// Upgrades Punned bytes as well — callers must have checked
    /// [`LockMap::can_write`] first; this is enforced with a debug
    /// assertion.
    pub fn lock_modified(&mut self, addr: u64, len: u64) {
        for a in addr..addr + len {
            let prev = self.locks.insert(a, LockState::Modified);
            debug_assert!(
                prev.is_none(),
                "modifying an already-locked byte at {a:#x} ({prev:?})"
            );
        }
    }

    /// Mark `[addr, addr+len)` as Punned (no-op for already-locked bytes —
    /// their values are final either way).
    pub fn lock_punned(&mut self, addr: u64, len: u64) {
        for a in addr..addr + len {
            self.locks.entry(a).or_insert(LockState::Punned);
        }
    }

    /// Iterate over all locked bytes in unspecified order (diagnostics and
    /// shard-fence verification).
    pub fn iter(&self) -> impl Iterator<Item = (u64, LockState)> + '_ {
        self.locks.iter().map(|(&a, &s)| (a, s))
    }

    /// Number of locked bytes (diagnostics).
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether no byte is locked yet.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bytes_are_free() {
        let l = LockMap::new();
        assert!(l.can_write(0x1000, 100));
        assert_eq!(l.state(0x1000), None);
        assert!(l.is_empty());
    }

    #[test]
    fn modified_blocks_writes() {
        let mut l = LockMap::new();
        l.lock_modified(0x1000, 5);
        assert!(!l.can_write(0x1004, 1));
        assert!(l.can_write(0x1005, 1));
        assert_eq!(l.state(0x1002), Some(LockState::Modified));
    }

    #[test]
    fn punned_blocks_writes_too() {
        let mut l = LockMap::new();
        l.lock_punned(0x2000, 2);
        assert!(!l.can_write(0x2000, 1));
        assert_eq!(l.state(0x2001), Some(LockState::Punned));
    }

    #[test]
    fn punning_an_already_locked_byte_keeps_stronger_state() {
        let mut l = LockMap::new();
        l.lock_modified(0x3000, 1);
        l.lock_punned(0x3000, 1);
        assert_eq!(l.state(0x3000), Some(LockState::Modified));
    }

    #[test]
    fn punned_then_modified_interleaving() {
        // A pun locks successor bytes first; a later (lower-address) site
        // must see them as unwritable and may not upgrade them blindly.
        let mut l = LockMap::new();
        l.lock_punned(0x5000, 4);
        assert!(!l.can_write(0x5000, 4));
        assert!(!l.can_write(0x4FFE, 3)); // straddles the punned start
        assert!(l.can_write(0x4FFC, 4)); // ends exactly at the pun
        // Writes next to (not into) the punned range then coexist.
        l.lock_modified(0x4FFC, 4);
        assert_eq!(l.state(0x4FFF), Some(LockState::Modified));
        assert_eq!(l.state(0x5000), Some(LockState::Punned));
    }

    #[test]
    fn overlapping_can_write_ranges_at_boundary() {
        // Overlap queries at a shard-boundary-like split: every range that
        // shares ≥ 1 byte with a locked run is rejected, adjacent ones are
        // not, regardless of which side of the boundary they start on.
        let mut l = LockMap::new();
        l.lock_modified(0x8000, 2); // e.g. a J_short at a boundary site
        l.lock_punned(0x8002, 3);
        for (start, len, want) in [
            (0x7FFE, 2, true),   // entirely below
            (0x7FFF, 2, false),  // crosses into Modified
            (0x8000, 5, false),  // exactly the locked run
            (0x8001, 1, false),  // inside Modified
            (0x8004, 1, false),  // last Punned byte
            (0x8005, 4, true),   // entirely above
            (0x7FFF, 7, false),  // superset
        ] {
            assert_eq!(l.can_write(start, len), want, "can_write({start:#x}, {len})");
        }
    }

    #[test]
    fn iter_reports_every_locked_byte() {
        let mut l = LockMap::new();
        l.lock_modified(0x9000, 2);
        l.lock_punned(0x9005, 1);
        let mut got: Vec<(u64, LockState)> = l.iter().collect();
        got.sort_by_key(|(a, _)| *a);
        assert_eq!(
            got,
            vec![
                (0x9000, LockState::Modified),
                (0x9001, LockState::Modified),
                (0x9005, LockState::Punned),
            ]
        );
    }

    #[test]
    fn figure1_t3_lock_pattern() {
        // Paper §3.4: after T3 in Figure 1, bytes {0,1,7..=13} are locked
        // and byte 2 (the 0x03 of the old patch instruction) stays free.
        let base = 0x1000u64;
        let mut l = LockMap::new();
        l.lock_modified(base, 2); // J_short (eb 03)
        l.lock_modified(base + 7, 4); // J_victim + J_patch written bytes
        l.lock_punned(base + 11, 3); // pun tail into Ins4
        assert!(!l.can_write(base, 1));
        assert!(!l.can_write(base + 1, 1));
        assert!(l.can_write(base + 2, 1)); // still free for future T3
        for off in 7..14 {
            assert!(!l.can_write(base + off, 1), "byte {off} should be locked");
        }
    }
}
