//! # e9patch — control-flow-agnostic static binary rewriting
//!
//! A from-scratch Rust reproduction of **E9Patch** (Duck, Gao &
//! Roychoudhury, *Binary Rewriting without Control Flow Recovery*, PLDI
//! 2020).
//!
//! E9Patch rewrites x86_64 ELF binaries **without recovering control
//! flow**: every instruction address of the input remains a valid jump
//! target, because each patched instruction is either preserved, replaced
//! by an operationally equivalent instruction, or replaced by the intended
//! patch jump. The tool never moves existing code or data.
//!
//! ## Tactics
//!
//! | tactic | module | idea |
//! |--------|--------|------|
//! | B1/B2  | [`pun`] | plain or punned `jmpq rel32` |
//! | T1     | [`pun`] | redundant-prefix padding shifts the pun window |
//! | T2     | [`planner`] | evict the successor, changing the pun bytes |
//! | T3     | [`planner`] | evict a neighbour; double jump via `J_short` |
//! | S1     | [`lock`] + [`planner`] | reverse-order patching over byte locks |
//! | B0     | [`planner`] | `int3` trap fallback |
//!
//! Space optimisation: [`group`] implements physical page grouping (§4),
//! and [`loader`] emits the x86-64 loader stub that maps merged physical
//! blocks at their many virtual addresses at startup.
//!
//! ## Quick start
//!
//! ```
//! use e9patch::{PatchRequest, RewriteConfig, Rewriter, Template};
//! use e9x86::decode::linear_sweep;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy binary: mov %rax,(%rbx); add $32,%rax; ...; ret.
//! let code = vec![0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0xC3];
//! let mut b = e9elf::build::ElfBuilder::exec(0x400000);
//! b.text(code.clone(), 0x401000);
//! b.entry(0x401000);
//! let input = b.build();
//!
//! // Disassembly info is an *input* (the paper's design): here, a linear
//! // sweep of .text.
//! let disasm = linear_sweep(&code, 0x401000);
//!
//! let out = Rewriter::new(RewriteConfig::default()).rewrite(
//!     &input,
//!     &disasm,
//!     &[PatchRequest { addr: 0x401000, template: Template::Empty }],
//!     &[],
//! )?;
//! assert_eq!(out.stats.succeeded(), 1);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod group;
pub mod layout;
pub mod loader;
pub mod lock;
pub mod planner;
pub mod pun;
pub mod rewriter;
pub mod shard;
pub mod stats;
pub mod trampoline;
pub mod verify;

pub use error::{Error, Result};
pub use planner::{AllocPolicy, PatchRequest, Planner, RewriteConfig, SiteReport, Tactics};
pub use rewriter::{ExtraSegment, RewriteOutput, Rewriter};
pub use stats::{PatchStats, SizeStats, TacticKind};
pub use trampoline::Template;

#[cfg(test)]
mod tests_prop;
