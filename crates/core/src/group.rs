//! Physical page grouping (§4).
//!
//! Punned trampolines end up scattered across the virtual address space
//! (each pun window dictates its own neighbourhood), so virtual utilisation
//! is poor — in the worst case ~1 trampoline per page. A naïve one-to-one
//! physical backing would bloat the output file proportionally.
//!
//! Physical page grouping divides the address space into blocks of `M`
//! pages and *merges* blocks whose trampoline extents do not overlap
//! relative to the block base. Each merged physical block is emitted once
//! and mapped at every member block's virtual base (a one-to-many,
//! file-backed mapping), as in the paper's Figure 3.
//!
//! Partitioning is a combinatorial optimisation; like E9Patch we use a
//! greedy algorithm (first-fit over groups, densest block first). To keep
//! very large binaries near-linear, each block's occupancy is summarised
//! as a 64-bucket bitmap: bucket-disjointness is a *sufficient* condition
//! for byte-disjointness, so a single `u64 & u64` test decides mergability
//! (at a small optimality cost). At most [`MAX_GROUP_SCAN`] groups are
//! examined per block.

use e9elf::PAGE_SIZE;
use std::collections::BTreeMap;

/// Cap on how many existing groups greedy placement examines per block.
pub const MAX_GROUP_SCAN: usize = 8192;

/// Linux's default `vm.max_map_count` — the mapping budget the paper
/// discusses for granularity `M ≥ 64`.
pub const DEFAULT_MAX_MAP_COUNT: u64 = 65536;

/// One merged physical block and the virtual bases it is mapped at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysBlock {
    /// Block contents (`block_size` bytes; unused byte ranges are zero).
    pub bytes: Vec<u8>,
    /// Virtual base addresses this physical block must be mapped at.
    pub mapped_at: Vec<u64>,
}

/// Result of the grouping pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    /// Block size in bytes (`M * PAGE_SIZE`).
    pub block_size: u64,
    /// Merged physical blocks.
    pub groups: Vec<PhysBlock>,
    /// Number of virtual blocks that contained trampoline bytes.
    pub virtual_blocks: u64,
}

impl Grouping {
    /// Total physical bytes emitted to the file.
    pub fn physical_bytes(&self) -> u64 {
        self.groups.len() as u64 * self.block_size
    }

    /// Total mappings the loader must create.
    pub fn mapping_count(&self) -> u64 {
        self.groups.iter().map(|g| g.mapped_at.len() as u64).sum()
    }
}

#[derive(Debug)]
struct BlockOcc {
    base: u64,
    /// Sorted, disjoint (offset, bytes) extents within the block.
    extents: Vec<(u64, Vec<u8>)>,
    occupied: u64,
    /// 64-bucket coarse occupancy bitmap (bit i set ⇔ some byte in bucket
    /// i is used). Bucket-disjoint blocks are byte-disjoint.
    bits: u64,
}

fn occupancy_bits(extents: &[(u64, Vec<u8>)], block_size: u64) -> u64 {
    let bucket = (block_size / 64).max(1);
    let mut bits = 0u64;
    for (off, bytes) in extents {
        let lo = off / bucket;
        let hi = (off + bytes.len() as u64 - 1) / bucket;
        for b in lo..=hi.min(63) {
            bits |= 1 << b;
        }
    }
    bits
}

/// Group trampoline blobs into merged physical blocks.
///
/// `trampolines` are `(vaddr, bytes)` pairs (arbitrary order, arbitrary
/// sizes; extents spanning block boundaries are split into
/// mini-trampolines, as in the paper). `granularity` is the paper's `M`
/// (pages per block). With `enable == false` the naïve one-to-one mapping
/// is produced (each virtual block backed by its own physical block) — the
/// ablation baseline for experiment E4.
///
/// # Panics
///
/// Panics if two trampolines overlap in virtual memory (allocator
/// invariant).
pub fn group(trampolines: &[(u64, Vec<u8>)], granularity: u64, enable: bool) -> Grouping {
    let bs = granularity.max(1) * PAGE_SIZE;

    // Bucket (and split) extents by block base.
    let mut blocks: BTreeMap<u64, Vec<(u64, Vec<u8>)>> = BTreeMap::new();
    for (vaddr, bytes) in trampolines {
        let mut va = *vaddr;
        let mut rest: &[u8] = bytes;
        while !rest.is_empty() {
            let base = va / bs * bs;
            let off = va - base;
            let take = ((bs - off) as usize).min(rest.len());
            blocks
                .entry(base)
                .or_default()
                .push((off, rest[..take].to_vec()));
            va += take as u64;
            rest = &rest[take..];
        }
    }

    let mut occs: Vec<BlockOcc> = blocks
        .into_iter()
        .map(|(base, mut extents)| {
            extents.sort_by_key(|(o, _)| *o);
            for w in extents.windows(2) {
                assert!(
                    w[0].0 + w[0].1.len() as u64 <= w[1].0,
                    "overlapping trampolines within block {base:#x}"
                );
            }
            let occupied = extents.iter().map(|(_, b)| b.len() as u64).sum();
            let bits = occupancy_bits(&extents, bs);
            BlockOcc {
                base,
                extents,
                occupied,
                bits,
            }
        })
        .collect();
    let virtual_blocks = occs.len() as u64;

    // (coarse bitmap, merged extents, member block bases)
    type Group = (u64, Vec<(u64, Vec<u8>)>, Vec<u64>);
    let mut groups: Vec<Group> = Vec::new();
    if enable {
        // First-fit decreasing by occupancy; mergability decided by the
        // coarse bitmaps (sufficient for byte-disjointness).
        occs.sort_by(|a, b| b.occupied.cmp(&a.occupied).then(a.base.cmp(&b.base)));
        for blk in occs {
            let mut placed = false;
            for (bits, extents, members) in groups.iter_mut().take(MAX_GROUP_SCAN) {
                if *bits & blk.bits == 0 {
                    *bits |= blk.bits;
                    extents.extend(blk.extents.iter().cloned());
                    members.push(blk.base);
                    placed = true;
                    break;
                }
            }
            if !placed {
                groups.push((blk.bits, blk.extents, vec![blk.base]));
            }
        }
    } else {
        for blk in occs {
            groups.push((blk.bits, blk.extents, vec![blk.base]));
        }
    }

    let phys = groups
        .into_iter()
        .map(|(_, extents, mut members)| {
            members.sort_unstable();
            let mut bytes = vec![0u8; bs as usize];
            for (off, data) in extents {
                bytes[off as usize..off as usize + data.len()].copy_from_slice(&data);
            }
            PhysBlock {
                bytes,
                mapped_at: members,
            }
        })
        .collect();

    Grouping {
        block_size: bs,
        groups: phys,
        virtual_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vaddr: u64, len: usize, fill: u8) -> (u64, Vec<u8>) {
        (vaddr, vec![fill; len])
    }

    #[test]
    fn figure3_style_merge() {
        // Five trampolines over three pages with disjoint in-page offsets
        // merge into a single physical page (the paper's Figure 3).
        let ts = vec![
            t(0x10000, 0x100, 1),        // page 1, offset 0x000
            t(0x10400, 0x100, 2),        // page 1, offset 0x400
            t(0x11800, 0x100, 3),        // page 2, offset 0x800
            t(0x12200, 0x100, 4),        // page 3, offset 0x200
            t(0x12C00, 0x100, 5),        // page 3, offset 0xC00
        ];
        let g = group(&ts, 1, true);
        assert_eq!(g.virtual_blocks, 3);
        assert_eq!(g.groups.len(), 1);
        assert_eq!(g.mapping_count(), 3);
        let blk = &g.groups[0];
        assert_eq!(blk.mapped_at, vec![0x10000, 0x11000, 0x12000]);
        assert_eq!(blk.bytes[0x000], 1);
        assert_eq!(blk.bytes[0x400], 2);
        assert_eq!(blk.bytes[0x800], 3);
        assert_eq!(blk.bytes[0x200], 4);
        assert_eq!(blk.bytes[0xC00], 5);
    }

    #[test]
    fn naive_mode_one_to_one() {
        let ts = vec![t(0x10000, 0x10, 1), t(0x11000, 0x10, 2), t(0x12000, 0x10, 3)];
        let g = group(&ts, 1, false);
        assert_eq!(g.groups.len(), 3);
        assert_eq!(g.mapping_count(), 3);
        assert_eq!(g.physical_bytes(), 3 * PAGE_SIZE);
    }

    #[test]
    fn conflicting_offsets_stay_separate() {
        // Same in-page offset → cannot merge.
        let ts = vec![t(0x10000, 0x10, 1), t(0x11000, 0x10, 2)];
        let g = group(&ts, 1, true);
        assert_eq!(g.groups.len(), 2);
    }

    #[test]
    fn spanning_trampoline_splits() {
        // A trampoline crossing a page boundary becomes two
        // mini-trampolines in two blocks.
        let ts = vec![t(0x10FF0, 0x20, 7)];
        let g = group(&ts, 1, true);
        assert_eq!(g.virtual_blocks, 2);
        // Bytes land at offsets 0xFF0 (page 1) and 0x000 (page 2) — those
        // two blocks conflict-freely merge into one physical page? No:
        // offsets 0xFF0..0x1000 and 0x000..0x010 are disjoint, so yes.
        assert_eq!(g.groups.len(), 1);
        assert_eq!(g.mapping_count(), 2);
        let b = &g.groups[0];
        assert_eq!(b.bytes[0xFF0], 7);
        assert_eq!(b.bytes[0x00F], 7);
    }

    #[test]
    fn coarser_granularity_reduces_mappings() {
        // 16 trampolines spread over 16 pages.
        let ts: Vec<_> = (0..16)
            .map(|i| t(0x10000 + i * 0x1000 + (i % 4) * 0x400, 0x40, i as u8 + 1))
            .collect();
        let g1 = group(&ts, 1, true);
        let g4 = group(&ts, 4, true);
        assert!(g4.mapping_count() <= g1.mapping_count());
        assert_eq!(g4.block_size, 4 * PAGE_SIZE);
    }

    #[test]
    fn grouping_reduces_physical_bytes() {
        // 64 single-trampoline pages with distinct offsets — grouping should
        // collapse them dramatically; naive stays at 64 pages.
        let ts: Vec<_> = (0..64)
            .map(|i| t(0x100000 + i * 0x1000 + i * 0x40, 0x40, (i % 250) as u8 + 1))
            .collect();
        let naive = group(&ts, 1, false);
        let grouped = group(&ts, 1, true);
        assert_eq!(naive.physical_bytes(), 64 * PAGE_SIZE);
        assert!(grouped.physical_bytes() <= 2 * PAGE_SIZE);
        assert_eq!(grouped.mapping_count(), 64); // mappings unchanged
    }

    #[test]
    #[should_panic(expected = "overlapping trampolines")]
    fn overlap_detected() {
        let ts = vec![t(0x10000, 0x20, 1), t(0x10010, 0x20, 2)];
        group(&ts, 1, true);
    }

    #[test]
    fn bucket_conservatism_keeps_correctness() {
        // Two byte-disjoint trampolines sharing a 64-byte bucket: the
        // coarse bitmap may refuse to merge them (optimality loss), but
        // byte conservation must hold either way.
        let ts = vec![t(0x10000, 0x10, 1), t(0x11020, 0x10, 2)];
        let g = group(&ts, 1, true);
        // Offsets 0x000 and 0x020 are in the same bucket (bucket = 64 B).
        assert!(g.groups.len() <= 2);
        let mut found = 0;
        for blk in &g.groups {
            for &vbase in &blk.mapped_at {
                for (va, bytes) in &ts {
                    if *va >= vbase && *va + bytes.len() as u64 <= vbase + g.block_size {
                        let off = (*va - vbase) as usize;
                        if blk.bytes[off..off + bytes.len()] == bytes[..] {
                            found += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(found, 2, "every trampoline present at its offset");
    }

    #[test]
    fn boundary_straddling_bucket_bits() {
        // An extent ending exactly at the block edge must not overflow the
        // 64-bit occupancy bitmap (bucket index 63).
        let ts = vec![t(0x10000 + 4096 - 8, 8, 9)];
        let g = group(&ts, 1, true);
        assert_eq!(g.groups.len(), 1);
        assert_eq!(g.groups[0].bytes[4088], 9);
    }

    #[test]
    fn empty_input() {
        let g = group(&[], 1, true);
        assert_eq!(g.groups.len(), 0);
        assert_eq!(g.mapping_count(), 0);
        assert_eq!(g.virtual_blocks, 0);
    }
}
