//! Top-level rewriting API: parse → plan (S1 over tactics) → group →
//! emit (in-place patches + appended blocks + loader).

use crate::group::{self, Grouping};
use crate::layout::Window;
use crate::loader::{self, Mapping};
use crate::planner::{PatchRequest, Planner, RewriteConfig};
use crate::stats::{PatchStats, SizeStats};
use e9elf::types::{PF_R, PF_W, PF_X};
use e9elf::{Elf, Patcher, PAGE_SIZE};
use e9x86::insn::Insn;
use std::collections::BTreeMap;

/// Trap-table manifest embedded in the output binary for the B0 fallback.
pub mod manifest {
    /// Magic prefix of the trap manifest blob.
    pub const MAGIC: &[u8; 8] = b"E9TRAP\0\0";

    /// Serialize `(site, trampoline)` pairs.
    pub fn encode(traps: &[(u64, u64)]) -> Vec<u8> {
        let mut v = Vec::with_capacity(16 + traps.len() * 16);
        v.extend_from_slice(MAGIC);
        v.extend_from_slice(&(traps.len() as u64).to_le_bytes());
        for &(site, tramp) in traps {
            v.extend_from_slice(&site.to_le_bytes());
            v.extend_from_slice(&tramp.to_le_bytes());
        }
        v
    }

    /// Parse a trap manifest; `None` if `bytes` is not one (wrong magic,
    /// truncated body, or a count field that does not fit the input —
    /// including counts large enough to overflow the length arithmetic).
    pub fn decode(bytes: &[u8]) -> Option<Vec<(u64, u64)>> {
        if bytes.len() < 16 || &bytes[..8] != MAGIC {
            return None;
        }
        let n = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        // Checked arithmetic: a hostile count must not wrap into a bogus
        // "fits" verdict (or panic the debug build).
        let need = n.checked_mul(16).and_then(|b| b.checked_add(16))?;
        if (bytes.len() as u64) < need {
            return None;
        }
        let n = n as usize;
        Some(
            (0..n)
                .map(|i| {
                    let o = 16 + i * 16;
                    (
                        u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap()),
                        u64::from_le_bytes(bytes[o + 8..o + 16].try_into().unwrap()),
                    )
                })
                .collect(),
        )
    }
}

/// An extra segment the caller wants in the output (e.g. the
/// instrumentation runtime: check functions, counters, tables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtraSegment {
    /// Virtual load address (must not collide with the input image).
    pub vaddr: u64,
    /// Contents.
    pub bytes: Vec<u8>,
    /// Executable?
    pub exec: bool,
    /// Writable?
    pub write: bool,
}

impl ExtraSegment {
    fn flags(&self) -> u32 {
        let mut f = PF_R;
        if self.exec {
            f |= PF_X;
        }
        if self.write {
            f |= PF_W;
        }
        f
    }
}

/// Result of a rewriting run.
#[derive(Debug)]
pub struct RewriteOutput {
    /// The patched output binary.
    pub binary: Vec<u8>,
    /// Tactic outcome counters (Table 1's coverage columns).
    pub stats: PatchStats,
    /// File-size / mapping statistics (Table 1's Size% and §4).
    pub size: SizeStats,
    /// Virtual address of the injected loader (the new entry point).
    pub loader_addr: u64,
    /// Number of B0 trap registrations.
    pub trap_count: usize,
    /// Per-site outcome reports, in processing (reverse-address) order.
    pub reports: Vec<crate::planner::SiteReport>,
    /// The loader's mapping table (virtual base ← file extent), exposed
    /// for verification and inspection.
    pub mappings: Vec<Mapping>,
}

/// The E9Patch static binary rewriter.
///
/// ```
/// use e9patch::{Rewriter, RewriteConfig};
/// let rewriter = Rewriter::new(RewriteConfig::default());
/// // rewriter.rewrite(&input, &disasm, &requests, &[])?
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rewriter {
    cfg: RewriteConfig,
}

impl Rewriter {
    /// Rewriter with the given configuration.
    pub fn new(cfg: RewriteConfig) -> Rewriter {
        Rewriter { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &RewriteConfig {
        &self.cfg
    }

    /// Rewrite `input`, diverting each requested instruction through a
    /// trampoline.
    ///
    /// `disasm` is the *disassembly information* the paper treats as a tool
    /// input (instruction addresses and sizes; here full decoded
    /// instructions from [`e9x86::decode::linear_sweep`] or any other
    /// frontend).
    ///
    /// # Errors
    ///
    /// Fails on malformed ELF input, duplicate requests, or requests naming
    /// unknown instructions. Per-site patch *failures* are reported via
    /// [`RewriteOutput::stats`], not as errors — mirroring the paper's
    /// Succ% methodology.
    pub fn rewrite(
        &self,
        input: &[u8],
        disasm: &[Insn],
        requests: &[PatchRequest],
        extra: &[ExtraSegment],
    ) -> crate::error::Result<RewriteOutput> {
        let elf = Elf::parse(input)?;
        let input_bytes = elf.file_size() as u64;
        let orig_entry = elf.entry();

        let insns: BTreeMap<u64, Insn> = disasm.iter().map(|i| (i.addr, *i)).collect();
        let reserved: Vec<(u64, u64)> = extra
            .iter()
            .map(|s| (s.vaddr, s.vaddr + s.bytes.len() as u64))
            .collect();

        let parts = match self.cfg.jobs {
            None => {
                let mut planner = Planner::new(elf, &insns, self.cfg, &reserved);
                planner.patch_all(requests)?;
                planner.into_parts()
            }
            // Sharded parallel planning; output is identical for every
            // worker count (see the determinism contract in `shard`).
            Some(_) => crate::shard::plan_parallel(elf, &insns, self.cfg, &reserved, requests)?,
        };

        // Physical page grouping over the placed trampolines.
        let grouping: Grouping =
            group::group(&parts.trampolines, self.cfg.granularity, self.cfg.grouping);

        let mut patcher = Patcher::new(parts.elf);

        // Emit merged physical blocks and build the loader mapping table.
        let mut mappings = Vec::new();
        for blk in &grouping.groups {
            let off = patcher.append_blob(&blk.bytes, PAGE_SIZE);
            for &vbase in &blk.mapped_at {
                mappings.push(Mapping {
                    vaddr: vbase,
                    file_off: off,
                    len: grouping.block_size,
                });
            }
        }

        // Extra segments (instrumentation runtime).
        for seg in extra {
            patcher.add_segment(seg.vaddr, &seg.bytes, seg.flags());
        }

        // Loader segment, placed wherever address space remains. The
        // loader must avoid every *block* range the mappings will
        // `MAP_FIXED` over (a block covers whole pages, beyond the byte
        // ranges the trampoline allocator reserved).
        let loader_ub = loader::loader_size(mappings.len());
        let mut space = parts.space;
        for m in &mappings {
            space.reserve(m.vaddr, m.vaddr + m.len);
        }
        let loader_addr = space
            .alloc_in(Window::all(), loader_ub as u64, PAGE_SIZE)
            .expect("address space exhausted placing the loader");
        let loader_code = loader::emit_loader(loader_addr, orig_entry, &mappings);
        debug_assert!(loader_code.len() <= loader_ub);
        patcher.add_segment(loader_addr, &loader_code, PF_R | PF_X);
        patcher.set_entry(loader_addr);

        // Trap manifest for the B0 fallback.
        let trap_count = parts.traps.len();
        if trap_count > 0 {
            let blob = manifest::encode(&parts.traps);
            let off = patcher.append_blob(&blob, 8);
            patcher.add_note(off, blob.len() as u64);
        }

        let binary = patcher.finish();
        let size = SizeStats {
            input_bytes,
            output_bytes: binary.len() as u64,
            virtual_blocks: grouping.virtual_blocks,
            physical_blocks: grouping.groups.len() as u64,
            mappings: grouping.mapping_count(),
            granularity: self.cfg.granularity,
        };

        Ok(RewriteOutput {
            binary,
            stats: parts.stats,
            size,
            loader_addr,
            trap_count,
            reports: parts.reports,
            mappings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Tactics;
    use crate::trampoline::Template;
    use e9elf::build::ElfBuilder;
    use e9x86::decode::linear_sweep;

    /// Build a little non-PIE binary around the paper's Figure 1 sequence.
    fn fig1_binary() -> (Vec<u8>, Vec<Insn>) {
        let code = vec![
            0x48, 0x89, 0x03, // mov %rax,(%rbx)
            0x48, 0x83, 0xC0, 0x20, // add $32,%rax
            0x48, 0x31, 0xC1, // xor %rax,%rcx
            0x83, 0x7B, 0xFC, 0x4D, // cmpl $77,-4(%rbx)
            0xC3, // ret
            // Trailing alignment padding, as real .text sections have —
            // without it, end-of-section sites have no successor bytes to
            // pun against.
            0x0F, 0x1F, 0x44, 0x00, 0x00, // 5-byte nop
            0x0F, 0x1F, 0x44, 0x00, 0x00, // 5-byte nop
        ];
        let mut b = ElfBuilder::exec(0x400000);
        b.text(code.clone(), 0x401000);
        b.entry(0x401000);
        let bytes = b.build();
        let disasm = linear_sweep(&code, 0x401000);
        (bytes, disasm)
    }

    #[test]
    fn patch_single_site() {
        let (bin, disasm) = fig1_binary();
        let rw = Rewriter::new(RewriteConfig::default());
        let out = rw
            .rewrite(
                &bin,
                &disasm,
                &[PatchRequest {
                    addr: 0x401000,
                    template: Template::Empty,
                }],
                &[],
            )
            .unwrap();
        assert_eq!(out.stats.total(), 1);
        assert_eq!(out.stats.succeeded(), 1);
        // The patch site now decodes as a (possibly padded) jump or a
        // short jump (T3).
        let elf = Elf::parse(&out.binary).unwrap();
        let b = elf.slice_at(0x401000, 7).unwrap();
        let insn = e9x86::decode(b, 0x401000).unwrap();
        assert!(
            matches!(insn.kind, e9x86::Kind::JmpRel32 | e9x86::Kind::JmpRel8),
            "patched site decodes as {:?}",
            insn.kind
        );
        // Entry point was redirected to the loader.
        assert_eq!(elf.entry(), out.loader_addr);
    }

    #[test]
    fn patch_all_sites_reverse_order() {
        let (bin, disasm) = fig1_binary();
        let rw = Rewriter::new(RewriteConfig::default());
        let requests: Vec<PatchRequest> = disasm
            .iter()
            .take(4)
            .map(|i| PatchRequest {
                addr: i.addr,
                template: Template::Empty,
            })
            .collect();
        let out = rw.rewrite(&bin, &disasm, &requests, &[]).unwrap();
        assert_eq!(out.stats.total(), 4);
        // With all tactics available every site in this tiny binary should
        // be patchable.
        assert_eq!(out.stats.succeeded(), 4, "stats: {:?}", out.stats);
    }

    #[test]
    fn base_only_fails_where_punning_is_invalid() {
        // Non-PIE at 0x400000: the mov's B2 window underflows (negative
        // rel32), and with T1/T2/T3 disabled the patch must fail.
        let (bin, disasm) = fig1_binary();
        let cfg = RewriteConfig {
            tactics: Tactics::base_only(),
            ..RewriteConfig::default()
        };
        let out = Rewriter::new(cfg)
            .rewrite(
                &bin,
                &disasm,
                &[PatchRequest {
                    addr: 0x401000,
                    template: Template::Empty,
                }],
                &[],
            )
            .unwrap();
        assert_eq!(out.stats.failed, 1);
        // And the site is untouched.
        let elf = Elf::parse(&out.binary).unwrap();
        assert_eq!(elf.slice_at(0x401000, 3).unwrap(), &[0x48, 0x89, 0x03]);
    }

    #[test]
    fn pie_binary_base_coverage_is_higher() {
        // The same code at a PIE-style high base: B2's negative window is
        // now valid, so even base-only patching succeeds (§6.1).
        let code = vec![
            0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0x48, 0x31, 0xC1, 0x83, 0x7B, 0xFC, 0x4D,
            0xC3,
        ];
        let base = 0x5555_5555_4000;
        let mut b = ElfBuilder::pie(base);
        b.text(code.clone(), base + 0x1000);
        b.entry(base + 0x1000);
        let bin = b.build();
        let disasm = linear_sweep(&code, base + 0x1000);
        let cfg = RewriteConfig {
            tactics: Tactics::base_only(),
            ..RewriteConfig::default()
        };
        let out = Rewriter::new(cfg)
            .rewrite(
                &bin,
                &disasm,
                &[PatchRequest {
                    addr: base + 0x1000,
                    template: Template::Empty,
                }],
                &[],
            )
            .unwrap();
        assert_eq!(out.stats.succeeded(), 1);
        assert_eq!(out.stats.b2, 1);
    }

    #[test]
    fn duplicate_requests_rejected() {
        let (bin, disasm) = fig1_binary();
        let req = PatchRequest {
            addr: 0x401000,
            template: Template::Empty,
        };
        let err = Rewriter::default()
            .rewrite(&bin, &disasm, &[req.clone(), req], &[])
            .unwrap_err();
        assert!(matches!(err, crate::error::Error::DuplicatePatch(_)));
    }

    #[test]
    fn unknown_address_rejected() {
        let (bin, disasm) = fig1_binary();
        let err = Rewriter::default()
            .rewrite(
                &bin,
                &disasm,
                &[PatchRequest {
                    addr: 0x401001, // mid-instruction
                    template: Template::Empty,
                }],
                &[],
            )
            .unwrap_err();
        assert!(matches!(err, crate::error::Error::NoSuchInstruction(_)));
    }

    #[test]
    fn b0_fallback_registers_trap() {
        // Disable every tactic; enable B0. The site gets an int3.
        let (bin, disasm) = fig1_binary();
        let cfg = RewriteConfig {
            tactics: Tactics::base_only(),
            b0_fallback: true,
            ..RewriteConfig::default()
        };
        let out = Rewriter::new(cfg)
            .rewrite(
                &bin,
                &disasm,
                &[PatchRequest {
                    addr: 0x401000,
                    template: Template::Empty,
                }],
                &[],
            )
            .unwrap();
        assert_eq!(out.stats.b0, 1);
        assert_eq!(out.trap_count, 1);
        let elf = Elf::parse(&out.binary).unwrap();
        assert_eq!(elf.slice_at(0x401000, 1).unwrap(), &[0xCC]);
        // Manifest is recoverable from the note segment.
        let note = elf
            .phdrs
            .iter()
            .find(|p| p.p_type == e9elf::types::PT_NOTE)
            .expect("trap note present");
        let blob = &out.binary[note.p_offset as usize..(note.p_offset + note.p_filesz) as usize];
        let traps = manifest::decode(blob).unwrap();
        assert_eq!(traps.len(), 1);
        assert_eq!(traps[0].0, 0x401000);
    }

    #[test]
    fn manifest_roundtrip() {
        let traps = vec![(0x401000u64, 0x70000000u64), (0x401005, 0x70000040)];
        let blob = manifest::encode(&traps);
        assert_eq!(manifest::decode(&blob).unwrap(), traps);
        assert_eq!(manifest::decode(b"not a manifest!!"), None);
    }

    #[test]
    fn extra_segments_survive() {
        let (bin, disasm) = fig1_binary();
        let seg = ExtraSegment {
            vaddr: 0x30000000,
            bytes: vec![0xAB; 32],
            exec: false,
            write: true,
        };
        let out = Rewriter::default()
            .rewrite(
                &bin,
                &disasm,
                &[PatchRequest {
                    addr: 0x401003,
                    template: Template::Counter {
                        counter_addr: 0x30000000,
                    },
                }],
                &[seg],
            )
            .unwrap();
        let elf = Elf::parse(&out.binary).unwrap();
        assert_eq!(elf.slice_at(0x30000000, 32).unwrap(), &[0xAB; 32]);
    }

    #[test]
    fn output_size_accounts_for_trampolines() {
        let (bin, disasm) = fig1_binary();
        let out = Rewriter::default()
            .rewrite(
                &bin,
                &disasm,
                &[PatchRequest {
                    addr: 0x401000,
                    template: Template::Empty,
                }],
                &[],
            )
            .unwrap();
        assert!(out.size.output_bytes > out.size.input_bytes);
        assert_eq!(out.size.input_bytes, bin.len() as u64);
        assert!(out.size.mappings >= 1);
    }
}
