//! Static verification of rewriter output.
//!
//! The paper's §2 methodology promises that every instruction of the input
//! is (1) preserved, (2) replaced by an operationally equivalent
//! instruction (a jump to an evictee trampoline), or (3) replaced by the
//! intended patch jump — and that nothing else changes. This module checks
//! those invariants *statically* on the output binary, independent of the
//! planner that produced it (a classic translation-validation safety net).

use crate::loader::Mapping;
use crate::planner::SiteReport;
use e9elf::Elf;
use e9x86::insn::{Insn, Kind};
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An instruction's bytes changed but its address is not accounted for
    /// by a diversion (jump/int3) — byte corruption.
    CorruptedInstruction {
        /// Instruction address.
        addr: u64,
        /// What the changed bytes decode as.
        found: String,
    },
    /// A diverted site's jump points outside every trampoline mapping and
    /// outside the original image.
    WildJump {
        /// Site address.
        addr: u64,
        /// The jump's target.
        target: u64,
    },
    /// A byte outside all disassembled instructions changed (data must
    /// never be modified).
    DataModified {
        /// Virtual address of the changed byte.
        addr: u64,
    },
    /// A report claims success but the site bytes are unchanged (or vice
    /// versa).
    ReportMismatch {
        /// Site address.
        addr: u64,
        /// Explanation.
        why: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::CorruptedInstruction { addr, found } => {
                write!(f, "instruction at {addr:#x} corrupted: {found}")
            }
            Violation::WildJump { addr, target } => {
                write!(f, "diverted site {addr:#x} jumps to unmapped {target:#x}")
            }
            Violation::DataModified { addr } => {
                write!(f, "non-instruction byte modified at {addr:#x}")
            }
            Violation::ReportMismatch { addr, why } => {
                write!(f, "report mismatch at {addr:#x}: {why}")
            }
        }
    }
}

/// Verification summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Instruction starts whose bytes were untouched.
    pub preserved: usize,
    /// Instruction starts replaced by a diversion (jump or trap).
    pub diverted: usize,
}

/// Statically verify `patched` against `original`.
///
/// `disasm` is the instruction info the rewrite used; `mappings` the
/// loader table; `reports` the per-site outcomes (pass `&[]` to skip
/// report cross-checking).
///
/// # Errors
///
/// Returns every violated invariant (empty-vec errors are never returned —
/// `Err` implies at least one violation).
pub fn verify(
    original: &Elf,
    patched: &Elf,
    disasm: &[Insn],
    mappings: &[Mapping],
    reports: &[SiteReport],
) -> Result<VerifyReport, Vec<Violation>> {
    let mut violations = Vec::new();
    let mut report = VerifyReport::default();

    let in_mappings = |a: u64| {
        mappings
            .iter()
            .any(|m| a >= m.vaddr && a < m.vaddr + m.len)
    };
    let in_image = |a: u64| original.load_segments().any(|p| p.covers(a));

    // Pass 1: every disassembled instruction is preserved or diverted.
    for insn in disasm {
        let len = insn.len();
        let (Ok(old), Ok(new)) = (
            original.slice_at(insn.addr, len),
            patched.slice_at(insn.addr, len),
        ) else {
            continue;
        };
        if old == new {
            report.preserved += 1;
            continue;
        }
        // Changed: must now start with a diversion. Decode with generous
        // lookahead (a punned jump may be longer than the original insn).
        let window = patched.slice_at(insn.addr, len.max(15).min(
            // stay within the segment
            {
                let mut n = len;
                while n < 15 && patched.slice_at(insn.addr, n + 1).is_ok() {
                    n += 1;
                }
                n
            },
        ));
        let decoded = window.ok().and_then(|b| e9x86::decode(b, insn.addr).ok());
        match decoded {
            Some(d)
                if matches!(
                    d.kind,
                    Kind::JmpRel8 | Kind::JmpRel32 | Kind::Int3
                ) =>
            {
                report.diverted += 1;
                if let Some(target) = d.branch_target() {
                    if !in_mappings(target) && !in_image(target) {
                        violations.push(Violation::WildJump {
                            addr: insn.addr,
                            target,
                        });
                    }
                }
            }
            Some(d) => violations.push(Violation::CorruptedInstruction {
                addr: insn.addr,
                found: format!("{d}"),
            }),
            None => violations.push(Violation::CorruptedInstruction {
                addr: insn.addr,
                found: "undecodable".into(),
            }),
        }
    }

    // Pass 2: bytes outside every disassembled instruction are unchanged
    // within the original file-backed image (data is never moved or
    // touched). Build the instruction byte cover.
    let mut covered: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for insn in disasm {
        // A diversion may overwrite/pun up to 15 bytes from the site, and
        // T3 can additionally rewrite victim bytes — victims are
        // themselves instructions in `disasm`, so per-instruction cover
        // (start..start+15 capped at next instruction start) is exact for
        // non-instruction data.
        for a in insn.addr..insn.end() {
            covered.insert(a);
        }
    }
    for ph in original.load_segments() {
        for off in 0..ph.p_filesz {
            let a = ph.p_vaddr + off;
            if covered.contains(&a) {
                continue;
            }
            // The 64-byte ELF file header is legitimately rewritten
            // (entry point, relocated program-header table offset/count).
            if original.vaddr_to_offset(a).is_ok_and(|fo| fo < 64) {
                continue;
            }
            let (Ok(o), Ok(n)) = (original.slice_at(a, 1), patched.slice_at(a, 1)) else {
                continue;
            };
            if o != n {
                violations.push(Violation::DataModified { addr: a });
            }
        }
    }

    // Pass 3: reports agree with reality.
    for r in reports {
        let len = r.insn_len as usize;
        let (Ok(old), Ok(new)) = (
            original.slice_at(r.addr, len),
            patched.slice_at(r.addr, len),
        ) else {
            continue;
        };
        let changed = old != new;
        if r.tactic.is_some() && !changed {
            violations.push(Violation::ReportMismatch {
                addr: r.addr,
                why: "claimed patched but bytes unchanged".into(),
            });
        }
        if r.tactic.is_none() && changed {
            violations.push(Violation::ReportMismatch {
                addr: r.addr,
                why: "claimed failed but bytes changed".into(),
            });
        }
    }

    if violations.is_empty() {
        Ok(report)
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PatchRequest;
    use crate::{RewriteConfig, Rewriter, Template};
    use e9x86::decode::linear_sweep;

    fn setup() -> (Vec<u8>, Vec<Insn>, Vec<PatchRequest>) {
        let code = vec![
            0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0x48, 0x31, 0xC1, 0x83, 0x7B, 0xFC,
            0x4D, 0xC3, 0x0F, 0x1F, 0x44, 0x00, 0x00, 0x0F, 0x1F, 0x44, 0x00, 0x00,
        ];
        let disasm = linear_sweep(&code, 0x401000);
        let mut b = e9elf::build::ElfBuilder::exec(0x400000);
        b.text(code, 0x401000);
        b.rodata(vec![0xAA; 64], 0x402000);
        b.entry(0x401000);
        let reqs = vec![PatchRequest {
            addr: 0x401000,
            template: Template::Empty,
        }];
        (b.build(), disasm, reqs)
    }

    #[test]
    fn clean_rewrite_verifies() {
        let (bin, disasm, reqs) = setup();
        let out = Rewriter::new(RewriteConfig::default())
            .rewrite(&bin, &disasm, &reqs, &[])
            .unwrap();
        let orig = Elf::parse(&bin).unwrap();
        let patched = Elf::parse(&out.binary).unwrap();
        let rep = verify(&orig, &patched, &disasm, &out.mappings, &out.reports)
            .expect("verification should pass");
        assert_eq!(rep.diverted + rep.preserved, disasm.len());
        assert!(rep.diverted >= 1);
    }

    #[test]
    fn corruption_detected() {
        let (bin, disasm, reqs) = setup();
        let out = Rewriter::new(RewriteConfig::default())
            .rewrite(&bin, &disasm, &reqs, &[])
            .unwrap();
        let orig = Elf::parse(&bin).unwrap();
        // Corrupt an unpatched instruction (the xor at 0x401007).
        let mut bad = Elf::parse(&out.binary).unwrap();
        bad.write_at(0x401007, &[0x48, 0x01]).unwrap();
        let errs = verify(&orig, &bad, &disasm, &out.mappings, &out.reports).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::CorruptedInstruction { addr: 0x401007, .. })));
    }

    #[test]
    fn data_modification_detected() {
        let (bin, disasm, reqs) = setup();
        let out = Rewriter::new(RewriteConfig::default())
            .rewrite(&bin, &disasm, &reqs, &[])
            .unwrap();
        let orig = Elf::parse(&bin).unwrap();
        let mut bad = Elf::parse(&out.binary).unwrap();
        bad.write_at(0x402010, &[0x00]).unwrap(); // rodata byte
        let errs = verify(&orig, &bad, &disasm, &out.mappings, &out.reports).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::DataModified { addr: 0x402010 })));
    }

    #[test]
    fn wild_jump_detected() {
        let (bin, disasm, reqs) = setup();
        let out = Rewriter::new(RewriteConfig::default())
            .rewrite(&bin, &disasm, &reqs, &[])
            .unwrap();
        let orig = Elf::parse(&bin).unwrap();
        // Verify with an empty mapping table: the (legitimate) trampoline
        // jump now points "nowhere".
        let errs = verify(&orig, &Elf::parse(&out.binary).unwrap(), &disasm, &[], &[])
            .unwrap_err();
        assert!(errs.iter().any(|v| matches!(v, Violation::WildJump { .. })));
    }

    #[test]
    fn verifier_passes_on_synthetic_workload() {
        let prog = e9synth::generate(&e9synth::Profile::tiny("verifyws", false));
        let reqs: Vec<PatchRequest> = prog
            .disasm
            .iter()
            .filter(|i| i.kind.is_jump())
            .map(|i| PatchRequest {
                addr: i.addr,
                template: Template::Empty,
            })
            .collect();
        let out = Rewriter::new(RewriteConfig::default())
            .rewrite(&prog.binary, &prog.disasm, &reqs, &[])
            .unwrap();
        let orig = Elf::parse(&prog.binary).unwrap();
        let patched = Elf::parse(&out.binary).unwrap();
        let rep = verify(&orig, &patched, &prog.disasm, &out.mappings, &out.reports)
            .unwrap_or_else(|e| panic!("verification failed: {e:?}"));
        assert!(rep.diverted >= reqs.len());
    }
}
