//! Rewriter error type.

use std::fmt;

/// Errors surfaced by the rewriting pipeline.
///
/// Note that a *patch failure* (no tactic succeeded for a site) is not an
/// error — it is recorded in [`crate::stats::PatchStats`], matching the
/// paper's coverage methodology where Succ% may be below 100.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Underlying ELF problem.
    Elf(e9elf::ElfError),
    /// A patch request names an address with no known instruction.
    NoSuchInstruction(u64),
    /// A patch request targets an instruction that cannot be displaced into
    /// a trampoline (`loop`/`jrcxz`).
    Unrelocatable(u64),
    /// Internal invariant violation while emitting a trampoline.
    Trampoline(String),
    /// Duplicate patch request for the same address.
    DuplicatePatch(u64),
    /// A patch site's rel32 targets are mutually unreachable: no
    /// trampoline address lies within ±2 GiB of all of them (only
    /// degenerate disassembly can produce this).
    UnreachableTargets(u64),
    /// A planning worker thread panicked; the panic was caught at the
    /// thread-pool boundary and converted into this error.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Elf(e) => write!(f, "elf error: {e}"),
            Error::NoSuchInstruction(a) => {
                write!(f, "no instruction at {a:#x} in the disassembly info")
            }
            Error::Unrelocatable(a) => {
                write!(f, "instruction at {a:#x} cannot be displaced to a trampoline")
            }
            Error::Trampoline(msg) => write!(f, "trampoline emission failed: {msg}"),
            Error::DuplicatePatch(a) => write!(f, "duplicate patch request at {a:#x}"),
            Error::UnreachableTargets(a) => {
                write!(f, "instruction at {a:#x} has mutually unreachable rel32 targets")
            }
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Elf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<e9elf::ElfError> for Error {
    fn from(e: e9elf::ElfError) -> Self {
        Error::Elf(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
