//! Property-based tests for the rewriter core data structures.

use crate::layout::{AddressSpace, Window, MAX_ADDR, MIN_ADDR};
use crate::lock::LockMap;
use crate::pun::PunJump;
use e9qcheck::prelude::*;

props! {
    /// Every target inside a pun's window must encode, and the encoded
    /// jump, spliced over the image, must decode to exactly that target.
    #[test]
    fn pun_window_targets_all_encode(
        image in vec(any::<u8>(), 10..16),
        writable in 1u8..8,
        padding in 0u8..4,
        addr in MIN_ADDR..(1u64 << 40),
        pick in any::<u64>(),
    ) {
        let Some(pun) = PunJump::new(&image, addr, writable, padding) else {
            return Ok(());
        };
        let Some(w) = pun.target_window() else { return Ok(()) };
        let target = w.lo + pick % w.len();
        let written = pun.encode(target).expect("target inside window must encode");
        // Written bytes stay within the writable region.
        let (ws, we) = pun.written_range();
        prop_assert_eq!(we - ws, written.len() as u64);
        prop_assert!(we - addr <= writable as u64);
        // Splice and decode.
        let mut img = image.clone();
        img[..written.len()].copy_from_slice(&written);
        let insn = e9x86::decode(&img, addr).expect("punned jump must decode");
        prop_assert_eq!(insn.kind, e9x86::Kind::JmpRel32);
        prop_assert_eq!(insn.branch_target(), Some(target));
        prop_assert_eq!(insn.len(), pun.jump_len() as usize);
    }

    /// Targets outside the window must be rejected.
    #[test]
    fn pun_rejects_out_of_window(
        image in vec(any::<u8>(), 10..16),
        writable in 1u8..8,
        addr in MIN_ADDR..(1u64 << 40),
        offset in 1u64..(1u64 << 33),
    ) {
        let Some(pun) = PunJump::new(&image, addr, writable, 0) else {
            return Ok(());
        };
        let Some(w) = pun.target_window() else { return Ok(()) };
        if pun.free >= 4 {
            return Ok(()); // fully-free rel32 reaches (almost) everywhere
        }
        prop_assert!(pun.encode(w.hi - 1 + offset).is_none() || w.hi - 1 + offset < w.hi);
        if w.lo >= offset {
            prop_assert!(pun.encode(w.lo - offset).is_none());
        }
    }

    /// Allocations never overlap and respect their windows.
    #[test]
    fn allocator_disjointness(
        reqs in vec((0u64..1u64 << 24, 1u64..512, 0u64..3), 1..60),
    ) {
        let mut space = AddressSpace::new();
        let mut taken: Vec<(u64, u64)> = Vec::new();
        for (lo_off, size, align_exp) in reqs {
            let lo = MIN_ADDR + lo_off;
            let window = Window { lo, hi: lo + (1 << 20) };
            let align = 1u64 << (align_exp * 4);
            if let Some(a) = space.alloc_in(window, size, align) {
                prop_assert!(a >= window.lo && a < window.hi, "start inside window");
                prop_assert_eq!(a % align, 0);
                prop_assert!(a + size <= MAX_ADDR);
                for &(s, e) in &taken {
                    prop_assert!(a + size <= s || a >= e, "overlap with [{s:#x},{e:#x})");
                }
                taken.push((a, a + size));
            }
        }
    }

    /// Freeing always makes the exact range reusable.
    #[test]
    fn allocator_free_reuse(
        size in 1u64..4096,
        base_off in 0u64..1u64 << 20,
    ) {
        let mut space = AddressSpace::new();
        let lo = MIN_ADDR + base_off;
        let w = Window { lo, hi: lo + (1 << 16) };
        let Some(a) = space.alloc_in(w, size, 1) else { return Ok(()) };
        space.free(a, a + size);
        prop_assert!(space.is_free(a, a + size));
        prop_assert_eq!(space.alloc_in(Window { lo: a, hi: a + 1 }, size, 1), Some(a));
    }

    /// Lock-map writes are refused iff any byte is locked.
    #[test]
    fn lockmap_refuses_locked(
        locks in vec((0u64..256, 1u64..8, any::<bool>()), 0..32),
        probe in (0u64..256, 1u64..8),
    ) {
        let mut map = LockMap::new();
        let mut locked = std::collections::HashSet::new();
        for (addr, len, modified) in locks {
            // Only lock-modify genuinely free ranges (the planner's
            // contract); punning may overlap.
            if modified {
                if map.can_write(addr, len) {
                    map.lock_modified(addr, len);
                    locked.extend(addr..addr + len);
                }
            } else {
                map.lock_punned(addr, len);
                locked.extend(addr..addr + len);
            }
        }
        let (pa, pl) = probe;
        let expect = (pa..pa + pl).all(|a| !locked.contains(&a));
        prop_assert_eq!(map.can_write(pa, pl), expect);
    }

    /// Grouping conserves every trampoline byte at its in-block offset,
    /// produces one mapping per virtual block, and never more physical
    /// blocks than the naive scheme.
    #[test]
    fn grouping_conserves_bytes(
        tramps in vec((0u64..1u64 << 16, 1usize..64), 1..40),
        granularity in 1u64..4,
    ) {
        // Make trampolines disjoint by spacing them out.
        let mut ts: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut cursor = 0x10000u64;
        for (i, (gap, len)) in tramps.into_iter().enumerate() {
            cursor += gap + 1;
            ts.push((cursor, vec![(i % 251 + 1) as u8; len]));
            cursor += len as u64;
        }
        let grouped = crate::group::group(&ts, granularity, true);
        let naive = crate::group::group(&ts, granularity, false);
        prop_assert_eq!(grouped.mapping_count(), grouped.virtual_blocks);
        prop_assert_eq!(naive.mapping_count(), naive.virtual_blocks);
        prop_assert!(grouped.groups.len() <= naive.groups.len());

        // Reconstruct a virtual view and verify every trampoline byte.
        let bs = grouped.block_size;
        let mut view = std::collections::HashMap::new();
        for g in &grouped.groups {
            for &vbase in &g.mapped_at {
                for (i, &b) in g.bytes.iter().enumerate() {
                    if b != 0 {
                        view.insert(vbase + i as u64, b);
                    }
                }
            }
        }
        let _ = bs;
        for (vaddr, bytes) in &ts {
            for (i, &b) in bytes.iter().enumerate() {
                prop_assert_eq!(
                    view.get(&(vaddr + i as u64)).copied(),
                    Some(b),
                    "byte {} of trampoline at {:#x} lost",
                    i,
                    vaddr
                );
            }
        }
    }
}
